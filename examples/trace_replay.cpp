// Trace record & replay: reproducible experiments from workload files.
//
// Generates one round of the paper's workload (300 users, Poisson 5/10),
// writes it to a CSV trace, reads it back, and verifies the replayed
// cluster round is bit-identical to the live one. This is the substitution
// path for "real-world data traces" (DESIGN.md §3): drop any CSV with the
// same schema next to your binary and feed it through the pipeline.
//
//   ./build/examples/trace_replay [--seed=N] [--out=/tmp/trace.csv]
#include <cstdio>
#include <string>

#include "common/flags.h"
#include "edge/cluster.h"
#include "workload/generator.h"
#include "workload/trace.h"

namespace {

// Run one cluster round over a batch and return total served requests.
std::uint64_t run_round(const std::vector<ecrs::workload::request>& batch,
                        std::uint64_t seed) {
  using namespace ecrs;
  std::vector<workload::qos_class> qos(25,
                                       workload::qos_class::delay_sensitive);
  edge::cluster_config cfg;
  cfg.clouds = 10;
  cfg.capacity_per_cloud = 1.0;
  cfg.seed = seed;
  edge::cluster cluster(cfg, qos);
  cluster.allocate_fair(600.0);
  cluster.route(batch);
  cluster.advance(0.0, 600.0);
  std::uint64_t served = 0;
  for (const auto& s : cluster.end_round(1, 600.0)) served += s.served;
  return served;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ecrs;
  const flags f(argc, argv);
  const auto seed = static_cast<std::uint64_t>(f.get_int("seed", 11));
  const std::string path = f.get_string("out", "/tmp/ecrs_trace.csv");

  workload::generator_config wcfg;
  wcfg.users = 300;
  wcfg.microservices = 25;
  wcfg.seed = seed;
  workload::generator gen(wcfg);
  const auto live_batch = gen.round(0.0, 600.0);
  std::printf("generated %zu requests; writing trace to %s\n",
              live_batch.size(), path.c_str());
  workload::write_trace_file(path, live_batch);

  const auto replayed = workload::read_trace_file(path);
  std::printf("replayed %zu requests from trace\n", replayed.size());
  if (replayed.size() != live_batch.size()) {
    std::printf("ERROR: trace size mismatch\n");
    return 1;
  }

  const std::uint64_t live_served = run_round(live_batch, seed);
  const std::uint64_t replay_served = run_round(replayed, seed);
  std::printf("cluster served %llu requests live, %llu from replay\n",
              static_cast<unsigned long long>(live_served),
              static_cast<unsigned long long>(replay_served));
  if (live_served != replay_served) {
    std::printf("ERROR: replay diverged from the live run\n");
    return 1;
  }
  std::printf("replay is bit-identical to the live round\n");
  return 0;
}
