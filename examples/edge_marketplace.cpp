// Edge marketplace: the full paper pipeline, end to end.
//
//   workload generator  →  edge cluster queueing  →  demand estimation (§III)
//        →  per-round auction via msoa_session (§IV)  →  reallocation
//
// Every auction round:
//  1. users flood the cluster with Poisson request batches;
//  2. each microservice's queueing observables feed the demand estimator;
//  3. starved microservices become demanders (their estimated demand X_i^t
//     is the multi-cover requirement), underloaded microservices become
//     sellers bidding their spare allocation — to colocated demanders
//     first, falling back to the neediest remote ones over the backhaul
//     network that connects all edge clouds (§II);
//  4. the MSOA session runs SSAM on capacity/ψ-scaled prices, winners are
//     paid, and the platform moves the sold resources to the demanders.
//
// The run prints a per-round summary and closes with the mechanism totals.
//
//   ./build/examples/edge_marketplace [--rounds=N] [--seed=N] [--users=N]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "auction/msoa.h"
#include "common/flags.h"
#include "common/rng.h"
#include "demand/estimator.h"
#include "edge/cluster.h"
#include "edge/topology.h"
#include "workload/generator.h"

namespace {

struct marketplace_config {
  std::size_t rounds = 8;
  std::uint64_t seed = 1;
  std::uint32_t users = 120;
  std::uint32_t microservices = 20;
  std::uint32_t clouds = 5;
  double round_duration = 600.0;  // paper: 10 minutes
};

// A microservice is starved when it ends the round with queued work, and a
// seller when it ran well below capacity.
constexpr double kStarvedBacklog = 5.0;     // resource-seconds
constexpr double kSellerUtilization = 0.85;  // busy fraction

}  // namespace

int main(int argc, char** argv) {
  using namespace ecrs;
  const flags f(argc, argv);
  marketplace_config cfg;
  cfg.rounds = static_cast<std::size_t>(f.get_int("rounds", 8));
  cfg.seed = static_cast<std::uint64_t>(f.get_int("seed", 1));
  cfg.users = static_cast<std::uint32_t>(f.get_int("users", 120));

  // --- substrate ---------------------------------------------------------
  workload::generator_config wcfg;
  wcfg.users = cfg.users;
  wcfg.microservices = cfg.microservices;
  wcfg.seed = cfg.seed;
  workload::generator traffic(wcfg);

  std::vector<workload::qos_class> qos;
  for (std::uint32_t s = 0; s < cfg.microservices; ++s) {
    qos.push_back(traffic.class_of(s));
  }
  edge::cluster_config ccfg;
  ccfg.clouds = cfg.clouds;
  // Slightly above the mean load so imbalance, not raw shortage, drives the
  // market (cf. DESIGN.md).
  const double expected_work = static_cast<double>(cfg.users) *
                               (wcfg.sensitive_mean + wcfg.tolerant_mean);
  ccfg.capacity_per_cloud =
      1.4 * expected_work / cfg.round_duration / cfg.clouds;
  ccfg.seed = cfg.seed ^ 0xeadbeefULL;
  edge::cluster cluster(ccfg, qos);
  // Backhaul ring between the edge clouds (§II); remote help pays a
  // per-unit transfer surcharge proportional to the path latency.
  const edge::topology backhaul = edge::topology::ring(cfg.clouds, 2.0);
  constexpr double kTransferCostPerMs = 0.4;

  demand::estimator estimator(demand::make_default_config());

  // --- market ------------------------------------------------------------
  // Every microservice may sell over the whole horizon; its capacity Θ is
  // its participation budget in coverage units.
  std::vector<auction::seller_profile> profiles(cfg.microservices);
  for (auto& p : profiles) {
    p.capacity = static_cast<auction::units>(2 * cfg.rounds);
    p.t_arrive = 1;
    p.t_depart = static_cast<std::uint32_t>(cfg.rounds);
  }
  auction::msoa_session market(profiles);
  rng pricing(cfg.seed ^ 0x5157ULL);

  double total_cost = 0.0;
  double total_paid = 0.0;
  double unmet_units = 0.0;
  std::printf(
      "round | arrivals | starved | sellers | bought | paid    | unmet\n");

  double now = 0.0;
  for (std::size_t r = 1; r <= cfg.rounds; ++r) {
    const auto batch = traffic.round(now, cfg.round_duration);
    cluster.allocate_fair(cfg.round_duration);
    cluster.route(batch);
    cluster.advance(now, cfg.round_duration);
    const auto stats = cluster.end_round(r, cfg.round_duration);
    const auto estimates = estimator.estimate_round(stats);

    // Build the auction round from the cluster state.
    auction::single_stage_instance round;
    std::vector<std::uint32_t> demander_service;  // demander id -> service
    std::map<std::uint32_t, std::vector<auction::demander_id>>
        demanders_on_cloud;
    for (std::size_t s = 0; s < stats.size(); ++s) {
      if (stats[s].backlog_work > kStarvedBacklog) {
        const auto k =
            static_cast<auction::demander_id>(round.requirements.size());
        // Estimated demand, at least one unit.
        round.requirements.push_back(static_cast<auction::units>(
            std::max(1.0, std::ceil(estimates[s]))));
        demander_service.push_back(stats[s].microservice);
        demanders_on_cloud[cluster.cloud_of(stats[s].microservice)]
            .push_back(k);
      }
    }
    std::size_t seller_count = 0;
    if (!round.requirements.empty()) {
      for (std::size_t s = 0; s < stats.size(); ++s) {
        if (stats[s].backlog_work > kStarvedBacklog) continue;
        if (stats[s].utilization > kSellerUtilization) continue;
        const auto cloud = cluster.cloud_of(stats[s].microservice);
        // Prefer colocated demanders; otherwise help the two neediest ones
        // across the backhaul.
        std::vector<auction::demander_id> coverage;
        const auto it = demanders_on_cloud.find(cloud);
        if (it != demanders_on_cloud.end()) {
          coverage = it->second;
        } else {
          std::vector<auction::demander_id> order(round.requirements.size());
          for (auction::demander_id k = 0; k < order.size(); ++k) order[k] = k;
          std::sort(order.begin(), order.end(),
                    [&](auction::demander_id a, auction::demander_id b2) {
                      return round.requirements[a] > round.requirements[b2];
                    });
          order.resize(std::min<std::size_t>(2, order.size()));
          std::sort(order.begin(), order.end());
          coverage = order;
        }
        // Spare resources over the next round, in whole units.
        const double spare =
            stats[s].allocation * (1.0 - stats[s].utilization);
        const auto amount = static_cast<auction::units>(
            std::max(1.0, std::floor(4.0 * spare)));
        ++seller_count;
        // The seller's true cost includes moving the resources over the
        // backhaul to the farthest covered demander.
        double worst_transfer = 0.0;
        for (auction::demander_id k : coverage) {
          const auto remote = cluster.cloud_of(demander_service[k]);
          worst_transfer = std::max(
              worst_transfer,
              backhaul.transfer_cost(cloud, remote, kTransferCostPerMs));
        }
        // Two alternative offers with private (truthful) costs in the
        // paper's U[10,35] price band, the bigger one dearer.
        for (std::uint32_t j = 0; j < 2; ++j) {
          auction::bid b;
          b.seller = stats[s].microservice;
          b.index = j;
          b.coverage = coverage;
          b.amount = std::max<auction::units>(1, amount - j);
          b.price = pricing.uniform_real(10.0, 35.0) *
                        (1.0 + 0.1 * static_cast<double>(b.amount)) +
                    worst_transfer * static_cast<double>(b.amount);
          round.bids.push_back(std::move(b));
        }
      }
    }

    // Run the mechanism and apply the reallocation.
    const auto outcome = market.run_round(round);
    double bought = 0.0;
    for (std::size_t w = 0; w < outcome.winner_bids.size(); ++w) {
      const auction::bid& b = round.bids[outcome.winner_bids[w]];
      const double moved = static_cast<double>(b.amount) / 4.0;
      cluster.adjust_allocation(b.seller, -moved);
      for (auction::demander_id k : b.coverage) {
        cluster.adjust_allocation(
            demander_service[k],
            moved / static_cast<double>(b.coverage.size()));
      }
      bought += static_cast<double>(b.amount);
      total_paid += outcome.payments[w];
    }
    total_cost += outcome.social_cost;
    // Unmet demand units (rounds where supply could not cover everything).
    auction::coverage_state state(round.requirements);
    for (std::size_t idx : outcome.winner_bids) state.apply(round.bids[idx]);
    unmet_units += static_cast<double>(state.deficit());

    std::printf("%5zu | %8zu | %7zu | %7zu | %6.0f | %7.1f | %5lld\n", r,
                batch.size(), round.requirements.size(), seller_count, bought,
                outcome.social_cost, static_cast<long long>(state.deficit()));
    now += cfg.round_duration;
  }

  std::printf(
      "\ntotals: social cost %.1f, payments %.1f (overhead %.1f%%), unmet "
      "units %.0f\n",
      total_cost, total_paid,
      total_cost > 0.0 ? 100.0 * (total_paid - total_cost) / total_cost : 0.0,
      unmet_units);
  std::printf("online guarantee: alpha=%.2f beta=%.2f -> cost <= %.2f x OPT\n",
              market.alpha(), market.beta(), market.competitive_bound());
  return 0;
}
