// Quickstart: run one single-stage auction (SSAM) end to end.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Scenario: two microservices on an edge cloud are starved (they need 6 and
// 4 resource units); four colocated microservices have spare resources and
// bid to sell them back to the platform. SSAM picks the winning bids in
// polynomial time, pays each winner at least its asking price, and its
// social cost is provably within W·Ξ of the optimum — which we verify here
// against the exact solver.
#include <cstdio>

#include "auction/exact.h"
#include "auction/properties.h"
#include "auction/ssam.h"

int main() {
  using namespace ecrs::auction;

  single_stage_instance round;
  // Demander 0 needs 6 units, demander 1 needs 4.
  round.requirements = {6, 4};

  auto offer = [](seller_id seller, std::uint32_t j,
                  std::vector<demander_id> coverage, units amount,
                  double price) {
    bid b;
    b.seller = seller;
    b.index = j;
    b.coverage = std::move(coverage);
    b.amount = amount;
    b.price = price;
    return b;
  };
  // Each seller may submit alternative bids; at most one wins.
  round.bids = {
      offer(0, 0, {0}, 4, 11.0),     // seller 0: 4 units to demander 0
      offer(0, 1, {0}, 6, 15.0),     // ... or 6 units at a higher price
      offer(1, 0, {0, 1}, 3, 14.0),  // seller 1: 3 units to each demander
      offer(2, 0, {1}, 4, 12.0),     // seller 2: 4 units to demander 1
      offer(3, 0, {0, 1}, 2, 25.0),  // seller 3: expensive fallback
  };

  const ssam_result result = run_ssam(round);

  std::printf("winning bids (selection order):\n");
  for (const winning_bid& w : result.winners) {
    const bid& b = round.bids[w.bid_index];
    std::printf(
        "  seller %u bid %u: covers %zu demander(s), amount %lld, "
        "asked %.2f, paid %.2f\n",
        b.seller, b.index, b.coverage.size(),
        static_cast<long long>(b.amount), b.price, w.payment);
  }
  std::printf("all demands satisfied: %s\n", result.feasible ? "yes" : "no");
  std::printf("social cost: %.2f, total payments: %.2f\n", result.social_cost,
              result.total_payment);

  // The dual certificate bounds how far the greedy can be from optimal...
  std::printf("approximation bound W*Xi = %.2f\n", result.ratio_bound);

  // ...and the exact solver confirms it on this instance.
  const reference_solution optimum = solve_exact(round);
  std::printf("exact optimum: %.2f  =>  realized ratio %.3f\n", optimum.cost,
              result.social_cost / optimum.cost);

  // Individual rationality holds by construction.
  const ir_audit audit = audit_individual_rationality(round, result);
  std::printf("individual rationality: %s (min surplus %.3f)\n",
              audit.ok ? "ok" : "VIOLATED", audit.min_surplus);
  return audit.ok && result.feasible ? 0 : 1;
}
