// Truthfulness audit: why lying does not pay (Theorems 4 & 5).
//
// Takes a random paper-sized auction round, picks a winning seller, and
// sweeps its *reported* price across the band while keeping its true cost
// fixed. Under critical-value payments the utility curve is flat while the
// bid wins and drops to zero once it prices itself out — the Myerson
// signature of a truthful mechanism. The audit then fuzzes every bid with
// random misreports and reports the best achievable gain (none expected).
//
//   ./build/examples/truthfulness_audit [--seed=N] [--sellers=N]
#include <cstdio>

#include "auction/instance_gen.h"
#include "auction/properties.h"
#include "auction/ssam.h"
#include "common/flags.h"
#include "common/rng.h"

int main(int argc, char** argv) {
  using namespace ecrs;
  const flags f(argc, argv);
  const auto seed = static_cast<std::uint64_t>(f.get_int("seed", 7));
  const auto sellers = static_cast<std::size_t>(f.get_int("sellers", 12));

  rng gen(seed);
  auction::instance_config cfg;
  cfg.sellers = sellers;
  cfg.demanders = 3;
  cfg.bids_per_seller = 2;
  const auto round = auction::random_instance(cfg, gen);

  auction::ssam_options opts;
  opts.rule = auction::payment_rule::critical_value;
  const auto result = auction::run_ssam(round, opts);
  if (result.winners.empty()) {
    std::printf("no winners on this instance; try another --seed\n");
    return 1;
  }

  const std::size_t probe = result.winners.front().bid_index;
  const double true_price = round.bids[probe].price;
  std::printf("probing winning bid %zu of seller %u (true cost %.2f, "
              "critical value %.2f)\n\n",
              probe, round.bids[probe].seller, true_price,
              result.winners.front().payment);
  std::printf("reported price | wins | utility (payment - true cost)\n");
  for (double factor : {0.25, 0.5, 0.75, 1.0, 1.1, 1.25, 1.5, 2.0, 3.0}) {
    const double report = true_price * factor;
    const double utility =
        auction::utility_with_report(round, opts, probe, report);
    const bool wins = auction::wins_with_price(round, probe, report);
    std::printf("%14.2f | %4s | %.3f\n", report, wins ? "yes" : "no",
                utility);
  }

  rng fuzz(seed ^ 0xf22ULL);
  const auto report = auction::probe_truthfulness(round, opts, fuzz, 200);
  std::printf("\nfuzzing %zu random misreports: %zu profitable lies, "
              "max gain %.6f\n",
              report.trials, report.profitable_lies, report.max_gain);
  if (report.profitable_lies > 0) {
    std::printf("worst case: %s\n", report.worst_case.c_str());
    return 1;
  }
  std::printf("mechanism is truthful on this instance: lying never helped\n");
  return 0;
}
