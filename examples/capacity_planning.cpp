// Capacity planning: how seller capacity Θ shapes the online guarantee.
//
// Theorem 7 says MSOA is αβ/(β−1)-competitive with β = min_i Θ_i/|S_ij|:
// generous capacities (large β) give a bound close to α, while capacities
// barely above one winning bid (β → 1) make the guarantee collapse. This
// example sweeps a capacity multiplier over the same ground-truth market
// and reports the realized social cost, the certified offline LP bound, and
// the theoretical guarantee — the operator's tradeoff between reserving
// resources and online efficiency.
//
//   ./build/examples/capacity_planning [--seed=N] [--rounds=N] [--sellers=N]
#include <cstdio>

#include "auction/exact.h"
#include "auction/instance_gen.h"
#include "auction/msoa.h"
#include "common/flags.h"
#include "common/rng.h"

int main(int argc, char** argv) {
  using namespace ecrs;
  const flags f(argc, argv);
  const auto seed = static_cast<std::uint64_t>(f.get_int("seed", 3));
  const auto rounds = static_cast<std::size_t>(f.get_int("rounds", 8));
  const auto sellers = static_cast<std::size_t>(f.get_int("sellers", 20));

  std::printf("capacity | feasible | social cost | offline bound | realized "
              "ratio | guarantee (a*b/(b-1))\n");
  for (const double factor : {1.0, 1.5, 2.0, 3.0, 5.0}) {
    rng gen(seed);  // same seed: the market differs only in capacities
    auction::online_config cfg;
    cfg.stage.sellers = sellers;
    cfg.stage.demanders = 4;
    cfg.stage.bids_per_seller = 2;
    cfg.rounds = rounds;
    cfg.capacity_lo = static_cast<auction::units>(2.0 * factor);
    cfg.capacity_hi = static_cast<auction::units>(4.0 * factor);
    const auto market = auction::random_online_instance(cfg, gen);

    const auto result = auction::run_msoa(market);
    const double offline = auction::offline_lp_bound(market);
    std::printf("%8.1f | %8s | %11.1f | %13.1f | %14.3f | %.2f\n", factor,
                result.feasible ? "yes" : "NO", result.social_cost, offline,
                offline > 0.0 ? result.social_cost / offline : 0.0,
                result.competitive_bound);
  }
  std::printf("\nreading: larger capacities raise beta, tightening the "
              "worst-case guarantee\ntoward alpha while the realized ratio "
              "stays far below it.\n");
  return 0;
}
