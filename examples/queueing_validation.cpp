// Queueing validation: the simulated microservice against M/M/1 theory,
// and Erlang-C capacity planning for an edge cloud.
//
// Part 1 drives a single microservice with Poisson arrivals and exponential
// service demands at several loads and compares the measured mean sojourn
// time with the closed-form M/M/1 value 1/(μ−λ) — the calibration that
// justifies trusting the demand-estimation pipeline built on this queue.
//
// Part 2 answers an operator question with the analytic M/M/c machinery:
// how many resource units must an edge cloud hold so that requests wait at
// most 100 ms on average at a given arrival rate?
//
//   ./build/examples/queueing_validation [--seed=N]
#include <cstdio>

#include "common/flags.h"
#include "common/rng.h"
#include "common/statistics.h"
#include "edge/microservice.h"
#include "edge/queueing.h"
#include "workload/request.h"

namespace {

// Simulate an M/M/1 queue on the microservice substrate; returns the mean
// sojourn time of completed requests.
double simulate_sojourn(double lambda, double mu, double horizon,
                        std::uint64_t seed) {
  using namespace ecrs;
  edge::microservice svc(0, workload::qos_class::delay_sensitive);
  svc.set_allocation(1.0);  // work served at 1 unit/s; demand mean = 1/μ
  rng gen(seed);
  double now = 0.0;
  double last = 0.0;
  std::uint64_t next_id = 1;
  while (now < horizon) {
    now += gen.exponential(lambda);
    if (now >= horizon) break;
    svc.advance(last, now - last);
    last = now;
    workload::request r;
    r.id = next_id++;
    r.microservice = 0;
    r.arrival_time = now;
    r.service_demand = gen.exponential(mu);
    svc.enqueue(r);
  }
  svc.advance(last, horizon);  // drain
  const auto stats = svc.end_round(1, horizon, 1);
  return stats.mean_wait;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ecrs;
  const flags f(argc, argv);
  const auto seed = static_cast<std::uint64_t>(f.get_int("seed", 42));

  std::printf("part 1: simulated microservice vs M/M/1 theory (mu = 1)\n");
  std::printf("  rho  | theory W | simulated W | error\n");
  for (const double lambda : {0.3, 0.5, 0.7, 0.85}) {
    const double theory = edge::mm1_sojourn_time(lambda, 1.0);
    const double sim = simulate_sojourn(lambda, 1.0, 100000.0, seed);
    std::printf("  %.2f | %8.3f | %11.3f | %+.1f%%\n", lambda, theory, sim,
                100.0 * (sim - theory) / theory);
  }

  std::printf("\npart 2: Erlang-C capacity planning\n");
  std::printf("  target: mean queueing delay <= 0.1 s at service rate 1/s\n");
  std::printf("  arrival rate | servers needed | achieved Wq\n");
  for (const double lambda : {2.0, 5.0, 10.0, 20.0, 50.0}) {
    const std::size_t c = edge::servers_for_waiting_time(lambda, 1.0, 0.1).value();
    std::printf("  %12.0f | %14zu | %.4f s\n", lambda, c,
                edge::mmc_waiting_time(lambda, 1.0, c));
  }
  std::printf("\nreading: pooling pays — 25x the traffic needs only ~'lambda"
              " + a few' servers,\nnot 25x the slack of the small cloud.\n");
  return 0;
}
