// Sustained closed-loop daemon throughput for BENCH_pr10.json: one
// simrun::daemon horizon wiring workload generation, the batched DES, the
// streaming demand estimator, the round ingestor and the sharded
// marketplace into the paper's §V feedback cycle — allocations granted in
// round t become service rates in round t+1.
//
// The binary is also the byte-identity cross-check, run BEFORE any timing:
//  - thread gate: a serial-market daemon and a parallel-market daemon must
//    digest every round identically (winners, payment bit patterns,
//    estimates, grants);
//  - resume gate: a daemon checkpointed to a file at the gate horizon's
//    midpoint and restored into a fresh process-state daemon must replay
//    the remaining rounds byte-identically to the straight-through run,
//    and reach the identical final checkpoint payload.
// Any mismatch exits nonzero.
//
// The timed horizon brackets the per-round observe -> estimate -> ingest
// chain with a process-wide operator-new counter (the daemon's chain
// probe): once warm, the chain must report ZERO allocations — a non-zero
// warm minimum exits nonzero. Defaults complete a ~1e8-request scenario
// (mild diurnal cycle plus periodic seller churn); CI smoke runs the same
// binary at ~1e5 requests.
//
// Flags:
//   --requests=N   target total generated requests (default 100000000)
//   --rounds=N     daemon rounds in the timed horizon (default 1000);
//                  users per round are sized as requests/(rounds*15)
//   --regions=N    edge cloud regions / market shards (default 8)
//   --sellers=N    sellers per region (default 8)
//   --demanders=N  demanding microservices per region (default 4)
//   --threads=N    marketplace worker cap (default 0 = hardware width)
//   --gate_rounds=N  identity-gate horizon (default 12)
//   --scenario=0|1 disable/enable the diurnal + churn scenario (default 1)
//   --seed=N       master seed (default 1)
#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#if defined(__unix__)
#include <sys/resource.h>
#endif

#include "auction/instance_gen.h"
#include "common/flags.h"
#include "common/stopwatch.h"
#include "harness/internal.h"
#include "simrun/daemon.h"

namespace {

// Process-wide allocation counter: every operator new in the binary bumps
// it. Counter reads around the daemon's chain probe give allocations per
// observe -> estimate -> ingest pass.
std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

using daemon_t = ecrs::simrun::daemon;
using ecrs::simrun::daemon_setup;

std::uint64_t allocations_now() {
  return g_allocations.load(std::memory_order_relaxed);
}

// Process peak RSS (MB); 0 when the platform has no getrusage.
double peak_rss_mb() {
#if defined(__unix__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    // Linux reports ru_maxrss in KiB.
    return static_cast<double>(usage.ru_maxrss) / 1024.0;
  }
#endif
  return 0.0;
}

struct bench_config {
  std::size_t regions = 8;
  std::size_t sellers = 8;
  std::size_t demanders = 4;
  std::uint32_t users = 100;
  std::size_t threads = 0;
  bool scenario = true;
  std::uint64_t seed = 1;
};

daemon_setup build_setup(const bench_config& bc, std::size_t threads) {
  ecrs::auction::online_config stage;
  stage.stage =
      ecrs::harness::internal::paper_stage(bc.sellers, bc.demanders, 2);
  stage.rounds = 1;  // only the standing (round 1) bid sets are used
  ecrs::auction::regional_config regional;
  regional.regions = bc.regions;
  ecrs::rng gen = ecrs::harness::internal::point_rng(bc.seed, 14, 0, 0);
  ecrs::auction::regional_online_instance input =
      ecrs::auction::random_regional_online_instance(stage, regional, gen);

  daemon_setup s;
  s.topology =
      ecrs::edge::topology::ring(static_cast<std::uint32_t>(bc.regions));
  s.standing.regions.reserve(bc.regions);
  s.sellers.reserve(bc.regions);
  for (auto& region : input.regions) {
    s.standing.regions.push_back(region.rounds.front());
    for (ecrs::auction::seller_profile& p : region.sellers) {
      // The single-round generator leaves every seller the window [1,1]
      // and a one-round budget; widen both so the market stays live over
      // the whole daemon horizon.
      p.capacity *= 1000000;
      p.t_arrive = 1;
      p.t_depart = 0x7fffffffu;
    }
    s.sellers.push_back(std::move(region.sellers));
  }
  // A demander no standing bid covers has zero guaranteed supply: its
  // quantized requirement clamps to 0 every round, the loop cannot
  // self-correct, and its queue grows without bound over a long horizon.
  // Guarantee every demander at least kMinCover covering sellers (a bid's
  // coverage set is shared across the seller's bids — keep it that way),
  // assigned round-robin so the augmentation is deterministic.
  constexpr std::uint32_t kMinCover = 3;
  for (auto& inst : s.standing.regions) {
    const std::size_t nd = inst.requirements.size();
    const std::size_t ns = bc.sellers;
    std::vector<std::vector<std::size_t>> bids_of(ns);
    std::vector<std::vector<char>> covers(ns, std::vector<char>(nd, 0));
    for (std::size_t b = 0; b < inst.bids.size(); ++b) {
      const ecrs::auction::bid& bd = inst.bids[b];
      bids_of[bd.seller].push_back(b);
      for (const ecrs::auction::demander_id k : bd.coverage) {
        covers[bd.seller][k] = 1;
      }
    }
    for (std::size_t k = 0; k < nd; ++k) {
      std::uint32_t have = 0;
      for (std::size_t i = 0; i < ns; ++i) have += covers[i][k];
      std::size_t si = k % ns;
      for (std::size_t tries = 0; have < kMinCover && tries < ns; ++tries) {
        if (!covers[si][k] && !bids_of[si].empty()) {
          for (const std::size_t b : bids_of[si]) {
            auto& cov = inst.bids[b].coverage;
            cov.insert(std::lower_bound(
                           cov.begin(), cov.end(),
                           static_cast<ecrs::auction::demander_id>(k)),
                       static_cast<ecrs::auction::demander_id>(k));
          }
          covers[si][k] = 1;
          ++have;
        }
        si = (si + 1) % ns;
      }
    }
  }
  const auto services =
      static_cast<std::uint32_t>(bc.regions * bc.demanders);
  s.workload.users = bc.users;
  s.workload.microservices = services;
  s.workload.regions = static_cast<std::uint32_t>(bc.regions);
  s.workload.seed = bc.seed;
  s.cluster.clouds = static_cast<std::uint32_t>(bc.regions);
  s.cluster.seed = bc.seed ^ 0xc0ffeeULL;
  s.estimator = ecrs::demand::make_default_config();
  s.estimator.round_duration = 600.0;
  s.ingest.regions = static_cast<std::uint32_t>(bc.regions);
  s.ingest.microservices = services;
  s.ingest.unit_demand = 4.0;
  s.ingest.max_requirement = stage.stage.requirement_hi;
  s.ingest.supply_margin = stage.stage.supply_margin;
  // Quantization over a handful of regions is trivial; the serial path
  // keeps the observe -> estimate -> ingest chain off the thread pool
  // (whose task dispatch allocates) and therefore allocation-free.
  s.ingest.threads = 1;
  s.market.threads = threads;
  s.market.shard.session.stage.payment_threads = 1;
  s.market.spillover.stage.payment_threads = 1;
  s.config.round_duration = 600.0;
  // One granted unit stands for unit_demand resource-seconds/second of
  // quantized demand; granting it any less service rate under-serves by
  // construction and the backlog diverges.
  s.config.resources_per_unit = s.ingest.unit_demand;
  if (bc.scenario) {
    s.config.scenario.diurnal_amplitude = 0.25;
    s.config.scenario.diurnal_period = 96;  // one "day" of 10-min rounds
    s.config.scenario.churn_every = 97;     // co-prime with the period
    s.config.scenario.churn_downtime = 23;
  }
  return s;
}

// Exact byte-level digest of everything a daemon round decided.
void digest_round(const ecrs::market::marketplace_round& round,
                  std::span<const double> estimates,
                  std::span<const ecrs::auction::units> grants,
                  std::vector<std::uint64_t>& out) {
  const auto push_double = [&](double v) {
    out.push_back(std::bit_cast<std::uint64_t>(v));
  };
  out.push_back(round.round);
  for (const auto& shard : round.shards) {
    out.push_back(shard.outcome.winner_bids.size());
    for (const std::size_t w : shard.outcome.winner_bids) out.push_back(w);
    for (const double p : shard.outcome.payments) push_double(p);
    push_double(shard.outcome.social_cost);
    out.push_back(static_cast<std::uint64_t>(shard.deficit));
  }
  out.push_back(round.spillover.awards.size());
  for (const auto& award : round.spillover.awards) {
    out.push_back(award.demand_region);
    out.push_back(award.seller);
    out.push_back(static_cast<std::uint64_t>(award.amount));
    push_double(award.payment);
  }
  push_double(round.social_cost);
  push_double(round.total_payment);
  for (const double e : estimates) push_double(e);
  for (const ecrs::auction::units g : grants) {
    out.push_back(static_cast<std::uint64_t>(g));
  }
}

void attach_digest(daemon_t& d, std::vector<std::uint64_t>& digest) {
  d.set_round_callback([&digest, &d](std::uint64_t,
                                     const ecrs::market::marketplace_round& o,
                                     std::span<const double> estimates) {
    digest_round(o, estimates, d.last_grants(), digest);
  });
}

std::vector<std::uint8_t> save_bytes(const daemon_t& d) {
  ecrs::checkpoint_writer w;
  d.save(w);
  const std::span<const std::uint8_t> p = w.payload();
  return {p.begin(), p.end()};
}

void print_lane(const char* name, double ms, bool trailing_comma) {
  std::printf("    \"%s\": {\"mean_ns\": %.0f}%s\n", name, ms * 1e6,
              trailing_comma ? "," : "");
}

}  // namespace

int main(int argc, char** argv) {
  const ecrs::flags f(argc, argv);
  const auto requests =
      static_cast<std::uint64_t>(f.get_int("requests", 100000000));
  const auto rounds = static_cast<std::uint64_t>(f.get_int("rounds", 1000));
  bench_config bc;
  bc.regions = static_cast<std::size_t>(f.get_int("regions", 8));
  bc.sellers = static_cast<std::size_t>(f.get_int("sellers", 8));
  bc.demanders = static_cast<std::size_t>(f.get_int("demanders", 4));
  bc.threads = static_cast<std::size_t>(f.get_int("threads", 0));
  bc.scenario = f.get_int("scenario", 1) != 0;
  bc.seed = static_cast<std::uint64_t>(f.get_int("seed", 1));
  const auto gate_rounds =
      static_cast<std::uint64_t>(f.get_int("gate_rounds", 12));
  // The generator produces ~15 requests per user per round (Poisson means
  // 5 + 10); size the user population to hit the request target.
  bc.users = static_cast<std::uint32_t>(
      std::max<std::uint64_t>(1, requests / (rounds * 15)));

  // ---- byte-identity gates (before any timing) ----------------------------
  std::vector<std::uint64_t> serial_digest;
  std::vector<std::uint64_t> parallel_digest;
  {
    daemon_t serial(build_setup(bc, 1));
    attach_digest(serial, serial_digest);
    serial.run_rounds(gate_rounds);
    daemon_t parallel(build_setup(bc, bc.threads));
    attach_digest(parallel, parallel_digest);
    parallel.run_rounds(gate_rounds);
  }
  const bool identical = serial_digest == parallel_digest;
  if (!identical) {
    std::fprintf(stderr,
                 "daemon_throughput: serial and parallel daemon digests "
                 "differ (%zu vs %zu words) — determinism broken\n",
                 serial_digest.size(), parallel_digest.size());
    return 1;
  }

  bool resume_identical = false;
  {
    const std::uint64_t midpoint = gate_rounds / 2;
    daemon_t first(build_setup(bc, 1));
    first.run_rounds(midpoint);
    const std::string path = "daemon_throughput_ckpt.tmp";
    first.save_file(path);

    daemon_t straight(build_setup(bc, 1));
    std::vector<std::uint64_t> straight_digest;
    attach_digest(straight, straight_digest);
    straight.run_rounds(gate_rounds);

    daemon_t resumed(build_setup(bc, 1));
    resumed.load_file(path);
    std::remove(path.c_str());
    std::vector<std::uint64_t> resumed_digest;
    attach_digest(resumed, resumed_digest);
    // Straight digests cover rounds 1..gate; drop the pre-midpoint words
    // by re-running them on a scratch daemon for the comparison slice.
    daemon_t prefix(build_setup(bc, 1));
    std::vector<std::uint64_t> prefix_digest;
    attach_digest(prefix, prefix_digest);
    prefix.run_rounds(midpoint);
    resumed.run_rounds(gate_rounds - midpoint);
    std::vector<std::uint64_t> spliced = prefix_digest;
    spliced.insert(spliced.end(), resumed_digest.begin(),
                   resumed_digest.end());
    resume_identical = spliced == straight_digest &&
                       save_bytes(resumed) == save_bytes(straight);
  }
  if (!resume_identical) {
    std::fprintf(stderr,
                 "daemon_throughput: checkpoint-resumed horizon differs "
                 "from the straight-through run — restore broken\n");
    return 1;
  }

  // ---- timed closed-loop horizon ------------------------------------------
  daemon_t timed(build_setup(bc, bc.threads));
  std::uint64_t chain_begin = 0;
  std::uint64_t chain_first = 0;
  std::uint64_t chain_warm_min = ~std::uint64_t{0};
  std::uint64_t chain_warm_max = 0;
  timed.set_chain_probe([&](bool entering) {
    if (entering) {
      chain_begin = allocations_now();
      return;
    }
    const std::uint64_t used = allocations_now() - chain_begin;
    if (timed.rounds_completed() == 0) {
      chain_first = used;
    } else {
      chain_warm_min = std::min(chain_warm_min, used);
      chain_warm_max = std::max(chain_warm_max, used);
    }
  });
  ecrs::stopwatch clock;
  timed.run_rounds(rounds);
  const double horizon_ms = clock.elapsed_ms();
  if (rounds < 2) chain_warm_min = 0;
  if (chain_warm_min != 0) {
    std::fprintf(stderr,
                 "daemon_throughput: warm observe->estimate->ingest chain "
                 "allocated (min %llu per round) — steady state not "
                 "allocation-free\n",
                 static_cast<unsigned long long>(chain_warm_min));
    return 1;
  }

  const double horizon_sec = horizon_ms / 1000.0;
  const double rounds_per_sec =
      horizon_sec > 0.0 ? static_cast<double>(rounds) / horizon_sec : 0.0;
  const double requests_per_sec =
      horizon_sec > 0.0
          ? static_cast<double>(timed.requests_delivered()) / horizon_sec
          : 0.0;
  std::uint64_t final_backlog = 0;
  std::uint64_t worst_queue = 0;
  for (std::uint32_t m = 0;
       m < static_cast<std::uint32_t>(timed.cluster().microservice_count());
       ++m) {
    const std::uint64_t q = timed.cluster().service(m).queue_length();
    final_backlog += q;
    worst_queue = std::max(worst_queue, q);
  }
  // Grant distribution across microservices in the final round: a min
  // stuck at 0 while the backlog climbs points at a starved service
  // (supply-cap or coverage bound), not at loop-wide under-allocation.
  long long grant_min = 0, grant_max = 0, grant_sum = 0;
  {
    const std::span<const ecrs::auction::units> g = timed.last_grants();
    if (!g.empty()) {
      grant_min = grant_max = g[0];
      for (const ecrs::auction::units u : g) {
        grant_min = std::min<long long>(grant_min, u);
        grant_max = std::max<long long>(grant_max, u);
        grant_sum += u;
      }
    }
  }

  std::printf("{\n");
  std::printf(
      "  \"config\": {\"requests_target\": %llu, \"rounds\": %llu, "
      "\"regions\": %zu, \"sellers_per_region\": %zu, "
      "\"demanders_per_region\": %zu, \"users\": %u, \"threads\": %zu, "
      "\"scenario\": %s, \"gate_rounds\": %llu, \"seed\": %llu, "
      "\"hardware_concurrency\": %u},\n",
      static_cast<unsigned long long>(requests),
      static_cast<unsigned long long>(rounds), bc.regions, bc.sellers,
      bc.demanders, bc.users, bc.threads, bc.scenario ? "true" : "false",
      static_cast<unsigned long long>(gate_rounds),
      static_cast<unsigned long long>(bc.seed),
      std::thread::hardware_concurrency());
  std::printf("  \"bit_identical\": %s,\n", identical ? "true" : "false");
  std::printf("  \"resume_bit_identical\": %s,\n",
              resume_identical ? "true" : "false");
  std::printf("  \"results_ns_mean\": {\n");
  print_lane("DaemonRound", horizon_ms / static_cast<double>(rounds), true);
  print_lane("DaemonHorizon", horizon_ms, false);
  std::printf("  },\n");
  std::printf("  \"throughput\": {\"rounds_per_sec\": %.2f, "
              "\"requests_per_sec\": %.0f, \"requests_delivered\": %llu, "
              "\"final_backlog_requests\": %llu, "
              "\"worst_queue_requests\": %llu},\n",
              rounds_per_sec, requests_per_sec,
              static_cast<unsigned long long>(timed.requests_delivered()),
              static_cast<unsigned long long>(final_backlog),
              static_cast<unsigned long long>(worst_queue));
  std::printf("  \"final_grants\": {\"min\": %lld, \"max\": %lld, "
              "\"mean\": %.2f},\n",
              grant_min, grant_max,
              timed.last_grants().empty()
                  ? 0.0
                  : static_cast<double>(grant_sum) /
                        static_cast<double>(timed.last_grants().size()));
  std::printf("  \"allocations_per_round\": {\"chain_first\": %llu, "
              "\"chain_warm_min\": %llu, \"chain_warm_max\": %llu},\n",
              static_cast<unsigned long long>(chain_first),
              static_cast<unsigned long long>(chain_warm_min),
              static_cast<unsigned long long>(chain_warm_max));
  std::printf("  \"peak_rss_mb\": %.1f\n", peak_rss_mb());
  std::printf("}\n");
  return 0;
}
