// Figure 4(b): SSAM running time vs instance size, request loads 100/200.
// Paper shape: below 100 ms even at the largest sizes, growing
// polynomially (near-linearly) in the instance size.
#include "bench_util.h"

int main(int argc, char** argv) {
  const ecrs::flags f(argc, argv);
  const auto cfg = ecrs::bench::sweep_from_flags(f, 10);
  ecrs::bench::emit(f, "Figure 4(b): SSAM running time",
                    ecrs::harness::fig4b_runtime(cfg));
  return 0;
}
