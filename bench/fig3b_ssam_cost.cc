// Figure 3(b): SSAM social cost, payment and optimal cost vs number of
// microservices under request loads 100 and 200. Paper shape: payments ≥
// social cost ≥ optimum; higher load ⇒ higher cost.
#include "bench_util.h"

int main(int argc, char** argv) {
  const ecrs::flags f(argc, argv);
  const auto cfg = ecrs::bench::sweep_from_flags(f, 10);
  ecrs::bench::emit(f,
                    "Figure 3(b): SSAM social cost / payment / optimum",
                    ecrs::harness::fig3b_ssam_cost(cfg));
  return 0;
}
