// End-to-end numbers for BENCH_pr3.json: wall-clock of whole figure sweeps
// at different worker counts (the harness::sweep_runner fan-out), and
// heap-allocation counts per mechanism call with and without a persistent
// ssam_scratch (the allocation-free hot path).
//
// Flags:
//   --trials=N    instances per data point (default 10)
//   --seed=N      master seed (default 1)
//   --threads=N   worker count for the "parallel" sweep timings
//                 (default 0 = hardware width)
//   --repeats=N   timing repeats, fastest wins (default 3)
#include <cstdio>
#include <cstdlib>
#include <new>

#include <atomic>
#include <string>
#include <thread>

#include "auction/instance_gen.h"
#include "auction/msoa.h"
#include "auction/ssam.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "harness/experiments.h"
#include "harness/internal.h"

namespace {

// Process-wide allocation counter: every operator new in the binary bumps
// it. Counter reads around a call give allocations per call.
std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

using ecrs::harness::sweep_config;

std::uint64_t allocations_now() {
  return g_allocations.load(std::memory_order_relaxed);
}

template <typename Fn>
double time_best_ms(std::size_t repeats, Fn&& fn) {
  double best = 0.0;
  for (std::size_t r = 0; r < repeats; ++r) {
    ecrs::stopwatch clock;
    fn();
    const double ms = clock.elapsed_ms();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

struct sweep_timing {
  const char* name;
  double serial_ms = 0.0;
  double parallel_ms = 0.0;
};

void print_timing(const sweep_timing& t, bool trailing_comma) {
  std::printf("    {\"sweep\": \"%s\", \"serial_ms\": %.2f, "
              "\"parallel_ms\": %.2f, \"speedup\": %.2f}%s\n",
              t.name, t.serial_ms, t.parallel_ms,
              t.parallel_ms > 0.0 ? t.serial_ms / t.parallel_ms : 0.0,
              trailing_comma ? "," : "");
}

// Mean allocations per call over `calls` invocations of fn().
template <typename Fn>
double allocations_per_call(std::size_t calls, Fn&& fn) {
  fn();  // warm-up: buffers grow to steady state before counting
  const std::uint64_t before = allocations_now();
  for (std::size_t c = 0; c < calls; ++c) fn();
  return static_cast<double>(allocations_now() - before) /
         static_cast<double>(calls);
}

}  // namespace

int main(int argc, char** argv) {
  const ecrs::flags f(argc, argv);
  const auto trials = static_cast<std::size_t>(f.get_int("trials", 10));
  const auto seed = static_cast<std::uint64_t>(f.get_int("seed", 1));
  const auto threads = static_cast<std::size_t>(f.get_int("threads", 0));
  const auto repeats = static_cast<std::size_t>(f.get_int("repeats", 3));

  sweep_config serial;
  serial.trials = trials;
  serial.seed = seed;
  serial.threads = 1;
  sweep_config parallel = serial;
  parallel.threads = threads;

  // ---- whole-figure sweep wall clock, serial vs parallel ------------------
  sweep_timing fig3a{"fig3a_ssam_ratio"};
  fig3a.serial_ms = time_best_ms(repeats, [&] {
    (void)ecrs::harness::fig3a_ssam_ratio(serial, {5, 10, 15, 25});
  });
  fig3a.parallel_ms = time_best_ms(repeats, [&] {
    (void)ecrs::harness::fig3a_ssam_ratio(parallel, {5, 10, 15, 25});
  });

  sweep_timing fig6a{"fig6a_rounds_bids"};
  fig6a.serial_ms = time_best_ms(repeats, [&] {
    (void)ecrs::harness::fig6a_rounds_bids(serial, {2, 4, 6}, {1, 2}, 15);
  });
  fig6a.parallel_ms = time_best_ms(repeats, [&] {
    (void)ecrs::harness::fig6a_rounds_bids(parallel, {2, 4, 6}, {1, 2}, 15);
  });

  // ---- allocations per mechanism call, fresh vs persistent scratch --------
  ecrs::rng gen(seed);
  const auto instance = ecrs::auction::random_instance(
      ecrs::harness::internal::paper_stage(75, 5, 2), gen);
  ecrs::auction::ssam_options runner_up;
  runner_up.payment_threads = 1;
  ecrs::auction::ssam_options critical = runner_up;
  critical.rule = ecrs::auction::payment_rule::critical_value;

  ecrs::auction::ssam_scratch scratch;
  const double fresh_runner = allocations_per_call(50, [&] {
    (void)ecrs::auction::run_ssam(instance, runner_up, nullptr);
  });
  const double reused_runner = allocations_per_call(50, [&] {
    (void)ecrs::auction::run_ssam(instance, runner_up, &scratch);
  });
  const double fresh_critical = allocations_per_call(20, [&] {
    (void)ecrs::auction::run_ssam(instance, critical, nullptr);
  });
  const double reused_critical = allocations_per_call(20, [&] {
    (void)ecrs::auction::run_ssam(instance, critical, &scratch);
  });

  // MSOA: the session's internal scratch + reused scaled instance make
  // steady-state rounds allocation-light; measured per whole horizon.
  ecrs::rng ogen(seed + 1);
  ecrs::auction::online_config ocfg;
  ocfg.stage = ecrs::harness::internal::paper_stage(25, 5, 2);
  ocfg.rounds = 10;
  const auto online = ecrs::auction::random_online_instance(ocfg, ogen);
  ecrs::auction::msoa_options mopts;
  mopts.stage.payment_threads = 1;
  const double msoa_allocs = allocations_per_call(10, [&] {
    (void)ecrs::auction::run_msoa(online, mopts);
  });

  std::printf("{\n");
  std::printf("  \"config\": {\"trials\": %zu, \"seed\": %llu, "
              "\"threads\": %zu, \"hardware_concurrency\": %u},\n",
              trials, static_cast<unsigned long long>(seed), threads,
              std::thread::hardware_concurrency());
  std::printf("  \"sweep_wall_clock\": [\n");
  print_timing(fig3a, true);
  print_timing(fig6a, false);
  std::printf("  ],\n");
  std::printf("  \"allocations_per_call\": {\n");
  std::printf("    \"run_ssam_runner_up_fresh\": %.1f,\n", fresh_runner);
  std::printf("    \"run_ssam_runner_up_scratch\": %.1f,\n", reused_runner);
  std::printf("    \"run_ssam_critical_value_fresh\": %.1f,\n",
              fresh_critical);
  std::printf("    \"run_ssam_critical_value_scratch\": %.1f,\n",
              reused_critical);
  std::printf("    \"run_msoa_10_rounds\": %.1f\n", msoa_allocs);
  std::printf("  }\n");
  std::printf("}\n");
  return 0;
}
