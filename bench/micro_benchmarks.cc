// Google-benchmark microbenchmarks for the performance-critical kernels:
// SSAM winner selection (Theorem 2's polynomial-time claim, paper Fig. 4b),
// the exact reference solvers, the simplex, the DES core, and the workload
// generator.
#include <benchmark/benchmark.h>

#include "auction/exact.h"
#include "auction/instance_gen.h"
#include "auction/local_search.h"
#include "auction/msoa.h"
#include "auction/ssam.h"
#include "common/rng.h"
#include "demand/estimator.h"
#include "des/simulator.h"
#include "edge/fair_share.h"
#include "lp/simplex.h"
#include "workload/generator.h"

namespace {

ecrs::auction::single_stage_instance make_instance(std::size_t sellers,
                                                   std::size_t demanders,
                                                   std::size_t bids) {
  ecrs::rng gen(42);
  ecrs::auction::instance_config cfg;
  cfg.sellers = sellers;
  cfg.demanders = demanders;
  cfg.bids_per_seller = bids;
  return ecrs::auction::random_instance(cfg, gen);
}

// Before/after pair: the original eager O(n²·m) selection scan vs the lazy
// heap that greedy_selection now routes through.
void BM_SsamSelectionEager(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)), 5, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecrs::auction::eager_greedy_selection(inst));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SsamSelectionEager)->RangeMultiplier(2)->Range(25, 400)->Complexity();

void BM_SsamSelectionLazy(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)), 5, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecrs::auction::greedy_selection(inst));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SsamSelectionLazy)->RangeMultiplier(2)->Range(25, 400)->Complexity();

// Selection-only under the full mechanism, per selection_mode: `automatic`
// resolves runner_up calls to the eager scan (the BENCH_pr2 regression fix),
// `lazy` forces the heap path the old default used. Same winners either way.
void BM_SsamRunnerUpAuto(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)), 5, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecrs::auction::run_ssam(inst));
  }
}
BENCHMARK(BM_SsamRunnerUpAuto)->Arg(100)->Arg(400);

void BM_SsamRunnerUpLazy(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)), 5, 2);
  ecrs::auction::ssam_options opts;
  opts.selection = ecrs::auction::selection_mode::lazy;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecrs::auction::run_ssam(inst, opts));
  }
}
BENCHMARK(BM_SsamRunnerUpLazy)->Arg(100)->Arg(400);

// Allocation-reuse pair: the same mechanism call with and without a
// persistent ssam_scratch (what msoa_session and the sweep engine thread
// through every call).
void BM_SsamFreshWorkspace(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)), 5, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecrs::auction::run_ssam(inst, {}, nullptr));
  }
}
BENCHMARK(BM_SsamFreshWorkspace)->Arg(100)->Arg(400);

void BM_SsamPersistentWorkspace(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)), 5, 2);
  ecrs::auction::ssam_scratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecrs::auction::run_ssam(inst, {}, &scratch));
  }
}
BENCHMARK(BM_SsamPersistentWorkspace)->Arg(100)->Arg(400);

void BM_LocalSearchImprovement(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)), 5, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecrs::auction::improve_selection(inst));
  }
}
BENCHMARK(BM_LocalSearchImprovement)->Arg(25)->Arg(100);

void BM_SsamFullMechanism(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)), 5, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecrs::auction::run_ssam(inst));
  }
}
BENCHMARK(BM_SsamFullMechanism)->Arg(25)->Arg(100)->Arg(400);

void BM_SsamCriticalValuePayments(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)), 3, 2);
  ecrs::auction::ssam_options opts;
  opts.rule = ecrs::auction::payment_rule::critical_value;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecrs::auction::run_ssam(inst, opts));
  }
}
BENCHMARK(BM_SsamCriticalValuePayments)->Arg(10)->Arg(25);

// Before/after pair for the full critical-value mechanism at the paper's
// largest single-round size (75 sellers × 5 bids): the legacy path (eager
// rescans, full probe auctions, serial payments) vs the current default
// (lazy heap, early-exit probes, parallel payments). Both runs are verified
// to produce identical winner sequences and payments (the bisection
// tolerance is shared) before timing starts.
const ecrs::auction::single_stage_instance& critical_value_75x5_instance() {
  static const auto inst = make_instance(75, 5, 5);
  return inst;
}

void verify_eager_lazy_equivalence(benchmark::State& state,
                                   const ecrs::auction::ssam_result& eager,
                                   const ecrs::auction::ssam_result& lazy) {
  if (eager.winners.size() != lazy.winners.size()) {
    state.SkipWithError("eager/lazy winner counts diverged");
    return;
  }
  for (std::size_t i = 0; i < eager.winners.size(); ++i) {
    if (eager.winners[i].bid_index != lazy.winners[i].bid_index ||
        eager.winners[i].payment != lazy.winners[i].payment) {
      state.SkipWithError("eager/lazy winners or payments diverged");
      return;
    }
  }
}

void BM_SsamCriticalValue75x5Eager(benchmark::State& state) {
  const auto& inst = critical_value_75x5_instance();
  ecrs::auction::ssam_options before;
  before.rule = ecrs::auction::payment_rule::critical_value;
  before.eager_reference = true;
  before.payment_threads = 1;
  ecrs::auction::ssam_options after;
  after.rule = ecrs::auction::payment_rule::critical_value;
  verify_eager_lazy_equivalence(state, ecrs::auction::run_ssam(inst, before),
                                ecrs::auction::run_ssam(inst, after));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecrs::auction::run_ssam(inst, before));
  }
}
BENCHMARK(BM_SsamCriticalValue75x5Eager);

void BM_SsamCriticalValue75x5Lazy(benchmark::State& state) {
  const auto& inst = critical_value_75x5_instance();
  ecrs::auction::ssam_options after;
  after.rule = ecrs::auction::payment_rule::critical_value;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecrs::auction::run_ssam(inst, after));
  }
}
BENCHMARK(BM_SsamCriticalValue75x5Lazy);

void BM_ExactDp(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)), 1, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecrs::auction::solve_exact(inst));
  }
}
BENCHMARK(BM_ExactDp)->Arg(10)->Arg(25)->Arg(50);

void BM_ExactBranchAndBound(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)), 4, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecrs::auction::solve_exact(inst));
  }
}
BENCHMARK(BM_ExactBranchAndBound)->Arg(8)->Arg(12);

void BM_LpBound(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)), 5, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecrs::auction::lp_bound(inst));
  }
}
BENCHMARK(BM_LpBound)->Arg(25)->Arg(75);

void BM_MsoaHorizon(benchmark::State& state) {
  ecrs::rng gen(7);
  ecrs::auction::online_config cfg;
  cfg.stage.sellers = 25;
  cfg.stage.demanders = 5;
  cfg.rounds = static_cast<std::size_t>(state.range(0));
  const auto inst = ecrs::auction::random_online_instance(cfg, gen);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecrs::auction::run_msoa(inst));
  }
}
BENCHMARK(BM_MsoaHorizon)->Arg(5)->Arg(10)->Arg(15);

void BM_SimplexRandomCover(benchmark::State& state) {
  ecrs::rng gen(3);
  ecrs::lp::model m;
  const auto vars = static_cast<std::size_t>(state.range(0));
  for (std::size_t v = 0; v < vars; ++v) {
    m.add_variable(gen.uniform_real(1.0, 10.0));
  }
  for (std::size_t r = 0; r < vars / 2; ++r) {
    std::vector<std::pair<std::size_t, double>> row;
    for (std::size_t v = 0; v < vars; ++v) {
      if (gen.bernoulli(0.3)) row.emplace_back(v, gen.uniform_real(0.5, 2.0));
    }
    if (row.empty()) row.emplace_back(0, 1.0);
    m.add_constraint(row, ecrs::lp::row_sense::ge, gen.uniform_real(1.0, 5.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecrs::lp::solve(m));
  }
}
BENCHMARK(BM_SimplexRandomCover)->Arg(50)->Arg(200);

void BM_DesEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    ecrs::des::simulator sim;
    ecrs::rng gen(1);
    for (int i = 0; i < 10000; ++i) {
      sim.schedule_at(gen.uniform_real(0.0, 1000.0), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.executed_events());
  }
}
BENCHMARK(BM_DesEventThroughput);

void BM_WorkloadRound(benchmark::State& state) {
  ecrs::workload::generator_config cfg;
  cfg.users = 300;
  cfg.microservices = 25;
  ecrs::workload::generator gen(cfg);
  double now = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.round(now, 600.0));
    now += 600.0;
  }
}
BENCHMARK(BM_WorkloadRound);

void BM_MaxMinFairShare(benchmark::State& state) {
  ecrs::rng gen(5);
  std::vector<double> demands(static_cast<std::size_t>(state.range(0)));
  for (double& d : demands) d = gen.uniform_real(0.0, 10.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecrs::edge::max_min_fair_share(demands, 100.0));
  }
}
BENCHMARK(BM_MaxMinFairShare)->Arg(10)->Arg(1000);

void BM_DemandEstimatorRound(benchmark::State& state) {
  ecrs::demand::estimator est(ecrs::demand::make_default_config());
  std::vector<ecrs::edge::round_stats> stats(25);
  for (std::size_t s = 0; s < stats.size(); ++s) {
    stats[s].microservice = static_cast<std::uint32_t>(s);
    stats[s].round = 1;
    stats[s].received = 100;
    stats[s].served = 90;
    stats[s].arrived_work = 100.0;
    stats[s].served_work = 90.0;
    stats[s].backlog_work = 10.0;
    stats[s].allocation = 1.0 + static_cast<double>(s);
    stats[s].utilization = 0.7;
    stats[s].cloud_population = 3;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.estimate_round(stats));
  }
}
BENCHMARK(BM_DemandEstimatorRound);

}  // namespace

BENCHMARK_MAIN();
