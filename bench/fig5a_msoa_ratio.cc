// Figure 5(a)/(b): MSOA performance ratio vs number of microservices and vs
// request load, for the four variants (MSOA, MSOA-DA, MSOA-RC, MSOA-OA).
// Denominator: certified offline LP lower bound. Paper shape: ratios
// slightly above SSAM's, decreasing with more microservices/requests;
// MSOA-DA (perfect demand estimation) below the noisy base.
#include "bench_util.h"

int main(int argc, char** argv) {
  const ecrs::flags f(argc, argv);
  const auto cfg = ecrs::bench::sweep_from_flags(f, 5);
  ecrs::bench::emit(
      f, "Figure 5(a): MSOA performance ratio vs #microservices",
      ecrs::harness::fig5a_msoa_ratio_vs_sellers(cfg));
  ecrs::bench::emit(f, "Figure 5(b): MSOA performance ratio vs request load",
                    ecrs::harness::fig5b_msoa_ratio_vs_requests(cfg));
  return 0;
}
