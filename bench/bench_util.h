// Shared scaffolding for the figure-reproduction bench binaries: flag
// parsing, table printing, and optional CSV export.
//
// Every binary accepts:
//   --trials=N   instances averaged per data point
//   --seed=N     master seed
//   --threads=N  sweep workers: 0 = hardware width, 1 = serial (tables are
//                byte-identical for every setting)
//   --csv=PATH   also write the table as CSV
#pragma once

#include <cstdio>
#include <string>

#include "common/flags.h"
#include "common/table.h"
#include "harness/experiments.h"

namespace ecrs::bench {

inline harness::sweep_config sweep_from_flags(const flags& f,
                                              std::size_t default_trials) {
  harness::sweep_config cfg;
  cfg.trials = static_cast<std::size_t>(
      f.get_int("trials", static_cast<long long>(default_trials)));
  cfg.seed = static_cast<std::uint64_t>(f.get_int("seed", 1));
  cfg.demanders =
      static_cast<std::size_t>(f.get_int("demanders", 5));
  cfg.threads = static_cast<std::size_t>(f.get_int("threads", 0));
  return cfg;
}

inline void emit(const flags& f, const std::string& title, const table& t) {
  std::printf("=== %s ===\n%s\n", title.c_str(), t.to_ascii().c_str());
  const std::string csv = f.get_string("csv", "");
  if (!csv.empty()) {
    t.write_csv(csv);
    std::printf("(wrote %s)\n", csv.c_str());
  }
}

}  // namespace ecrs::bench
