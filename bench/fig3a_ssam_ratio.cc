// Figure 3(a): SSAM performance ratio vs number of microservices, J ∈ {1,2}.
// Paper shape: ratio ≈ 1 for small instances with one bid per seller, and
// grows with both the seller count and the bids-per-seller count.
#include "bench_util.h"

int main(int argc, char** argv) {
  const ecrs::flags f(argc, argv);
  const auto cfg = ecrs::bench::sweep_from_flags(f, 10);
  ecrs::bench::emit(
      f, "Figure 3(a): SSAM performance ratio vs #microservices",
      ecrs::harness::fig3a_ssam_ratio(cfg));
  return 0;
}
