// Figure 4(a): per-winner payment vs actual bid price for one default
// auction round. Paper shape: every payment lies above its price
// (individual rationality).
#include "bench_util.h"

int main(int argc, char** argv) {
  const ecrs::flags f(argc, argv);
  const auto seed = static_cast<std::uint64_t>(f.get_int("seed", 1));
  const auto sellers = static_cast<std::size_t>(f.get_int("sellers", 25));
  ecrs::bench::emit(
      f, "Figure 4(a): payment vs actual price per winning bid",
      ecrs::harness::fig4a_individual_rationality(seed, sellers));
  return 0;
}
