// Before/after numbers for BENCH_pr4.json / BENCH_pr6.json: the compiled
// CSR instance layout (auction/compiled.h) and the MSOA warm-start cache
// vs. the PR 3 bid-vector path (ssam_options::legacy_reference), plus the
// PR 6 SIMD kernel micro-lanes and the allocation-free steady-state path.
//
// Workloads, all with critical-value payments on one thread:
//  - a standing-bid MSOA session (same bid vector every round, one demand
//    entry re-drawn per round) over T rounds with n bids: legacy per-round
//    path vs. compiled cold rounds (warm_start=false) vs. compiled +
//    warm-start patching;
//  - a single-shot run_ssam on the same stage size: legacy vs. compiled vs.
//    the allocation-free into-API on a pre-compiled view;
//  - the cost of compile() itself, and allocations per session horizon /
//    per steady-state critical-value call (expected 0.0);
//  - the three ecrs::simd kernels on synthetic wide rows, forced-scalar vs.
//    the best tier the CPU offers, with a bytes-touched/roofline report
//    against measured memcpy bandwidth (the indexed kernels are gather
//    bound, so "fraction of memcpy" is the honest ceiling).
// A bitwise checksum cross-check aborts if any variant diverges.
//
// Flags:
//   --trials=N    repeats per timing, mean/stddev reported (default 7)
//   --seed=N      master seed (default 1)
//   --threads=N   payment probe threads (default 1: the acceptance numbers
//                 isolate the layout, not the parallel fan-out)
//   --rounds=N    session horizon T (default 12)
//   --sellers=N   sellers, 2 bids each => n = 2N bids (default 110)
#include <cstdio>
#include <cstdlib>
#include <new>

#include <atomic>
#include <cmath>
#include <cstring>
#include <vector>

#include "auction/compiled.h"
#include "auction/instance_gen.h"
#include "auction/msoa.h"
#include "auction/online.h"
#include "auction/ssam.h"
#include "common/check.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/simd.h"
#include "common/stopwatch.h"

namespace {

// Process-wide allocation counter (same device as bench/sweep_scaling.cc):
// counter reads around a call give allocations per call.
std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

using namespace ecrs;
using namespace ecrs::auction;

std::uint64_t allocations_now() {
  return g_allocations.load(std::memory_order_relaxed);
}

struct timing {
  double mean_ns = 0.0;
  double stddev_ns = 0.0;
};

// Mean/stddev of fn()'s wall clock over `trials` runs (one warm-up first).
template <typename Fn>
timing time_ns(std::size_t trials, Fn&& fn) {
  fn();  // warm-up: page in code, grow buffers
  std::vector<double> samples;
  samples.reserve(trials);
  for (std::size_t t = 0; t < trials; ++t) {
    stopwatch clock;
    fn();
    samples.push_back(clock.elapsed_seconds() * 1e9);
  }
  timing out;
  for (double s : samples) out.mean_ns += s;
  out.mean_ns /= static_cast<double>(samples.size());
  for (double s : samples) {
    out.stddev_ns += (s - out.mean_ns) * (s - out.mean_ns);
  }
  out.stddev_ns = std::sqrt(out.stddev_ns / static_cast<double>(samples.size()));
  return out;
}

void print_result(const char* name, const timing& t, bool trailing_comma) {
  std::printf("    \"%s\": {\"mean_ns\": %.0f, \"stddev_ns\": %.0f}%s\n",
              name, t.mean_ns, t.stddev_ns, trailing_comma ? "," : "");
}

// The standing-bid horizon: the same bid vector every round; one demand
// entry is re-drawn per round so the warm path patches both prices (ψ) and
// requirements.
std::vector<single_stage_instance> make_rounds(const single_stage_instance& base,
                                               std::size_t rounds, rng& gen) {
  std::vector<single_stage_instance> out;
  out.reserve(rounds);
  single_stage_instance round = base;
  for (std::size_t t = 0; t < rounds; ++t) {
    if (t > 0) {
      const auto k = static_cast<std::size_t>(gen.uniform_int(
          0, static_cast<std::int64_t>(round.requirements.size()) - 1));
      round.requirements[k] = gen.uniform_int(
          base.requirements[k] / 2, base.requirements[k]);
    }
    out.push_back(round);
  }
  return out;
}

// One full session horizon; returns a bitwise-comparable checksum.
double run_session(const std::vector<seller_profile>& profiles,
                   const std::vector<single_stage_instance>& rounds,
                   const msoa_options& opts) {
  msoa_session session(profiles, opts);
  double checksum = 0.0;
  for (const auto& round : rounds) {
    const auto outcome = session.run_round(round);
    checksum += outcome.social_cost;
    for (double p : outcome.payments) checksum += p;
  }
  return checksum;
}

template <typename Fn>
double allocations_per_call(std::size_t calls, Fn&& fn) {
  fn();  // warm-up
  const std::uint64_t before = allocations_now();
  for (std::size_t c = 0; c < calls; ++c) fn();
  return static_cast<double>(allocations_now() - before) /
         static_cast<double>(calls);
}

// ------------------------------------------------------ SIMD kernel lanes

// Synthetic wide-row workload for the three ecrs::simd kernels: rows far
// above simd::kIndexedThreshold, stride-walked distinct indices (the gather
// pattern real CSR coverage rows produce once instances grow).
struct kernel_workload {
  std::vector<std::int64_t> vals;
  std::vector<std::int64_t> scratch;   // consume target, reset per call
  std::vector<std::uint32_t> idx;
  std::vector<double> price;
  std::vector<std::int64_t> util;
  std::vector<std::uint32_t> seller;
  std::vector<char> active;
  std::size_t row = 0;                 // indexed-row length
  std::size_t reps = 0;                // kernel calls per timed fn()
  std::int64_t bound = 0;
  std::int64_t sink = 0;               // defeats dead-code elimination

  explicit kernel_workload(rng& gen) {
    constexpr std::size_t kVals = std::size_t{1} << 16;
    row = 4096;
    reps = 64;
    bound = 24;
    vals.resize(kVals);
    for (auto& v : vals) v = gen.uniform_int(0, 48);
    scratch = vals;
    idx.resize(row * reps);
    for (std::size_t j = 0; j < idx.size(); ++j) {
      // Coprime stride walk: distinct within each row of `row` entries.
      idx[j] = static_cast<std::uint32_t>((j * 7919) % kVals);
    }
    const std::size_t n = row * 4;  // ratio_argmin candidate count
    price.resize(n);
    util.resize(n);
    seller.resize(n);
    active.assign(256, 1);
    for (std::size_t j = 0; j < n; ++j) {
      price[j] = gen.uniform_real(1.0, 40.0);
      util[j] = gen.uniform_int(0, 30);
      seller[j] = static_cast<std::uint32_t>(gen.uniform_int(0, 255));
    }
  }
};

timing time_sum_min(std::size_t trials, kernel_workload& w) {
  return time_ns(trials, [&] {
    for (std::size_t r = 0; r < w.reps; ++r) {
      w.sink += simd::sum_min_indexed(w.vals.data(), w.idx.data() + r * w.row,
                                      w.row, w.bound);
    }
  });
}

timing time_consume_min(std::size_t trials, kernel_workload& w) {
  return time_ns(trials, [&] {
    // The reset memcpy is part of both tiers' timed region (identical cost),
    // so the ratio between lanes still isolates the kernel.
    std::memcpy(w.scratch.data(), w.vals.data(),
                w.vals.size() * sizeof(w.vals[0]));
    for (std::size_t r = 0; r < w.reps; ++r) {
      w.sink += simd::consume_min_indexed(w.scratch.data(),
                                          w.idx.data() + r * w.row, w.row,
                                          w.bound);
    }
  });
}

timing time_ratio_argmin(std::size_t trials, kernel_workload& w) {
  return time_ns(trials, [&] {
    for (std::size_t r = 0; r < w.reps; ++r) {
      const simd::ratio_best best = simd::ratio_argmin(
          w.price.data(), w.util.data(), w.seller.data(), w.active.data(),
          w.price.size(), simd::kNoIndex, simd::kNoSeller);
      w.sink += static_cast<std::int64_t>(best.index);
    }
  });
}

// Streaming-copy bandwidth of this machine: the roofline the kernel lanes
// are reported against.
double memcpy_gb_per_s(std::size_t trials) {
  constexpr std::size_t kBytes = std::size_t{16} << 20;
  std::vector<std::byte> src(kBytes), dst(kBytes);
  std::memset(src.data(), 0x5a, kBytes);
  const timing t = time_ns(trials, [&] {
    std::memcpy(dst.data(), src.data(), kBytes);
  });
  // 2x: a copy streams kBytes in and kBytes out.
  return 2.0 * static_cast<double>(kBytes) / t.mean_ns;
}

void print_roofline_lane(const char* name, double bytes_per_call,
                         const timing& t, double memcpy_gbs,
                         bool trailing_comma) {
  const double gbs = bytes_per_call / t.mean_ns;  // bytes/ns == GB/s
  std::printf("    \"%s\": {\"bytes_touched\": %.0f, \"gb_per_s\": %.2f, "
              "\"fraction_of_memcpy\": %.2f}%s\n",
              name, bytes_per_call, gbs, gbs / memcpy_gbs,
              trailing_comma ? "," : "");
}

}  // namespace

int main(int argc, char** argv) {
  const flags f(argc, argv);
  const auto trials = static_cast<std::size_t>(f.get_int("trials", 7));
  const auto seed = static_cast<std::uint64_t>(f.get_int("seed", 1));
  const auto threads = static_cast<std::size_t>(f.get_int("threads", 1));
  const auto rounds = static_cast<std::size_t>(f.get_int("rounds", 12));
  const auto sellers = static_cast<std::size_t>(f.get_int("sellers", 110));

  rng gen(seed);
  instance_config cfg;
  cfg.sellers = sellers;
  cfg.demanders = 5;
  cfg.bids_per_seller = 2;  // n = 2 * sellers bids
  const auto base = random_instance(cfg, gen);
  const auto round_instances = make_rounds(base, rounds, gen);

  seller_id max_seller = 0;
  for (const bid& b : base.bids) {
    if (b.seller > max_seller) max_seller = b.seller;
  }
  std::vector<seller_profile> profiles(max_seller + 1);
  for (auto& p : profiles) {
    p.capacity = 1000000;  // ample: admission is stable, warm-start stays on
    p.t_arrive = 1;
    p.t_depart = static_cast<std::uint32_t>(rounds);
  }

  msoa_options warm_opts;
  warm_opts.stage.rule = payment_rule::critical_value;
  warm_opts.stage.payment_threads = threads;
  warm_opts.stage.self_audit = false;
  msoa_options cold_opts = warm_opts;
  cold_opts.warm_start = false;
  msoa_options legacy_opts = warm_opts;
  legacy_opts.stage.legacy_reference = true;

  // Bitwise cross-check before timing anything.
  const double check_warm = run_session(profiles, round_instances, warm_opts);
  const double check_cold = run_session(profiles, round_instances, cold_opts);
  const double check_legacy =
      run_session(profiles, round_instances, legacy_opts);
  ECRS_CHECK_MSG(check_warm == check_cold && check_warm == check_legacy,
                 "session variants diverged: warm " << check_warm << " cold "
                     << check_cold << " legacy " << check_legacy);
  {
    msoa_session probe(profiles, warm_opts);
    for (const auto& round : round_instances) (void)probe.run_round(round);
    ECRS_CHECK_MSG(probe.warm_rounds() == rounds - 1,
                   "warm-start did not engage: " << probe.warm_rounds()
                       << " of " << rounds - 1 << " rounds warm");
  }

  const timing session_legacy = time_ns(trials, [&] {
    (void)run_session(profiles, round_instances, legacy_opts);
  });
  const timing session_cold = time_ns(trials, [&] {
    (void)run_session(profiles, round_instances, cold_opts);
  });
  const timing session_warm = time_ns(trials, [&] {
    (void)run_session(profiles, round_instances, warm_opts);
  });

  // Single-shot run_ssam on the same stage size.
  ssam_options stage_legacy;
  stage_legacy.rule = payment_rule::critical_value;
  stage_legacy.payment_threads = threads;
  stage_legacy.self_audit = false;
  stage_legacy.legacy_reference = true;
  ssam_options stage_compiled = stage_legacy;
  stage_compiled.legacy_reference = false;

  ssam_scratch scratch;
  const timing single_legacy = time_ns(trials, [&] {
    (void)run_ssam(base, stage_legacy, &scratch);
  });
  const timing single_compiled = time_ns(trials, [&] {
    (void)run_ssam(base, stage_compiled, &scratch);
  });

  // compile() itself (the cost a warm round avoids, besides validate/copy).
  compiled_instance compiled;
  const timing compile_cost = time_ns(trials, [&] {
    compiled.compile(base);
  });

  // The allocation-free steady state: pre-compiled view + into-API +
  // serial payments, result vectors reused across calls.
  ssam_result into_result;
  const timing single_into = time_ns(trials, [&] {
    run_ssam(compiled, stage_compiled, &scratch, into_result);
  });
  {
    const ssam_result check = run_ssam(base, stage_compiled, &scratch);
    ECRS_CHECK_MSG(check.total_payment == into_result.total_payment &&
                       check.winners.size() == into_result.winners.size(),
                   "into-API diverged from the value overload");
  }

  const double allocs_cold = allocations_per_call(5, [&] {
    (void)run_session(profiles, round_instances, cold_opts);
  });
  const double allocs_warm = allocations_per_call(5, [&] {
    (void)run_session(profiles, round_instances, warm_opts);
  });
  const double allocs_into = allocations_per_call(20, [&] {
    run_ssam(compiled, stage_compiled, &scratch, into_result);
  });

  // SIMD kernel micro-lanes: forced scalar vs. the best tier available.
  rng kernel_gen(seed ^ 0x51D0ull);
  kernel_workload kernels(kernel_gen);
  const simd::level best_tier = simd::max_supported();
  simd::force(simd::level::scalar);
  const timing sum_scalar = time_sum_min(trials, kernels);
  const timing consume_scalar = time_consume_min(trials, kernels);
  const timing ratio_scalar = time_ratio_argmin(trials, kernels);
  simd::force(best_tier);
  const timing sum_simd = time_sum_min(trials, kernels);
  const timing consume_simd = time_consume_min(trials, kernels);
  const timing ratio_simd = time_ratio_argmin(trials, kernels);
  ECRS_CHECK_MSG(kernels.sink != 0, "kernel sink optimized away");

  const double memcpy_gbs = memcpy_gb_per_s(trials);
  const double calls_per_fn = static_cast<double>(kernels.reps);
  // Bytes each kernel call streams: the indexed kernels gather 8B values
  // through 4B indices (consume writes the value back), ratio_argmin reads
  // 8B price + 8B util + 4B seller (+1B liveness) per candidate.
  const double sum_bytes = calls_per_fn *
      static_cast<double>(kernels.row) * (8.0 + 4.0);
  const double consume_bytes = calls_per_fn *
      static_cast<double>(kernels.row) * (8.0 + 8.0 + 4.0);
  const double ratio_bytes = calls_per_fn *
      static_cast<double>(kernels.price.size()) * (8.0 + 8.0 + 4.0 + 1.0);

  std::printf("{\n");
  std::printf("  \"config\": {\"trials\": %zu, \"seed\": %llu, "
              "\"threads\": %zu, \"rounds\": %zu, \"bids\": %zu, "
              "\"demanders\": %zu},\n",
              trials, static_cast<unsigned long long>(seed), threads, rounds,
              base.bids.size(), base.requirements.size());
  std::printf("  \"bit_identical\": true,\n");
  std::printf("  \"simd_tier\": \"%s\",\n", simd::to_string(best_tier));
  std::printf("  \"results_ns_mean\": {\n");
  print_result("MsoaSessionCriticalLegacy", session_legacy, true);
  print_result("MsoaSessionCriticalCold", session_cold, true);
  print_result("MsoaSessionCriticalWarm", session_warm, true);
  print_result("SsamCriticalValueLegacy", single_legacy, true);
  print_result("SsamCriticalValueCompiled", single_compiled, true);
  print_result("SsamCriticalValueCompiledInto", single_into, true);
  print_result("CompileInstance", compile_cost, true);
  print_result("KernelSumMinScalar", sum_scalar, true);
  print_result("KernelSumMinSimd", sum_simd, true);
  print_result("KernelConsumeMinScalar", consume_scalar, true);
  print_result("KernelConsumeMinSimd", consume_simd, true);
  print_result("KernelRatioArgminScalar", ratio_scalar, true);
  print_result("KernelRatioArgminSimd", ratio_simd, false);
  std::printf("  },\n");
  std::printf("  \"allocations_per_session\": {\"cold\": %.1f, "
              "\"warm\": %.1f},\n",
              allocs_cold, allocs_warm);
  std::printf("  \"allocations_per_critical_value_call\": %.1f,\n",
              allocs_into);
  std::printf("  \"roofline\": {\n");
  std::printf("    \"memcpy_gb_per_s\": %.2f,\n", memcpy_gbs);
  print_roofline_lane("KernelSumMinSimd", sum_bytes, sum_simd, memcpy_gbs,
                      true);
  print_roofline_lane("KernelConsumeMinSimd", consume_bytes, consume_simd,
                      memcpy_gbs, true);
  print_roofline_lane("KernelRatioArgminSimd", ratio_bytes, ratio_simd,
                      memcpy_gbs, false);
  std::printf("  },\n");
  std::printf("  \"speedups\": {\n");
  std::printf("    \"session_warm_over_legacy\": %.2f,\n",
              session_legacy.mean_ns / session_warm.mean_ns);
  std::printf("    \"session_warm_over_cold\": %.2f,\n",
              session_cold.mean_ns / session_warm.mean_ns);
  std::printf("    \"single_compiled_over_legacy\": %.2f,\n",
              single_legacy.mean_ns / single_compiled.mean_ns);
  std::printf("    \"kernel_sum_min_simd_over_scalar\": %.2f,\n",
              sum_scalar.mean_ns / sum_simd.mean_ns);
  std::printf("    \"kernel_consume_min_simd_over_scalar\": %.2f,\n",
              consume_scalar.mean_ns / consume_simd.mean_ns);
  std::printf("    \"kernel_ratio_argmin_simd_over_scalar\": %.2f\n",
              ratio_scalar.mean_ns / ratio_simd.mean_ns);
  std::printf("  }\n");
  std::printf("}\n");
  return 0;
}
