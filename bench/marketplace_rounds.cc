// Sharded multi-region marketplace horizon (DESIGN.md section 12): one
// row per round with social cost, payments, spillover traffic, and unmet
// demand. The table is byte-identical for every --threads setting
// (tests/market_test.cc enforces it).
//
// Flags beyond the common set: --regions, --rounds, --sellers and
// --demanders (per region), --scale (demand scale in percent, 125 = 1.25).
#include "bench_util.h"

int main(int argc, char** argv) {
  const ecrs::flags f(argc, argv);
  ecrs::harness::marketplace_config cfg;
  cfg.regions = static_cast<std::uint32_t>(f.get_int("regions", 10));
  cfg.rounds = static_cast<std::size_t>(f.get_int("rounds", 5));
  cfg.sellers_per_region =
      static_cast<std::size_t>(f.get_int("sellers", 8));
  cfg.demanders_per_region =
      static_cast<std::size_t>(f.get_int("demanders", 4));
  cfg.demand_scale =
      static_cast<double>(f.get_int("scale", 125)) / 100.0;
  cfg.seed = static_cast<std::uint64_t>(f.get_int("seed", 1));
  cfg.threads = static_cast<std::size_t>(f.get_int("threads", 0));
  ecrs::bench::emit(f, "Sharded marketplace rounds with spillover",
                    ecrs::harness::marketplace_rounds(cfg));
  return 0;
}
