// Sharded multi-region marketplace horizon (DESIGN.md section 12): one
// row per round with social cost, payments, spillover traffic, and unmet
// demand. The base table is byte-identical for every --threads setting
// (tests/market_test.cc enforces it).
//
// Flags beyond the common set: --regions, --rounds, --sellers and
// --demanders (per region), --scale (demand scale in percent, 125 = 1.25),
// --streaming (1 = workload-stream ingestion via market::round_ingestor),
// --users (stream width), --unit_demand (percent: resource-seconds per
// requirement unit, 400 = 4.0), and --perf (1 = append the machine-
// dependent allocs_per_round / spill_assembly_ms columns).
#include <atomic>
#include <cstdlib>
#include <new>

#include "bench_util.h"

namespace {

// Process-wide allocation counter: every operator new in the binary bumps
// it. The harness samples it around each round for the --perf column.
std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

std::uint64_t allocations_now() {
  return g_allocations.load(std::memory_order_relaxed);
}

}  // namespace

int main(int argc, char** argv) {
  const ecrs::flags f(argc, argv);
  ecrs::harness::marketplace_config cfg;
  cfg.regions = static_cast<std::uint32_t>(f.get_int("regions", 10));
  cfg.rounds = static_cast<std::size_t>(f.get_int("rounds", 5));
  cfg.sellers_per_region =
      static_cast<std::size_t>(f.get_int("sellers", 8));
  cfg.demanders_per_region =
      static_cast<std::size_t>(f.get_int("demanders", 4));
  cfg.demand_scale =
      static_cast<double>(f.get_int("scale", 125)) / 100.0;
  cfg.seed = static_cast<std::uint64_t>(f.get_int("seed", 1));
  cfg.threads = static_cast<std::size_t>(f.get_int("threads", 0));
  cfg.streaming = f.get_int("streaming", 0) != 0;
  cfg.users = static_cast<std::uint32_t>(f.get_int("users", 300));
  cfg.unit_demand =
      static_cast<double>(f.get_int("unit_demand", 400)) / 100.0;
  cfg.perf_columns = f.get_int("perf", 0) != 0;
  cfg.alloc_count = allocations_now;
  ecrs::bench::emit(f, "Sharded marketplace rounds with spillover",
                    ecrs::harness::marketplace_rounds(cfg));
  return 0;
}
