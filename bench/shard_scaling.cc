// Shard-scaling numbers for BENCH_pr8.json: wall-clock of whole marketplace
// horizons run sharded-serial vs sharded-parallel, the spillover stage's
// approximate marginal cost (demand over-scaled vs locally satisfiable),
// and a mailbox churn micro-lane (the one lane stable enough to gate in
// CI; the end-to-end lanes ride along via bench_compare --allow).
//
// The binary is also the byte-identity cross-check: every serial round is
// digested (winners, payments bit patterns, spillover awards, grants) and
// compared against the parallel run; a mismatch exits nonzero BEFORE any
// timing is reported, so the determinism acceptance gate holds on any
// host, including single-core runners where the speedup itself is ~1x.
//
// Flags:
//   --regions=N   edge cloud regions / shards (default 100)
//   --rounds=N    marketplace rounds per horizon (default 3)
//   --sellers=N   sellers per region (default 8)
//   --demanders=N demanding microservices per region (default 4)
//   --scale=F     post-clamp demand multiplier x100, e.g. 125 = 1.25
//                 (default 125; > 100 leaves work for spillover)
//   --threads=N   parallel-lane worker cap (default 0 = hardware width)
//   --repeats=N   timing repeats per lane, mean reported (default 3)
//   --seed=N      master seed (default 1)
#include <bit>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "auction/instance_gen.h"
#include "common/flags.h"
#include "common/stopwatch.h"
#include "edge/topology.h"
#include "harness/internal.h"
#include "market/marketplace.h"

namespace {

using ecrs::market::marketplace;
using ecrs::market::marketplace_options;
using ecrs::market::marketplace_round;

struct market_setup {
  ecrs::auction::regional_online_instance input;
  std::vector<ecrs::auction::regional_instance> rounds;  // by round index
};

market_setup build_setup(std::size_t regions, std::size_t rounds,
                         std::size_t sellers, std::size_t demanders,
                         double scale, std::uint64_t seed) {
  ecrs::auction::online_config stage;
  stage.stage = ecrs::harness::internal::paper_stage(sellers, demanders, 2);
  stage.rounds = rounds;
  ecrs::auction::regional_config regional;
  regional.regions = regions;
  regional.demand_scale = scale;
  ecrs::rng gen = ecrs::harness::internal::point_rng(seed, 12, 0, 0);
  market_setup setup;
  setup.input =
      ecrs::auction::random_regional_online_instance(stage, regional, gen);
  setup.rounds.resize(rounds);
  for (std::size_t t = 0; t < rounds; ++t) {
    setup.rounds[t].regions.resize(regions);
    for (std::size_t r = 0; r < regions; ++r) {
      setup.rounds[t].regions[r] = setup.input.regions[r].rounds[t];
    }
  }
  return setup;
}

std::vector<std::vector<ecrs::auction::seller_profile>> sellers_of(
    const market_setup& setup) {
  std::vector<std::vector<ecrs::auction::seller_profile>> sellers;
  sellers.reserve(setup.input.region_count());
  for (const auto& region : setup.input.regions) {
    sellers.push_back(region.sellers);
  }
  return sellers;
}

// Exact byte-level digest of everything a round decided: winner indices,
// payment/price bit patterns, spillover awards and accounting. Two digests
// are equal iff the runs are byte-identical in market terms.
void digest_round(const marketplace_round& round,
                  std::vector<std::uint64_t>& out) {
  const auto push_double = [&](double v) {
    out.push_back(std::bit_cast<std::uint64_t>(v));
  };
  out.push_back(round.round);
  for (const auto& shard : round.shards) {
    out.push_back(shard.outcome.winner_bids.size());
    for (const std::size_t w : shard.outcome.winner_bids) out.push_back(w);
    for (const double p : shard.outcome.payments) push_double(p);
    for (const double p : shard.outcome.true_prices) push_double(p);
    push_double(shard.outcome.social_cost);
    out.push_back(static_cast<std::uint64_t>(shard.deficit));
  }
  out.push_back(round.spillover.awards.size());
  for (const auto& award : round.spillover.awards) {
    out.push_back(award.demand_region);
    out.push_back(award.helper_region);
    out.push_back(award.seller);
    out.push_back(award.bid_index);
    for (const auto k : award.covered) out.push_back(k);
    out.push_back(static_cast<std::uint64_t>(award.amount));
    push_double(award.ask);
    push_double(award.payment);
  }
  out.push_back(static_cast<std::uint64_t>(round.unmet_units));
  push_double(round.social_cost);
  push_double(round.total_payment);
}

// Run a whole horizon; returns wall-clock ms and appends the digest.
double run_horizon(const market_setup& setup, const ecrs::edge::topology& topo,
                   std::size_t threads, std::vector<std::uint64_t>* digest) {
  marketplace_options options;
  options.threads = threads;
  options.shard.session.stage.payment_threads = 1;
  options.spillover.stage.payment_threads = 1;
  ecrs::stopwatch clock;
  marketplace mkt(topo, sellers_of(setup), options);
  marketplace_round result;
  for (const auto& round : setup.rounds) {
    mkt.run_round(round, result);
    if (digest != nullptr) digest_round(result, *digest);
  }
  return clock.elapsed_ms();
}

template <typename Fn>
double mean_ms(std::size_t repeats, Fn&& fn) {
  double total = 0.0;
  for (std::size_t r = 0; r < repeats; ++r) total += fn();
  return total / static_cast<double>(repeats);
}

void print_lane(const char* name, double ms, bool trailing_comma) {
  std::printf("    \"%s\": {\"mean_ns\": %.0f}%s\n", name, ms * 1e6,
              trailing_comma ? "," : "");
}

}  // namespace

int main(int argc, char** argv) {
  const ecrs::flags f(argc, argv);
  const auto regions = static_cast<std::size_t>(f.get_int("regions", 100));
  const auto rounds = static_cast<std::size_t>(f.get_int("rounds", 3));
  const auto sellers = static_cast<std::size_t>(f.get_int("sellers", 8));
  const auto demanders = static_cast<std::size_t>(f.get_int("demanders", 4));
  const double scale =
      static_cast<double>(f.get_int("scale", 125)) / 100.0;
  const auto threads = static_cast<std::size_t>(f.get_int("threads", 0));
  const auto repeats = static_cast<std::size_t>(f.get_int("repeats", 3));
  const auto seed = static_cast<std::uint64_t>(f.get_int("seed", 1));

  const market_setup setup =
      build_setup(regions, rounds, sellers, demanders, scale, seed);
  ecrs::edge::topology topo =
      ecrs::edge::topology::ring(static_cast<std::uint32_t>(regions));

  // ---- byte-identity gate (before any timing) -----------------------------
  std::vector<std::uint64_t> serial_digest;
  std::vector<std::uint64_t> parallel_digest;
  (void)run_horizon(setup, topo, 1, &serial_digest);
  (void)run_horizon(setup, topo, threads, &parallel_digest);
  const bool identical = serial_digest == parallel_digest;
  if (!identical) {
    std::fprintf(stderr,
                 "shard_scaling: serial and parallel digests differ "
                 "(%zu vs %zu words) — determinism broken\n",
                 serial_digest.size(), parallel_digest.size());
    return 1;
  }

  // ---- wall clock ---------------------------------------------------------
  const double serial_ms = mean_ms(
      repeats, [&] { return run_horizon(setup, topo, 1, nullptr); });
  const double parallel_ms = mean_ms(
      repeats, [&] { return run_horizon(setup, topo, threads, nullptr); });

  // Spillover marginal cost (approximate): the same market with demand
  // clamped to local supply (scale 1.0) never posts a spill request, so
  // the wall-clock delta against the over-scaled serial lane is the cost
  // of the re-auctions plus the slightly heavier local rounds.
  const market_setup no_spill =
      build_setup(regions, rounds, sellers, demanders, 1.0, seed);
  const double no_spill_ms = mean_ms(
      repeats, [&] { return run_horizon(no_spill, topo, 1, nullptr); });

  // ---- mailbox churn micro-lane (the CI-stable lane) ----------------------
  constexpr std::size_t kChurnMessages = 200000;
  const double churn_ms = mean_ms(repeats, [&] {
    ecrs::market::post_office po(static_cast<std::uint32_t>(regions));
    ecrs::stopwatch clock;
    std::size_t delivered = 0;
    for (std::size_t batch = 0; batch < 4; ++batch) {
      for (std::size_t i = 0; i < kChurnMessages / 4; ++i) {
        ecrs::market::message m;
        m.type = ecrs::market::message::kind::spill_grant;
        m.from = static_cast<std::uint32_t>(i % regions);
        m.to = static_cast<std::uint32_t>((i * 7) % regions);
        m.seller = static_cast<std::uint32_t>(i);
        m.weight = 1;
        po.post(std::move(m));
      }
      po.drain([&](const ecrs::market::message&) { ++delivered; });
    }
    if (delivered != kChurnMessages) std::abort();
    return clock.elapsed_ms();
  });

  std::printf("{\n");
  std::printf("  \"config\": {\"regions\": %zu, \"rounds\": %zu, "
              "\"sellers_per_region\": %zu, \"demanders_per_region\": %zu, "
              "\"demand_scale\": %.2f, \"threads\": %zu, \"repeats\": %zu, "
              "\"seed\": %llu, \"hardware_concurrency\": %u},\n",
              regions, rounds, sellers, demanders, scale, threads, repeats,
              static_cast<unsigned long long>(seed),
              std::thread::hardware_concurrency());
  std::printf("  \"bit_identical\": %s,\n", identical ? "true" : "false");
  std::printf("  \"results_ns_mean\": {\n");
  print_lane("MarketHorizonShardedSerial", serial_ms, true);
  print_lane("MarketHorizonShardedParallel", parallel_ms, true);
  print_lane("MarketHorizonNoSpillSerial", no_spill_ms, true);
  print_lane("MailboxChurn", churn_ms, false);
  std::printf("  },\n");
  std::printf("  \"speedups\": {\"parallel_over_serial\": %.2f},\n",
              parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0);
  std::printf("  \"spillover_marginal_ms\": %.2f\n",
              serial_ms - no_spill_ms);
  std::printf("}\n");
  return 0;
}
