// Shard-scaling numbers for BENCH_pr9.json: wall-clock of whole marketplace
// horizons run sharded-serial vs sharded-parallel (batch and streaming
// demand paths), the spillover stage's approximate marginal cost, the
// streaming-vs-PR-8 ingestion comparison, and a mailbox churn micro-lane.
//
// The binary is also the byte-identity cross-check, run BEFORE any timing:
//  - batch path: serial vs parallel digests (winners, payment bit
//    patterns, spillover awards, grants) must match;
//  - streaming path: serial vs parallel digests must match, AND the
//    streamed horizon must digest identically to the same request stream
//    pushed through the PR 8 ingestion path (materialize the global
//    instance, region_map::partition it) — proving the round_ingestor is
//    a pure optimization.
// Any mismatch exits nonzero, so the determinism acceptance gate holds on
// any host, including single-core runners where the speedup itself is ~1x.
//
// Streaming lanes time accumulate + finalize + marketplace rounds; request
// generation is excluded (it is the workload model, not the market).
// IngestStreamRound / IngestPartitionRound isolate the path-specific
// per-round "accumulated demand -> per-region instances" step — in-place
// quantization into standing instances vs PR 8's materialize-the-global-
// instance-and-partition; DemandAccumulateRound is the demand-model cost
// (batch summation) identical on both paths. When the stream carries >= 1M total
// demanders the MarketHorizon1M lane is emitted (same value as
// MarketHorizonStreamParallel) together with allocations-per-round and
// RSS columns.
//
// Flags:
//   --regions=N     edge cloud regions / shards (default 100)
//   --rounds=N      marketplace rounds per horizon (default 3)
//   --sellers=N     sellers per region (default 8)
//   --demanders=N   demanding microservices per region, batch path
//                   (default 4)
//   --scale=F       post-clamp demand multiplier x100, e.g. 125 = 1.25
//                   (default 125; > 100 leaves work for spillover)
//   --stream_demanders=N  demanders per region on the streaming path
//                   (default = --demanders; 100 regions x 10000 = the 1M
//                   lane)
//   --users=N       workload stream width (default 0 = one expected
//                   request per demander)
//   --unit_demand=F accumulated resource-seconds per requirement unit,
//                   x100 (default 400 = 4.0)
//   --threads=N     parallel-lane worker cap (default 0 = hardware width)
//   --repeats=N     timing repeats per lane, mean reported (default 3)
//   --seed=N        master seed (default 1)
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#if defined(__unix__)
#include <sys/resource.h>
#endif

#include "auction/instance_gen.h"
#include "common/flags.h"
#include "common/stopwatch.h"
#include "edge/topology.h"
#include "harness/internal.h"
#include "market/ingest.h"
#include "market/marketplace.h"
#include "market/region_map.h"
#include "workload/generator.h"

namespace {

// Process-wide allocation counter: every operator new in the binary bumps
// it. Counter reads around a round give allocations per round.
std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

using ecrs::market::marketplace;
using ecrs::market::marketplace_options;
using ecrs::market::marketplace_round;

std::uint64_t allocations_now() {
  return g_allocations.load(std::memory_order_relaxed);
}

// Process peak RSS (MB); 0 when the platform has no getrusage.
double peak_rss_mb() {
#if defined(__unix__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    // Linux reports ru_maxrss in KiB.
    return static_cast<double>(usage.ru_maxrss) / 1024.0;
  }
#endif
  return 0.0;
}

struct market_setup {
  ecrs::auction::regional_online_instance input;
  std::vector<ecrs::auction::regional_instance> rounds;  // by round index
};

market_setup build_setup(std::size_t regions, std::size_t rounds,
                         std::size_t sellers, std::size_t demanders,
                         double scale, std::uint64_t seed) {
  ecrs::auction::online_config stage;
  stage.stage = ecrs::harness::internal::paper_stage(sellers, demanders, 2);
  stage.rounds = rounds;
  ecrs::auction::regional_config regional;
  regional.regions = regions;
  regional.demand_scale = scale;
  ecrs::rng gen = ecrs::harness::internal::point_rng(seed, 12, 0, 0);
  market_setup setup;
  setup.input =
      ecrs::auction::random_regional_online_instance(stage, regional, gen);
  setup.rounds.resize(rounds);
  for (std::size_t t = 0; t < rounds; ++t) {
    setup.rounds[t].regions.resize(regions);
    for (std::size_t r = 0; r < regions; ++r) {
      setup.rounds[t].regions[r] = setup.input.regions[r].rounds[t];
    }
  }
  return setup;
}

std::vector<std::vector<ecrs::auction::seller_profile>> sellers_of(
    const ecrs::auction::regional_online_instance& input) {
  std::vector<std::vector<ecrs::auction::seller_profile>> sellers;
  sellers.reserve(input.region_count());
  for (const auto& region : input.regions) {
    sellers.push_back(region.sellers);
  }
  return sellers;
}

// Exact byte-level digest of everything a round decided: winner indices,
// payment/price bit patterns, spillover awards and accounting. Two digests
// are equal iff the runs are byte-identical in market terms.
void digest_round(const marketplace_round& round,
                  std::vector<std::uint64_t>& out) {
  const auto push_double = [&](double v) {
    out.push_back(std::bit_cast<std::uint64_t>(v));
  };
  out.push_back(round.round);
  for (const auto& shard : round.shards) {
    out.push_back(shard.outcome.winner_bids.size());
    for (const std::size_t w : shard.outcome.winner_bids) out.push_back(w);
    for (const double p : shard.outcome.payments) push_double(p);
    for (const double p : shard.outcome.true_prices) push_double(p);
    push_double(shard.outcome.social_cost);
    out.push_back(static_cast<std::uint64_t>(shard.deficit));
  }
  out.push_back(round.spillover.awards.size());
  for (const auto& award : round.spillover.awards) {
    out.push_back(award.demand_region);
    out.push_back(award.helper_region);
    out.push_back(award.seller);
    out.push_back(award.bid_index);
    for (const auto k : award.covered) out.push_back(k);
    out.push_back(static_cast<std::uint64_t>(award.amount));
    push_double(award.ask);
    push_double(award.payment);
  }
  out.push_back(static_cast<std::uint64_t>(round.unmet_units));
  push_double(round.social_cost);
  push_double(round.total_payment);
}

marketplace_options market_options(std::size_t threads) {
  marketplace_options options;
  options.threads = threads;
  options.shard.session.stage.payment_threads = 1;
  options.spillover.stage.payment_threads = 1;
  return options;
}

// Run a whole batch-path horizon; returns wall-clock ms, appends digest.
double run_horizon(const market_setup& setup, const ecrs::edge::topology& topo,
                   std::size_t threads, std::vector<std::uint64_t>* digest) {
  ecrs::stopwatch clock;
  marketplace mkt(topo, sellers_of(setup.input), market_options(threads));
  marketplace_round result;
  for (const auto& round : setup.rounds) {
    mkt.run_round(round, result);
    if (digest != nullptr) digest_round(result, *digest);
  }
  return clock.elapsed_ms();
}

// ---- streaming path -------------------------------------------------------

struct stream_setup {
  ecrs::auction::regional_online_instance input;  // sellers + round-1 bids
  ecrs::market::ingest_config icfg;               // threads set per run
  ecrs::workload::generator_config wcfg;
  std::size_t rounds = 0;
};

ecrs::auction::regional_instance standing_of(const stream_setup& setup) {
  ecrs::auction::regional_instance standing;
  standing.regions.reserve(setup.input.region_count());
  for (const auto& region : setup.input.regions) {
    standing.regions.push_back(region.rounds.front());
  }
  return standing;
}

stream_setup build_stream_setup(std::size_t regions, std::size_t rounds,
                                std::size_t sellers, std::size_t demanders,
                                std::size_t users, double unit_demand,
                                double scale, std::uint64_t seed) {
  ecrs::auction::online_config stage;
  stage.stage = ecrs::harness::internal::paper_stage(sellers, demanders, 2);
  // Large regions: cap per-bid coverage at an absolute count so bid sizes
  // (and per-bid supply) stay comparable across scales.
  if (demanders > 100) stage.stage.max_coverage = 50;
  stage.rounds = 1;  // only the standing (round 1) bid sets are used
  ecrs::auction::regional_config regional;
  regional.regions = regions;
  ecrs::rng gen = ecrs::harness::internal::point_rng(seed, 12, 1, 0);

  stream_setup setup;
  setup.rounds = rounds;
  setup.input =
      ecrs::auction::random_regional_online_instance(stage, regional, gen);
  setup.icfg.regions = static_cast<std::uint32_t>(regions);
  setup.icfg.microservices = static_cast<std::uint32_t>(regions * demanders);
  setup.icfg.unit_demand = unit_demand;
  setup.icfg.max_requirement = stage.stage.requirement_hi;
  setup.icfg.supply_margin = stage.stage.supply_margin;
  setup.icfg.demand_scale = scale;
  setup.wcfg.users = static_cast<std::uint32_t>(
      users > 0 ? users : regions * demanders / 15 + 1);
  setup.wcfg.microservices = setup.icfg.microservices;
  setup.wcfg.regions = setup.icfg.regions;
  setup.wcfg.seed = seed;
  return setup;
}

struct stream_run {
  // Per-horizon sums. accumulate_ms is the demand-model cost (summing the
  // request batch into per-microservice accumulators) — identical work on
  // both ingestion paths; ingest_ms is the path-specific "accumulated
  // demand -> per-region instances" step the PR swapped out.
  double accumulate_ms = 0.0;
  double ingest_ms = 0.0;
  double market_ms = 0.0;  // summed run_round wall time
  std::uint64_t first_round_allocs = 0;
  std::uint64_t min_warm_allocs = 0;  // min allocs/round after round 1
  [[nodiscard]] double total_ms() const {
    return accumulate_ms + ingest_ms + market_ms;
  }
};

// Run a streamed horizon: per round, generate the request batch (untimed),
// accumulate it (accumulate_ms), finalize the per-region instances
// (ingest_ms) and run the marketplace round (market_ms). Allocation counts
// bracket accumulate + finalize + round.
stream_run run_stream_horizon(const stream_setup& setup,
                              const ecrs::edge::topology& topo,
                              std::size_t threads,
                              std::vector<std::uint64_t>* digest) {
  marketplace mkt(topo, sellers_of(setup.input), market_options(threads));
  ecrs::market::ingest_config icfg = setup.icfg;
  icfg.threads = threads;
  ecrs::market::round_ingestor ingestor(icfg, standing_of(setup));
  ecrs::workload::generator gen(setup.wcfg);
  std::vector<ecrs::workload::request> batch;
  marketplace_round result;
  stream_run run;
  run.min_warm_allocs = ~std::uint64_t{0};
  for (std::size_t t = 0; t < setup.rounds; ++t) {
    gen.round_into(static_cast<double>(t), 1.0, batch);
    const std::uint64_t allocs_before = allocations_now();
    ecrs::stopwatch accumulate_clock;
    ingestor.accumulate(batch);
    run.accumulate_ms += accumulate_clock.elapsed_ms();
    ecrs::stopwatch ingest_clock;
    const ecrs::auction::regional_instance& round = ingestor.finalize();
    run.ingest_ms += ingest_clock.elapsed_ms();
    ecrs::stopwatch market_clock;
    mkt.run_round(round, result);
    run.market_ms += market_clock.elapsed_ms();
    const std::uint64_t allocs = allocations_now() - allocs_before;
    if (t == 0) {
      run.first_round_allocs = allocs;
    } else {
      run.min_warm_allocs = std::min(run.min_warm_allocs, allocs);
    }
    if (digest != nullptr) digest_round(result, *digest);
  }
  if (setup.rounds < 2) run.min_warm_allocs = 0;
  return run;
}

// The PR 8 ingestion path over the same request stream: accumulate and
// quantize into a GLOBAL instance, materialize its bid set, then
// region_map::partition it — per round. Digests must match the streamed
// horizon exactly.
struct partition_path {
  ecrs::auction::single_stage_instance global_bids;  // template, M reqs
  std::vector<std::uint32_t> seller_region;
  std::vector<std::uint32_t> demander_region;
  std::vector<ecrs::auction::units> caps;  // global demander id
};

partition_path build_partition_path(const stream_setup& setup) {
  const std::uint32_t regions = setup.icfg.regions;
  const std::uint32_t services = setup.icfg.microservices;
  partition_path path;
  path.global_bids.requirements.assign(services, 0);
  path.demander_region.resize(services);
  for (std::uint32_t m = 0; m < services; ++m) {
    path.demander_region[m] = m % regions;
  }
  path.caps.assign(services, ecrs::market::kNoSupplyCap);
  const ecrs::auction::regional_instance standing = standing_of(setup);
  std::uint32_t seller_base = 0;
  for (std::uint32_t r = 0; r < regions; ++r) {
    const auto& local = standing.regions[r];
    if (setup.icfg.supply_margin > 0.0) {
      const std::vector<ecrs::auction::units> supply =
          ecrs::auction::guaranteed_supply(local);
      for (std::size_t k = 0; k < supply.size(); ++k) {
        // Same floor expression as the round_ingestor's cap build.
        path.caps[k * regions + r] =
            static_cast<ecrs::auction::units>(std::floor(
                setup.icfg.supply_margin * static_cast<double>(supply[k])));
      }
    }
    std::uint32_t sellers_here = 0;
    for (const ecrs::auction::bid& b : local.bids) {
      sellers_here = std::max(sellers_here, b.seller + 1);
      ecrs::auction::bid global = b;
      global.seller = seller_base + b.seller;
      for (ecrs::auction::demander_id& k : global.coverage) {
        k = k * regions + r;
      }
      path.global_bids.bids.push_back(std::move(global));
    }
    path.seller_region.insert(path.seller_region.end(), sellers_here, r);
    seller_base += sellers_here;
  }
  return path;
}

stream_run run_partition_horizon(const stream_setup& setup,
                                 const partition_path& path,
                                 const ecrs::edge::topology& topo,
                                 std::vector<std::uint64_t>* digest) {
  const std::uint32_t regions = setup.icfg.regions;
  marketplace mkt(topo, sellers_of(setup.input), market_options(1));
  ecrs::workload::generator gen(setup.wcfg);
  std::vector<ecrs::workload::request> batch;
  std::vector<double> acc(setup.icfg.microservices, 0.0);
  marketplace_round result;
  stream_run run;
  for (std::size_t t = 0; t < setup.rounds; ++t) {
    gen.round_into(static_cast<double>(t), 1.0, batch);
    ecrs::stopwatch accumulate_clock;
    for (const ecrs::workload::request& q : batch) {
      acc[q.microservice] += q.service_demand;
    }
    run.accumulate_ms += accumulate_clock.elapsed_ms();
    ecrs::stopwatch ingest_clock;
    // Materialize the global round instance from scratch — quantized
    // requirements plus a fresh copy of every standing bid — then
    // partition it, exactly the per-round cost streaming ingestion
    // eliminates.
    ecrs::auction::single_stage_instance global;
    global.requirements.resize(setup.icfg.microservices);
    for (std::uint32_t m = 0; m < setup.icfg.microservices; ++m) {
      global.requirements[m] =
          ecrs::market::quantize_demand(acc[m], setup.icfg, path.caps[m]);
      acc[m] = 0.0;
    }
    global.bids = path.global_bids.bids;
    const ecrs::market::partitioned_instance part = ecrs::market::partition(
        global, regions, path.seller_region, path.demander_region);
    run.ingest_ms += ingest_clock.elapsed_ms();
    ecrs::stopwatch market_clock;
    mkt.run_round(part.shards, result);
    run.market_ms += market_clock.elapsed_ms();
    if (digest != nullptr) digest_round(result, *digest);
  }
  return run;
}

template <typename Fn>
double mean_ms(std::size_t repeats, Fn&& fn) {
  double total = 0.0;
  for (std::size_t r = 0; r < repeats; ++r) total += fn();
  return total / static_cast<double>(repeats);
}

void print_lane(const char* name, double ms, bool trailing_comma) {
  std::printf("    \"%s\": {\"mean_ns\": %.0f}%s\n", name, ms * 1e6,
              trailing_comma ? "," : "");
}

}  // namespace

int main(int argc, char** argv) {
  const ecrs::flags f(argc, argv);
  const auto regions = static_cast<std::size_t>(f.get_int("regions", 100));
  const auto rounds = static_cast<std::size_t>(f.get_int("rounds", 3));
  const auto sellers = static_cast<std::size_t>(f.get_int("sellers", 8));
  const auto demanders = static_cast<std::size_t>(f.get_int("demanders", 4));
  const double scale =
      static_cast<double>(f.get_int("scale", 125)) / 100.0;
  const auto stream_demanders = static_cast<std::size_t>(
      f.get_int("stream_demanders", static_cast<long long>(demanders)));
  const auto users = static_cast<std::size_t>(f.get_int("users", 0));
  const double unit_demand =
      static_cast<double>(f.get_int("unit_demand", 400)) / 100.0;
  const auto threads = static_cast<std::size_t>(f.get_int("threads", 0));
  const auto repeats = static_cast<std::size_t>(f.get_int("repeats", 3));
  const auto seed = static_cast<std::uint64_t>(f.get_int("seed", 1));

  const market_setup setup =
      build_setup(regions, rounds, sellers, demanders, scale, seed);
  const stream_setup streaming =
      build_stream_setup(regions, rounds, sellers, stream_demanders, users,
                         unit_demand, scale, seed);
  ecrs::edge::topology topo =
      ecrs::edge::topology::ring(static_cast<std::uint32_t>(regions));

  // ---- byte-identity gates (before any timing) ----------------------------
  std::vector<std::uint64_t> serial_digest;
  std::vector<std::uint64_t> parallel_digest;
  (void)run_horizon(setup, topo, 1, &serial_digest);
  (void)run_horizon(setup, topo, threads, &parallel_digest);
  const bool identical = serial_digest == parallel_digest;
  if (!identical) {
    std::fprintf(stderr,
                 "shard_scaling: serial and parallel digests differ "
                 "(%zu vs %zu words) — determinism broken\n",
                 serial_digest.size(), parallel_digest.size());
    return 1;
  }

  std::vector<std::uint64_t> stream_serial_digest;
  std::vector<std::uint64_t> stream_parallel_digest;
  std::vector<std::uint64_t> partition_digest;
  (void)run_stream_horizon(streaming, topo, 1, &stream_serial_digest);
  (void)run_stream_horizon(streaming, topo, threads,
                           &stream_parallel_digest);
  const bool stream_identical =
      stream_serial_digest == stream_parallel_digest;
  if (!stream_identical) {
    std::fprintf(stderr,
                 "shard_scaling: streaming serial and parallel digests "
                 "differ (%zu vs %zu words) — determinism broken\n",
                 stream_serial_digest.size(), stream_parallel_digest.size());
    return 1;
  }
  {
    const partition_path path = build_partition_path(streaming);
    (void)run_partition_horizon(streaming, path, topo, &partition_digest);
  }
  const bool partition_matches = partition_digest == stream_serial_digest;
  if (!partition_matches) {
    std::fprintf(stderr,
                 "shard_scaling: streamed horizon differs from the "
                 "partitioned (PR 8 path) horizon (%zu vs %zu words) — "
                 "ingestion equivalence broken\n",
                 stream_serial_digest.size(), partition_digest.size());
    return 1;
  }

  // ---- wall clock ---------------------------------------------------------
  const double serial_ms = mean_ms(
      repeats, [&] { return run_horizon(setup, topo, 1, nullptr); });
  const double parallel_ms = mean_ms(
      repeats, [&] { return run_horizon(setup, topo, threads, nullptr); });

  // Spillover marginal cost (approximate): the same market with demand
  // clamped to local supply (scale 1.0) never posts a spill request, so
  // the wall-clock delta against the over-scaled serial lane is the cost
  // of the re-auctions plus the slightly heavier local rounds.
  const market_setup no_spill =
      build_setup(regions, rounds, sellers, demanders, 1.0, seed);
  const double no_spill_ms = mean_ms(
      repeats, [&] { return run_horizon(no_spill, topo, 1, nullptr); });

  // Streaming lanes (+ allocation telemetry from the parallel run).
  stream_run stream_parallel_last;
  double stream_serial_ms = 0.0;
  double stream_parallel_ms = 0.0;
  double ingest_stream_round_ms = 0.0;
  double accumulate_round_ms = 0.0;
  for (std::size_t r = 0; r < repeats; ++r) {
    stream_serial_ms += run_stream_horizon(streaming, topo, 1, nullptr)
                            .total_ms();
    stream_parallel_last =
        run_stream_horizon(streaming, topo, threads, nullptr);
    stream_parallel_ms += stream_parallel_last.total_ms();
    ingest_stream_round_ms += stream_parallel_last.ingest_ms /
                              static_cast<double>(rounds);
    accumulate_round_ms += stream_parallel_last.accumulate_ms /
                           static_cast<double>(rounds);
  }
  stream_serial_ms /= static_cast<double>(repeats);
  stream_parallel_ms /= static_cast<double>(repeats);
  ingest_stream_round_ms /= static_cast<double>(repeats);
  accumulate_round_ms /= static_cast<double>(repeats);
  // Streaming-path resident set before the partition path re-runs (the
  // PR 8 path's materialization would dominate the process peak).
  const double stream_peak_rss = peak_rss_mb();

  const partition_path path = build_partition_path(streaming);
  double ingest_partition_round_ms = 0.0;
  for (std::size_t r = 0; r < repeats; ++r) {
    ingest_partition_round_ms +=
        run_partition_horizon(streaming, path, topo, nullptr).ingest_ms /
        static_cast<double>(rounds);
  }
  ingest_partition_round_ms /= static_cast<double>(repeats);

  // ---- mailbox churn micro-lane (the CI-stable lane) ----------------------
  constexpr std::size_t kChurnMessages = 200000;
  const double churn_ms = mean_ms(repeats, [&] {
    ecrs::market::post_office po(static_cast<std::uint32_t>(regions));
    ecrs::stopwatch clock;
    std::size_t delivered = 0;
    for (std::size_t batch = 0; batch < 4; ++batch) {
      for (std::size_t i = 0; i < kChurnMessages / 4; ++i) {
        ecrs::market::message m;
        m.type = ecrs::market::message::kind::spill_grant;
        m.from = static_cast<std::uint32_t>(i % regions);
        m.to = static_cast<std::uint32_t>((i * 7) % regions);
        m.seller = static_cast<std::uint32_t>(i);
        m.weight = 1;
        po.post(std::move(m));
      }
      po.drain([&](const ecrs::market::message&) { ++delivered; });
    }
    if (delivered != kChurnMessages) std::abort();
    return clock.elapsed_ms();
  });

  const std::size_t stream_total = regions * stream_demanders;
  const bool million_lane = stream_total >= 1000000;

  std::printf("{\n");
  std::printf("  \"config\": {\"regions\": %zu, \"rounds\": %zu, "
              "\"sellers_per_region\": %zu, \"demanders_per_region\": %zu, "
              "\"stream_demanders_per_region\": %zu, \"stream_users\": %u, "
              "\"unit_demand\": %.2f, "
              "\"demand_scale\": %.2f, \"threads\": %zu, \"repeats\": %zu, "
              "\"seed\": %llu, \"hardware_concurrency\": %u},\n",
              regions, rounds, sellers, demanders, stream_demanders,
              streaming.wcfg.users, unit_demand, scale, threads, repeats,
              static_cast<unsigned long long>(seed),
              std::thread::hardware_concurrency());
  std::printf("  \"bit_identical\": %s,\n", identical ? "true" : "false");
  std::printf("  \"stream_bit_identical\": %s,\n",
              stream_identical ? "true" : "false");
  std::printf("  \"stream_matches_partition_path\": %s,\n",
              partition_matches ? "true" : "false");
  std::printf("  \"results_ns_mean\": {\n");
  print_lane("MarketHorizonShardedSerial", serial_ms, true);
  print_lane("MarketHorizonShardedParallel", parallel_ms, true);
  print_lane("MarketHorizonNoSpillSerial", no_spill_ms, true);
  print_lane("MarketHorizonStreamSerial", stream_serial_ms, true);
  print_lane("MarketHorizonStreamParallel", stream_parallel_ms, true);
  print_lane("IngestStreamRound", ingest_stream_round_ms, true);
  print_lane("IngestPartitionRound", ingest_partition_round_ms, true);
  print_lane("DemandAccumulateRound", accumulate_round_ms, true);
  if (million_lane) {
    print_lane("MarketHorizon1M", stream_parallel_ms, true);
  }
  print_lane("MailboxChurn", churn_ms, false);
  std::printf("  },\n");
  std::printf("  \"speedups\": {\"parallel_over_serial\": %.2f, "
              "\"stream_parallel_over_serial\": %.2f, "
              "\"ingest_stream_over_partition\": %.2f},\n",
              parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0,
              stream_parallel_ms > 0.0
                  ? stream_serial_ms / stream_parallel_ms
                  : 0.0,
              ingest_stream_round_ms > 0.0
                  ? ingest_partition_round_ms / ingest_stream_round_ms
                  : 0.0);
  std::printf("  \"allocations_per_round\": {\"stream_first\": %llu, "
              "\"stream_warm_min\": %llu},\n",
              static_cast<unsigned long long>(
                  stream_parallel_last.first_round_allocs),
              static_cast<unsigned long long>(
                  stream_parallel_last.min_warm_allocs));
  std::printf("  \"stream_peak_rss_mb\": %.1f,\n", stream_peak_rss);
  std::printf("  \"peak_rss_mb\": %.1f,\n", peak_rss_mb());
  std::printf("  \"spillover_marginal_ms\": %.2f\n",
              serial_ms - no_spill_ms);
  std::printf("}\n");
  return 0;
}
