// Figure 6(a): MSOA performance ratio vs number of rounds T for J ∈
// {1,2,4} bids per seller. Paper shape: more rounds and more alternative
// bids per seller both degrade the ratio.
#include "bench_util.h"

int main(int argc, char** argv) {
  const ecrs::flags f(argc, argv);
  const auto cfg = ecrs::bench::sweep_from_flags(f, 5);
  ecrs::bench::emit(f, "Figure 6(a): MSOA ratio vs rounds and bids per seller",
                    ecrs::harness::fig6a_rounds_bids(cfg));
  return 0;
}
