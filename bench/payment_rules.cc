// Mechanism comparison: efficiency (cost / exact optimum) vs frugality
// (payment / exact optimum) for SSAM (both payment rules, budgeted), the
// reserve-price VCG, pay-as-bid and random selection, on identical
// instances. Expected shape: VCG is efficient (cost ratio 1) but pays a
// premium; SSAM trades a small efficiency loss for polynomial time;
// pay-as-bid pays the least but is not truthful; random is dominated.
#include "bench_util.h"

int main(int argc, char** argv) {
  const ecrs::flags f(argc, argv);
  const auto cfg = ecrs::bench::sweep_from_flags(f, 15);
  ecrs::bench::emit(f, "Mechanism comparison: efficiency vs frugality",
                    ecrs::harness::payment_rules(cfg));
  return 0;
}
