// §V-A setup validation: the full workload → edge queueing → demand
// estimation pipeline (300 users, 25 microservices, 10 edge clouds,
// Poisson 5/10 workloads). Expected shape: overloaded microservices score
// visibly higher estimated demand than idle ones.
#include "bench_util.h"

int main(int argc, char** argv) {
  const ecrs::flags f(argc, argv);
  const auto seed = static_cast<std::uint64_t>(f.get_int("seed", 1));
  const auto rounds = static_cast<std::size_t>(f.get_int("rounds", 12));
  const auto users = static_cast<std::size_t>(f.get_int("users", 300));
  const auto services =
      static_cast<std::size_t>(f.get_int("microservices", 25));
  const auto clouds = static_cast<std::size_t>(f.get_int("clouds", 10));
  ecrs::bench::emit(f, "Demand estimation pipeline (paper Sec. III + V-A)",
                    ecrs::harness::demand_estimation_pipeline(
                        seed, rounds, users, services, clouds));
  return 0;
}
