// §V-A setup validation: the full workload → edge queueing → demand
// estimation pipeline (300 users, 25 microservices, 10 edge clouds,
// Poisson 5/10 workloads). Expected shape: overloaded microservices score
// visibly higher estimated demand than idle ones. Two drivers: the
// analytic per-round loop, and the event-accurate DES driver (batched
// arrival streams, trials swept over --threads workers).
#include "bench_util.h"

int main(int argc, char** argv) {
  const ecrs::flags f(argc, argv);
  const auto seed = static_cast<std::uint64_t>(f.get_int("seed", 1));
  const auto rounds = static_cast<std::size_t>(f.get_int("rounds", 12));
  const auto users = static_cast<std::size_t>(f.get_int("users", 300));
  const auto services =
      static_cast<std::size_t>(f.get_int("microservices", 25));
  const auto clouds = static_cast<std::size_t>(f.get_int("clouds", 10));
  ecrs::bench::emit(f, "Demand estimation pipeline (paper Sec. III + V-A)",
                    ecrs::harness::demand_estimation_pipeline(
                        seed, rounds, users, services, clouds));
  ecrs::harness::sweep_config cfg = ecrs::bench::sweep_from_flags(f, 3);
  cfg.seed = seed;
  ecrs::bench::emit(
      f, "Event-driven demand estimation (DES driver, batched arrivals)",
      ecrs::harness::demand_estimation_event_driven(cfg, rounds, users,
                                                    services, clouds));
  return 0;
}
