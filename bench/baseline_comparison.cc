// §I motivation: auction vs posted-price repurchasing. Expected shape: the
// auction always procures (feasible_frac = 1) at market-driven cost, while
// posted prices either fail to procure (too low) or overpay (too high).
#include "bench_util.h"

int main(int argc, char** argv) {
  const ecrs::flags f(argc, argv);
  const auto cfg = ecrs::bench::sweep_from_flags(f, 20);
  ecrs::bench::emit(f, "Baseline: SSAM auction vs posted-price repurchasing",
                    ecrs::harness::baseline_comparison(cfg));
  return 0;
}
