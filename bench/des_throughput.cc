// End-to-end numbers for BENCH_pr5.json: DES engine throughput (events/sec
// and heap allocations per event) for the slab/indexed-heap simulator
// against the frozen pre-PR5 reference engine, and for the full simrun
// driver scenario. All driver variants replay one pre-recorded trace (so
// generation cost — reported separately — cancels out): the verbatim
// pre-PR configuration, the reference engine under the current lazy
// advance policy, and the new engine under per-event and batched delivery.
//
// Before any timing the binary cross-checks correctness: the reference
// engine and both new delivery shapes must agree BITWISE on every
// per-round cluster statistic and demand estimate, and the pre-PR baseline
// must agree on all integer observables and total served work (its eager
// advance-all sweep perturbs low-order floating-point bits), otherwise the
// bench exits nonzero without printing results.
//
// Flags:
//   --seed=N             master seed (default 1)
//   --repeats=N          timing repeats per measurement (default 3)
//   --engine_requests=N  largest engine-only size (default 10000000)
//   --driver_requests=N  largest driver-scenario size (default 1000000)
//
// Output: one JSON document on stdout in the repo BENCH schema
// (results_ns_mean + auxiliary sections); redirect to BENCH_pr5.json.
#include <cstdio>
#include <cstdlib>
#include <new>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "demand/estimator.h"
#include "des/reference_simulator.h"
#include "des/simulator.h"
#include "edge/cluster.h"
#include "simrun/des_driver.h"
#include "workload/generator.h"

namespace {

// Process-wide allocation counter: every operator new in the binary bumps
// it. Counter reads around a call give allocations per call.
std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

std::uint64_t allocations_now() {
  return g_allocations.load(std::memory_order_relaxed);
}

// ------------------------------------------------------------ measurement

struct measurement {
  std::string name;
  double mean_ns = 0.0;
  double stddev_ns = 0.0;
  double events_per_sec = 0.0;
  double allocs_per_event = -1.0;  // < 0: not measured
};

// Times `events` events worth of work `repeats` times; the last repeat also
// counts heap allocations. fn() must run one complete instance.
template <typename Fn>
measurement measure(std::string name, std::uint64_t events,
                    std::size_t repeats, Fn&& fn) {
  measurement m;
  m.name = std::move(name);
  std::vector<double> ns;
  ns.reserve(repeats);
  for (std::size_t r = 0; r < repeats; ++r) {
    const std::uint64_t allocs_before = allocations_now();
    ecrs::stopwatch clock;
    fn();
    ns.push_back(clock.elapsed_seconds() * 1e9);
    if (r + 1 == repeats) {
      m.allocs_per_event =
          static_cast<double>(allocations_now() - allocs_before) /
          static_cast<double>(events);
    }
  }
  double sum = 0.0;
  for (double x : ns) sum += x;
  m.mean_ns = sum / static_cast<double>(ns.size());
  double var = 0.0;
  for (double x : ns) var += (x - m.mean_ns) * (x - m.mean_ns);
  m.stddev_ns = ns.size() > 1
                    ? std::sqrt(var / static_cast<double>(ns.size() - 1))
                    : 0.0;
  m.events_per_sec =
      m.mean_ns > 0.0 ? static_cast<double>(events) / (m.mean_ns * 1e-9) : 0.0;
  return m;
}

const char* size_label(std::uint64_t n) {
  switch (n) {
    case 10000: return "1e4";
    case 100000: return "1e5";
    case 1000000: return "1e6";
    case 10000000: return "1e7";
    default: return "n";
  }
}

// ------------------------------------------------- engine-only throughput

// Steady-state schedule+fire churn: `inflight` events stay pending; every
// firing schedules a replacement until `total` have been scheduled. The
// same code drives both engines, so the reference pays its honest old-shape
// costs (std::function copy, unordered_map insert/erase, heap push/pop).
template <typename Sim>
void churn(Sim& sim, std::uint64_t total, std::uint64_t seed) {
  ecrs::rng gen(seed);
  const std::uint64_t inflight = std::min<std::uint64_t>(total, 4096);
  std::uint64_t scheduled = 0;
  std::uint64_t fired = 0;
  struct hop {
    Sim* sim;
    ecrs::rng* gen;
    std::uint64_t* scheduled;
    std::uint64_t* fired;
    std::uint64_t total;
    void operator()() const {
      ++*fired;
      if (*scheduled < total) {
        ++*scheduled;
        sim->schedule_at(sim->now() + gen->uniform_real(0.0, 1.0), *this);
      }
    }
  };
  const hop h{&sim, &gen, &scheduled, &fired, total};
  for (std::uint64_t i = 0; i < inflight; ++i) {
    sim.schedule_at(gen.uniform_real(0.0, 1.0), h);
    ++scheduled;
  }
  sim.run();
  ECRS_CHECK(fired == total);
}

// Batched lane: one stream record drains `total` pre-sorted timestamps.
void stream_drain(std::uint64_t total, std::uint64_t seed) {
  ecrs::rng gen(seed);
  std::vector<ecrs::des::sim_time> times(total);
  double t = 0.0;
  for (auto& x : times) {
    t += gen.uniform_real(0.0, 0.01);
    x = t;
  }
  ecrs::des::simulator sim;
  std::uint64_t fired = 0;
  sim.schedule_stream(times, [&fired](std::size_t) { ++fired; });
  sim.run();
  ECRS_CHECK(fired == total);
}

// ------------------------------------------------ driver scenario plumbing

// The §V-A-shaped scenario from harness::demand_estimation_event_driven:
// 300 users over 25 microservices on 10 clouds at 130% of mean load,
// ~4500 Poisson arrivals per 600 s round. `rounds` scales total requests.
struct scenario {
  std::size_t users = 300;
  std::size_t services = 25;
  std::size_t clouds = 10;
  double round_duration = 600.0;

  [[nodiscard]] double arrivals_per_round(
      const ecrs::workload::generator& gen) const {
    return gen.expected_arrivals_per_round();
  }
};

struct pipeline {
  ecrs::workload::generator traffic;
  ecrs::edge::cluster cl;
  ecrs::demand::estimator est;

  pipeline(const scenario& sc, std::uint64_t seed)
      : traffic(generator_config(sc, seed)),
        cl(cluster_config(sc, seed), qos_of(traffic, sc.services)),
        est(ecrs::demand::make_default_config()) {}

  static ecrs::workload::generator_config generator_config(
      const scenario& sc, std::uint64_t seed) {
    ecrs::workload::generator_config cfg;
    cfg.users = static_cast<std::uint32_t>(sc.users);
    cfg.microservices = static_cast<std::uint32_t>(sc.services);
    cfg.seed = seed;
    return cfg;
  }
  static ecrs::edge::cluster_config cluster_config(const scenario& sc,
                                                   std::uint64_t seed) {
    const auto gcfg = generator_config(sc, seed);
    const double expected_work = static_cast<double>(sc.users) *
                                 (gcfg.sensitive_mean + gcfg.tolerant_mean) *
                                 gcfg.mean_service_demand;
    ecrs::edge::cluster_config cfg;
    cfg.clouds = static_cast<std::uint32_t>(sc.clouds);
    cfg.capacity_per_cloud = 1.3 * expected_work / sc.round_duration /
                             static_cast<double>(sc.clouds);
    cfg.seed = seed ^ 0x9e37u;
    return cfg;
  }
  static std::vector<ecrs::workload::qos_class> qos_of(
      const ecrs::workload::generator& gen, std::size_t services) {
    std::vector<ecrs::workload::qos_class> qos;
    qos.reserve(services);
    for (std::uint32_t s = 0; s < services; ++s) {
      qos.push_back(gen.class_of(s));
    }
    return qos;
  }
};

// Reproduction of the pre-PR5 simrun driver shape: the frozen std::function
// engine, a freshly allocated batch vector per round, and one scheduled
// closure per request holding a COPY of the request.
//
// Two cluster-advance policies:
//  - advance_all = true reproduces the seed driver verbatim (every delivery
//    sweeps ALL services forward) — the honest "pre-PR" baseline;
//  - advance_all = false uses the same lazy per-service advance as the
//    current des_driver, so the timed difference against the new engine is
//    the DES engine + delivery mechanism alone, and per-round stats are
//    BITWISE comparable (the eager sweep slices the drain integral
//    differently, which perturbs low-order floating-point bits).
class reference_driver {
 public:
  using round_callback =
      std::function<void(std::uint64_t, const std::vector<ecrs::edge::round_stats>&,
                         const std::vector<double>&)>;

  reference_driver(ecrs::des::reference_simulator& sim, pipeline& p,
                   ecrs::workload::round_source& traffic, const scenario& sc,
                   std::uint64_t rounds, bool advance_all)
      : sim_(sim),
        p_(p),
        traffic_(traffic),
        duration_(sc.round_duration),
        rounds_(rounds),
        advance_all_(advance_all),
        service_clock_(sc.services, 0.0) {}

  void set_round_callback(round_callback cb) { callback_ = std::move(cb); }

  void run() {
    schedule_round(1);
    sim_.run();
  }

  [[nodiscard]] std::uint64_t requests_delivered() const { return delivered_; }

 private:
  void advance_to_now() {
    const double now = sim_.now();
    if (now > last_advance_) {
      p_.cl.advance(last_advance_, now - last_advance_);
      last_advance_ = now;
    }
  }

  void catch_up(std::uint32_t m, double now) {
    double& mark = service_clock_[m];
    if (now > mark) {
      p_.cl.service(m).advance(mark, now - mark);
      mark = now;
    }
  }

  void deliver(const ecrs::workload::request& r) {
    if (advance_all_) {
      advance_to_now();
    } else {
      catch_up(r.microservice, sim_.now());
    }
    p_.cl.service(r.microservice).enqueue(r);
    ++delivered_;
  }

  void schedule_round(std::uint64_t round) {
    const double start = static_cast<double>(round - 1) * duration_;
    const double end = start + duration_;
    p_.cl.allocate_fair(duration_);
    std::vector<ecrs::workload::request> batch;  // fresh per round: old shape
    traffic_.round_into(start, duration_, batch);
    for (const auto& r : batch) {
      sim_.schedule_at(r.arrival_time, [this, r] { deliver(r); });
    }
    sim_.schedule_at(end, [this, round, end] {
      if (advance_all_) {
        advance_to_now();
      } else {
        for (std::uint32_t m = 0; m < service_clock_.size(); ++m) {
          catch_up(m, end);
        }
      }
      const auto stats = p_.cl.end_round(round, duration_);
      const auto estimates = p_.est.estimate_round(stats);
      if (callback_) callback_(round, stats, estimates);
      if (round < rounds_) schedule_round(round + 1);
    });
  }

  ecrs::des::reference_simulator& sim_;
  pipeline& p_;
  ecrs::workload::round_source& traffic_;
  double duration_;
  std::uint64_t rounds_;
  bool advance_all_;
  double last_advance_ = 0.0;
  std::vector<double> service_clock_;
  std::uint64_t delivered_ = 0;
  round_callback callback_;
};

// Record `rounds` rounds of traffic once; all timed driver variants replay
// this trace so workload generation (RNG + sort, measured separately as
// WorkloadGeneration_*) is excluded from every driver timing symmetrically.
ecrs::workload::replay_source record_trace(const scenario& sc,
                                           std::uint64_t seed,
                                           std::uint64_t rounds) {
  ecrs::workload::generator gen(pipeline::generator_config(sc, seed));
  std::vector<std::vector<ecrs::workload::request>> recorded;
  recorded.reserve(rounds);
  for (std::uint64_t r = 0; r < rounds; ++r) {
    recorded.push_back(gen.round(static_cast<double>(r) * sc.round_duration,
                                 sc.round_duration));
  }
  return ecrs::workload::replay_source(std::move(recorded),
                                       gen.microservice_count());
}

// Everything a driver run observes, for the cross-checks.
struct fingerprint {
  std::uint64_t delivered = 0;
  std::vector<std::vector<ecrs::edge::round_stats>> stats;
  std::vector<std::vector<double>> estimates;
};

template <typename Driver>
void record_rounds(Driver& driver, fingerprint& fp) {
  driver.set_round_callback(
      [&fp](std::uint64_t, const std::vector<ecrs::edge::round_stats>& stats,
            const std::vector<double>& estimates) {
        fp.stats.push_back(stats);
        fp.estimates.push_back(estimates);
      });
}

fingerprint run_reference(const scenario& sc, std::uint64_t seed,
                          std::uint64_t rounds,
                          ecrs::workload::replay_source& replay,
                          bool advance_all, bool record) {
  replay.reset();
  pipeline p(sc, seed);
  ecrs::des::reference_simulator sim;
  reference_driver driver(sim, p, replay, sc, rounds, advance_all);
  fingerprint fp;
  if (record) record_rounds(driver, fp);
  driver.run();
  fp.delivered = driver.requests_delivered();
  return fp;
}

fingerprint run_new_shape(const scenario& sc, std::uint64_t seed,
                          std::uint64_t rounds,
                          ecrs::workload::replay_source& replay,
                          ecrs::edge::delivery_mode delivery, bool record) {
  replay.reset();
  pipeline p(sc, seed);
  ecrs::des::simulator sim;
  ecrs::edge::des_driver_config cfg;
  cfg.round_duration = sc.round_duration;
  cfg.rounds = rounds;
  cfg.delivery = delivery;
  ecrs::edge::des_driver driver(sim, p.cl, replay, p.est, cfg);
  fingerprint fp;
  if (record) record_rounds(driver, fp);
  driver.run();
  fp.delivered = driver.requests_delivered();
  return fp;
}

bool identical(const fingerprint& a, const fingerprint& b) {
  if (a.delivered != b.delivered) return false;
  if (a.stats.size() != b.stats.size()) return false;
  if (a.estimates.size() != b.estimates.size()) return false;
  for (std::size_t r = 0; r < a.stats.size(); ++r) {
    if (a.stats[r].size() != b.stats[r].size()) return false;
    for (std::size_t s = 0; s < a.stats[r].size(); ++s) {
      const auto& x = a.stats[r][s];
      const auto& y = b.stats[r][s];
      if (x.received != y.received || x.served != y.served ||
          x.arrived_work != y.arrived_work ||
          x.served_work != y.served_work ||
          x.backlog_work != y.backlog_work || x.allocation != y.allocation ||
          x.utilization != y.utilization || x.mean_wait != y.mean_wait) {
        return false;
      }
    }
    if (a.estimates[r] != b.estimates[r]) return false;
  }
  return true;
}

// The pre-PR advance-all sweep slices each service's drain integral into
// different sub-intervals than the lazy policy, which perturbs low-order
// floating-point bits — so against that baseline the check is exact on
// integer observables and tight-relative on accumulated work.
bool physically_consistent(const fingerprint& a, const fingerprint& b) {
  if (a.delivered != b.delivered) return false;
  if (a.stats.size() != b.stats.size()) return false;
  double work_a = 0.0;
  double work_b = 0.0;
  for (std::size_t r = 0; r < a.stats.size(); ++r) {
    if (a.stats[r].size() != b.stats[r].size()) return false;
    for (std::size_t s = 0; s < a.stats[r].size(); ++s) {
      if (a.stats[r][s].received != b.stats[r][s].received) return false;
      work_a += a.stats[r][s].served_work;
      work_b += b.stats[r][s].served_work;
    }
  }
  const double scale = std::max({std::abs(work_a), std::abs(work_b), 1.0});
  return std::abs(work_a - work_b) <= 1e-6 * scale;
}

// Cross-checks before any timing: the old engine (under the same lazy
// advance policy) and both new delivery shapes must agree BITWISE on every
// per-round statistic and demand estimate; the verbatim pre-PR baseline
// must agree on all integer observables and total served work.
bool cross_check(const scenario& sc, std::uint64_t seed) {
  constexpr std::uint64_t rounds = 4;
  auto replay = record_trace(sc, seed, rounds);
  const auto ref_lazy = run_reference(sc, seed, rounds, replay,
                                      /*advance_all=*/false, /*record=*/true);
  const auto per_event = run_new_shape(sc, seed, rounds, replay,
                                       ecrs::edge::delivery_mode::per_event,
                                       /*record=*/true);
  const auto batched = run_new_shape(sc, seed, rounds, replay,
                                     ecrs::edge::delivery_mode::batched,
                                     /*record=*/true);
  const auto pre_pr = run_reference(sc, seed, rounds, replay,
                                    /*advance_all=*/true, /*record=*/true);
  if (!identical(ref_lazy, per_event)) {
    std::fprintf(stderr, "cross-check FAILED: per-event != reference engine\n");
    return false;
  }
  if (!identical(ref_lazy, batched)) {
    std::fprintf(stderr, "cross-check FAILED: batched != reference engine\n");
    return false;
  }
  if (!physically_consistent(ref_lazy, pre_pr)) {
    std::fprintf(stderr,
                 "cross-check FAILED: pre-PR baseline diverges physically\n");
    return false;
  }
  return true;
}

// --------------------------------------------------------------- printing

void print_measurements(const std::vector<measurement>& ms) {
  std::printf("  \"results_ns_mean\": {\n");
  for (std::size_t i = 0; i < ms.size(); ++i) {
    std::printf("    \"%s\": {\"mean_ns\": %.0f, \"stddev_ns\": %.0f}%s\n",
                ms[i].name.c_str(), ms[i].mean_ns, ms[i].stddev_ns,
                i + 1 < ms.size() ? "," : "");
  }
  std::printf("  },\n");
  std::printf("  \"events_per_sec\": {\n");
  for (std::size_t i = 0; i < ms.size(); ++i) {
    std::printf("    \"%s\": %.0f%s\n", ms[i].name.c_str(),
                ms[i].events_per_sec, i + 1 < ms.size() ? "," : "");
  }
  std::printf("  },\n");
  std::printf("  \"allocations_per_event\": {\n");
  for (std::size_t i = 0; i < ms.size(); ++i) {
    std::printf("    \"%s\": %.3f%s\n", ms[i].name.c_str(),
                ms[i].allocs_per_event, i + 1 < ms.size() ? "," : "");
  }
  std::printf("  },\n");
}

double mean_ns_of(const std::vector<measurement>& ms, const std::string& name) {
  for (const auto& m : ms) {
    if (m.name == name) return m.mean_ns;
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const ecrs::flags f(argc, argv);
  const auto seed = static_cast<std::uint64_t>(f.get_int("seed", 1));
  const auto repeats = static_cast<std::size_t>(f.get_int("repeats", 3));
  const auto engine_max =
      static_cast<std::uint64_t>(f.get_int("engine_requests", 10000000));
  const auto driver_max =
      static_cast<std::uint64_t>(f.get_int("driver_requests", 1000000));

  const scenario sc;
  if (!cross_check(sc, seed)) return 1;

  std::vector<measurement> ms;

  // ---- engine-only: schedule+fire churn and the batched stream lane ------
  for (std::uint64_t n : {10000ull, 100000ull, 1000000ull, 10000000ull}) {
    if (n > engine_max) break;
    const std::string tag = size_label(n);
    ms.push_back(measure("EngineChurnReference_" + tag, n, repeats, [&] {
      ecrs::des::reference_simulator sim;
      churn(sim, n, seed);
    }));
    ms.push_back(measure("EngineChurnSlab_" + tag, n, repeats, [&] {
      ecrs::des::simulator sim;
      churn(sim, n, seed);
    }));
    ms.push_back(measure("EngineStreamSlab_" + tag, n, repeats,
                         [&] { stream_drain(n, seed); }));
  }

  // ---- full driver scenario over a replayed trace ------------------------
  // Every variant replays the SAME recorded trace, so workload generation
  // (RNG + sort, reported separately) is excluded from driver timings
  // symmetrically. DriverPrePR is the seed configuration verbatim: frozen
  // engine, per-request closure copies, fresh batch vector per round, and
  // an advance-ALL-services sweep on every delivery.
  pipeline sizing(sc, seed);
  const double per_round = sc.arrivals_per_round(sizing.traffic);
  for (std::uint64_t n : {10000ull, 100000ull, 1000000ull}) {
    if (n > driver_max) break;
    const auto rounds = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::llround(
               static_cast<double>(n) / per_round)));
    const std::string tag = size_label(n);
    ms.push_back(measure("WorkloadGeneration_" + tag, n, repeats, [&] {
      ecrs::workload::generator gen(pipeline::generator_config(sc, seed));
      std::vector<ecrs::workload::request> batch;
      for (std::uint64_t r = 0; r < rounds; ++r) {
        gen.round_into(static_cast<double>(r) * sc.round_duration,
                       sc.round_duration, batch);
      }
    }));
    auto replay = record_trace(sc, seed, rounds);
    ms.push_back(measure("DriverPrePR_" + tag, n, repeats, [&] {
      (void)run_reference(sc, seed, rounds, replay, /*advance_all=*/true,
                          /*record=*/false);
    }));
    ms.push_back(measure("DriverRefEngineLazy_" + tag, n, repeats, [&] {
      (void)run_reference(sc, seed, rounds, replay, /*advance_all=*/false,
                          /*record=*/false);
    }));
    ms.push_back(measure("DriverPerEvent_" + tag, n, repeats, [&] {
      (void)run_new_shape(sc, seed, rounds, replay,
                          ecrs::edge::delivery_mode::per_event,
                          /*record=*/false);
    }));
    ms.push_back(measure("DriverBatched_" + tag, n, repeats, [&] {
      (void)run_new_shape(sc, seed, rounds, replay,
                          ecrs::edge::delivery_mode::batched,
                          /*record=*/false);
    }));
  }

  std::printf("{\n");
  std::printf("  \"pr\": 5,\n");
  std::printf(
      "  \"benchmark\": \"DES engine throughput: slab/indexed-heap engine vs "
      "frozen pre-PR5 reference (schedule+fire churn, 4096 in flight), "
      "batched stream lane, and the Sec. V-A driver scenario (300 users, 25 "
      "microservices, 10 clouds, ~4500 arrivals/round) replaying one "
      "recorded trace through the verbatim pre-PR configuration, the "
      "reference engine with lazy advance, and the new engine under "
      "per-event and batched delivery; per-round stats and estimates "
      "cross-checked (bitwise vs the reference engine) before timing "
      "(bench/des_throughput.cc)\",\n");
  std::printf("  \"config\": {\"seed\": %llu, \"repeats\": %zu, "
              "\"engine_requests\": %llu, \"driver_requests\": %llu},\n",
              static_cast<unsigned long long>(seed), repeats,
              static_cast<unsigned long long>(engine_max),
              static_cast<unsigned long long>(driver_max));
  print_measurements(ms);

  const std::string big = size_label(std::min<std::uint64_t>(
      driver_max, 1000000ull));
  const double pre_pr_ns = mean_ns_of(ms, "DriverPrePR_" + big);
  const double ref_lazy_ns = mean_ns_of(ms, "DriverRefEngineLazy_" + big);
  const double batched_ns = mean_ns_of(ms, "DriverBatched_" + big);
  const double per_event_ns = mean_ns_of(ms, "DriverPerEvent_" + big);
  std::printf("  \"speedups\": {\n");
  std::printf("    \"driver_batched_over_pre_pr_%s\": %.2f,\n", big.c_str(),
              batched_ns > 0.0 ? pre_pr_ns / batched_ns : 0.0);
  std::printf("    \"driver_per_event_over_pre_pr_%s\": %.2f,\n", big.c_str(),
              per_event_ns > 0.0 ? pre_pr_ns / per_event_ns : 0.0);
  std::printf("    \"driver_batched_over_ref_engine_lazy_%s\": %.2f\n",
              big.c_str(),
              batched_ns > 0.0 ? ref_lazy_ns / batched_ns : 0.0);
  std::printf("  },\n");
  std::printf("  \"bit_identical\": true\n");
  std::printf("}\n");
  return 0;
}
