// Theorem 3 / Theorem 7 ablation: measured approximation and competitive
// ratios against the proven bounds W·Ξ and αβ/(β−1). Expected: every
// measurement within its bound ("all_within_bound" = yes).
#include "bench_util.h"

int main(int argc, char** argv) {
  const ecrs::flags f(argc, argv);
  const auto cfg = ecrs::bench::sweep_from_flags(f, 15);
  ecrs::bench::emit(f, "Ablation: measured ratios vs proven bounds",
                    ecrs::harness::ablation_bounds(cfg));
  ecrs::bench::emit(
      f, "Ablation: capacity-aware price scaling (Algorithm 2) vs myopic",
      ecrs::harness::ablation_scaling(
          ecrs::bench::sweep_from_flags(f, 5)));
  return 0;
}
