// Figure 6(b): MSOA social cost, total payment and offline bound vs number
// of microservices for request loads 100 and 200. Paper shape: payment ≥
// social cost ≥ offline bound; doubling the load raises all three.
#include "bench_util.h"

int main(int argc, char** argv) {
  const ecrs::flags f(argc, argv);
  const auto cfg = ecrs::bench::sweep_from_flags(f, 5);
  ecrs::bench::emit(f, "Figure 6(b): MSOA social cost / payment / bound",
                    ecrs::harness::fig6b_msoa_cost(cfg));
  return 0;
}
