// Request model shared by the workload generator and the edge simulation.
#pragma once

#include <cstdint>
#include <string>

namespace ecrs::workload {

// QoS class of a request (paper §V-A: delay-sensitive requests arrive with
// Poisson mean 5, delay-tolerant with mean 10; the former are prioritized).
enum class qos_class : std::uint8_t {
  delay_sensitive = 0,
  delay_tolerant = 1,
};

[[nodiscard]] inline const char* to_string(qos_class c) {
  return c == qos_class::delay_sensitive ? "delay_sensitive"
                                         : "delay_tolerant";
}

struct request {
  std::uint64_t id = 0;
  std::uint32_t user = 0;           // issuing end user
  std::uint32_t microservice = 0;   // target microservice
  std::uint32_t region = 0;         // edge cloud hosting the microservice
  qos_class qos = qos_class::delay_sensitive;
  double arrival_time = 0.0;        // simulated seconds
  double service_demand = 1.0;      // resource-seconds of work
};

}  // namespace ecrs::workload
