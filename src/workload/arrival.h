// Arrival processes: sources of request inter-arrival times.
#pragma once

#include <memory>

#include "common/rng.h"

namespace ecrs::workload {

// Abstract arrival process. next_interarrival() returns the simulated time
// until the next arrival; it may depend on the current time (e.g. diurnal
// modulation).
class arrival_process {
 public:
  virtual ~arrival_process() = default;
  virtual double next_interarrival(double now, rng& gen) = 0;
  // Expected arrivals per unit time at `now` (used by analytic round
  // summaries and by tests).
  [[nodiscard]] virtual double rate_at(double now) const = 0;
};

// Homogeneous Poisson process with a constant rate.
class poisson_arrivals final : public arrival_process {
 public:
  explicit poisson_arrivals(double rate);
  double next_interarrival(double now, rng& gen) override;
  [[nodiscard]] double rate_at(double now) const override;

 private:
  double rate_;
};

// Deterministic arrivals with a fixed period (useful for tests and for
// stress scenarios with zero jitter).
class deterministic_arrivals final : public arrival_process {
 public:
  explicit deterministic_arrivals(double period);
  double next_interarrival(double now, rng& gen) override;
  [[nodiscard]] double rate_at(double now) const override;

 private:
  double period_;
};

// Poisson process whose rate is modulated sinusoidally with the given
// period, between base_rate*(1-depth) and base_rate*(1+depth). Models the
// diurnal load swing of a real edge deployment; sampled by thinning.
class diurnal_arrivals final : public arrival_process {
 public:
  diurnal_arrivals(double base_rate, double depth, double period);
  double next_interarrival(double now, rng& gen) override;
  [[nodiscard]] double rate_at(double now) const override;

 private:
  double base_rate_;
  double depth_;
  double period_;
};

}  // namespace ecrs::workload
