// Request-trace persistence: record a generated workload to CSV and replay
// it later, so experiments can be re-run bit-identically or fed from
// external trace files (the "real-world data traces" of §V are substituted
// by recorded synthetic traces; see DESIGN.md §3).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/request.h"

namespace ecrs::workload {

// Serialize requests as CSV with a fixed header:
// id,user,microservice,qos,arrival_time,service_demand
void write_trace(std::ostream& out, const std::vector<request>& requests);
void write_trace_file(const std::string& path,
                      const std::vector<request>& requests);

// Parse a trace written by write_trace. Throws ecrs::check_error on
// malformed input (wrong header, wrong field count, non-numeric fields).
[[nodiscard]] std::vector<request> read_trace(std::istream& in);
[[nodiscard]] std::vector<request> read_trace_file(const std::string& path);

}  // namespace ecrs::workload
