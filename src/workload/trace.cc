#include "workload/trace.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "common/check.h"

namespace ecrs::workload {
namespace {

constexpr const char* kHeader =
    "id,user,microservice,qos,arrival_time,service_demand";

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream ss(line);
  while (std::getline(ss, field, ',')) fields.push_back(field);
  return fields;
}

}  // namespace

void write_trace(std::ostream& out, const std::vector<request>& requests) {
  out << kHeader << '\n';
  for (const request& r : requests) {
    out << r.id << ',' << r.user << ',' << r.microservice << ','
        << static_cast<int>(r.qos) << ',' << r.arrival_time << ','
        << r.service_demand << '\n';
  }
}

void write_trace_file(const std::string& path,
                      const std::vector<request>& requests) {
  std::ofstream out(path);
  ECRS_CHECK_MSG(out.good(), "cannot open trace file " << path);
  write_trace(out, requests);
}

std::vector<request> read_trace(std::istream& in) {
  std::string line;
  ECRS_CHECK_MSG(std::getline(in, line), "empty trace");
  // Tolerate trailing carriage returns from foreign tools.
  if (!line.empty() && line.back() == '\r') line.pop_back();
  ECRS_CHECK_MSG(line == kHeader, "unexpected trace header: " << line);

  std::vector<request> requests;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const auto fields = split_fields(line);
    ECRS_CHECK_MSG(fields.size() == 6,
                   "trace line " << line_no << " has " << fields.size()
                                 << " fields, expected 6");
    request r;
    try {
      r.id = std::stoull(fields[0]);
      r.user = static_cast<std::uint32_t>(std::stoul(fields[1]));
      r.microservice = static_cast<std::uint32_t>(std::stoul(fields[2]));
      const int qos = std::stoi(fields[3]);
      ECRS_CHECK_MSG(qos == 0 || qos == 1,
                     "trace line " << line_no << ": bad qos " << qos);
      r.qos = static_cast<qos_class>(qos);
      r.arrival_time = std::stod(fields[4]);
      r.service_demand = std::stod(fields[5]);
    } catch (const std::invalid_argument&) {
      ECRS_CHECK_MSG(false, "trace line " << line_no << " is not numeric");
    } catch (const std::out_of_range&) {
      ECRS_CHECK_MSG(false, "trace line " << line_no << " is out of range");
    }
    ECRS_CHECK_MSG(r.service_demand >= 0.0,
                   "trace line " << line_no << ": negative service demand");
    requests.push_back(r);
  }
  return requests;
}

std::vector<request> read_trace_file(const std::string& path) {
  std::ifstream in(path);
  ECRS_CHECK_MSG(in.good(), "cannot open trace file " << path);
  return read_trace(in);
}

}  // namespace ecrs::workload
