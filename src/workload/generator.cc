#include "workload/generator.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/check.h"

namespace ecrs::workload {

generator::generator(generator_config config)
    : config_(config), gen_(config.seed) {
  ECRS_CHECK_MSG(config_.users > 0, "need at least one user");
  ECRS_CHECK_MSG(config_.microservices > 0, "need at least one microservice");
  ECRS_CHECK_MSG(
      config_.delay_sensitive_fraction >= 0.0 &&
          config_.delay_sensitive_fraction <= 1.0,
      "delay_sensitive_fraction out of [0,1]");
  ECRS_CHECK_MSG(config_.mean_service_demand > 0.0,
                 "mean service demand must be positive");
  ECRS_CHECK_MSG(config_.sensitive_mean_demand >= 0.0 &&
                     config_.tolerant_mean_demand >= 0.0,
                 "per-class demand overrides must be non-negative");
  ECRS_CHECK_MSG(config_.regions > 0, "need at least one region");

  const auto sensitive_count = static_cast<std::uint32_t>(
      config_.delay_sensitive_fraction *
      static_cast<double>(config_.microservices));
  class_by_service_.resize(config_.microservices, qos_class::delay_tolerant);
  for (std::uint32_t s = 0; s < sensitive_count; ++s) {
    class_by_service_[s] = qos_class::delay_sensitive;
  }
  // Shuffle so classes are not correlated with microservice ids.
  gen_.shuffle(class_by_service_);

  // Per-class target lists: one uniform draw picks a matching microservice
  // directly. (The first cut rejection-sampled up to 16 candidate ids per
  // request — a measurable cost once rounds carry ~1M requests.) A class
  // with no microservices falls back to the full id space, preserving the
  // old "fall back to any microservice" behaviour.
  for (std::uint32_t m = 0; m < config_.microservices; ++m) {
    (class_by_service_[m] == qos_class::delay_sensitive ? sensitive_ids_
                                                        : tolerant_ids_)
        .push_back(m);
  }
}

qos_class generator::class_of(std::uint32_t microservice) const {
  ECRS_CHECK(microservice < class_by_service_.size());
  return class_by_service_[microservice];
}

std::uint32_t generator::region_of(std::uint32_t microservice) const {
  ECRS_CHECK(microservice < config_.microservices);
  return microservice % config_.regions;
}

double generator::mean_demand_of(qos_class cls) const {
  const double override_mean = cls == qos_class::delay_sensitive
                                   ? config_.sensitive_mean_demand
                                   : config_.tolerant_mean_demand;
  return override_mean > 0.0 ? override_mean : config_.mean_service_demand;
}

double generator::expected_arrivals_per_round() const {
  std::size_t sensitive = 0;
  for (qos_class c : class_by_service_) {
    if (c == qos_class::delay_sensitive) ++sensitive;
  }
  const auto tolerant = class_by_service_.size() - sensitive;
  const double users = static_cast<double>(config_.users);
  return users * (sensitive > 0 ? config_.sensitive_mean : 0.0) +
         users * (tolerant > 0 ? config_.tolerant_mean : 0.0);
}

std::vector<request> generator::round(double round_start, double duration) {
  std::vector<request> batch;
  round_into(round_start, duration, batch);
  return batch;
}

void generator::round_into(double round_start, double duration,
                           std::vector<request>& batch) {
  ECRS_CHECK_MSG(duration > 0.0, "round duration must be positive");
  batch.clear();
  // Expected count plus ~4 sigma of Poisson headroom: typical rounds fill
  // the reservation without regrowing, so a reused buffer stops allocating
  // after its first round.
  const double expected = expected_arrivals_per_round() * rate_scale_;
  const auto want = static_cast<std::size_t>(
      expected + 4.0 * std::sqrt(std::max(expected, 1.0)) + 16.0);
  if (batch.capacity() < want) batch.reserve(want);
  for (std::uint32_t user = 0; user < config_.users; ++user) {
    // Each user issues a Poisson number of requests per class per round and
    // spreads them over microservices of that class uniformly at random.
    for (const qos_class cls :
         {qos_class::delay_sensitive, qos_class::delay_tolerant}) {
      const double mean = (cls == qos_class::delay_sensitive
                               ? config_.sensitive_mean
                               : config_.tolerant_mean) *
                          rate_scale_;
      const std::int64_t count = gen_.poisson(mean);
      const std::vector<std::uint32_t>& ids =
          cls == qos_class::delay_sensitive ? sensitive_ids_ : tolerant_ids_;
      for (std::int64_t k = 0; k < count; ++k) {
        // Pick a target microservice of the matching class in one draw;
        // an empty class falls back to any microservice.
        std::uint32_t target;
        if (!ids.empty()) {
          target = ids[static_cast<std::size_t>(gen_.uniform_int(
              0, static_cast<std::int64_t>(ids.size()) - 1))];
        } else {
          target = static_cast<std::uint32_t>(gen_.uniform_int(
              0, static_cast<std::int64_t>(config_.microservices) - 1));
        }
        request r;
        r.id = next_request_id_++;
        r.user = user;
        r.microservice = target;
        r.region = region_of(target);
        r.qos = class_by_service_[target];
        r.arrival_time = round_start + gen_.uniform_real(0.0, duration);
        r.service_demand = gen_.exponential(1.0 / mean_demand_of(r.qos));
        batch.push_back(r);
      }
    }
  }
  // Arrival order; delay-sensitive first among (rare) equal timestamps — the
  // paper gives them priority.
  std::sort(batch.begin(), batch.end(), [](const request& a, const request& b) {
    if (a.arrival_time != b.arrival_time) return a.arrival_time < b.arrival_time;
    return static_cast<int>(a.qos) < static_cast<int>(b.qos);
  });
}

void generator::set_rate_scale(double scale) {
  ECRS_CHECK_MSG(scale >= 0.0, "rate scale must be non-negative");
  rate_scale_ = scale;
}

void generator::save(ecrs::checkpoint_writer& w) const {
  const std::array<std::uint64_t, 4>& st = gen_.state();
  for (std::uint64_t word : st) w.u64(word);
  w.u64(next_request_id_);
  w.f64(rate_scale_);
}

void generator::load(ecrs::checkpoint_reader& r) {
  std::array<std::uint64_t, 4> st;
  for (std::uint64_t& word : st) word = r.u64();
  gen_.set_state(st);
  next_request_id_ = r.u64();
  rate_scale_ = r.f64();
}

}  // namespace ecrs::workload
