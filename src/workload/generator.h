// Workload generator (paper §V-A).
//
// 300 edge users issue requests to microservices. Each microservice serves
// one of two QoS classes: delay-sensitive request batches arrive with
// Poisson mean 5 per round, delay-tolerant with Poisson mean 10 per round.
// Service demands are exponential around a configurable mean.
#pragma once

#include <cstdint>
#include <vector>

#include "common/checkpoint.h"
#include "common/rng.h"
#include "workload/request.h"
#include "workload/round_source.h"

namespace ecrs::workload {

struct generator_config {
  std::uint32_t users = 300;
  std::uint32_t microservices = 25;
  // Fraction of microservices that are delay-sensitive.
  double delay_sensitive_fraction = 0.5;
  // Poisson mean of requests per (user, round) for each class, spread across
  // the microservices of that class.
  double sensitive_mean = 5.0;
  double tolerant_mean = 10.0;
  // Mean resource-seconds of work per request (exponentially distributed).
  double mean_service_demand = 1.0;
  // Per-class overrides (paper's future-work extension: "diverse processing
  // time of each task"). 0 = use mean_service_demand.
  double sensitive_mean_demand = 0.0;
  double tolerant_mean_demand = 0.0;
  // Edge cloud regions hosting the microservices (sharded marketplace).
  // Microservice m is hosted on region m % regions, so every request is
  // tagged with the region that must serve it. 1 = the single-market
  // setups of PRs 1-7 (every request tagged region 0; streams unchanged).
  std::uint32_t regions = 1;
  std::uint64_t seed = 42;
};

// Per-round batch: the requests that arrived during one auction round,
// sorted by arrival time, delay-sensitive first among equal times (priority).
class generator final : public round_source {
 public:
  explicit generator(generator_config config);

  [[nodiscard]] const generator_config& config() const { return config_; }

  [[nodiscard]] std::uint32_t microservice_count() const override {
    return config_.microservices;
  }

  // QoS class assigned to each microservice (index = microservice id).
  [[nodiscard]] qos_class class_of(std::uint32_t microservice) const;

  // Edge cloud region hosting a microservice (round-robin over
  // config.regions; deterministic, no rng involved).
  [[nodiscard]] std::uint32_t region_of(std::uint32_t microservice) const;

  // Generate all requests arriving in [round_start, round_start + duration).
  [[nodiscard]] std::vector<request> round(double round_start,
                                           double duration);

  // Same stream of requests, written into a caller-owned buffer: `batch` is
  // cleared, reserved from expected_arrivals_per_round(), and refilled, so
  // a driver that reuses one buffer pays no allocation in steady state.
  void round_into(double round_start, double duration,
                  std::vector<request>& batch) override;

  // Total expected arrivals per round across all users (sanity metric).
  [[nodiscard]] double expected_arrivals_per_round() const;

  // Effective mean service demand of a QoS class (override or global).
  [[nodiscard]] double mean_demand_of(qos_class cls) const;

  // Scale the per-class Poisson arrival means for subsequent rounds
  // (service demands are untouched). Scenario programs drive this per
  // round: diurnal cycles, flash crowds. 1.0 = configured rates.
  void set_rate_scale(double scale);
  [[nodiscard]] double rate_scale() const { return rate_scale_; }

  // Checkpoint the generator's dynamic state (rng state, next request id,
  // current rate scale). Class assignment and target lists are
  // construction-time deterministic from the config and not serialized.
  void save(ecrs::checkpoint_writer& w) const;
  void load(ecrs::checkpoint_reader& r);

 private:
  generator_config config_;
  rng gen_;
  std::uint64_t next_request_id_ = 1;
  double rate_scale_ = 1.0;
  std::vector<qos_class> class_by_service_;
  // Microservice ids by class, ascending: round_into targets a class with
  // one uniform draw instead of rejection sampling the full id space.
  std::vector<std::uint32_t> sensitive_ids_;
  std::vector<std::uint32_t> tolerant_ids_;
};

}  // namespace ecrs::workload
