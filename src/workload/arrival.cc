#include "workload/arrival.h"

#include <cmath>

#include "common/check.h"

namespace ecrs::workload {

poisson_arrivals::poisson_arrivals(double rate) : rate_(rate) {
  ECRS_CHECK_MSG(rate > 0.0, "Poisson rate must be positive");
}

double poisson_arrivals::next_interarrival(double /*now*/, rng& gen) {
  return gen.exponential(rate_);
}

double poisson_arrivals::rate_at(double /*now*/) const { return rate_; }

deterministic_arrivals::deterministic_arrivals(double period)
    : period_(period) {
  ECRS_CHECK_MSG(period > 0.0, "period must be positive");
}

double deterministic_arrivals::next_interarrival(double /*now*/,
                                                 rng& /*gen*/) {
  return period_;
}

double deterministic_arrivals::rate_at(double /*now*/) const {
  return 1.0 / period_;
}

diurnal_arrivals::diurnal_arrivals(double base_rate, double depth,
                                   double period)
    : base_rate_(base_rate), depth_(depth), period_(period) {
  ECRS_CHECK_MSG(base_rate > 0.0, "base rate must be positive");
  ECRS_CHECK_MSG(depth >= 0.0 && depth < 1.0, "depth must be in [0,1)");
  ECRS_CHECK_MSG(period > 0.0, "period must be positive");
}

double diurnal_arrivals::rate_at(double now) const {
  constexpr double two_pi = 6.283185307179586;
  return base_rate_ * (1.0 + depth_ * std::sin(two_pi * now / period_));
}

double diurnal_arrivals::next_interarrival(double now, rng& gen) {
  // Ogata thinning against the peak rate.
  const double peak = base_rate_ * (1.0 + depth_);
  double t = now;
  for (;;) {
    t += gen.exponential(peak);
    if (gen.next_double() * peak <= rate_at(t)) return t - now;
  }
}

}  // namespace ecrs::workload
