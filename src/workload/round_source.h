// Abstract per-round request supplier.
//
// Decouples consumers of round batches (simrun::des_driver, replay tools,
// benches) from the concrete stochastic generator: anything that can fill a
// buffer with the requests arriving in [round_start, round_start + duration)
// — sorted by arrival time — can drive the event loop. workload::generator
// is the stochastic implementation; replay_source serves pre-recorded
// rounds (e.g. a trace loaded via workload/trace.h, or batches captured
// once so benchmark timings exclude generation cost).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "workload/request.h"

namespace ecrs::workload {

class round_source {
 public:
  virtual ~round_source() = default;

  // Number of distinct microservices requests may target (ids are
  // [0, microservice_count)).
  [[nodiscard]] virtual std::uint32_t microservice_count() const = 0;

  // Fill `batch` with the requests arriving in [round_start, round_start +
  // duration), sorted ascending by arrival time. `batch` is cleared first;
  // implementations should reuse its capacity.
  virtual void round_into(double round_start, double duration,
                          std::vector<request>& batch) = 0;

  // Zero-copy alternative: a source whose rounds already exist in memory may
  // hand out the round directly instead of copying it into the caller's
  // buffer. Returns nullptr when the source must generate (the default);
  // callers then fall back to round_into. A non-null view stays valid until
  // the source is destroyed or reset.
  [[nodiscard]] virtual const std::vector<request>* round_view(
      double /*round_start*/, double /*duration*/) {
    return nullptr;
  }
};

// Serves a fixed sequence of pre-recorded rounds, in order. round_into
// ignores the requested window beyond checking that rounds are consumed
// sequentially from the start; the caller owns keeping its round schedule
// consistent with how the rounds were recorded.
class replay_source final : public round_source {
 public:
  replay_source(std::vector<std::vector<request>> rounds,
                std::uint32_t microservices)
      : rounds_(std::move(rounds)), microservices_(microservices) {}

  [[nodiscard]] std::uint32_t microservice_count() const override {
    return microservices_;
  }

  void round_into(double /*round_start*/, double /*duration*/,
                  std::vector<request>& batch) override {
    ECRS_CHECK_MSG(next_ < rounds_.size(),
                   "replay_source exhausted after " << rounds_.size()
                                                    << " rounds");
    const auto& src = rounds_[next_++];
    batch.assign(src.begin(), src.end());
  }

  [[nodiscard]] const std::vector<request>* round_view(
      double /*round_start*/, double /*duration*/) override {
    ECRS_CHECK_MSG(next_ < rounds_.size(),
                   "replay_source exhausted after " << rounds_.size()
                                                    << " rounds");
    return &rounds_[next_++];
  }

  // Rewind so the same recording can drive another run.
  void reset() { next_ = 0; }

 private:
  std::vector<std::vector<request>> rounds_;
  std::uint32_t microservices_ = 0;
  std::size_t next_ = 0;
};

}  // namespace ecrs::workload
