// Social-welfare accounting (paper Definition 4).
//
// The social welfare of a round is the aggregate utility of every party:
// each winning seller earns payment − true cost, the platform earns
// charges − payments, and the demanders pay their charges. Payments and
// charges are transfers — they cancel — so the social welfare equals the
// negated social cost, and maximizing welfare is minimizing Σ J_ij x_ij.
// This module computes the full breakdown and verifies the identity.
#pragma once

#include <vector>

#include "auction/bid.h"
#include "auction/settlement.h"
#include "auction/ssam.h"

namespace ecrs::auction {

struct welfare_breakdown {
  std::vector<double> seller_utility;    // per winner position
  double total_seller_utility = 0.0;     // Σ (payment − cost)
  double platform_utility = 0.0;         // charges − payments
  double demander_expense = 0.0;         // Σ charges (utility −expense)
  double social_cost = 0.0;              // Σ winning true costs
  // Aggregate utility of all parties; equals −social_cost exactly because
  // payments and charges are internal transfers (Definition 4).
  [[nodiscard]] double social_welfare() const {
    return total_seller_utility + platform_utility - demander_expense;
  }
};

// Account one finished round. `result` must come from the same instance;
// `markup` is forwarded to the settlement (platform margin).
[[nodiscard]] welfare_breakdown account_welfare(
    const single_stage_instance& instance, const ssam_result& result,
    double markup = 0.0);

}  // namespace ecrs::auction
