#include "auction/exact.h"

#include <algorithm>
#include <limits>
#include <map>
#include <numeric>

#include "auction/ssam.h"
#include "common/check.h"
#include "lp/simplex.h"

namespace ecrs::auction {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------- DP (m=1)

reference_solution dp_single_demander(const single_stage_instance& instance) {
  const units target = instance.requirements[0];
  reference_solution result;
  if (target == 0) {
    result.feasible = true;
    result.exact = true;
    return result;
  }

  // Group bid indices by seller.
  std::map<seller_id, std::vector<std::size_t>> groups;
  for (std::size_t idx = 0; idx < instance.bids.size(); ++idx) {
    groups[instance.bids[idx].seller].push_back(idx);
  }

  const auto width = static_cast<std::size_t>(target) + 1;
  std::vector<double> dp(width, kInf);
  dp[0] = 0.0;
  // choice[g][u]: bid taken by group g to first reach coverage u (or npos).
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::vector<std::size_t>> choice;
  choice.reserve(groups.size());

  for (const auto& [seller, bid_indices] : groups) {
    (void)seller;
    std::vector<double> next = dp;  // option: seller sells nothing
    std::vector<std::size_t> pick(width, kNone);
    for (std::size_t idx : bid_indices) {
      const bid& b = instance.bids[idx];
      // Contribution to the single demander is its amount (coverage is {0}).
      const units gain = b.amount;
      for (std::size_t u = 0; u < width; ++u) {
        if (dp[u] == kInf) continue;
        const auto v = static_cast<std::size_t>(
            std::min<units>(target, static_cast<units>(u) + gain));
        const double cost = dp[u] + b.price;
        if (cost < next[v]) {
          next[v] = cost;
          pick[v] = idx;
        }
      }
    }
    dp.swap(next);
    choice.push_back(std::move(pick));
  }

  if (dp[width - 1] == kInf) {
    result.feasible = false;
    result.exact = true;
    result.cost = 0.0;
    return result;
  }
  result.feasible = true;
  result.exact = true;
  result.cost = dp[width - 1];
  result.lower_bound = result.cost;

  // Reconstruct by replaying groups backwards.
  // Rebuild the dp tables per layer to walk back (cheap: redo forward pass
  // storing layer snapshots).
  std::vector<std::vector<double>> layers;
  layers.reserve(groups.size() + 1);
  std::vector<double> cur(width, kInf);
  cur[0] = 0.0;
  layers.push_back(cur);
  std::size_t g = 0;
  for (const auto& [seller, bid_indices] : groups) {
    (void)seller;
    std::vector<double> next = cur;
    for (std::size_t idx : bid_indices) {
      const bid& b = instance.bids[idx];
      const units gain = b.amount;
      for (std::size_t u = 0; u < width; ++u) {
        if (cur[u] == kInf) continue;
        const auto v = static_cast<std::size_t>(
            std::min<units>(target, static_cast<units>(u) + gain));
        next[v] = std::min(next[v], cur[u] + b.price);
      }
    }
    cur.swap(next);
    layers.push_back(cur);
    ++g;
  }

  std::size_t u = width - 1;
  for (std::size_t layer = groups.size(); layer-- > 0;) {
    // Did layer `layer` keep u unchanged (seller sold nothing)?
    if (layers[layer][u] == layers[layer + 1][u]) continue;
    const std::size_t idx = choice[layer][u];
    ECRS_CHECK_MSG(idx != kNone, "DP reconstruction lost a choice");
    result.chosen.push_back(idx);
    const bid& b = instance.bids[idx];
    // Find the predecessor state.
    bool found = false;
    for (std::size_t prev = 0; prev < width && !found; ++prev) {
      if (layers[layer][prev] == kInf) continue;
      const auto v = static_cast<std::size_t>(
          std::min<units>(target, static_cast<units>(prev) + b.amount));
      if (v == u &&
          std::abs(layers[layer][prev] + b.price - layers[layer + 1][u]) <
              1e-9) {
        u = prev;
        found = true;
      }
    }
    ECRS_CHECK_MSG(found, "DP reconstruction failed");
  }
  std::reverse(result.chosen.begin(), result.chosen.end());
  return result;
}

// -------------------------------------------------------- B&B (general m)

struct seller_group {
  seller_id seller = 0;
  std::vector<std::size_t> bid_indices;
  double cheapest_ppu = kInf;  // optimistic price per useful unit
};

class branch_and_bound {
 public:
  branch_and_bound(const single_stage_instance& instance,
                   std::size_t node_limit)
      : instance_(instance), node_limit_(node_limit) {
    build_groups();
  }

  reference_solution run() {
    reference_solution result;
    // Incumbent from the greedy (never worse than nothing).
    const std::vector<std::size_t> greedy = greedy_selection(instance_);
    {
      coverage_state state(instance_.requirements);
      double cost = 0.0;
      for (std::size_t idx : greedy) {
        state.apply(instance_.bids[idx]);
        cost += instance_.bids[idx].price;
      }
      if (state.satisfied()) {
        best_cost_ = cost;
        best_chosen_ = greedy;
      }
    }

    std::vector<units> supply(instance_.requirements.size(), 0);
    std::vector<std::size_t> chosen;
    dfs(0, supply, 0.0, chosen);

    result.nodes = nodes_;
    result.exact = nodes_ <= node_limit_;
    result.feasible = best_cost_ < kInf;
    result.cost = result.feasible ? best_cost_ : 0.0;
    result.chosen = best_chosen_;
    if (result.feasible && result.exact) {
      result.lower_bound = result.cost;
    }
    return result;
  }

 private:
  void build_groups() {
    std::map<seller_id, seller_group> by_seller;
    for (std::size_t idx = 0; idx < instance_.bids.size(); ++idx) {
      const bid& b = instance_.bids[idx];
      seller_group& grp = by_seller[b.seller];
      grp.seller = b.seller;
      grp.bid_indices.push_back(idx);
      const double ppu =
          b.price / static_cast<double>(b.amount *
                                        static_cast<units>(b.coverage.size()));
      grp.cheapest_ppu = std::min(grp.cheapest_ppu, ppu);
    }
    for (auto& [seller, grp] : by_seller) {
      (void)seller;
      // Cheapest bids first: finds good incumbents early.
      std::sort(grp.bid_indices.begin(), grp.bid_indices.end(),
                [&](std::size_t a, std::size_t b2) {
                  return instance_.bids[a].price < instance_.bids[b2].price;
                });
      groups_.push_back(std::move(grp));
    }
    // Most cost-effective sellers first.
    std::sort(groups_.begin(), groups_.end(),
              [](const seller_group& a, const seller_group& b) {
                return a.cheapest_ppu < b.cheapest_ppu;
              });

    // Suffix structures for pruning.
    const std::size_t g = groups_.size();
    const std::size_t m = instance_.requirements.size();
    suffix_supply_.assign(g + 1, std::vector<units>(m, 0));
    suffix_ppu_.assign(g + 1, kInf);
    for (std::size_t rank = g; rank-- > 0;) {
      suffix_supply_[rank] = suffix_supply_[rank + 1];
      suffix_ppu_[rank] =
          std::min(suffix_ppu_[rank + 1], groups_[rank].cheapest_ppu);
      // Seller's best possible contribution per demander (over its bids).
      std::vector<units> best(m, 0);
      for (std::size_t idx : groups_[rank].bid_indices) {
        const bid& b = instance_.bids[idx];
        for (demander_id k : b.coverage) {
          best[k] = std::max(best[k], b.amount);
        }
      }
      for (std::size_t k = 0; k < m; ++k) suffix_supply_[rank][k] += best[k];
    }
  }

  [[nodiscard]] units total_deficit(const std::vector<units>& supply) const {
    units deficit = 0;
    for (std::size_t k = 0; k < supply.size(); ++k) {
      deficit += std::max<units>(0, instance_.requirements[k] - supply[k]);
    }
    return deficit;
  }

  void dfs(std::size_t rank, std::vector<units>& supply, double cost,
           std::vector<std::size_t>& chosen) {
    if (nodes_ > node_limit_) return;
    ++nodes_;

    const units deficit = total_deficit(supply);
    if (deficit == 0) {
      if (cost < best_cost_) {
        best_cost_ = cost;
        best_chosen_ = chosen;
      }
      return;
    }
    if (rank == groups_.size()) return;

    // Feasibility prune: even taking every remaining seller's best bid per
    // demander cannot close the gap.
    for (std::size_t k = 0; k < supply.size(); ++k) {
      if (supply[k] + suffix_supply_[rank][k] < instance_.requirements[k]) {
        return;
      }
    }
    // Optimistic cost prune.
    if (suffix_ppu_[rank] < kInf &&
        cost + static_cast<double>(deficit) * suffix_ppu_[rank] >=
            best_cost_ - 1e-12) {
      return;
    }

    const seller_group& grp = groups_[rank];
    // Option A: take one of the seller's bids.
    for (std::size_t idx : grp.bid_indices) {
      const bid& b = instance_.bids[idx];
      if (cost + b.price >= best_cost_ - 1e-12) continue;
      for (demander_id k : b.coverage) supply[k] += b.amount;
      chosen.push_back(idx);
      dfs(rank + 1, supply, cost + b.price, chosen);
      chosen.pop_back();
      for (demander_id k : b.coverage) supply[k] -= b.amount;
    }
    // Option B: the seller sells nothing.
    dfs(rank + 1, supply, cost, chosen);
  }

  const single_stage_instance& instance_;
  std::size_t node_limit_;
  std::vector<seller_group> groups_;
  std::vector<std::vector<units>> suffix_supply_;
  std::vector<double> suffix_ppu_;
  double best_cost_ = kInf;
  std::vector<std::size_t> best_chosen_;
  std::size_t nodes_ = 0;
};

}  // namespace

reference_solution solve_exact(const single_stage_instance& instance,
                               std::size_t node_limit) {
  instance.validate();
  if (instance.requirements.size() == 1) {
    return dp_single_demander(instance);
  }
  branch_and_bound solver(instance, node_limit);
  reference_solution result = solver.run();
  if (!result.exact && result.feasible) {
    // Budget exhausted: certify with the LP bound instead.
    result.lower_bound = lp_bound(instance);
  }
  return result;
}

double lp_bound(const single_stage_instance& instance) {
  instance.validate();
  lp::model m;
  for (const bid& b : instance.bids) {
    m.add_variable(b.price);
  }
  // At most one bid per seller.
  std::map<seller_id, std::vector<std::size_t>> groups;
  for (std::size_t idx = 0; idx < instance.bids.size(); ++idx) {
    groups[instance.bids[idx].seller].push_back(idx);
  }
  for (const auto& [seller, bid_indices] : groups) {
    (void)seller;
    std::vector<std::pair<std::size_t, double>> row;
    row.reserve(bid_indices.size());
    for (std::size_t idx : bid_indices) row.emplace_back(idx, 1.0);
    m.add_constraint(row, lp::row_sense::le, 1.0);
  }
  // Coverage per demander.
  for (std::size_t k = 0; k < instance.requirements.size(); ++k) {
    if (instance.requirements[k] == 0) continue;
    std::vector<std::pair<std::size_t, double>> row;
    for (std::size_t idx = 0; idx < instance.bids.size(); ++idx) {
      const bid& b = instance.bids[idx];
      if (std::binary_search(b.coverage.begin(), b.coverage.end(),
                             static_cast<demander_id>(k))) {
        row.emplace_back(idx, static_cast<double>(b.amount));
      }
    }
    m.add_constraint(row, lp::row_sense::ge,
                     static_cast<double>(instance.requirements[k]));
  }
  const lp::solution sol = lp::solve(m);
  ECRS_CHECK_MSG(sol.status == lp::solve_status::optimal,
                 "LP relaxation not optimal: " << lp::to_string(sol.status));
  return sol.objective;
}

double offline_lp_bound(const online_instance& instance) {
  instance.validate();
  lp::model m;
  // Variable per (round, bid) with the seller in its window.
  struct var_key {
    std::size_t round;
    std::size_t bid_index;
  };
  std::vector<var_key> vars;
  std::vector<std::vector<std::size_t>> var_of_round(instance.rounds.size());
  for (std::size_t t = 0; t < instance.rounds.size(); ++t) {
    var_of_round[t].assign(instance.rounds[t].bids.size(),
                           static_cast<std::size_t>(-1));
    for (std::size_t idx = 0; idx < instance.rounds[t].bids.size(); ++idx) {
      const bid& b = instance.rounds[t].bids[idx];
      if (!instance.in_window(b.seller, static_cast<std::uint32_t>(t + 1))) {
        continue;
      }
      var_of_round[t][idx] = m.add_variable(b.price);
      vars.push_back(var_key{t, idx});
    }
  }

  // Per (round, seller): at most one bid.
  for (std::size_t t = 0; t < instance.rounds.size(); ++t) {
    std::map<seller_id, std::vector<std::size_t>> groups;
    for (std::size_t idx = 0; idx < instance.rounds[t].bids.size(); ++idx) {
      if (var_of_round[t][idx] == static_cast<std::size_t>(-1)) continue;
      groups[instance.rounds[t].bids[idx].seller].push_back(
          var_of_round[t][idx]);
    }
    for (const auto& [seller, vs] : groups) {
      (void)seller;
      std::vector<std::pair<std::size_t, double>> row;
      for (std::size_t v : vs) row.emplace_back(v, 1.0);
      m.add_constraint(row, lp::row_sense::le, 1.0);
    }
    // Per (round, demander): coverage.
    for (std::size_t k = 0; k < instance.rounds[t].requirements.size(); ++k) {
      if (instance.rounds[t].requirements[k] == 0) continue;
      std::vector<std::pair<std::size_t, double>> row;
      for (std::size_t idx = 0; idx < instance.rounds[t].bids.size(); ++idx) {
        if (var_of_round[t][idx] == static_cast<std::size_t>(-1)) continue;
        const bid& b = instance.rounds[t].bids[idx];
        if (std::binary_search(b.coverage.begin(), b.coverage.end(),
                               static_cast<demander_id>(k))) {
          row.emplace_back(var_of_round[t][idx],
                           static_cast<double>(b.amount));
        }
      }
      m.add_constraint(row, lp::row_sense::ge,
                       static_cast<double>(instance.rounds[t].requirements[k]));
    }
  }

  // Per seller: lifetime participation capacity (constraint (11)).
  for (std::size_t s = 0; s < instance.sellers.size(); ++s) {
    std::vector<std::pair<std::size_t, double>> row;
    for (std::size_t t = 0; t < instance.rounds.size(); ++t) {
      for (std::size_t idx = 0; idx < instance.rounds[t].bids.size(); ++idx) {
        if (var_of_round[t][idx] == static_cast<std::size_t>(-1)) continue;
        const bid& b = instance.rounds[t].bids[idx];
        if (b.seller == s) {
          row.emplace_back(var_of_round[t][idx],
                           static_cast<double>(b.coverage_size()));
        }
      }
    }
    if (!row.empty()) {
      m.add_constraint(row, lp::row_sense::le,
                       static_cast<double>(instance.sellers[s].capacity));
    }
  }

  const lp::solution sol = lp::solve(m);
  ECRS_CHECK_MSG(sol.status == lp::solve_status::optimal,
                 "offline LP relaxation not optimal: "
                     << lp::to_string(sol.status));
  return sol.objective;
}

namespace {

// Exhaustive offline search for small instances: per round, per seller in
// window, choose one bid or none, subject to capacities; prune on cost.
class offline_search {
 public:
  offline_search(const online_instance& instance, std::size_t node_limit)
      : instance_(instance), node_limit_(node_limit) {
    capacity_left_.reserve(instance_.sellers.size());
    for (const seller_profile& p : instance_.sellers) {
      capacity_left_.push_back(p.capacity);
    }
    // Precompute, per round, the sellers present and their bid indices.
    round_groups_.resize(instance_.rounds.size());
    for (std::size_t t = 0; t < instance_.rounds.size(); ++t) {
      std::map<seller_id, std::vector<std::size_t>> groups;
      for (std::size_t idx = 0; idx < instance_.rounds[t].bids.size(); ++idx) {
        const bid& b = instance_.rounds[t].bids[idx];
        if (instance_.in_window(b.seller, static_cast<std::uint32_t>(t + 1))) {
          groups[b.seller].push_back(idx);
        }
      }
      for (auto& [seller, idxs] : groups) {
        round_groups_[t].push_back({seller, std::move(idxs)});
      }
    }
  }

  reference_solution run() {
    std::vector<std::size_t> chosen;
    descend_round(0, 0.0, chosen);
    reference_solution result;
    result.nodes = nodes_;
    result.exact = nodes_ <= node_limit_;
    result.feasible = best_cost_ < kInf;
    result.cost = result.feasible ? best_cost_ : 0.0;
    result.lower_bound = result.exact && result.feasible ? best_cost_ : 0.0;
    result.chosen = best_chosen_;
    return result;
  }

 private:
  struct group {
    seller_id seller;
    std::vector<std::size_t> bids;
  };

  void descend_round(std::size_t t, double cost,
                     std::vector<std::size_t>& chosen) {
    if (nodes_ > node_limit_) return;
    if (t == instance_.rounds.size()) {
      if (cost < best_cost_) {
        best_cost_ = cost;
        best_chosen_ = chosen;
      }
      return;
    }
    std::vector<units> supply(instance_.rounds[t].requirements.size(), 0);
    descend_seller(t, 0, supply, cost, chosen);
  }

  void descend_seller(std::size_t t, std::size_t g, std::vector<units>& supply,
                      double cost, std::vector<std::size_t>& chosen) {
    if (nodes_ > node_limit_) return;
    ++nodes_;
    if (cost >= best_cost_ - 1e-12) return;
    if (g == round_groups_[t].size()) {
      // Round complete: all requirements must be covered.
      const auto& req = instance_.rounds[t].requirements;
      for (std::size_t k = 0; k < req.size(); ++k) {
        if (supply[k] < req[k]) return;
      }
      descend_round(t + 1, cost, chosen);
      return;
    }
    const group& grp = round_groups_[t][g];
    // Take one of the bids (capacity permitting).
    for (std::size_t idx : grp.bids) {
      const bid& b = instance_.rounds[t].bids[idx];
      const auto weight = static_cast<units>(b.coverage_size());
      if (capacity_left_[b.seller] < weight) continue;
      capacity_left_[b.seller] -= weight;
      for (demander_id k : b.coverage) supply[k] += b.amount;
      chosen.push_back(t * kRoundStride + idx);
      descend_seller(t, g + 1, supply, cost + b.price, chosen);
      chosen.pop_back();
      for (demander_id k : b.coverage) supply[k] -= b.amount;
      capacity_left_[b.seller] += weight;
    }
    // Or sell nothing this round.
    descend_seller(t, g + 1, supply, cost, chosen);
  }

  const online_instance& instance_;
  std::size_t node_limit_;
  std::vector<units> capacity_left_;
  std::vector<std::vector<group>> round_groups_;
  double best_cost_ = kInf;
  std::vector<std::size_t> best_chosen_;
  std::size_t nodes_ = 0;
};

}  // namespace

reference_solution offline_exact(const online_instance& instance,
                                 std::size_t node_limit) {
  instance.validate();
  offline_search solver(instance, node_limit);
  reference_solution result = solver.run();
  if (!result.exact && result.feasible) {
    result.lower_bound = offline_lp_bound(instance);
  }
  return result;
}

}  // namespace ecrs::auction
