// MSOA: Multi-Stage Online Auction (paper §IV-E, Algorithm 2).
//
// Ties a series of SSAM rounds into an online mechanism without knowledge of
// future bids or demands. Each seller i carries a dual variable ψ_i that
// grows as its remaining capacity Θ_i is consumed; round-t bids are priced
// at the scaled cost ∇ = J + |S_ij|·ψ_i^{t−1}, so sellers close to depletion
// look expensive and are saved for future rounds. Bids whose participation
// weight would exceed the remaining capacity are excluded outright
// (Algorithm 2 lines 5–6). Winners' ψ updates follow line 11:
//   ψ_i^t = ψ_i^{t−1}·(1 + |S_ij|/(α·Θ_i)) + J_ij·|S_ij|/(α·Θ_i²),
// with α the SSAM approximation factor. Theorem 7: the mechanism is
// αβ/(β−1)-competitive in social cost, β = min_i Θ_i/|S_ij|.
//
// Payments are computed by SSAM in scaled-price space and unscaled by
// −|S_ij|·ψ_i^{t−1}, so individual rationality holds against true costs.
//
// Two entry points:
//  - msoa_session: incremental, one run_round() call per auction round —
//    what an online deployment uses (see examples/edge_marketplace.cpp);
//  - run_msoa(): convenience wrapper executing a whole online_instance.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "auction/compiled.h"
#include "auction/online.h"
#include "auction/ssam.h"
#include "common/annotations.h"
#include "common/checkpoint.h"
#include "common/rng.h"

namespace ecrs::auction {

struct msoa_options {
  ssam_options stage;  // per-round SSAM configuration
  // α used in the ψ update. 0 = auto: freeze the first non-trivial round's
  // realized ratio bound (max(1, W·Ξ)).
  double alpha = 0.0;
  // Cross-round warm start: when a round's admitted bids have the same
  // topology (seller, amount, coverage) as the session's cached compiled
  // view — the standing-bid workload, where only the per-seller ψ offsets
  // ∇ = J + |S_ij|·ψ_i and the demand vector move between rounds — the
  // round is served by patching prices/requirements in place and restoring
  // the sorted candidate order with a stable partial re-sort, instead of
  // re-validating, re-copying and re-compiling the whole instance. Results
  // are bit-identical either way; disable to force cold rounds.
  bool warm_start = true;
};

struct msoa_round_outcome {
  std::uint32_t round = 0;                 // 1-based
  ssam_result stage;                       // on scaled prices
  std::vector<std::size_t> winner_bids;    // original bid indices, selection order
  std::vector<double> true_prices;         // parallel to winner_bids
  std::vector<double> payments;            // unscaled, parallel to winner_bids
  double social_cost = 0.0;                // sum of true prices
  bool feasible = false;
  std::size_t admitted_bids = 0;           // bids surviving window+capacity
};

struct msoa_result {
  std::vector<msoa_round_outcome> rounds;
  double social_cost = 0.0;
  double total_payment = 0.0;
  bool feasible = true;                    // every round feasible
  double alpha = 1.0;                      // α actually used
  double beta = std::numeric_limits<double>::infinity();  // min Θ_i/|S_ij|
  double competitive_bound =
      std::numeric_limits<double>::infinity();  // αβ/(β−1); inf if β <= 1
  std::vector<double> psi_final;           // per seller
  std::vector<units> capacity_used;        // χ_i per seller
};

// Incremental online mechanism: construct with the seller profiles, then
// feed one single-stage instance (with TRUE prices) per round. The session
// owns the ψ/χ state between rounds.
class msoa_session {
 public:
  explicit msoa_session(std::vector<seller_profile> sellers,
                        msoa_options options = {});

  [[nodiscard]] std::size_t sellers() const { return profiles_.size(); }
  [[nodiscard]] std::uint32_t rounds_run() const { return round_; }
  [[nodiscard]] double psi(seller_id s) const;
  [[nodiscard]] units capacity_used(seller_id s) const;
  [[nodiscard]] units capacity_left(seller_id s) const;
  [[nodiscard]] double alpha() const { return alpha_ > 0.0 ? alpha_ : 1.0; }
  [[nodiscard]] double beta() const { return beta_; }
  // Rounds served by patching the warm-start cache instead of a cold
  // validate + compile (see msoa_options::warm_start).
  [[nodiscard]] std::size_t warm_rounds() const { return warm_rounds_; }
  // αβ/(β−1) over the rounds seen so far (α if no bid was ever admitted,
  // infinity if β <= 1).
  [[nodiscard]] double competitive_bound() const;

  // Execute the next auction round. Bids must reference sellers known to
  // the session and carry true (unscaled) prices.
  [[nodiscard]] msoa_round_outcome run_round(
      const single_stage_instance& round);

  // Allocation-free flavour: run the round INTO a caller-owned outcome,
  // reusing its vectors' capacity (cleared, not shrunk). With warm-start
  // rounds and stage.payment_threads == 1 this keeps the whole round off
  // the allocator at steady state. Bit-identical to the value overload.
  void run_round(const single_stage_instance& round, msoa_round_outcome& out);

  // Record a sale made OUTSIDE the session's own rounds — the sharded
  // marketplace's spillover stage sells a seller's spare capacity into a
  // neighboring region between local rounds. Consumes `weight`
  // participation units of lifetime capacity and applies the same line-11
  // ψ update as a local win at asking price `price`, so externally sold
  // capacity is protected in subsequent local rounds exactly like locally
  // sold capacity. Throws if the seller lacks the remaining capacity.
  void consume_external(seller_id s, units weight, double price);

  // Seller churn: an inactive seller's bids are skipped at admission (before
  // the β update, as if the bid never arrived) until reactivated. ψ/χ state
  // survives the outage, so a recovered seller resumes with its history.
  void set_seller_active(seller_id s, bool active);
  [[nodiscard]] bool seller_active(seller_id s) const;

  // Checkpoint the cross-round mechanism state: round counter, frozen α,
  // realized β, per-seller ψ/χ and activity flags. The warm-start cache is
  // NOT serialized — load marks it invalid, and warm/cold rounds are
  // bit-identical by contract, so a resumed session replays exactly.
  void save(checkpoint_writer& w) const;
  void load(checkpoint_reader& r);

 private:
  std::vector<seller_profile> profiles_;
  msoa_options options_;
  std::uint32_t round_ = 0;  // rounds completed
  double alpha_ = 0.0;       // 0 until frozen (auto mode)
  double beta_ = std::numeric_limits<double>::infinity();
  std::vector<double> psi_;
  std::vector<units> used_;
  std::vector<char> active_;  // seller churn flags, 1 = participating
  // Per-round working storage, reused across run_round calls so steady-state
  // rounds stay off the allocator: the scaled-price candidate instance, its
  // admitted-bid -> original-bid map, and the SSAM workspace. Makes the
  // session move-only (and, like the ψ/χ state, not thread-safe).
  ECRS_THREAD_OWNED("session thread") single_stage_instance scaled_;
  ECRS_THREAD_OWNED("session thread") std::vector<std::size_t> original_index_;
  ECRS_THREAD_OWNED("session thread") ssam_scratch scratch_;
  // Warm-start cache: the compiled view of the last cold-compiled round's
  // admitted scaled instance. The compiled rows double as the topology
  // snapshot the warm check compares against; the warm path then re-patches
  // every price and requirement (no-ops when unchanged), so the view always
  // represents the CURRENT round exactly, whatever happened in between.
  ECRS_THREAD_OWNED("session thread") compiled_instance compiled_;
  // compiled_ holds a compiled topology
  ECRS_THREAD_OWNED("session thread") bool cache_valid_ = false;
  ECRS_THREAD_OWNED("session thread") std::size_t warm_rounds_ = 0;
};

// Run a complete online instance through a fresh session.
[[nodiscard]] msoa_result run_msoa(const online_instance& instance,
                                   const msoa_options& options = {});

// ---------------------------------------------------------------------------
// Evaluation variants (paper §V, Figure 5a). The paper compares MSOA against
// MSOA-DA (optimal demand estimation), MSOA-RC (higher resource capacity)
// and MSOA-OA (both). We realize them as instance transforms over a ground-
// truth instance:
//  - base:            demands perturbed by multiplicative estimation noise;
//  - demand_aware:    exact demands (perfect estimator);
//  - high_capacity:   noisy demands, seller capacities scaled up;
//  - fully_optimized: exact demands and scaled capacities.
enum class msoa_variant { base, demand_aware, high_capacity, fully_optimized };

[[nodiscard]] const char* to_string(msoa_variant v);

struct variant_options {
  double demand_noise = 0.3;     // ± relative error of the estimator
  double capacity_factor = 2.0;  // Θ multiplier for the RC/OA variants
};

// Produce the transformed instance the named variant runs on. `gen` drives
// the estimation noise (deterministic given the caller's seed).
[[nodiscard]] online_instance apply_variant(const online_instance& truth,
                                            msoa_variant variant,
                                            const variant_options& options,
                                            rng& gen);

}  // namespace ecrs::auction
