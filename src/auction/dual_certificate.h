// Constructive dual certificate for the winner selection LP.
//
// Algorithm 1 (lines 13–18) builds dual variables from the greedy's price
// shares to bound its approximation ratio. This module makes that
// construction concrete and *verifiable*: from an SSAM run it derives a
// provably feasible solution (y, z) of the dual of the winner-selection LP
//
//   max  Σ_k X_k·y_k − Σ_s z_s
//   s.t. Σ_{k∈S_ij} a_ij·y_k − z_s(i) ≤ price_ij      for every bid (i,j)
//        y, z ≥ 0
//
// (y_k prices demander k's units, z_s absorbs the per-seller one-bid rows).
// Any feasible (y, z) certifies objective ≤ LP optimum ≤ ILP optimum by
// weak duality — a combinatorial lower bound on OPT that needs no LP
// solver. The construction scales the greedy's per-demander maximum price
// share Λ(k) by 1/(W·Ξ) (the Theorem 3 factor) and then lifts z to absorb
// any residual violation, so feasibility holds unconditionally.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "auction/bid.h"
#include "auction/ssam.h"

namespace ecrs::auction {

struct dual_certificate {
  std::vector<double> y;                         // per demander
  std::unordered_map<seller_id, double> z;       // per seller
  double objective = 0.0;                        // certified lower bound
  double scale = 1.0;                            // the 1/(W·Ξ) factor used
};

// Build the certificate from a finished SSAM run on `instance`.
[[nodiscard]] dual_certificate build_dual_certificate(
    const single_stage_instance& instance, const ssam_result& result);

// Check (y, z) against every bid's dual constraint; used by tests and
// available for auditing hand-made certificates.
[[nodiscard]] bool dual_feasible(const single_stage_instance& instance,
                                 const dual_certificate& cert,
                                 double tol = 1e-9);

}  // namespace ecrs::auction
