#include "auction/online.h"

#include "common/check.h"

namespace ecrs::auction {

void online_instance::validate() const {
  ECRS_CHECK_MSG(!rounds.empty(), "online instance has no rounds");
  for (std::size_t s = 0; s < sellers.size(); ++s) {
    const seller_profile& p = sellers[s];
    ECRS_CHECK_MSG(p.capacity >= 0, "seller " << s << " has negative capacity");
    ECRS_CHECK_MSG(p.t_arrive >= 1, "seller " << s << " arrives before round 1");
    ECRS_CHECK_MSG(p.t_arrive <= p.t_depart,
                   "seller " << s << " has an empty window");
  }
  for (std::size_t t = 0; t < rounds.size(); ++t) {
    rounds[t].validate();
    for (const bid& b : rounds[t].bids) {
      ECRS_CHECK_MSG(b.seller < sellers.size(),
                     "round " << (t + 1) << " references unknown seller "
                              << b.seller);
    }
  }
}

bool online_instance::in_window(seller_id s, std::uint32_t t) const {
  ECRS_CHECK(s < sellers.size());
  return t >= sellers[s].t_arrive && t <= sellers[s].t_depart;
}

}  // namespace ecrs::auction
