#include "auction/baselines.h"

#include <algorithm>
#include <map>

#include "auction/ssam.h"
#include "common/check.h"

namespace ecrs::auction {

baseline_result fixed_price_mechanism(const single_stage_instance& instance,
                                      double unit_price) {
  instance.validate();
  ECRS_CHECK_MSG(unit_price >= 0.0, "posted price must be non-negative");
  baseline_result result;
  coverage_state state(instance.requirements);

  // Each seller's cheapest bid whose per-unit cost clears the posted price.
  std::map<seller_id, std::size_t> accepted;
  for (std::size_t idx = 0; idx < instance.bids.size(); ++idx) {
    const bid& b = instance.bids[idx];
    const double potential = static_cast<double>(
        b.amount * static_cast<units>(b.coverage.size()));
    if (b.price > unit_price * potential) continue;  // seller declines
    const auto it = accepted.find(b.seller);
    if (it == accepted.end() ||
        instance.bids[it->second].price > b.price) {
      accepted[b.seller] = idx;
    }
  }

  for (const auto& [seller, idx] : accepted) {
    (void)seller;
    if (state.satisfied()) break;
    const units used = state.marginal_utility(instance.bids[idx]);
    if (used <= 0) continue;
    state.apply(instance.bids[idx]);
    result.winners.push_back(idx);
    result.social_cost += instance.bids[idx].price;
    result.total_payment += unit_price * static_cast<double>(used);
  }
  result.feasible = state.satisfied();
  return result;
}

baseline_result pay_as_bid_greedy(const single_stage_instance& instance) {
  instance.validate();
  baseline_result result;
  result.winners = greedy_selection(instance);
  coverage_state state(instance.requirements);
  for (std::size_t idx : result.winners) {
    state.apply(instance.bids[idx]);
    result.social_cost += instance.bids[idx].price;
    result.total_payment += instance.bids[idx].price;
  }
  result.feasible = state.satisfied();
  return result;
}

baseline_result random_selection(const single_stage_instance& instance,
                                 rng& gen) {
  instance.validate();
  baseline_result result;
  coverage_state state(instance.requirements);

  // Sellers in random order; for each, a random useful bid.
  std::map<seller_id, std::vector<std::size_t>> groups;
  for (std::size_t idx = 0; idx < instance.bids.size(); ++idx) {
    groups[instance.bids[idx].seller].push_back(idx);
  }
  std::vector<seller_id> order;
  order.reserve(groups.size());
  for (const auto& [seller, bids] : groups) {
    (void)bids;
    order.push_back(seller);
  }
  gen.shuffle(order);

  for (seller_id seller : order) {
    if (state.satisfied()) break;
    std::vector<std::size_t> useful;
    for (std::size_t idx : groups[seller]) {
      if (state.marginal_utility(instance.bids[idx]) > 0) useful.push_back(idx);
    }
    if (useful.empty()) continue;
    const std::size_t pick = useful[static_cast<std::size_t>(gen.uniform_int(
        0, static_cast<std::int64_t>(useful.size()) - 1))];
    state.apply(instance.bids[pick]);
    result.winners.push_back(pick);
    result.social_cost += instance.bids[pick].price;
    result.total_payment += instance.bids[pick].price;
  }
  result.feasible = state.satisfied();
  return result;
}

}  // namespace ecrs::auction
