// Auction-instance serialization: a line-oriented text format so that
// experiment inputs can be archived, diffed, and replayed bit-identically
// (prices round-trip at full double precision).
//
// Single-stage format:
//   ecrs-instance v1
//   requirements <m> <x_1> ... <x_m>
//   bids <count>
//   <seller> <index> <amount> <price-hex> <|coverage|> <k_1> ... <k_c>
//
// Online format:
//   ecrs-online v1
//   sellers <n>
//   <capacity> <t_arrive> <t_depart>     (n lines)
//   rounds <T>
//   ...T single-stage blocks...
#pragma once

#include <iosfwd>
#include <string>

#include "auction/bid.h"
#include "auction/online.h"

namespace ecrs::auction {

void write_instance(std::ostream& out, const single_stage_instance& instance);
[[nodiscard]] single_stage_instance read_instance(std::istream& in);

void write_online_instance(std::ostream& out, const online_instance& instance);
[[nodiscard]] online_instance read_online_instance(std::istream& in);

void write_instance_file(const std::string& path,
                         const single_stage_instance& instance);
[[nodiscard]] single_stage_instance read_instance_file(
    const std::string& path);

void write_online_instance_file(const std::string& path,
                                const online_instance& instance);
[[nodiscard]] online_instance read_online_instance_file(
    const std::string& path);

}  // namespace ecrs::auction
