#include "auction/msoa.h"

#include <algorithm>
#include <cmath>

#include "auction/properties.h"
#include "common/annotations.h"
#include "common/check.h"

namespace ecrs::auction {
namespace {

// Do the admitted bids of `round` have exactly the topology the compiled
// warm-start cache was built from? Prices are NOT compared — the warm path
// re-patches every price from the current round, so only the structure the
// patch API cannot change (seller, amount, coverage) must match.
ECRS_HOT bool topology_matches(const compiled_instance& compiled,
                               const single_stage_instance& round,
                               const std::vector<std::size_t>& admitted) {
  if (compiled.bid_count() != admitted.size()) return false;
  for (std::size_t j = 0; j < admitted.size(); ++j) {
    const bid& b = round.bids[admitted[j]];
    if (b.seller != compiled.seller(j) || b.amount != compiled.amount(j) ||
        b.coverage_size() != compiled.coverage_size(j) ||
        !std::equal(compiled.coverage_begin(j), compiled.coverage_end(j),
                    b.coverage.begin())) {
      return false;
    }
  }
  return true;
}

}  // namespace

msoa_session::msoa_session(std::vector<seller_profile> sellers,
                           msoa_options options)
    : profiles_(std::move(sellers)),
      options_(options),
      alpha_(options.alpha),
      psi_(profiles_.size(), 0.0),
      used_(profiles_.size(), 0),
      active_(profiles_.size(), 1) {
  ECRS_CHECK_MSG(options_.alpha >= 0.0, "alpha must be non-negative");
  for (std::size_t s = 0; s < profiles_.size(); ++s) {
    ECRS_CHECK_MSG(profiles_[s].capacity >= 0,
                   "seller " << s << " has negative capacity");
    ECRS_CHECK_MSG(profiles_[s].t_arrive >= 1 &&
                       profiles_[s].t_arrive <= profiles_[s].t_depart,
                   "seller " << s << " has an invalid window");
  }
}

double msoa_session::psi(seller_id s) const {
  ECRS_CHECK(s < psi_.size());
  return psi_[s];
}

units msoa_session::capacity_used(seller_id s) const {
  ECRS_CHECK(s < used_.size());
  return used_[s];
}

units msoa_session::capacity_left(seller_id s) const {
  ECRS_CHECK(s < used_.size());
  return profiles_[s].capacity - used_[s];
}

double msoa_session::competitive_bound() const {
  if (beta_ == std::numeric_limits<double>::infinity()) {
    // No admissible bid ever appeared; the bound degenerates to α.
    return alpha();
  }
  if (beta_ <= 1.0) return std::numeric_limits<double>::infinity();
  return alpha() * beta_ / (beta_ - 1.0);
}

msoa_round_outcome msoa_session::run_round(const single_stage_instance& round) {
  msoa_round_outcome outcome;
  run_round(round, outcome);
  return outcome;
}

void msoa_session::run_round(const single_stage_instance& round,
                             msoa_round_outcome& outcome) {
  outcome.round = 0;
  outcome.winner_bids.clear();
  outcome.true_prices.clear();
  outcome.payments.clear();
  outcome.social_cost = 0.0;
  outcome.feasible = false;
  outcome.admitted_bids = 0;

  round.validate();
  const std::uint32_t t = ++round_;

  // Admit bids: window + remaining capacity (Algorithm 2 lines 4-8). The
  // first pass only decides WHO participates (and updates β); whether the
  // admitted set is materialized as a scaled-price bid vector or patched
  // into the warm-start cache is decided afterwards.
  original_index_.clear();
  for (std::size_t idx = 0; idx < round.bids.size(); ++idx) {
    const bid& b = round.bids[idx];
    ECRS_CHECK_MSG(b.seller < profiles_.size(),
                   "bid references unknown seller " << b.seller);
    if (t < profiles_[b.seller].t_arrive || t > profiles_[b.seller].t_depart) {
      continue;
    }
    if (!active_[b.seller]) continue;  // churned out: as if the bid never came
    const auto weight = static_cast<units>(b.coverage_size());
    if (used_[b.seller] + weight > profiles_[b.seller].capacity) {
      continue;  // lines 5-6: exceeds Θ_i, excluded from the candidate set
    }
    original_index_.push_back(idx);
    // β = min Θ_i/|S_ij| over admissible bids (Lemma 4).
    beta_ = std::min(beta_,
                     static_cast<double>(profiles_[b.seller].capacity) /
                         static_cast<double>(weight));
  }

  const bool reference =
      options_.stage.eager_reference || options_.stage.legacy_reference;
  const bool warm = options_.warm_start && !reference && cache_valid_ &&
                    round.requirements.size() == compiled_.demander_count() &&
                    topology_matches(compiled_, round, original_index_);

  outcome.round = t;
  outcome.admitted_bids = original_index_.size();
  if (warm) {
    // Standing bids: patch the per-seller ψ offsets ∇ = J + |S_ij|·ψ_i and
    // the demand vector in place (both no-ops where nothing moved), restore
    // the sorted candidate order with the stable partial re-sort, and run
    // on the cached view — no validate, no bid copies, no recompile. The
    // patched view is bit-identical to a cold compile of the scaled round.
    for (std::size_t j = 0; j < original_index_.size(); ++j) {
      const bid& b = round.bids[original_index_[j]];
      const auto weight = static_cast<units>(b.coverage_size());
      compiled_.set_price(
          j, b.price + static_cast<double>(weight) * psi_[b.seller]);
    }
    for (demander_id k = 0; k < round.requirements.size(); ++k) {
      compiled_.set_requirement(k, round.requirements[k]);
    }
    compiled_.refresh_order();
    ++warm_rounds_;
    run_ssam(compiled_, options_.stage, &scratch_, outcome.stage);
  } else {
    // Cold round: materialize the scaled candidate instance in the session
    // (`scaled_`) so steady-state rounds reuse its buffers — admitted bids
    // are copy-assigned into existing slots to keep their coverage
    // vectors' capacity.
    scaled_.requirements.assign(round.requirements.begin(),
                                round.requirements.end());
    std::size_t admitted = 0;
    for (const std::size_t idx : original_index_) {
      const bid& b = round.bids[idx];
      if (admitted == scaled_.bids.size()) scaled_.bids.emplace_back();
      bid& sb = scaled_.bids[admitted];
      sb = b;
      sb.price = b.price + static_cast<double>(static_cast<units>(
                               b.coverage_size())) *
                               psi_[b.seller];
      ++admitted;
    }
    scaled_.bids.resize(admitted);
    if (reference) {
      run_ssam(scaled_, options_.stage, &scratch_, outcome.stage);
    } else {
      scaled_.validate();
      compiled_.compile(scaled_);
      cache_valid_ = true;
      run_ssam(compiled_, options_.stage, &scratch_, outcome.stage);
    }
  }
  outcome.feasible = outcome.stage.feasible;

  // Freeze α on the first round that actually selected something.
  if (alpha_ <= 0.0 && !outcome.stage.winners.empty()) {
    alpha_ = std::max(1.0, outcome.stage.ratio_bound);
  }

  for (const winning_bid& w : outcome.stage.winners) {
    const std::size_t orig = original_index_[w.bid_index];
    const bid& b = round.bids[orig];
    const auto weight = static_cast<units>(b.coverage_size());
    const double scale_term = static_cast<double>(weight) * psi_[b.seller];

    outcome.winner_bids.push_back(orig);
    outcome.true_prices.push_back(b.price);
    // Unscale the payment; never below the true asking price (IR). Every
    // payment rule must pay at least the scaled asking price, so the
    // unscaled value is finite and non-negative BEFORE the IR clamp — a
    // payment rule that violates this would otherwise be silently laundered
    // through std::max below.
    const double unscaled = w.payment - scale_term;
    ECRS_CHECK_MSG(std::isfinite(unscaled) && unscaled >= 0.0,
                   "seller " << b.seller << " round " << t
                             << ": unscaled payment " << unscaled
                             << " (scaled " << w.payment << ", scale term "
                             << scale_term << ") is negative or non-finite");
    outcome.payments.push_back(std::max(b.price, unscaled));
    outcome.social_cost += b.price;

    // Algorithm 2 lines 11-12: ψ and χ updates for winners.
    const double theta = static_cast<double>(profiles_[b.seller].capacity);
    ECRS_CHECK_MSG(theta > 0.0, "winner with zero capacity");
    const double a = alpha();
    psi_[b.seller] =
        psi_[b.seller] * (1.0 + static_cast<double>(weight) / (a * theta)) +
        b.price * static_cast<double>(weight) / (a * theta * theta);
    used_[b.seller] += weight;
  }
}

void msoa_session::consume_external(seller_id s, units weight, double price) {
  ECRS_CHECK_MSG(s < profiles_.size(), "unknown seller " << s);
  ECRS_CHECK_MSG(weight >= 1, "external consumption needs positive weight");
  ECRS_CHECK_MSG(price >= 0.0, "external price must be non-negative");
  ECRS_CHECK_MSG(used_[s] + weight <= profiles_[s].capacity,
                 "seller " << s << " lacks capacity for external sale of "
                           << weight << " units");
  // Same update as a local win (Algorithm 2 lines 11-12): the seller's
  // future bids are scaled as if it had won a coverage-|weight| bid at
  // `price` this round.
  const double theta = static_cast<double>(profiles_[s].capacity);
  const double a = alpha();
  psi_[s] = psi_[s] * (1.0 + static_cast<double>(weight) / (a * theta)) +
            price * static_cast<double>(weight) / (a * theta * theta);
  used_[s] += weight;
}

void msoa_session::set_seller_active(seller_id s, bool active) {
  ECRS_CHECK_MSG(s < active_.size(), "unknown seller " << s);
  active_[s] = active ? 1 : 0;
}

bool msoa_session::seller_active(seller_id s) const {
  ECRS_CHECK_MSG(s < active_.size(), "unknown seller " << s);
  return active_[s] != 0;
}

void msoa_session::save(checkpoint_writer& w) const {
  w.u32(round_);
  w.f64(alpha_);
  w.f64(beta_);
  w.size(profiles_.size());
  for (std::size_t s = 0; s < profiles_.size(); ++s) {
    w.f64(psi_[s]);
    w.i64(used_[s]);
    w.u8(active_[s] ? 1 : 0);
  }
}

void msoa_session::load(checkpoint_reader& r) {
  round_ = r.u32();
  alpha_ = r.f64();
  beta_ = r.f64();
  const std::size_t n = r.size();
  ECRS_CHECK_MSG(n == profiles_.size(),
                 "checkpoint holds " << n << " sellers, session has "
                                     << profiles_.size());
  for (std::size_t s = 0; s < n; ++s) {
    psi_[s] = r.f64();
    used_[s] = r.i64();
    active_[s] = r.u8() ? 1 : 0;
  }
  // The compiled warm-start view is rebuilt lazily on the next cold round;
  // warm and cold rounds are bit-identical, so resume replays exactly.
  cache_valid_ = false;
}

msoa_result run_msoa(const online_instance& instance,
                     const msoa_options& options) {
  instance.validate();
  msoa_session session(instance.sellers, options);

  msoa_result result;
  for (const single_stage_instance& round : instance.rounds) {
    msoa_round_outcome outcome = session.run_round(round);
    result.feasible = result.feasible && outcome.feasible;
    result.social_cost += outcome.social_cost;
    for (double p : outcome.payments) result.total_payment += p;
    result.rounds.push_back(std::move(outcome));
  }

  result.alpha = session.alpha();
  result.beta = session.beta();
  result.competitive_bound = session.competitive_bound();
  result.psi_final.reserve(instance.sellers.size());
  result.capacity_used.reserve(instance.sellers.size());
  for (seller_id s = 0; s < instance.sellers.size(); ++s) {
    result.psi_final.push_back(session.psi(s));
    result.capacity_used.push_back(session.capacity_used(s));
  }

  // Per-round stages already self-audited inside run_ssam (scaled prices);
  // this pass re-checks the online invariants — windows, lifetime
  // capacities, IR against TRUE prices — and the cross-round accounting.
  if (options.stage.self_audit) {
    audit_or_throw(instance, result, audit_options{});
  }
  return result;
}

const char* to_string(msoa_variant v) {
  switch (v) {
    case msoa_variant::base: return "MSOA";
    case msoa_variant::demand_aware: return "MSOA-DA";
    case msoa_variant::high_capacity: return "MSOA-RC";
    case msoa_variant::fully_optimized: return "MSOA-OA";
  }
  return "unknown";
}

online_instance apply_variant(const online_instance& truth,
                              msoa_variant variant,
                              const variant_options& options, rng& gen) {
  ECRS_CHECK_MSG(options.demand_noise >= 0.0 && options.demand_noise < 1.0,
                 "demand noise must be in [0,1)");
  ECRS_CHECK_MSG(options.capacity_factor >= 1.0,
                 "capacity factor must be >= 1");
  online_instance out = truth;

  const bool noisy_demand = variant == msoa_variant::base ||
                            variant == msoa_variant::high_capacity;
  const bool scaled_capacity = variant == msoa_variant::high_capacity ||
                               variant == msoa_variant::fully_optimized;

  if (noisy_demand) {
    for (single_stage_instance& round : out.rounds) {
      for (units& x : round.requirements) {
        if (x == 0) continue;
        // Estimation error never under-provisions: the platform rounds the
        // noisy estimate up so demanders still receive what they need (the
        // cost of imperfect estimation is buying too much, not starving).
        const double factor =
            1.0 + gen.uniform_real(0.0, options.demand_noise);
        x = static_cast<units>(
            std::ceil(static_cast<double>(x) * factor));
      }
    }
  }
  if (scaled_capacity) {
    for (seller_profile& p : out.sellers) {
      p.capacity = static_cast<units>(
          std::ceil(static_cast<double>(p.capacity) * options.capacity_factor));
    }
  }
  return out;
}

}  // namespace ecrs::auction
