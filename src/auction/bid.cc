#include "auction/bid.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace ecrs::auction {

std::size_t single_stage_instance::seller_count() const {
  std::unordered_set<seller_id> sellers;
  for (const bid& b : bids) sellers.insert(b.seller);
  return sellers.size();
}

units single_stage_instance::total_requirement() const {
  units total = 0;
  for (units x : requirements) total += x;
  return total;
}

void single_stage_instance::validate() const {
  for (std::size_t k = 0; k < requirements.size(); ++k) {
    ECRS_CHECK_MSG(requirements[k] >= 0,
                   "demander " << k << " has negative requirement");
  }
  for (std::size_t idx = 0; idx < bids.size(); ++idx) {
    const bid& b = bids[idx];
    ECRS_CHECK_MSG(b.amount >= 1, "bid " << idx << " has non-positive amount");
    ECRS_CHECK_MSG(b.price >= 0.0, "bid " << idx << " has negative price");
    ECRS_CHECK_MSG(!b.coverage.empty(), "bid " << idx << " covers nothing");
    ECRS_CHECK_MSG(std::is_sorted(b.coverage.begin(), b.coverage.end()),
                   "bid " << idx << " coverage not sorted");
    ECRS_CHECK_MSG(std::adjacent_find(b.coverage.begin(), b.coverage.end()) ==
                       b.coverage.end(),
                   "bid " << idx << " coverage has duplicates");
    ECRS_CHECK_MSG(b.coverage.back() < requirements.size(),
                   "bid " << idx << " covers unknown demander "
                          << b.coverage.back());
  }
}

bool single_stage_instance::coverable() const {
  // Per demander, sum each seller's best contribution (largest amount among
  // its bids covering that demander). See the header for exactness caveats.
  std::unordered_map<seller_id, std::unordered_map<demander_id, units>> best;
  for (const bid& b : bids) {
    auto& per_demander = best[b.seller];
    for (demander_id k : b.coverage) {
      auto [it, inserted] = per_demander.emplace(k, b.amount);
      if (!inserted) it->second = std::max(it->second, b.amount);
    }
  }
  std::vector<units> supply(requirements.size(), 0);
  // Integer sums reorder exactly, so iteration order cannot change `supply`.
  // ecrs-analyze: allow(unordered-iter)
  for (const auto& [seller, per_demander] : best) {
    (void)seller;
    for (const auto& [k, amount] : per_demander) supply[k] += amount;
  }
  for (std::size_t k = 0; k < requirements.size(); ++k) {
    if (supply[k] < requirements[k]) return false;
  }
  return true;
}

coverage_state::coverage_state(const std::vector<units>& requirements) {
  reset(requirements);
}

void coverage_state::reset(const std::vector<units>& requirements) {
  remaining_.assign(requirements.begin(), requirements.end());
  deficit_ = 0;
  for (units r : remaining_) {
    ECRS_CHECK_MSG(r >= 0, "negative requirement");
    deficit_ += r;
  }
}

units coverage_state::remaining(demander_id k) const {
  ECRS_CHECK(k < remaining_.size());
  return remaining_[k];
}

units coverage_state::marginal_utility(const bid& b) const {
  units gain = 0;
  for (demander_id k : b.coverage) {
    ECRS_DCHECK(k < remaining_.size());
    gain += std::min(b.amount, remaining_[k]);
  }
  return gain;
}

units coverage_state::apply(const bid& b) {
  units gain = 0;
  for (demander_id k : b.coverage) {
    ECRS_CHECK(k < remaining_.size());
    const units used = std::min(b.amount, remaining_[k]);
    remaining_[k] -= used;
    gain += used;
  }
  deficit_ -= gain;
  return gain;
}

}  // namespace ecrs::auction
