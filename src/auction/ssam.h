// SSAM: Single-Stage Auction Mechanism (paper §IV-C, Algorithm 1).
//
// A greedy primal–dual approximation of the NP-hard winner selection
// problem: repeatedly accept the bid with the lowest price per unit of
// *useful* coverage (price / U_ij(E)), at most one bid per seller, until all
// requirements are met. Winners are paid above their asking price:
//
//  - payment_rule::runner_up  — Algorithm 1 lines 6–7: the winner's utility
//    times the best cost-effectiveness ratio among competing bids at
//    selection time. Cheap (computed in-loop); always >= the asking price.
//  - payment_rule::critical_value — Lemma 3 / Myerson: the supremum report
//    at which the bid still wins, found by binary search over re-runs of the
//    greedy selection (monotone by Lemma 2). Exactly truthful.
//
// Selection and payments run on a *compiled* CSR view of the instance
// (auction/compiled.h): the bid-vector entry points below compile on entry
// (into the scratch, so steady-state callers pay no allocation), and every
// hot loop — greedy selection in all modes, the runner-up estimate scans,
// the critical-value probes, the feasibility replay, and the self-audit —
// walks contiguous structure-of-arrays rows instead of per-bid
// heap-allocated `bid::coverage` vectors. The lazy selection loop keeps
// exact marginal utilities incrementally through the inverted demander
// index (scored_state): applying a winner re-scores only the bids whose
// utility actually changed and repairs the heap with fresh exact keys,
// instead of lazily re-popping stale lower bounds. The heap orders
// (ratio, bid index), reproducing the eager scan's deterministic
// tie-breaking bit-for-bit.
//
// Two bid-vector reference paths are kept for equivalence tests and the
// before/after benchmarks, selected by ssam_options:
//  - eager_reference  — the original O(n²·m) eager scan with full
//    (non-early-exit) probe auctions (the PR 1 baseline);
//  - legacy_reference — the PR 3 path: lazy-greedy heap over bid vectors
//    with the per-call pre-sorted probe seed and early-exit probes.
// Both must produce winners and payments bit-identical to the compiled
// default.
//
// Critical-value payments are independent pure probes of the instance and
// are computed in parallel on a shared thread pool
// (`ssam_options::payment_threads`). All entry points accept an optional
// `ssam_scratch` so repeated calls reuse their internal buffers instead of
// reallocating (see the class comment for the contract).
//
// The result carries the Theorem 3 dual certificate: per-unit price shares
// f(i,Ŝ), their spread Ξ, the harmonic factor W, and the ratio bound W·Ξ.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "auction/bid.h"

namespace ecrs::auction {

class compiled_instance;  // auction/compiled.h

enum class payment_rule { runner_up, critical_value };

// Which greedy loop drives winner selection. Eager (full rescan per pick)
// has the lower constant and wins when selection is all the call does; the
// lazy heap wins once critical-value probes amortize its seed across many
// replayed auctions. `automatic` picks eager when no probes will run
// (payment_rule::runner_up) and lazy otherwise. Both loops produce the same
// winner sequence bit for bit, so this is a pure performance knob.
enum class selection_mode { automatic, eager, lazy };

// Reusable workspace for the SSAM hot path. run_ssam and the selection
// entry points accept an optional scratch; when provided, every internal
// buffer (coverage state, seller/bid masks, the lazy heap, the pre-sorted
// probe seed) is borrowed from it instead of allocated per call, so
// repeated rounds and sweep trials stop hitting the allocator once the
// buffers have grown to the largest instance seen. The compiled path's
// per-winner critical-value probe slots are NOT stored here: they are
// carved from the calling thread's bump arena (common/arena.h) for the
// duration of the call, so a scratch that migrates between worker threads
// (sweep cells) never shares arena memory across threads. Results are
// bit-identical with and without a scratch.
//
// NOT thread-safe: a scratch serves one call at a time — use one per
// worker. The parallel payment fan-out inside a single run_ssam call is
// safe: each winner's probes get their own sub-workspace slot.
class ssam_scratch {
 public:
  ssam_scratch();
  ~ssam_scratch();
  ssam_scratch(ssam_scratch&&) noexcept;
  ssam_scratch& operator=(ssam_scratch&&) noexcept;

  // Internal buffer block (defined in ssam.cc); treat as opaque.
  struct impl;
  [[nodiscard]] impl& buffers();

 private:
  std::unique_ptr<impl> impl_;
};

// Default for ssam_options::self_audit: every mechanism invocation re-checks
// its own output in debug and sanitizer builds; plain release builds skip
// the audit on the hot path (it can be turned on per call).
#if !defined(NDEBUG) || defined(ECRS_SANITIZE_BUILD)
inline constexpr bool kSelfAuditDefault = true;
#else
inline constexpr bool kSelfAuditDefault = false;
#endif

struct ssam_options {
  payment_rule rule = payment_rule::runner_up;
  // Greedy loop used for winner selection (see selection_mode). The default
  // resolves to eager under runner_up payments and lazy under
  // critical_value; identical winners either way.
  selection_mode selection = selection_mode::automatic;
  // Relative termination gap for the critical-value bisection: the search
  // stops once (hi - lo) / hi < critical_value_eps and returns the last
  // probe certified to win (lo), so a payment under-approximates the true
  // critical value by at most this relative amount. Must be in (0, 1).
  double critical_value_eps = 1e-9;
  // Platform payment budget W (paper §IV: the process continues "until the
  // total budget W is depleted or the last microservice has been
  // processed"). 0 = unlimited. Selection is gated by the in-loop runner-up
  // payment estimates: a bid is not accepted if paying the estimate would
  // exceed W, and selection stops there (the outcome may then be
  // infeasible). Under payment_rule::runner_up the estimates ARE the
  // payments, so the bound is exact. Under payment_rule::critical_value the
  // actual payments are re-verified after they are computed: trailing
  // winners are dropped in reverse selection order until
  // total_payment <= W, with the count in ssam_result::budget_dropped and
  // feasibility replayed against the surviving set.
  double payment_budget = 0.0;
  // Worker threads for the critical-value payment probes: 0 = the shared
  // process-wide pool (sized to the hardware), 1 = serial on the calling
  // thread, k > 1 = at most k workers. Payments are written to disjoint
  // slots, so the result is identical for every setting.
  std::size_t payment_threads = 0;
  // Route selection and payment probes through the original eager O(n²·m)
  // scan with full (non-early-exit) probe auctions. Kept for equivalence
  // tests and the before/after micro-benchmarks; must produce the same
  // winners and payments as the default compiled path.
  bool eager_reference = false;
  // Route the call through the PR 3 bid-vector path: lazy-greedy heap over
  // `bid` vectors with the per-call probe seed and early-exit probes, no
  // compiled view. Kept as the before/after benchmark baseline and the
  // second equivalence reference; must produce the same winners and
  // payments as the default compiled path. Only meaningful on the
  // single_stage_instance overload (the compiled overload rejects it).
  bool legacy_reference = false;
  // Re-check the returned result (feasibility, individual rationality,
  // accounting, budget balance, certificate sanity) with
  // auction::audit_or_throw before returning; a violation throws
  // ecrs::check_error. On by default in debug and sanitizer builds.
  bool self_audit = kSelfAuditDefault;
};

struct winning_bid {
  std::size_t bid_index = 0;        // into single_stage_instance::bids
  double payment = 0.0;             // price space of the input instance
  units utility_at_selection = 0;   // U_ij(E) when the bid was accepted
  double ratio_at_selection = 0.0;  // price / U_ij(E)
};

struct ssam_result {
  std::vector<winning_bid> winners;  // selection order
  bool feasible = false;             // all requirements satisfied
  double social_cost = 0.0;          // sum of winning prices
  double total_payment = 0.0;        // sum of payments
  // Winners evicted by the post-payment budget re-check (critical-value
  // rule with payment_budget > 0 only; see ssam_options::payment_budget).
  std::size_t budget_dropped = 0;

  // Theorem 3 dual certificate.
  std::vector<double> unit_shares;   // one f(i,Ŝ) value per covered unit
  double xi = 1.0;                   // Ξ = max share / min share
  double harmonic = 0.0;             // W = H(total covered units)
  double ratio_bound = 1.0;          // α = max(1, W·Ξ)
  double dual_objective = 0.0;       // social_cost / ratio_bound (<= OPT)
};

// Run the full mechanism: selection + payments + dual certificate.
// The instance must validate(); an unsatisfiable instance yields
// feasible == false with the partial selection that was reachable.
// `scratch` (optional) supplies the reusable workspace; see ssam_scratch.
[[nodiscard]] ssam_result run_ssam(const single_stage_instance& instance,
                                   const ssam_options& options = {},
                                   ssam_scratch* scratch = nullptr);

// Run the full mechanism directly on a pre-compiled view (no per-call
// compile). The caller owns the compiled_instance and must have called
// refresh_order() after any patches. Rejects the bid-vector reference
// modes (eager_reference / legacy_reference). This is the MSOA warm-start
// entry point; results are bit-identical to run_ssam on the equivalent
// single_stage_instance.
[[nodiscard]] ssam_result run_ssam(const compiled_instance& compiled,
                                   const ssam_options& options = {},
                                   ssam_scratch* scratch = nullptr);

// Allocation-free flavours: run the mechanism INTO a caller-owned result,
// reusing its vectors' capacity (they are cleared, not shrunk). Combined
// with a warm scratch and payment_threads == 1 this is the 0-allocation
// steady-state path (the value-returning overloads above cost one fresh
// ssam_result worth of vectors per call); the parallel fan-out delegates
// its chunking to the shared thread pool, which allocates per parallel_for.
// Results are bit-identical to the value-returning overloads.
void run_ssam(const single_stage_instance& instance,
              const ssam_options& options, ssam_scratch* scratch,
              ssam_result& out);
void run_ssam(const compiled_instance& compiled, const ssam_options& options,
              ssam_scratch* scratch, ssam_result& out);

// Selection only (no payments): the greedy winner set in selection order,
// computed with the lazy-greedy heap.
[[nodiscard]] std::vector<std::size_t> greedy_selection(
    const single_stage_instance& instance, ssam_scratch* scratch = nullptr);

// The original eager O(n²·m) scan, kept as the bit-for-bit reference for
// greedy_selection (equivalence tests, before/after benchmarks).
[[nodiscard]] std::vector<std::size_t> eager_greedy_selection(
    const single_stage_instance& instance, ssam_scratch* scratch = nullptr);

// Backwards-compatible alias of greedy_selection (both are lazy now).
[[nodiscard]] std::vector<std::size_t> lazy_greedy_selection(
    const single_stage_instance& instance);

// Does `bid_index` win the greedy selection if its price is replaced by
// `price_report` (all other bids unchanged)? Exits the replayed auction as
// soon as the verdict is decided: when the probed bid is selected, or when
// another bid of the same seller is selected (constraint (9) then bars the
// probed bid for the rest of the round).
[[nodiscard]] bool wins_with_price(const single_stage_instance& instance,
                                   std::size_t bid_index, double price_report);

// The Myerson critical value for a winning bid: the supremum report that
// still wins, bisected until the relative gap drops below `relative_eps`
// (the returned value is the largest probe certified to win, so it is below
// the true critical value by at most that relative amount). Returns the
// bid's own price when it faces no competition (pay-as-bid fallback,
// documented in DESIGN.md).
[[nodiscard]] double critical_value_payment(
    const single_stage_instance& instance, std::size_t bid_index,
    double relative_eps = 1e-9);

}  // namespace ecrs::auction
