// SSAM: Single-Stage Auction Mechanism (paper §IV-C, Algorithm 1).
//
// A greedy primal–dual approximation of the NP-hard winner selection
// problem: repeatedly accept the bid with the lowest price per unit of
// *useful* coverage (price / U_ij(E)), at most one bid per seller, until all
// requirements are met. Winners are paid above their asking price:
//
//  - payment_rule::runner_up  — Algorithm 1 lines 6–7: the winner's utility
//    times the best cost-effectiveness ratio among competing bids at
//    selection time. Cheap (computed in-loop); always >= the asking price.
//  - payment_rule::critical_value — Lemma 3 / Myerson: the supremum report
//    at which the bid still wins, found by binary search over re-runs of the
//    greedy selection (monotone by Lemma 2). Exactly truthful.
//
// The result carries the Theorem 3 dual certificate: per-unit price shares
// f(i,Ŝ), their spread Ξ, the harmonic factor W, and the ratio bound W·Ξ.
#pragma once

#include <cstddef>
#include <vector>

#include "auction/bid.h"

namespace ecrs::auction {

enum class payment_rule { runner_up, critical_value };

struct ssam_options {
  payment_rule rule = payment_rule::runner_up;
  // Binary-search iterations for critical-value payments.
  std::size_t critical_search_iterations = 60;
  // Platform payment budget W (paper §IV: the process continues "until the
  // total budget W is depleted or the last microservice has been
  // processed"). 0 = unlimited. Enforced against the in-loop runner-up
  // payment estimates: a bid is not accepted if paying it would exceed W,
  // and selection stops there; the outcome may then be infeasible.
  double payment_budget = 0.0;
};

struct winning_bid {
  std::size_t bid_index = 0;        // into single_stage_instance::bids
  double payment = 0.0;             // price space of the input instance
  units utility_at_selection = 0;   // U_ij(E) when the bid was accepted
  double ratio_at_selection = 0.0;  // price / U_ij(E)
};

struct ssam_result {
  std::vector<winning_bid> winners;  // selection order
  bool feasible = false;             // all requirements satisfied
  double social_cost = 0.0;          // sum of winning prices
  double total_payment = 0.0;        // sum of payments

  // Theorem 3 dual certificate.
  std::vector<double> unit_shares;   // one f(i,Ŝ) value per covered unit
  double xi = 1.0;                   // Ξ = max share / min share
  double harmonic = 0.0;             // W = H(total covered units)
  double ratio_bound = 1.0;          // α = max(1, W·Ξ)
  double dual_objective = 0.0;       // social_cost / ratio_bound (<= OPT)
};

// Run the full mechanism: selection + payments + dual certificate.
// The instance must validate(); an unsatisfiable instance yields
// feasible == false with the partial selection that was reachable.
[[nodiscard]] ssam_result run_ssam(const single_stage_instance& instance,
                                   const ssam_options& options = {});

// Selection only (no payments): the greedy winner set in selection order.
[[nodiscard]] std::vector<std::size_t> greedy_selection(
    const single_stage_instance& instance);

// Same winner set as greedy_selection (bitwise-identical tie-breaking), but
// computed with a lazy-evaluation heap: U_ij(E) is submodular (marginal
// utilities only shrink as coverage grows), so a bid's stale ratio is a
// lower bound and most bids are never re-evaluated. Preferable for large
// instances; see bench/micro_benchmarks for the crossover.
[[nodiscard]] std::vector<std::size_t> lazy_greedy_selection(
    const single_stage_instance& instance);

// Does `bid_index` win the greedy selection if its price is replaced by
// `price_report` (all other bids unchanged)?
[[nodiscard]] bool wins_with_price(const single_stage_instance& instance,
                                   std::size_t bid_index, double price_report);

// The Myerson critical value for a winning bid: the supremum report that
// still wins. Returns the bid's own price when it faces no competition
// (pay-as-bid fallback, documented in DESIGN.md).
[[nodiscard]] double critical_value_payment(
    const single_stage_instance& instance, std::size_t bid_index,
    std::size_t search_iterations = 60);

}  // namespace ecrs::auction
