#include "auction/local_search.h"

#include <algorithm>
#include <map>
#include <set>

#include "auction/ssam.h"
#include "common/check.h"

namespace ecrs::auction {
namespace {

// Is the selection (bid indices) feasible for the instance?
bool covers(const single_stage_instance& instance,
            const std::vector<std::size_t>& selection) {
  coverage_state state(instance.requirements);
  for (std::size_t idx : selection) state.apply(instance.bids[idx]);
  return state.satisfied();
}

double cost_of(const single_stage_instance& instance,
               const std::vector<std::size_t>& selection) {
  double total = 0.0;
  for (std::size_t idx : selection) total += instance.bids[idx].price;
  return total;
}

}  // namespace

local_search_result improve_selection(const single_stage_instance& instance,
                                      std::vector<std::size_t> initial,
                                      const local_search_options& options) {
  instance.validate();
  if (initial.empty()) initial = greedy_selection(instance);

  local_search_result result;
  result.winners = std::move(initial);
  result.feasible = covers(instance, result.winners);
  result.cost = cost_of(instance, result.winners);
  if (!result.feasible) return result;  // nothing to improve from

  std::set<seller_id> used;
  for (std::size_t idx : result.winners) {
    const bool inserted = used.insert(instance.bids[idx].seller).second;
    ECRS_CHECK_MSG(inserted, "initial selection has two bids of one seller");
  }

  // Bids per seller, for swap moves.
  std::map<seller_id, std::vector<std::size_t>> by_seller;
  for (std::size_t idx = 0; idx < instance.bids.size(); ++idx) {
    by_seller[instance.bids[idx].seller].push_back(idx);
  }

  bool improved = true;
  while (improved && result.iterations < options.max_iterations) {
    improved = false;

    // drop: remove redundant winners (most expensive first).
    std::vector<std::size_t> order(result.winners.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return instance.bids[result.winners[a]].price >
             instance.bids[result.winners[b]].price;
    });
    for (std::size_t pos : order) {
      std::vector<std::size_t> trial = result.winners;
      trial.erase(trial.begin() + static_cast<std::ptrdiff_t>(pos));
      if (covers(instance, trial)) {
        used.erase(instance.bids[result.winners[pos]].seller);
        result.winners = std::move(trial);
        result.cost = cost_of(instance, result.winners);
        ++result.iterations;
        improved = true;
        break;
      }
    }
    if (improved) continue;

    // swap: cheaper alternative bid of the same seller that stays feasible.
    for (std::size_t pos = 0; pos < result.winners.size() && !improved;
         ++pos) {
      const std::size_t current = result.winners[pos];
      for (std::size_t alt : by_seller[instance.bids[current].seller]) {
        if (alt == current) continue;
        if (instance.bids[alt].price >= instance.bids[current].price) continue;
        std::vector<std::size_t> trial = result.winners;
        trial[pos] = alt;
        if (covers(instance, trial)) {
          result.winners = std::move(trial);
          result.cost = cost_of(instance, result.winners);
          ++result.iterations;
          improved = true;
          break;
        }
      }
    }
    if (improved) continue;

    // replace: swap one winner for a bid of an unused seller at lower cost.
    for (std::size_t pos = 0; pos < result.winners.size() && !improved;
         ++pos) {
      const double removed_price =
          instance.bids[result.winners[pos]].price;
      for (std::size_t alt = 0; alt < instance.bids.size() && !improved;
           ++alt) {
        const bid& b = instance.bids[alt];
        if (used.count(b.seller) > 0) continue;
        if (b.price >= removed_price) continue;
        std::vector<std::size_t> trial = result.winners;
        trial[pos] = alt;
        if (covers(instance, trial)) {
          used.erase(instance.bids[result.winners[pos]].seller);
          used.insert(b.seller);
          result.winners = std::move(trial);
          result.cost = cost_of(instance, result.winners);
          ++result.iterations;
          improved = true;
        }
      }
    }
  }
  return result;
}

}  // namespace ecrs::auction
