// Local-search improvement heuristic for the winner selection problem.
//
// Not a mechanism (it ignores incentives): a cost-only optimizer used as an
// efficiency reference between the greedy and the exact solvers when the
// exact search is too slow. Starts from a feasible selection (the greedy's
// by default) and applies first-improvement moves until a local optimum:
//
//   drop:    remove a winner whose coverage is redundant;
//   swap:    replace a winner's bid with a cheaper bid of the same seller
//            that keeps the selection feasible;
//   replace: remove one winner and add one bid from an unused seller at
//            lower total cost.
#pragma once

#include <cstddef>
#include <vector>

#include "auction/bid.h"

namespace ecrs::auction {

struct local_search_result {
  std::vector<std::size_t> winners;  // bid indices (unordered)
  double cost = 0.0;
  bool feasible = false;
  std::size_t iterations = 0;  // improving moves applied
};

struct local_search_options {
  std::size_t max_iterations = 10000;
};

// Improve `initial` (must be a feasible selection with at most one bid per
// seller; pass the greedy's winners). If `initial` is empty, the greedy
// selection is computed internally.
[[nodiscard]] local_search_result improve_selection(
    const single_stage_instance& instance,
    std::vector<std::size_t> initial = {},
    const local_search_options& options = {});

}  // namespace ecrs::auction
