// Core auction types (paper §IV).
//
// A *round* of the reverse auction has:
//  - demanders: microservices that need resources; demander k requires an
//    integer number of resource units X_k (the paper's X^t / 𝔾^t entries);
//  - sellers: microservices with spare resources; seller i submits up to F
//    alternative bids. Bid (i, j) names a coverage set S_ij of demanders, an
//    amount a_ij of units it contributes to each covered demander, and an
//    asking price J_ij for the whole bid.
//
// Constraint (10) is linear: for every demander k,
//   sum over winning bids covering k of a_ij  >=  X_k.
// Setting a_ij = 1 recovers the paper's set-multicover form; a single
// demander recovers the scalar knapsack-cover constraint (13). At most one
// bid per seller wins per round (constraint (9)).
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace ecrs::auction {

using seller_id = std::uint32_t;
using demander_id = std::uint32_t;
using units = std::int64_t;

struct bid {
  seller_id seller = 0;
  std::uint32_t index = 0;                // j: bid number within the seller
  std::vector<demander_id> coverage;      // S_ij, sorted unique
  units amount = 1;                       // a_ij >= 1
  double price = 0.0;                     // J_ij >= 0 (true cost if truthful)

  // Participation weight |S_ij| used by capacity accounting and MSOA.
  [[nodiscard]] std::size_t coverage_size() const { return coverage.size(); }
};

// One single-stage winner selection problem.
struct single_stage_instance {
  std::vector<units> requirements;  // X_k per demander, index = demander id
  std::vector<bid> bids;

  [[nodiscard]] std::size_t demanders() const { return requirements.size(); }

  // Number of distinct sellers appearing in `bids`. Recomputed with a hash
  // set on EVERY call — per-round / hot-path callers should read the cached
  // compiled_instance::seller_count() (auction/compiled.h) instead.
  [[nodiscard]] std::size_t seller_count() const;

  // Sum of all requirements (units).
  [[nodiscard]] units total_requirement() const;

  // Throws ecrs::check_error if ids are out of range, coverage sets are not
  // sorted/unique, amounts are not positive, prices are negative, or any
  // requirement is negative.
  void validate() const;

  // Cheap NECESSARY feasibility condition: per demander, the sum over
  // sellers of each seller's best contribution (max amount among its bids
  // covering that demander) must reach the requirement. It is not
  // sufficient in general — a chosen bid serves all its covered demanders
  // at once — but it is exact for the seller-fixed coverage structure the
  // generators produce (every bid of a seller covers the same set; see
  // DESIGN.md §2).
  [[nodiscard]] bool coverable() const;
};

// Remaining requirement tracking shared by the greedy, the exact solvers and
// the property checkers.
class coverage_state {
 public:
  // An empty state (no demanders, trivially satisfied); reset() rebinds it.
  coverage_state() = default;
  explicit coverage_state(const std::vector<units>& requirements);

  // Rebind to a new requirement vector, reusing the existing buffer
  // capacity — the allocation-free path for workspaces that replay many
  // auctions (see auction::ssam_scratch).
  void reset(const std::vector<units>& requirements);

  [[nodiscard]] bool satisfied() const { return deficit_ == 0; }
  [[nodiscard]] units deficit() const { return deficit_; }
  [[nodiscard]] units remaining(demander_id k) const;

  // Marginal useful coverage of `b`: sum over covered demanders of
  // min(amount, remaining_k). This is the paper's U_ij(E) (Eq. 19)
  // generalized to amounts.
  [[nodiscard]] units marginal_utility(const bid& b) const;

  // Apply a winning bid; returns its marginal utility (a convenience —
  // callers replaying a fixed winner set legitimately ignore it).
  units apply(const bid& b);  // ecrs-lint: allow(nodiscard)

 private:
  std::vector<units> remaining_;
  units deficit_ = 0;
};

}  // namespace ecrs::auction
