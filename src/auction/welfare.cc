#include "auction/welfare.h"

namespace ecrs::auction {

welfare_breakdown account_welfare(const single_stage_instance& instance,
                                  const ssam_result& result, double markup) {
  welfare_breakdown out;
  const settlement s = settle_round(instance, result, markup);

  out.seller_utility.reserve(result.winners.size());
  for (const winning_bid& w : result.winners) {
    const double utility = w.payment - instance.bids[w.bid_index].price;
    out.seller_utility.push_back(utility);
    out.total_seller_utility += utility;
    out.social_cost += instance.bids[w.bid_index].price;
  }
  out.platform_utility = s.platform_balance;
  out.demander_expense = s.total_charged;
  return out;
}

}  // namespace ecrs::auction
