// Compiled (CSR / structure-of-arrays) view of a single_stage_instance.
//
// The mechanism hot paths (ssam.cc) used to walk `bid::coverage` — one
// heap-allocated vector per bid — for every marginal-utility evaluation.
// A compiled_instance flattens the whole instance once:
//
//  - per-bid SoA rows: price, amount, seller, and a (offset, length) slice
//    into one contiguous demander-id arena (CSR over coverage sets);
//  - an inverted index (demander -> bids covering it, also CSR), so
//    applying a winner re-scores exactly the bids whose marginal utility
//    actually changed (the scored_state the eager loop and the probe
//    trajectories run on), and requirement patches touch only the
//    affected rows;
//  - the empty-state marginal utilities U_ij(∅) and the price-sorted
//    (initial ratio, bid) order — the lazy-selection heap seed and the
//    critical-value probe seed, built once instead of per call;
//  - cached instance-level scalars (distinct seller count, max seller id,
//    total requirement, the probe price bound) that the bid-vector API
//    recomputes per call.
//
// Warm-start patching (MSOA, §IV-E): across rounds of an online session
// only per-seller price offsets ∇ = J + |S_ij|·ψ_i and the requirement
// vector change. set_price / set_requirement update the affected rows in
// place and mark them dirty; refresh_order() then restores the sorted
// order with a stable partial re-sort (remove dirty entries, re-key, merge)
// whose cost is proportional to what changed, not to |bids|. The result is
// bit-identical to a cold compile() of the patched instance.
//
// All structures reuse their buffer capacity across compile() calls, so a
// long-lived compiled_instance (ssam_scratch, msoa_session) stops hitting
// the allocator once it has seen its largest instance.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "auction/bid.h"
#include "common/annotations.h"
#include "common/simd.h"

namespace ecrs::auction {

// One candidate entry of the selection heap / probe seed: the bid's
// cost-effectiveness key with its index and seller inlined so the hot loops
// never chase a pointer back into the bid table.
struct compiled_entry {
  double key = 0.0;          // price / U_ij at key time
  std::uint32_t idx = 0;     // bid row
  seller_id seller = 0;
};

// (key, idx)-lexicographic order — the deterministic tie-break every
// selection loop shares (seller is payload, never compared).
[[nodiscard]] ECRS_HOT inline bool entry_less(const compiled_entry& a,
                                              const compiled_entry& b) {
  return a.key < b.key || (a.key == b.key && a.idx < b.idx);
}

// Comparator adapter for std::*_heap (min-heap on (key, idx)).
struct entry_greater {
  [[nodiscard]] ECRS_HOT bool operator()(const compiled_entry& a,
                                         const compiled_entry& b) const {
    return entry_less(b, a);
  }
};

// Functor flavour for std::sort/std::merge — passing the free function by
// name hands the algorithm a function pointer and blocks comparator
// inlining, which roughly doubles compile()'s sort cost.
struct entry_ascending {
  [[nodiscard]] ECRS_HOT bool operator()(const compiled_entry& a,
                                         const compiled_entry& b) const {
    return entry_less(a, b);
  }
};

class compiled_instance {
 public:
  compiled_instance() = default;

  // Full rebuild from a *validated* instance (see
  // single_stage_instance::validate; compile re-checks only cheap bounds).
  // Reuses existing buffer capacity.
  void compile(const single_stage_instance& instance);

  // ------------------------------------------------------------- topology
  [[nodiscard]] std::size_t bid_count() const { return price_.size(); }
  [[nodiscard]] std::size_t demander_count() const {
    return requirements_.size();
  }
  // Distinct sellers appearing in the bids — cached at compile time (the
  // bid-vector single_stage_instance::seller_count() recomputes a
  // distinct-count on every call).
  [[nodiscard]] std::size_t seller_count() const { return seller_count_; }
  // Max seller id + 1: the size of per-seller liveness tables.
  [[nodiscard]] std::size_t seller_slots() const { return seller_slots_; }
  [[nodiscard]] const std::vector<units>& requirements() const {
    return requirements_;
  }
  [[nodiscard]] units total_requirement() const { return total_requirement_; }

  [[nodiscard]] double price(std::size_t i) const { return price_[i]; }
  [[nodiscard]] units amount(std::size_t i) const { return amount_[i]; }
  [[nodiscard]] seller_id seller(std::size_t i) const { return seller_[i]; }
  // Contiguous SoA rows, for the vector kernels (common/simd.h).
  [[nodiscard]] const double* price_data() const { return price_.data(); }
  [[nodiscard]] const units* amount_data() const { return amount_.data(); }
  [[nodiscard]] const seller_id* seller_data() const { return seller_.data(); }
  [[nodiscard]] std::size_t coverage_size(std::size_t i) const {
    return cov_off_[i + 1] - cov_off_[i];
  }
  // CSR slice of bid i's coverage set (sorted unique demander ids).
  [[nodiscard]] const demander_id* coverage_begin(std::size_t i) const {
    return cov_arena_.data() + cov_off_[i];
  }
  [[nodiscard]] const demander_id* coverage_end(std::size_t i) const {
    return cov_arena_.data() + cov_off_[i + 1];
  }
  // Inverted CSR slice: the bids covering demander k, ascending bid index.
  [[nodiscard]] const std::uint32_t* covering_begin(demander_id k) const {
    return inv_arena_.data() + inv_off_[k];
  }
  [[nodiscard]] const std::uint32_t* covering_end(demander_id k) const {
    return inv_arena_.data() + inv_off_[k + 1];
  }

  // Empty-state marginal utility U_ij(∅) = sum_k min(a_ij, X_k).
  [[nodiscard]] units initial_utility(std::size_t i) const {
    return util0_[i];
  }
  // Bids with positive initial utility sorted ascending by
  // (price / U_ij(∅), bid index): the critical-value probe seed, and — a
  // sorted array being a valid min-heap — the lazy-selection heap seed.
  [[nodiscard]] const std::vector<compiled_entry>& order() const {
    return order_;
  }
  // Σ over bids of amount · |coverage| — the probe upper-bound supply.
  [[nodiscard]] units total_supply() const { return total_supply_; }
  // max(1, max bid price): the other probe upper-bound factor.
  [[nodiscard]] double price_bound() const { return price_bound_; }

  // ------------------------------------------------- warm-start patching
  // Patch one bid's price / one demander's requirement in place. Both mark
  // the affected bids dirty; call refresh_order() before running any
  // auction on the patched view. set_requirement re-derives the initial
  // utilities of the covering bids through the inverted index.
  ECRS_HOT void set_price(std::size_t i, double p);
  ECRS_HOT void set_requirement(demander_id k, units x);
  // Re-key the dirty bids and restore order() with a stable partial
  // re-sort; O(dirty·log dirty + |order|) and allocation-free at steady
  // state. The result is bit-identical to a cold compile().
  ECRS_HOT void refresh_order();

 private:
  void mark_dirty(std::uint32_t i);

  std::vector<double> price_;
  std::vector<units> amount_;
  std::vector<seller_id> seller_;
  std::vector<std::uint32_t> cov_off_;   // bid_count + 1
  std::vector<demander_id> cov_arena_;   // all coverage sets, concatenated
  std::vector<std::uint32_t> inv_off_;   // demander_count + 1
  std::vector<std::uint32_t> inv_arena_; // bid ids, ascending per demander
  std::vector<units> util0_;
  std::vector<units> requirements_;
  std::vector<compiled_entry> order_;
  units total_requirement_ = 0;
  units total_supply_ = 0;
  double price_bound_ = 1.0;
  std::size_t seller_count_ = 0;
  std::size_t seller_slots_ = 0;
  // Patch bookkeeping (reused buffers).
  std::vector<std::uint32_t> dirty_;
  std::vector<char> dirty_flag_;
  std::vector<compiled_entry> fresh_;      // re-keyed dirty entries
  std::vector<compiled_entry> order_tmp_;  // merge target
  std::vector<char> seller_seen_;          // compile(): distinct count
};

// Remaining-requirement tracking over a compiled instance — the CSR
// analogue of coverage_state, used by the probe replays and the
// feasibility re-check. reset() is O(demanders) and allocation-free at
// steady state.
class compiled_state {
 public:
  void reset(const compiled_instance& c);

  [[nodiscard]] bool satisfied() const { return deficit_ == 0; }
  [[nodiscard]] units deficit() const { return deficit_; }
  [[nodiscard]] units remaining(demander_id k) const { return remaining_[k]; }

  // U_ij(E): walks the bid's CSR coverage slice. Defined inline — this is
  // the per-pop recompute of the lazy selection loop and the probe replays.
  // Rows below simd::kIndexedThreshold stay on the inlined scalar loop (the
  // kernel dispatch costs more than a handful of iterations); longer rows
  // go through the vectorized indexed-min kernel. Integer sums reorder
  // exactly, so the split is invisible in the result.
  [[nodiscard]] ECRS_HOT units marginal_utility(const compiled_instance& c,
                                                std::size_t i) const {
    const units amount = c.amount(i);
    const std::size_t len = c.coverage_size(i);
    if (len >= simd::kIndexedThreshold) {
      return simd::sum_min_indexed(remaining_.data(), c.coverage_begin(i),
                                   len, amount);
    }
    units gain = 0;
    for (const demander_id* k = c.coverage_begin(i); k != c.coverage_end(i);
         ++k) {
      gain += std::min(amount, remaining_[*k]);
    }
    return gain;
  }

  // Apply a winning bid; returns its marginal utility. Same short-row split
  // as marginal_utility; the coverage ids are distinct (CSR contract), which
  // the consume kernel's gather/scatter requires.
  // ecrs-lint: allow(nodiscard)
  ECRS_HOT units apply(const compiled_instance& c, std::size_t i) {
    const units amount = c.amount(i);
    const std::size_t len = c.coverage_size(i);
    units gain = 0;
    if (len >= simd::kIndexedThreshold) {
      gain = simd::consume_min_indexed(remaining_.data(), c.coverage_begin(i),
                                       len, amount);
    } else {
      for (const demander_id* k = c.coverage_begin(i); k != c.coverage_end(i);
           ++k) {
        const units used = std::min(amount, remaining_[*k]);
        remaining_[*k] -= used;
        gain += used;
      }
    }
    deficit_ -= gain;
    return gain;
  }

 private:
  std::vector<units> remaining_;
  units deficit_ = 0;
};

// Selection-loop state that additionally keeps the *exact* current marginal
// utility of every bid, maintained incrementally: apply() walks the
// inverted index of each demander whose remaining requirement changed and
// re-scores only the bids actually touched, reporting them (deduplicated)
// so the selection heap can be repaired instead of rebuilt. utility() is
// then O(1) where coverage_state::marginal_utility is O(|S_ij|).
class scored_state {
 public:
  void reset(const compiled_instance& c);

  [[nodiscard]] bool satisfied() const { return deficit_ == 0; }
  [[nodiscard]] units deficit() const { return deficit_; }
  [[nodiscard]] units remaining(demander_id k) const { return remaining_[k]; }
  // Exact current U_ij(E) of bid i.
  [[nodiscard]] units utility(std::size_t i) const { return util_[i]; }
  // Contiguous utility row, for the ratio_argmin kernel (common/simd.h).
  [[nodiscard]] const units* utilities_data() const { return util_.data(); }

  // Apply winner w. Every bid whose utility changed is appended to `dirty`
  // exactly once (w itself included). Returns w's marginal utility.
  // ecrs-lint: allow(nodiscard)
  ECRS_HOT units apply(const compiled_instance& c, std::size_t w,
                       std::vector<std::uint32_t>& dirty);

  // Same update without reporting which bids changed — skips the
  // touched-flag bookkeeping for callers that re-read utilities directly.
  // ecrs-lint: allow(nodiscard)
  ECRS_HOT units apply(const compiled_instance& c, std::size_t w);

 private:
  std::vector<units> remaining_;
  std::vector<units> util_;
  std::vector<char> touched_;
  units deficit_ = 0;
};

// Raw-array flavour of the scored update, for callers whose buffers live in
// an arena (the per-winner probe slots, auction/ssam.cc) rather than in a
// scored_state. `remaining` has demander_count() slots, `util` bid_count();
// scored_reset fills them with the requirements / initial utilities and
// returns the total requirement (the starting deficit). scored_apply is
// scored_state::apply without dirty reporting: it consumes winner w's
// coverage, maintains every exact utility through the inverted index, and
// returns w's marginal utility. scored_state delegates to these, so both
// paths are one implementation.
// Neither maintains a deficit — the caller tracks it from the returns.
[[nodiscard]] ECRS_HOT units scored_reset(const compiled_instance& c,
                                          units* remaining, units* util);
[[nodiscard]] ECRS_HOT units scored_apply(const compiled_instance& c,
                                          units* remaining, units* util,
                                          std::size_t w);

}  // namespace ecrs::auction
