#include "auction/settlement.h"

#include <algorithm>

#include "common/check.h"

namespace ecrs::auction {

settlement settle_round(const single_stage_instance& instance,
                        const ssam_result& result, double markup) {
  instance.validate();
  ECRS_CHECK_MSG(markup >= 0.0, "markup must be non-negative");

  settlement out;
  out.charges.assign(instance.requirements.size(), 0.0);
  out.received.assign(instance.requirements.size(), 0);

  // Replay the winners to attribute delivered units per demander.
  coverage_state state(instance.requirements);
  for (const winning_bid& w : result.winners) {
    const bid& b = instance.bids[w.bid_index];
    for (demander_id k : b.coverage) {
      const units used = std::min(b.amount, state.remaining(k));
      out.received[k] += used;
    }
    state.apply(b);
    out.total_payment += w.payment;
  }

  units total_units = 0;
  for (units u : out.received) total_units += u;
  if (total_units > 0) {
    const double per_unit =
        (1.0 + markup) * out.total_payment / static_cast<double>(total_units);
    for (std::size_t k = 0; k < out.received.size(); ++k) {
      out.charges[k] = per_unit * static_cast<double>(out.received[k]);
      out.total_charged += out.charges[k];
    }
  }
  out.platform_balance = out.total_charged - out.total_payment;
  return out;
}

}  // namespace ecrs::auction
