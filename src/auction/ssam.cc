#include "auction/ssam.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <utility>

#include "auction/compiled.h"
#include "auction/properties.h"
#include "common/check.h"
#include "common/statistics.h"
#include "common/thread_pool.h"

namespace ecrs::auction {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Hard cap on bisection rounds: the relative-gap criterion can stall only
// when the critical value degenerates towards zero, in which case the
// absolute floor below ends the search.
constexpr std::size_t kMaxBisectionRounds = 200;
constexpr double kBisectionAbsoluteFloor = 1e-12;

using entry = std::pair<double, std::size_t>;  // (ratio, bid index)

// Manual min-heap over (ratio, bid index) entries, operating on a borrowed
// vector so the storage survives across calls. std::priority_queue would
// force a fresh container per auction.
void heap_push(std::vector<entry>& heap, entry e) {
  heap.push_back(e);
  std::push_heap(heap.begin(), heap.end(), std::greater<>{});
}

entry heap_pop(std::vector<entry>& heap) {
  std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
  const entry top = heap.back();
  heap.pop_back();
  return top;
}

// Cost-effectiveness of a bid given the current coverage state; infinite
// when the bid adds nothing.
double ratio_of(const bid& b, double price, const coverage_state& state,
                units& utility_out) {
  utility_out = state.marginal_utility(b);
  if (utility_out <= 0) return kInf;
  return price / static_cast<double>(utility_out);
}

seller_id max_seller_of(const single_stage_instance& instance) {
  seller_id max_seller = 0;
  for (const bid& b : instance.bids) {
    max_seller = std::max(max_seller, b.seller);
  }
  return max_seller;
}

std::size_t seller_slots_of(const single_stage_instance& instance) {
  return instance.bids.empty()
             ? 0
             : static_cast<std::size_t>(max_seller_of(instance)) + 1;
}

// Read-only probe context shared by every bisection probe of one instance
// on the bid-vector reference paths: the empty-state utilities plus all
// contributing bids pre-sorted by (initial ratio, bid index) — exactly the
// order a fresh lazy heap would pop them in. The compiled path gets the
// same thing for free from compiled_instance::order().
struct probe_seed {
  std::vector<units> initial_utilities;
  std::vector<entry> entries;  // ascending
  std::size_t seller_slots = 0;  // max seller id + 1
};

// Mutable per-probe workspace (one per concurrently running probe) for the
// bid-vector reference probes.
struct probe_scratch {
  coverage_state state;
  std::vector<char> seller_active;
  std::vector<entry> requeued;  // min-heap storage
};

// One step of a winner's probe trajectory: the competing bid the greedy
// selects at this step when the probed bid never wins, with its exact
// ratio, and the probed bid's marginal utility entering the step. A
// bisection probe at report p then resolves by walking these steps with
// two comparisons each (see trajectory_probe_wins) instead of replaying
// the whole auction.
struct probe_step {
  double ratio = 0.0;        // exact price / U of the selected competitor
  std::uint32_t idx = 0;     // its bid row (the (ratio, idx) tie-break)
  units probed_utility = 0;  // U_i(E) before this selection
  bool collision = false;    // competitor shares the probed bid's seller
};

// Mutable per-probe workspace for the compiled probes.
struct compiled_probe_scratch {
  compiled_state state;
  std::vector<char> seller_active;
  std::vector<compiled_entry> requeued;  // min-heap storage
  // Critical-value trajectory precompute (one per winner, reused across
  // every probe of that winner's bisection).
  scored_state scored;
  std::vector<probe_step> steps;
  units end_probed_utility = 0;  // U_i when the trajectory ran out of bids
  bool end_satisfied = false;    // trajectory ended with demand met
};

}  // namespace

// Every buffer the selection loops and payment probes touch, grown on
// demand and reused across calls. The per-winner probe slots make the
// parallel payment fan-out safe with a single scratch: worker `pos` only
// touches probes[pos] / cprobes[pos].
struct ssam_scratch::impl {
  // Bid-vector reference paths.
  coverage_state state;             // selection loops
  std::vector<char> active;         // eager loop: per-bid liveness
  std::vector<char> seller_active;  // both loops: per-seller liveness
  std::vector<entry> heap;          // lazy loop storage
  probe_seed seed;                  // shared by all critical-value probes
  std::vector<probe_scratch> probes;  // one slot per winner position
  coverage_state replay;            // feasibility re-check
  // Compiled path.
  compiled_instance compiled;            // compile-on-entry shim target
  scored_state scored;                   // eager selection: exact utilities
  compiled_state cstate;                 // lazy selection: coverage only
  std::vector<compiled_entry> cheap;     // compiled lazy-loop heap storage
  std::vector<char> cseller_active;      // per-seller liveness
  compiled_state creplay;                // feasibility re-check
  std::vector<compiled_probe_scratch> cprobes;  // one slot per winner
};

ssam_scratch::ssam_scratch() : impl_(std::make_unique<impl>()) {}
ssam_scratch::~ssam_scratch() = default;
ssam_scratch::ssam_scratch(ssam_scratch&&) noexcept = default;
ssam_scratch& ssam_scratch::operator=(ssam_scratch&&) noexcept = default;

ssam_scratch::impl& ssam_scratch::buffers() { return *impl_; }

namespace {

// ---------------------------------------------------------------------------
// Bid-vector reference loops (eager_reference / legacy_reference). Both
// greedy loops share one callback contract. `price_override` (optional,
// `override_index == bids.size()` disables it) replaces the price of one bid
// for critical-value probing. Each selection is reported through `on_win`,
// which may inspect the candidate set via the provided coverage state and
// `seller_active` vector (indexed by seller id — a bid is a candidate iff
// its seller is active, constraint (9)) and returns false to veto the
// selection and stop the auction (budget exhaustion, probe early exit).

// Reference implementation: full O(n·m) rescan of every active bid per
// selection, with the original per-bid deactivation sweep. Its cost profile
// IS the eager baseline the benchmarks compare against.
template <typename OnWin>
void eager_greedy_loop(const single_stage_instance& instance,
                       ssam_scratch::impl& ws, std::size_t override_index,
                       double override_price, OnWin&& on_win) {
  const std::size_t nbids = instance.bids.size();
  coverage_state& state = ws.state;
  state.reset(instance.requirements);
  ws.active.assign(nbids, 1);
  ws.seller_active.assign(seller_slots_of(instance), 1);

  auto price_of = [&](std::size_t idx) {
    return idx == override_index ? override_price : instance.bids[idx].price;
  };

  while (!state.satisfied()) {
    // Pick the active bid with the lowest ratio; ties break on the lowest
    // bid index for determinism.
    std::size_t best = nbids;
    units best_utility = 0;
    double best_ratio = kInf;
    for (std::size_t idx = 0; idx < nbids; ++idx) {
      if (!ws.active[idx]) continue;
      units utility = 0;
      const double ratio =
          ratio_of(instance.bids[idx], price_of(idx), state, utility);
      if (ratio < best_ratio) {
        best_ratio = ratio;
        best = idx;
        best_utility = utility;
      }
    }
    if (best == nbids) break;  // nothing helps: requirements unsatisfiable

    if (!on_win(best, best_utility, best_ratio, state, ws.seller_active)) {
      break;
    }

    state.apply(instance.bids[best]);
    // Remove every bid of the winning seller (constraint (9)).
    const seller_id winner_seller = instance.bids[best].seller;
    for (std::size_t idx = 0; idx < nbids; ++idx) {
      if (ws.active[idx] && instance.bids[idx].seller == winner_seller) {
        ws.active[idx] = 0;
      }
    }
    ws.seller_active[winner_seller] = 0;
  }
}

// The PR 3 lazy path: lazy evaluation on a min-heap of (stale ratio, bid
// index). U_ij(E) is submodular — coverage only grows, so marginal
// utilities only shrink and a bid's stale ratio is a LOWER bound on its
// current ratio. A popped bid whose fresh ratio is still no worse than the
// next stale key is therefore a true minimum; the index tie-break
// reproduces the eager scan's deterministic ordering bit-for-bit.
template <typename OnWin>
void lazy_greedy_loop(const single_stage_instance& instance,
                      ssam_scratch::impl& ws, std::size_t override_index,
                      double override_price, OnWin&& on_win) {
  const std::size_t nbids = instance.bids.size();
  coverage_state& state = ws.state;
  state.reset(instance.requirements);
  ws.seller_active.assign(seller_slots_of(instance), 1);

  auto price_of = [&](std::size_t idx) {
    return idx == override_index ? override_price : instance.bids[idx].price;
  };

  std::vector<entry>& heap = ws.heap;
  heap.clear();
  for (std::size_t idx = 0; idx < nbids; ++idx) {
    units utility = 0;
    const double ratio =
        ratio_of(instance.bids[idx], price_of(idx), state, utility);
    if (ratio != kInf) heap.emplace_back(ratio, idx);
  }
  std::make_heap(heap.begin(), heap.end(), std::greater<>{});

  while (!state.satisfied() && !heap.empty()) {
    const auto [stale_ratio, idx] = heap_pop(heap);
    if (!ws.seller_active[instance.bids[idx].seller]) continue;
    units utility = 0;
    const double ratio =
        ratio_of(instance.bids[idx], price_of(idx), state, utility);
    if (ratio == kInf) continue;  // no longer contributes
    // Select only if still no worse than the next candidate's (lower-bound)
    // key; ties go to the smaller index, exactly like the eager scan.
    if (!heap.empty()) {
      const auto& [next_ratio, next_idx] = heap.front();
      if (ratio > next_ratio || (ratio == next_ratio && idx > next_idx)) {
        heap_push(heap, {ratio, idx});
        continue;
      }
    }

    if (!on_win(idx, utility, ratio, state, ws.seller_active)) break;

    state.apply(instance.bids[idx]);
    ws.seller_active[instance.bids[idx].seller] = 0;
  }
}

template <typename OnWin>
void greedy_loop(const single_stage_instance& instance, ssam_scratch::impl& ws,
                 bool eager, std::size_t override_index, double override_price,
                 OnWin&& on_win) {
  if (eager) {
    eager_greedy_loop(instance, ws, override_index, override_price,
                      std::forward<OnWin>(on_win));
  } else {
    lazy_greedy_loop(instance, ws, override_index, override_price,
                     std::forward<OnWin>(on_win));
  }
}

// Rebuild the shared probe context in `seed`, reusing its storage. The
// empty-state marginal utility is evaluated against a freshly reset
// coverage state (borrowed from the caller), where U_ij(∅) is exactly the
// marginal utility.
void build_probe_seed(const single_stage_instance& instance, probe_seed& seed,
                      coverage_state& state) {
  state.reset(instance.requirements);
  seed.initial_utilities.clear();
  seed.initial_utilities.reserve(instance.bids.size());
  seed.entries.clear();
  seed.entries.reserve(instance.bids.size());
  for (std::size_t idx = 0; idx < instance.bids.size(); ++idx) {
    const bid& b = instance.bids[idx];
    const units utility = state.marginal_utility(b);
    seed.initial_utilities.push_back(utility);
    if (utility > 0) {
      seed.entries.emplace_back(b.price / static_cast<double>(utility), idx);
    }
  }
  std::sort(seed.entries.begin(), seed.entries.end());
  seed.seller_slots = seller_slots_of(instance);
}

// Lazy probe with early exit: does `bid_index` win when reporting
// `price_report`? Same selection rule as lazy_greedy_loop, but the candidate
// heap is split into three sources so nothing O(n) is rebuilt per probe:
//  - the shared pre-sorted seed, consumed through a cursor (stale initial
//    keys — lower bounds by submodularity);
//  - a small heap of entries that were popped and re-keyed this probe;
//  - one slot for the probed bid (its key uses the overridden price, so it
//    cannot live in the shared seed).
// Taking the (key, index)-lexicographic minimum over the three heads is
// equivalent to popping one heap holding all of them, so the selection
// sequence — and therefore the win/lose verdict — matches the generic loops
// bit for bit. The probe exits the moment the verdict is decided: the
// probed bid is selected (win), its marginal utility hits zero (it can
// never be selected later — loss), or its seller wins through another bid
// (constraint (9) — loss).
bool lazy_probe_wins(const single_stage_instance& instance,
                     const probe_seed& seed, probe_scratch& ws,
                     std::size_t bid_index, double price_report) {
  const units probed_utility = seed.initial_utilities[bid_index];
  if (probed_utility <= 0) return false;  // contributes nothing, never wins
  const seller_id probed_seller = instance.bids[bid_index].seller;

  coverage_state& state = ws.state;
  state.reset(instance.requirements);
  ws.seller_active.assign(seed.seller_slots, 1);
  std::vector<entry>& requeued = ws.requeued;
  requeued.clear();

  std::size_t cursor = 0;
  double probed_key = price_report / static_cast<double>(probed_utility);
  bool probed_pending = true;

  // Position the three heads on live candidates. The probed bid's seed
  // entry is skipped (the slot represents it); entries of deactivated
  // sellers are dead forever and are consumed/popped.
  auto skim = [&] {
    while (cursor < seed.entries.size() &&
           (seed.entries[cursor].second == bid_index ||
            !ws.seller_active[instance.bids[seed.entries[cursor].second]
                                  .seller])) {
      ++cursor;
    }
    while (!requeued.empty() &&
           !ws.seller_active[instance.bids[requeued.front().second].seller]) {
      heap_pop(requeued);
    }
  };
  // Minimum (key, index) over the three heads; false if all exhausted.
  auto peek = [&](entry& out) {
    bool found = false;
    if (cursor < seed.entries.size()) {
      out = seed.entries[cursor];
      found = true;
    }
    if (!requeued.empty() && (!found || requeued.front() < out)) {
      out = requeued.front();
      found = true;
    }
    if (probed_pending) {
      const entry probed{probed_key, bid_index};
      if (!found || probed < out) {
        out = probed;
        found = true;
      }
    }
    return found;
  };

  while (!state.satisfied()) {
    skim();
    entry head;
    if (!peek(head)) return false;  // nothing helps: auction ends, bid lost
    const std::size_t idx = head.second;
    // Pop the head from its source.
    if (idx == bid_index) {
      probed_pending = false;
    } else if (cursor < seed.entries.size() &&
               seed.entries[cursor].second == idx) {
      ++cursor;
    } else {
      heap_pop(requeued);
    }

    units utility = 0;
    const double price =
        idx == bid_index ? price_report : instance.bids[idx].price;
    const double ratio = ratio_of(instance.bids[idx], price, state, utility);
    if (ratio == kInf) {
      // No longer contributes. For the probed bid this is terminal: its
      // marginal utility can only shrink further (submodularity).
      if (idx == bid_index) return false;
      continue;
    }
    entry next;
    if (peek(next) &&
        (ratio > next.first || (ratio == next.first && idx > next.second))) {
      if (idx == bid_index) {
        probed_key = ratio;
        probed_pending = true;
      } else {
        heap_push(requeued, {ratio, idx});
      }
      continue;
    }

    // Selected.
    if (idx == bid_index) return true;
    if (instance.bids[idx].seller == probed_seller) return false;
    state.apply(instance.bids[idx]);
    ws.seller_active[instance.bids[idx].seller] = 0;
  }
  return false;  // requirements met without the probed bid
}

// Generic probe core (both reference loop flavours). With `early_exit`, the
// replayed auction stops the moment the verdict is decided: the probed bid
// was selected (won), or another bid of the same seller was selected, which
// deactivates the probed bid for the rest of the round (lost). Allocates
// its own workspace — this is the eager reference path, not the hot one.
bool wins_with_price_impl(const single_stage_instance& instance,
                          std::size_t bid_index, double price_report,
                          bool eager, bool early_exit) {
  ssam_scratch local;
  const seller_id probed_seller = instance.bids[bid_index].seller;
  bool won = false;
  greedy_loop(instance, local.buffers(), eager, bid_index, price_report,
              [&](std::size_t idx, units, double, const coverage_state&,
                  const std::vector<char>&) {
                if (idx == bid_index) {
                  won = true;
                  return !early_exit;
                }
                if (early_exit &&
                    instance.bids[idx].seller == probed_seller) {
                  return false;  // constraint (9) bars the probed bid now
                }
                return true;
              });
  return won;
}

// When `seed` is non-null the probes run through `lazy_probe_wins` (with
// `probe_ws` as workspace); otherwise the generic loop selected by `eager`
// replays the full auction per probe (the eager reference).
double critical_value_payment_impl(const single_stage_instance& instance,
                                   std::size_t bid_index, double relative_eps,
                                   bool eager, const probe_seed* seed,
                                   probe_scratch* probe_ws) {
  ECRS_CHECK(bid_index < instance.bids.size());
  ECRS_CHECK_MSG(relative_eps > 0.0 && relative_eps < 1.0,
                 "bisection tolerance must be in (0, 1)");
  probe_seed local_seed;
  probe_scratch local_ws;
  if (!eager && seed == nullptr) {
    build_probe_seed(instance, local_seed, local_ws.state);
    seed = &local_seed;
  }
  if (probe_ws == nullptr) probe_ws = &local_ws;
  auto probe = [&](double report) {
    return seed != nullptr
               ? lazy_probe_wins(instance, *seed, *probe_ws, bid_index, report)
               : wins_with_price_impl(instance, bid_index, report, eager,
                                      /*early_exit=*/false);
  };
  const double own_price = instance.bids[bid_index].price;
  ECRS_CHECK_MSG(probe(own_price),
                 "critical value requested for a losing bid");

  // Upper probe: a report so high the bid can only win if it faces no
  // competition at all.
  double max_price = 1.0;
  units total_supply = 0;
  for (const bid& b : instance.bids) {
    max_price = std::max(max_price, b.price);
    total_supply += b.amount * static_cast<units>(b.coverage_size());
  }
  const double hi_probe =
      (max_price + 1.0) * static_cast<double>(std::max<units>(total_supply, 1));
  if (probe(hi_probe)) {
    // No competition can displace this bid: pay-as-bid fallback.
    return own_price;
  }

  double lo = own_price;  // certified winning
  double hi = hi_probe;   // certified losing
  for (std::size_t round = 0;
       round < kMaxBisectionRounds && hi - lo > relative_eps * hi &&
       hi - lo > kBisectionAbsoluteFloor;
       ++round) {
    const double mid = 0.5 * (lo + hi);
    if (probe(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Resolve an options struct to "run the selection loop eagerly?".
bool eager_selection_of(const ssam_options& options) {
  if (options.eager_reference) return true;
  switch (options.selection) {
    case selection_mode::eager: return true;
    case selection_mode::lazy: return false;
    case selection_mode::automatic:
      // No probes to amortize the lazy heap against → eager's lower
      // constant wins (see BENCH_pr3.json for the measured crossover).
      return options.rule != payment_rule::critical_value;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Compiled selection loops. Same callback contract as the reference loops
// except the coverage view passed to `on_win` is a `utility_of` callable
// returning the bid's exact current U_ij(E) (O(1) from the eager loop's
// scored state, O(|coverage|) from the lazy loop's compiled state).

// Eager: full O(n) argmin scan per pick over the exact utilities, which the
// scored state serves in O(1) per candidate (the apply that keeps them
// exact walks only the inverted-index rows of the covered demanders).
template <typename OnWin>
void compiled_eager_loop(const compiled_instance& c, ssam_scratch::impl& ws,
                         OnWin&& on_win) {
  const std::size_t nbids = c.bid_count();
  scored_state& scored = ws.scored;
  scored.reset(c);
  ws.cseller_active.assign(c.seller_slots(), 1);
  auto utility_of = [&](std::size_t j) { return scored.utility(j); };

  while (!scored.satisfied()) {
    std::size_t best = nbids;
    units best_utility = 0;
    double best_ratio = kInf;
    for (std::size_t idx = 0; idx < nbids; ++idx) {
      if (!ws.cseller_active[c.seller(idx)]) continue;
      const units utility = scored.utility(idx);
      if (utility <= 0) continue;
      const double ratio = c.price(idx) / static_cast<double>(utility);
      if (ratio < best_ratio) {
        best_ratio = ratio;
        best = idx;
        best_utility = utility;
      }
    }
    if (best == nbids) break;  // nothing helps: requirements unsatisfiable

    if (!on_win(best, best_utility, best_ratio, utility_of,
                ws.cseller_active)) {
      break;
    }

    scored.apply(c, best);
    ws.cseller_active[c.seller(best)] = 0;
  }
}

// Lazy: the two-source candidate merge of compiled_probe_wins, without the
// probed-bid slot. The pre-sorted order() is consumed through a cursor —
// its keys are the bids' initial ratios, lower bounds by submodularity, so
// advancing the cursor replaces an O(log n) heap pop with a pointer bump —
// and bids whose exact recomputed ratio no longer beats the next head are
// re-keyed into a small requeue heap (a bid lives in exactly one source).
// Taking the (key, idx)-lexicographic minimum over the two heads is
// equivalent to popping one heap holding all entries, so the selection
// sequence matches the eager scan bit for bit.
template <typename OnWin>
void compiled_lazy_loop(const compiled_instance& c, ssam_scratch::impl& ws,
                        OnWin&& on_win) {
  compiled_state& state = ws.cstate;
  state.reset(c);
  ws.cseller_active.assign(c.seller_slots(), 1);
  auto utility_of = [&](std::size_t j) { return state.marginal_utility(c, j); };

  const std::vector<compiled_entry>& seed = c.order();
  std::size_t cursor = 0;
  std::vector<compiled_entry>& requeued = ws.cheap;
  requeued.clear();

  // Position both heads on live candidates (entries of deactivated sellers
  // are dead forever and are consumed/popped).
  auto skim = [&] {
    while (cursor < seed.size() && !ws.cseller_active[seed[cursor].seller]) {
      ++cursor;
    }
    while (!requeued.empty() && !ws.cseller_active[requeued.front().seller]) {
      std::pop_heap(requeued.begin(), requeued.end(), entry_greater{});
      requeued.pop_back();
    }
  };
  // Minimum (key, idx) over the two heads; false if both exhausted.
  auto peek = [&](compiled_entry& out) {
    bool found = false;
    if (cursor < seed.size()) {
      out = seed[cursor];
      found = true;
    }
    if (!requeued.empty() && (!found || entry_less(requeued.front(), out))) {
      out = requeued.front();
      found = true;
    }
    return found;
  };

  while (!state.satisfied()) {
    skim();
    compiled_entry head;
    if (!peek(head)) break;  // nothing helps: requirements unsatisfiable
    // Pop the head from its source (a bid sits in the unconsumed seed or in
    // the requeue heap, never both, so the idx match is unambiguous).
    if (cursor < seed.size() && seed[cursor].idx == head.idx) {
      ++cursor;
    } else {
      std::pop_heap(requeued.begin(), requeued.end(), entry_greater{});
      requeued.pop_back();
    }

    const units utility = state.marginal_utility(c, head.idx);
    if (utility <= 0) continue;  // dead forever (submodularity)
    const double ratio = c.price(head.idx) / static_cast<double>(utility);
    // Select only if still no worse than the next candidate's (lower-bound)
    // key; ties go to the smaller index, exactly like the eager scan.
    compiled_entry next;
    if (peek(next) &&
        (ratio > next.key || (ratio == next.key && head.idx > next.idx))) {
      requeued.push_back({ratio, head.idx, head.seller});
      std::push_heap(requeued.begin(), requeued.end(), entry_greater{});
      continue;
    }

    if (!on_win(head.idx, utility, ratio, utility_of, ws.cseller_active)) {
      break;
    }

    state.apply(c, head.idx);
    ws.cseller_active[head.seller] = 0;
  }
}

// Compiled port of lazy_probe_wins: identical three-source candidate merge
// and early exits, with the shared seed and all per-bid lookups served by
// the compiled view (no per-call seed build, no pointer chasing into the
// bid table).
bool compiled_probe_wins(const compiled_instance& c,
                         compiled_probe_scratch& ws, std::size_t bid_index,
                         double price_report) {
  const units probed_utility = c.initial_utility(bid_index);
  if (probed_utility <= 0) return false;  // contributes nothing, never wins
  const seller_id probed_seller = c.seller(bid_index);

  compiled_state& state = ws.state;
  state.reset(c);
  ws.seller_active.assign(c.seller_slots(), 1);
  std::vector<compiled_entry>& requeued = ws.requeued;
  requeued.clear();

  const std::vector<compiled_entry>& seed = c.order();
  std::size_t cursor = 0;
  double probed_key = price_report / static_cast<double>(probed_utility);
  bool probed_pending = true;

  auto skim = [&] {
    while (cursor < seed.size() &&
           (seed[cursor].idx == bid_index ||
            !ws.seller_active[seed[cursor].seller])) {
      ++cursor;
    }
    while (!requeued.empty() && !ws.seller_active[requeued.front().seller]) {
      std::pop_heap(requeued.begin(), requeued.end(), entry_greater{});
      requeued.pop_back();
    }
  };
  auto peek = [&](compiled_entry& out) {
    bool found = false;
    if (cursor < seed.size()) {
      out = seed[cursor];
      found = true;
    }
    if (!requeued.empty() && (!found || entry_less(requeued.front(), out))) {
      out = requeued.front();
      found = true;
    }
    if (probed_pending) {
      const compiled_entry probed{probed_key,
                                  static_cast<std::uint32_t>(bid_index),
                                  probed_seller};
      if (!found || entry_less(probed, out)) {
        out = probed;
        found = true;
      }
    }
    return found;
  };

  while (!state.satisfied()) {
    skim();
    compiled_entry head;
    if (!peek(head)) return false;  // nothing helps: auction ends, bid lost
    const std::size_t idx = head.idx;
    // Pop the head from its source.
    if (idx == bid_index) {
      probed_pending = false;
    } else if (cursor < seed.size() && seed[cursor].idx == idx) {
      ++cursor;
    } else {
      std::pop_heap(requeued.begin(), requeued.end(), entry_greater{});
      requeued.pop_back();
    }

    const units utility = state.marginal_utility(c, idx);
    if (utility <= 0) {
      // No longer contributes. For the probed bid this is terminal: its
      // marginal utility can only shrink further (submodularity).
      if (idx == bid_index) return false;
      continue;
    }
    const double price = idx == bid_index ? price_report : c.price(idx);
    const double ratio = price / static_cast<double>(utility);
    compiled_entry next;
    if (peek(next) &&
        (ratio > next.key || (ratio == next.key && idx > next.idx))) {
      if (idx == bid_index) {
        probed_key = ratio;
        probed_pending = true;
      } else {
        requeued.push_back({ratio, static_cast<std::uint32_t>(idx),
                            head.seller});
        std::push_heap(requeued.begin(), requeued.end(), entry_greater{});
      }
      continue;
    }

    // Selected.
    if (idx == bid_index) return true;
    if (head.seller == probed_seller) return false;
    state.apply(c, idx);
    ws.seller_active[head.seller] = 0;
  }
  return false;  // requirements met without the probed bid
}

// Record the probe trajectory for one winner: the greedy selection sequence
// with the probed bid excluded, each step carrying the selected competitor's
// exact (ratio, idx) and the probed bid's marginal utility entering the
// step. Why this suffices for every probe price p: until the probed bid is
// selected it occupies no seller slot and covers nothing, so the
// competitors' selections are exactly this excluded sequence. At step s the
// probed bid wins iff its exact key p / U_i(s) beats the step's
// (ratio, idx) lexicographically; a step whose competitor shares the probed
// bid's seller is terminal (constraint (9) bars the bid from then on), as
// is U_i(s) = 0 (utilities only shrink). If the trajectory exhausts all
// competitors with demand unmet, the probed bid is the last resort and wins
// at any price. The recording stops at the first terminal step, so |steps|
// is at most the winner count.
void build_probe_trajectory(const compiled_instance& c,
                            compiled_probe_scratch& ws,
                            std::size_t bid_index) {
  scored_state& scored = ws.scored;
  scored.reset(c);
  ws.seller_active.assign(c.seller_slots(), 1);
  ws.steps.clear();
  ws.end_probed_utility = 0;
  ws.end_satisfied = false;
  const seller_id probed_seller = c.seller(bid_index);

  while (!scored.satisfied()) {
    // Exact argmin over the active competitors (the eager scan; the scored
    // state serves every utility in O(1)).
    double best_ratio = kInf;
    std::size_t best = c.bid_count();
    for (std::size_t j = 0; j < c.bid_count(); ++j) {
      if (j == bid_index || !ws.seller_active[c.seller(j)]) continue;
      const units u = scored.utility(j);
      if (u <= 0) continue;
      const double r = c.price(j) / static_cast<double>(u);
      if (r < best_ratio || (r == best_ratio && j < best)) {
        best_ratio = r;
        best = j;
      }
    }
    const units probed_u = scored.utility(bid_index);
    if (best == c.bid_count()) {
      ws.end_probed_utility = probed_u;  // last resort; end_satisfied false
      return;
    }
    probe_step step;
    step.ratio = best_ratio;
    step.idx = static_cast<std::uint32_t>(best);
    step.probed_utility = probed_u;
    step.collision = c.seller(best) == probed_seller;
    ws.steps.push_back(step);
    if (step.collision || probed_u <= 0) return;  // terminal for every probe
    scored.apply(c, best);
    ws.seller_active[c.seller(best)] = 0;
  }
  ws.end_satisfied = true;
}

// Does the probed bid win at report p, resolved against the precomputed
// trajectory? Identical verdicts to a full replay (compiled_probe_wins):
// both decide "is the bid ever selected by the exact greedy", this one in
// O(|steps|).
bool trajectory_probe_wins(const compiled_probe_scratch& ws,
                           std::size_t bid_index, double report) {
  const auto probed_idx = static_cast<std::uint32_t>(bid_index);
  for (const probe_step& s : ws.steps) {
    if (s.probed_utility <= 0) return false;  // can never contribute again
    const double key = report / static_cast<double>(s.probed_utility);
    if (key < s.ratio || (key == s.ratio && probed_idx < s.idx)) return true;
    if (s.collision) return false;  // seller slot taken (constraint (9))
  }
  if (ws.end_satisfied) return false;  // demand met without the bid
  return ws.end_probed_utility > 0;    // last useful bid wins at any price
}

// Compiled critical-value bisection: same bounds, same probe sequence, same
// arithmetic as the reference — the upper probe reuses the compile-time
// price bound and total supply instead of re-scanning the bids, and every
// probe resolves against the winner's precomputed trajectory instead of
// replaying the auction (bit-identical verdicts, so bit-identical
// payments).
double compiled_critical_value(const compiled_instance& c,
                               std::size_t bid_index, double relative_eps,
                               compiled_probe_scratch& ws) {
  ECRS_CHECK(bid_index < c.bid_count());
  ECRS_CHECK_MSG(relative_eps > 0.0 && relative_eps < 1.0,
                 "bisection tolerance must be in (0, 1)");
  build_probe_trajectory(c, ws, bid_index);
  auto probe = [&](double report) {
    return trajectory_probe_wins(ws, bid_index, report);
  };
  const double own_price = c.price(bid_index);
  ECRS_CHECK_MSG(probe(own_price),
                 "critical value requested for a losing bid");

  // Upper probe: a report so high the bid can only win if it faces no
  // competition at all.
  const double hi_probe =
      (c.price_bound() + 1.0) *
      static_cast<double>(std::max<units>(c.total_supply(), 1));
  if (probe(hi_probe)) {
    // No competition can displace this bid: pay-as-bid fallback.
    return own_price;
  }

  double lo = own_price;  // certified winning
  double hi = hi_probe;   // certified losing
  for (std::size_t round = 0;
       round < kMaxBisectionRounds && hi - lo > relative_eps * hi &&
       hi - lo > kBisectionAbsoluteFloor;
       ++round) {
    const double mid = 0.5 * (lo + hi);
    if (probe(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// The production mechanism body, running entirely on the compiled view.
ssam_result run_ssam_compiled(const compiled_instance& c,
                              const ssam_options& options,
                              ssam_scratch::impl& ws) {
  ssam_result result;
  double budget_spent = 0.0;  // runner-up payment estimates

  auto on_win = [&](std::size_t idx, units utility, double ratio,
                    auto&& utility_of,
                    const std::vector<char>& seller_active) {
    winning_bid w;
    w.bid_index = idx;
    w.utility_at_selection = utility;
    w.ratio_at_selection = ratio;

    const bool need_estimate = options.rule == payment_rule::runner_up ||
                               options.payment_budget > 0.0;
    double estimate = c.price(idx);
    if (need_estimate) {
      // Best competing ratio among bids of *other* sellers still active
      // (Algorithm 1 line 6; see DESIGN.md for why same-seller
      // alternatives are excluded). `utility_of` serves each candidate's
      // exact utility against the loop's own coverage view.
      const seller_id self = c.seller(idx);
      double runner_ratio = kInf;
      for (std::size_t other = 0; other < c.bid_count(); ++other) {
        if (other == idx) continue;
        const seller_id other_seller = c.seller(other);
        if (other_seller == self) continue;
        if (!seller_active[other_seller]) continue;
        const units u = utility_of(other);
        if (u <= 0) continue;  // ratio would be infinite
        runner_ratio = std::min(runner_ratio,
                                c.price(other) / static_cast<double>(u));
      }
      if (runner_ratio != kInf) {
        estimate = static_cast<double>(utility) * runner_ratio;
      }
      // Line 7 pays U·(runner ratio); the winner was selected because its
      // own ratio is minimal, so payment >= price always.
      estimate = std::max(estimate, c.price(idx));
    }
    if (options.payment_budget > 0.0 &&
        budget_spent + estimate > options.payment_budget) {
      return false;  // W depleted: stop the auction here (paper §IV)
    }
    budget_spent += estimate;
    if (options.rule == payment_rule::runner_up) w.payment = estimate;

    // Theorem 3 accounting: the winning price is distributed over the
    // `utility` covered units as equal shares f = ratio.
    for (units u = 0; u < utility; ++u) {
      result.unit_shares.push_back(ratio);
    }

    result.winners.push_back(w);
    result.social_cost += c.price(idx);
    return true;
  };

  if (eager_selection_of(options)) {
    compiled_eager_loop(c, ws, on_win);
  } else {
    compiled_lazy_loop(c, ws, on_win);
  }

  if (options.rule == payment_rule::critical_value) {
    // Every payment is an independent pure probe of the instance, so they
    // run concurrently; each worker writes only its own winner's slot and
    // uses its own probe workspace, so the outcome is identical for any
    // thread count. The pre-sorted probe seed is the compiled order(),
    // shared read-only across every probe of every winner.
    if (ws.cprobes.size() < result.winners.size()) {
      ws.cprobes.resize(result.winners.size());
    }
    auto pay_one = [&](std::size_t pos) {
      result.winners[pos].payment = compiled_critical_value(
          c, result.winners[pos].bid_index, options.critical_value_eps,
          ws.cprobes[pos]);
    };
    if (options.payment_threads == 1 || result.winners.size() < 2) {
      for (std::size_t pos = 0; pos < result.winners.size(); ++pos) {
        pay_one(pos);
      }
    } else {
      thread_pool::shared().parallel_for(result.winners.size(), pay_one,
                                         options.payment_threads);
    }

    // Budget re-verification: the in-loop gate only saw runner-up
    // ESTIMATES; the actual critical-value payments can exceed them. Drop
    // trailing winners (reverse selection order) until the realized total
    // respects W, then let the feasibility replay below re-certify the
    // surviving set (paper §IV budget feasibility).
    if (options.payment_budget > 0.0) {
      double total = 0.0;
      for (const winning_bid& w : result.winners) total += w.payment;
      while (!result.winners.empty() && total > options.payment_budget) {
        const winning_bid& last = result.winners.back();
        total -= last.payment;
        result.unit_shares.resize(
            result.unit_shares.size() -
            static_cast<std::size_t>(last.utility_at_selection));
        result.winners.pop_back();
        ++result.budget_dropped;
      }
      if (result.budget_dropped > 0) {
        result.social_cost = 0.0;
        for (const winning_bid& w : result.winners) {
          result.social_cost += c.price(w.bid_index);
        }
      }
    }
  }

  for (const winning_bid& w : result.winners) {
    result.total_payment += w.payment;
  }

  // Feasibility: replay the winners against a fresh state.
  compiled_state& replay = ws.creplay;
  replay.reset(c);
  for (const winning_bid& w : result.winners) {
    replay.apply(c, w.bid_index);
  }
  result.feasible = replay.satisfied();

  // Dual certificate.
  if (!result.unit_shares.empty()) {
    const auto [lo_it, hi_it] = std::minmax_element(
        result.unit_shares.begin(), result.unit_shares.end());
    result.xi = *lo_it > 0.0 ? *hi_it / *lo_it : 1.0;
  }
  result.harmonic = harmonic_number(result.unit_shares.size());
  result.ratio_bound = std::max(1.0, result.harmonic * result.xi);
  result.dual_objective = result.social_cost / result.ratio_bound;

  if (options.self_audit) {
    audit_options audit;
    audit.payment_budget = options.payment_budget;
    audit_or_throw(c, result, audit);
  }
  return result;
}

// The bid-vector reference body (eager_reference / legacy_reference): the
// pre-compiled-view mechanism, kept verbatim as the equivalence and
// benchmark baseline.
ssam_result run_ssam_reference(const single_stage_instance& instance,
                               const ssam_options& options,
                               ssam_scratch::impl& ws) {
  ssam_result result;
  double budget_spent = 0.0;  // runner-up payment estimates

  greedy_loop(
      instance, ws, eager_selection_of(options), instance.bids.size(), 0.0,
      [&](std::size_t idx, units utility, double ratio,
          const coverage_state& state, const std::vector<char>& seller_active) {
        winning_bid w;
        w.bid_index = idx;
        w.utility_at_selection = utility;
        w.ratio_at_selection = ratio;

        const bool need_estimate = options.rule == payment_rule::runner_up ||
                                   options.payment_budget > 0.0;
        double estimate = instance.bids[idx].price;
        if (need_estimate) {
          // Best competing ratio among bids of *other* sellers still active
          // (Algorithm 1 line 6; see DESIGN.md for why same-seller
          // alternatives are excluded).
          const seller_id self = instance.bids[idx].seller;
          double runner_ratio = kInf;
          for (std::size_t other = 0; other < instance.bids.size(); ++other) {
            if (other == idx) continue;
            if (instance.bids[other].seller == self) continue;
            if (!seller_active[instance.bids[other].seller]) continue;
            units u = 0;
            const double r = ratio_of(instance.bids[other],
                                      instance.bids[other].price, state, u);
            runner_ratio = std::min(runner_ratio, r);
          }
          if (runner_ratio != kInf) {
            estimate = static_cast<double>(utility) * runner_ratio;
          }
          // Line 7 pays U·(runner ratio); the winner was selected because
          // its own ratio is minimal, so payment >= price always.
          estimate = std::max(estimate, instance.bids[idx].price);
        }
        if (options.payment_budget > 0.0 &&
            budget_spent + estimate > options.payment_budget) {
          return false;  // W depleted: stop the auction here (paper §IV)
        }
        budget_spent += estimate;
        if (options.rule == payment_rule::runner_up) w.payment = estimate;

        // Theorem 3 accounting: the winning price is distributed over the
        // `utility` covered units as equal shares f = ratio.
        for (units u = 0; u < utility; ++u) {
          result.unit_shares.push_back(ratio);
        }

        result.winners.push_back(w);
        result.social_cost += instance.bids[idx].price;
        return true;
      });

  if (options.rule == payment_rule::critical_value) {
    // Every payment is an independent pure probe of the instance, so they
    // run concurrently; each worker writes only its own winner's slot and
    // uses its own probe workspace, so the outcome is identical for any
    // thread count. The pre-sorted probe seed is shared read-only across
    // every probe of every winner.
    const probe_seed* seed = nullptr;
    if (!options.eager_reference) {
      build_probe_seed(instance, ws.seed, ws.state);
      seed = &ws.seed;
    }
    if (ws.probes.size() < result.winners.size()) {
      ws.probes.resize(result.winners.size());
    }
    auto pay_one = [&](std::size_t pos) {
      result.winners[pos].payment = critical_value_payment_impl(
          instance, result.winners[pos].bid_index, options.critical_value_eps,
          options.eager_reference, seed,
          options.eager_reference ? nullptr : &ws.probes[pos]);
    };
    if (options.payment_threads == 1 || result.winners.size() < 2) {
      for (std::size_t pos = 0; pos < result.winners.size(); ++pos) {
        pay_one(pos);
      }
    } else {
      thread_pool::shared().parallel_for(result.winners.size(), pay_one,
                                         options.payment_threads);
    }

    // Budget re-verification: the in-loop gate only saw runner-up
    // ESTIMATES; the actual critical-value payments can exceed them. Drop
    // trailing winners (reverse selection order) until the realized total
    // respects W, then let the feasibility replay below re-certify the
    // surviving set (paper §IV budget feasibility).
    if (options.payment_budget > 0.0) {
      double total = 0.0;
      for (const winning_bid& w : result.winners) total += w.payment;
      while (!result.winners.empty() && total > options.payment_budget) {
        const winning_bid& last = result.winners.back();
        total -= last.payment;
        result.unit_shares.resize(
            result.unit_shares.size() -
            static_cast<std::size_t>(last.utility_at_selection));
        result.winners.pop_back();
        ++result.budget_dropped;
      }
      if (result.budget_dropped > 0) {
        result.social_cost = 0.0;
        for (const winning_bid& w : result.winners) {
          result.social_cost += instance.bids[w.bid_index].price;
        }
      }
    }
  }

  for (const winning_bid& w : result.winners) {
    result.total_payment += w.payment;
  }

  // Feasibility: replay the winners against a fresh state.
  coverage_state& replay = ws.replay;
  replay.reset(instance.requirements);
  for (const winning_bid& w : result.winners) {
    replay.apply(instance.bids[w.bid_index]);
  }
  result.feasible = replay.satisfied();

  // Dual certificate.
  if (!result.unit_shares.empty()) {
    const auto [lo_it, hi_it] = std::minmax_element(
        result.unit_shares.begin(), result.unit_shares.end());
    result.xi = *lo_it > 0.0 ? *hi_it / *lo_it : 1.0;
  }
  result.harmonic = harmonic_number(result.unit_shares.size());
  result.ratio_bound = std::max(1.0, result.harmonic * result.xi);
  result.dual_objective = result.social_cost / result.ratio_bound;

  if (options.self_audit) {
    audit_options audit;
    audit.payment_budget = options.payment_budget;
    audit_or_throw(instance, result, audit);
  }
  return result;
}

void check_run_options(const ssam_options& options) {
  ECRS_CHECK_MSG(options.payment_budget >= 0.0,
                 "payment budget must be non-negative");
  ECRS_CHECK_MSG(
      options.critical_value_eps > 0.0 && options.critical_value_eps < 1.0,
      "bisection tolerance must be in (0, 1)");
}

}  // namespace

std::vector<std::size_t> greedy_selection(const single_stage_instance& instance,
                                          ssam_scratch* scratch) {
  std::optional<ssam_scratch> local;
  if (scratch == nullptr) scratch = &local.emplace();
  ssam_scratch::impl& ws = scratch->buffers();
  ws.compiled.compile(instance);
  std::vector<std::size_t> winners;
  compiled_lazy_loop(ws.compiled, ws,
                     [&](std::size_t idx, units, double, auto&&,
                         const std::vector<char>&) {
                       winners.push_back(idx);
                       return true;
                     });
  return winners;
}

std::vector<std::size_t> eager_greedy_selection(
    const single_stage_instance& instance, ssam_scratch* scratch) {
  std::optional<ssam_scratch> local;
  if (scratch == nullptr) scratch = &local.emplace();
  std::vector<std::size_t> winners;
  eager_greedy_loop(instance, scratch->buffers(), instance.bids.size(), 0.0,
                    [&](std::size_t idx, units, double, const coverage_state&,
                        const std::vector<char>&) {
                      winners.push_back(idx);
                      return true;
                    });
  return winners;
}

std::vector<std::size_t> lazy_greedy_selection(
    const single_stage_instance& instance) {
  instance.validate();
  return greedy_selection(instance);
}

bool wins_with_price(const single_stage_instance& instance,
                     std::size_t bid_index, double price_report) {
  ECRS_CHECK(bid_index < instance.bids.size());
  ECRS_CHECK_MSG(price_report >= 0.0, "price reports must be non-negative");
  ssam_scratch local;
  ssam_scratch::impl& ws = local.buffers();
  ws.compiled.compile(instance);
  if (ws.cprobes.empty()) ws.cprobes.resize(1);
  return compiled_probe_wins(ws.compiled, ws.cprobes[0], bid_index,
                             price_report);
}

double critical_value_payment(const single_stage_instance& instance,
                              std::size_t bid_index, double relative_eps) {
  ECRS_CHECK(bid_index < instance.bids.size());
  ssam_scratch local;
  ssam_scratch::impl& ws = local.buffers();
  ws.compiled.compile(instance);
  if (ws.cprobes.empty()) ws.cprobes.resize(1);
  return compiled_critical_value(ws.compiled, bid_index, relative_eps,
                                 ws.cprobes[0]);
}

ssam_result run_ssam(const single_stage_instance& instance,
                     const ssam_options& options, ssam_scratch* scratch) {
  instance.validate();
  check_run_options(options);
  ECRS_CHECK_MSG(!(options.eager_reference && options.legacy_reference),
                 "pick at most one bid-vector reference path");
  std::optional<ssam_scratch> local;
  if (scratch == nullptr) scratch = &local.emplace();
  ssam_scratch::impl& ws = scratch->buffers();
  if (options.eager_reference || options.legacy_reference) {
    return run_ssam_reference(instance, options, ws);
  }
  ws.compiled.compile(instance);
  return run_ssam_compiled(ws.compiled, options, ws);
}

ssam_result run_ssam(const compiled_instance& compiled,
                     const ssam_options& options, ssam_scratch* scratch) {
  ECRS_CHECK_MSG(!options.eager_reference && !options.legacy_reference,
                 "the bid-vector reference paths need the original instance; "
                 "call run_ssam(single_stage_instance) instead");
  check_run_options(options);
  std::optional<ssam_scratch> local;
  if (scratch == nullptr) scratch = &local.emplace();
  return run_ssam_compiled(compiled, options, scratch->buffers());
}

}  // namespace ecrs::auction
