#include "auction/ssam.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <utility>

#include "common/check.h"
#include "common/statistics.h"

namespace ecrs::auction {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Cost-effectiveness of a bid given the current coverage state; infinite
// when the bid adds nothing.
double ratio_of(const bid& b, double price, const coverage_state& state,
                units& utility_out) {
  utility_out = state.marginal_utility(b);
  if (utility_out <= 0) return kInf;
  return price / static_cast<double>(utility_out);
}

// Shared greedy loop. `price_override` (optional) replaces the price of one
// bid (for critical-value probing). Reports each selection through `on_win`,
// which may inspect the candidate set via the provided actives/ratios and
// returns false to veto the selection and stop (budget exhaustion).
template <typename OnWin>
void greedy_loop(const single_stage_instance& instance,
                 std::size_t override_index, double override_price,
                 OnWin&& on_win) {
  const std::size_t nbids = instance.bids.size();
  coverage_state state(instance.requirements);
  std::vector<bool> active(nbids, true);

  auto price_of = [&](std::size_t idx) {
    return idx == override_index ? override_price : instance.bids[idx].price;
  };

  while (!state.satisfied()) {
    // Pick the active bid with the lowest ratio; ties break on the lowest
    // bid index for determinism.
    std::size_t best = nbids;
    units best_utility = 0;
    double best_ratio = kInf;
    for (std::size_t idx = 0; idx < nbids; ++idx) {
      if (!active[idx]) continue;
      units utility = 0;
      const double ratio =
          ratio_of(instance.bids[idx], price_of(idx), state, utility);
      if (ratio < best_ratio) {
        best_ratio = ratio;
        best = idx;
        best_utility = utility;
      }
    }
    if (best == nbids) break;  // nothing helps: requirements unsatisfiable

    if (!on_win(best, best_utility, best_ratio, state, active)) break;

    state.apply(instance.bids[best]);
    // Remove every bid of the winning seller (constraint (9)).
    const seller_id winner_seller = instance.bids[best].seller;
    for (std::size_t idx = 0; idx < nbids; ++idx) {
      if (active[idx] && instance.bids[idx].seller == winner_seller) {
        active[idx] = false;
      }
    }
  }
}

}  // namespace

std::vector<std::size_t> greedy_selection(
    const single_stage_instance& instance) {
  std::vector<std::size_t> winners;
  greedy_loop(instance, instance.bids.size(), 0.0,
              [&](std::size_t idx, units, double, const coverage_state&,
                  const std::vector<bool>&) {
                winners.push_back(idx);
                return true;
              });
  return winners;
}

std::vector<std::size_t> lazy_greedy_selection(
    const single_stage_instance& instance) {
  instance.validate();
  std::vector<std::size_t> winners;
  const std::size_t nbids = instance.bids.size();
  coverage_state state(instance.requirements);
  std::vector<bool> active(nbids, true);

  // Min-heap on (stale ratio, bid index); the index tie-break reproduces
  // the eager loop's deterministic ordering.
  using entry = std::pair<double, std::size_t>;
  std::priority_queue<entry, std::vector<entry>, std::greater<>> heap;
  for (std::size_t idx = 0; idx < nbids; ++idx) {
    units utility = 0;
    const double ratio =
        ratio_of(instance.bids[idx], instance.bids[idx].price, state, utility);
    if (ratio != kInf) heap.emplace(ratio, idx);
  }

  while (!state.satisfied() && !heap.empty()) {
    const auto [stale_ratio, idx] = heap.top();
    heap.pop();
    if (!active[idx]) continue;
    units utility = 0;
    const double ratio =
        ratio_of(instance.bids[idx], instance.bids[idx].price, state, utility);
    if (ratio == kInf) continue;  // no longer contributes
    // Submodularity: ratio >= stale_ratio. Select only if still no worse
    // than the next candidate's (lower-bound) key; ties go to the smaller
    // index, exactly like the eager scan.
    if (!heap.empty()) {
      const auto& [next_ratio, next_idx] = heap.top();
      if (ratio > next_ratio ||
          (ratio == next_ratio && idx > next_idx)) {
        heap.emplace(ratio, idx);
        continue;
      }
    }
    winners.push_back(idx);
    state.apply(instance.bids[idx]);
    const seller_id winner_seller = instance.bids[idx].seller;
    for (std::size_t other = 0; other < nbids; ++other) {
      if (active[other] && instance.bids[other].seller == winner_seller) {
        active[other] = false;
      }
    }
  }
  return winners;
}

bool wins_with_price(const single_stage_instance& instance,
                     std::size_t bid_index, double price_report) {
  ECRS_CHECK(bid_index < instance.bids.size());
  ECRS_CHECK_MSG(price_report >= 0.0, "price reports must be non-negative");
  bool won = false;
  greedy_loop(instance, bid_index, price_report,
              [&](std::size_t idx, units, double, const coverage_state&,
                  const std::vector<bool>&) {
                won = won || idx == bid_index;
                return true;
              });
  return won;
}

double critical_value_payment(const single_stage_instance& instance,
                              std::size_t bid_index,
                              std::size_t search_iterations) {
  ECRS_CHECK(bid_index < instance.bids.size());
  const double own_price = instance.bids[bid_index].price;
  ECRS_CHECK_MSG(wins_with_price(instance, bid_index, own_price),
                 "critical value requested for a losing bid");

  // Upper probe: a report so high the bid can only win if it faces no
  // competition at all.
  double max_price = 1.0;
  units total_supply = 0;
  for (const bid& b : instance.bids) {
    max_price = std::max(max_price, b.price);
    total_supply += b.amount * static_cast<units>(b.coverage.size());
  }
  const double hi_probe =
      (max_price + 1.0) * static_cast<double>(std::max<units>(total_supply, 1));
  if (wins_with_price(instance, bid_index, hi_probe)) {
    // No competition can displace this bid: pay-as-bid fallback.
    return own_price;
  }

  double lo = own_price;   // wins
  double hi = hi_probe;    // loses
  for (std::size_t it = 0; it < search_iterations; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (wins_with_price(instance, bid_index, mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

ssam_result run_ssam(const single_stage_instance& instance,
                     const ssam_options& options) {
  instance.validate();
  ECRS_CHECK_MSG(options.payment_budget >= 0.0,
                 "payment budget must be non-negative");
  ssam_result result;
  double budget_spent = 0.0;  // runner-up payment estimates

  greedy_loop(
      instance, instance.bids.size(), 0.0,
      [&](std::size_t idx, units utility, double ratio,
          const coverage_state& state, const std::vector<bool>& active) {
        winning_bid w;
        w.bid_index = idx;
        w.utility_at_selection = utility;
        w.ratio_at_selection = ratio;

        const bool need_estimate = options.rule == payment_rule::runner_up ||
                                   options.payment_budget > 0.0;
        double estimate = instance.bids[idx].price;
        if (need_estimate) {
          // Best competing ratio among bids of *other* sellers still active
          // (Algorithm 1 line 6; see DESIGN.md for why same-seller
          // alternatives are excluded).
          const seller_id self = instance.bids[idx].seller;
          double runner_ratio = kInf;
          for (std::size_t other = 0; other < instance.bids.size(); ++other) {
            if (!active[other] || other == idx) continue;
            if (instance.bids[other].seller == self) continue;
            units u = 0;
            const double r = ratio_of(instance.bids[other],
                                      instance.bids[other].price, state, u);
            runner_ratio = std::min(runner_ratio, r);
          }
          if (runner_ratio != kInf) {
            estimate = static_cast<double>(utility) * runner_ratio;
          }
          // Line 7 pays U·(runner ratio); the winner was selected because
          // its own ratio is minimal, so payment >= price always.
          estimate = std::max(estimate, instance.bids[idx].price);
        }
        if (options.payment_budget > 0.0 &&
            budget_spent + estimate > options.payment_budget) {
          return false;  // W depleted: stop the auction here (paper §IV)
        }
        budget_spent += estimate;
        if (options.rule == payment_rule::runner_up) w.payment = estimate;

        // Theorem 3 accounting: the winning price is distributed over the
        // `utility` covered units as equal shares f = ratio.
        for (units u = 0; u < utility; ++u) {
          result.unit_shares.push_back(ratio);
        }

        result.winners.push_back(w);
        result.social_cost += instance.bids[idx].price;
        return true;
      });

  if (options.rule == payment_rule::critical_value) {
    for (winning_bid& w : result.winners) {
      w.payment = critical_value_payment(instance, w.bid_index,
                                         options.critical_search_iterations);
    }
  }

  for (const winning_bid& w : result.winners) {
    result.total_payment += w.payment;
  }

  // Feasibility: replay the winners against a fresh state.
  coverage_state state(instance.requirements);
  for (const winning_bid& w : result.winners) {
    state.apply(instance.bids[w.bid_index]);
  }
  result.feasible = state.satisfied();

  // Dual certificate.
  if (!result.unit_shares.empty()) {
    const auto [lo_it, hi_it] = std::minmax_element(
        result.unit_shares.begin(), result.unit_shares.end());
    result.xi = *lo_it > 0.0 ? *hi_it / *lo_it : 1.0;
  }
  result.harmonic = harmonic_number(result.unit_shares.size());
  result.ratio_bound = std::max(1.0, result.harmonic * result.xi);
  result.dual_objective = result.social_cost / result.ratio_bound;
  return result;
}

}  // namespace ecrs::auction
