#include "auction/ssam.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <utility>

#include "auction/properties.h"
#include "common/check.h"
#include "common/statistics.h"
#include "common/thread_pool.h"

namespace ecrs::auction {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Hard cap on bisection rounds: the relative-gap criterion can stall only
// when the critical value degenerates towards zero, in which case the
// absolute floor below ends the search.
constexpr std::size_t kMaxBisectionRounds = 200;
constexpr double kBisectionAbsoluteFloor = 1e-12;

using entry = std::pair<double, std::size_t>;  // (ratio, bid index)

// Manual min-heap over (ratio, bid index) entries, operating on a borrowed
// vector so the storage survives across calls. std::priority_queue would
// force a fresh container per auction.
void heap_push(std::vector<entry>& heap, entry e) {
  heap.push_back(e);
  std::push_heap(heap.begin(), heap.end(), std::greater<>{});
}

entry heap_pop(std::vector<entry>& heap) {
  std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
  const entry top = heap.back();
  heap.pop_back();
  return top;
}

// Cost-effectiveness of a bid given the current coverage state; infinite
// when the bid adds nothing.
double ratio_of(const bid& b, double price, const coverage_state& state,
                units& utility_out) {
  utility_out = state.marginal_utility(b);
  if (utility_out <= 0) return kInf;
  return price / static_cast<double>(utility_out);
}

seller_id max_seller_of(const single_stage_instance& instance) {
  seller_id max_seller = 0;
  for (const bid& b : instance.bids) {
    max_seller = std::max(max_seller, b.seller);
  }
  return max_seller;
}

std::size_t seller_slots_of(const single_stage_instance& instance) {
  return instance.bids.empty()
             ? 0
             : static_cast<std::size_t>(max_seller_of(instance)) + 1;
}

// Read-only probe context shared by every bisection probe of one instance:
// the empty-state utilities plus all contributing bids pre-sorted by
// (initial ratio, bid index) — exactly the order a fresh lazy heap would
// pop them in. Building it costs one O(n log n) sort; each probe then walks
// it with a cursor instead of re-heapifying n entries.
struct probe_seed {
  std::vector<units> initial_utilities;
  std::vector<entry> entries;  // ascending
  std::size_t seller_slots = 0;  // max seller id + 1
};

// Mutable per-probe workspace (one per concurrently running probe).
struct probe_scratch {
  coverage_state state;
  std::vector<char> seller_active;
  std::vector<entry> requeued;  // min-heap storage
};

}  // namespace

// Every buffer the selection loops and payment probes touch, grown on
// demand and reused across calls. The per-winner `probes` slots make the
// parallel payment fan-out safe with a single scratch: worker `pos` only
// touches probes[pos].
struct ssam_scratch::impl {
  coverage_state state;             // selection loops
  std::vector<char> active;         // eager loop: per-bid liveness
  std::vector<char> seller_active;  // both loops: per-seller liveness
  std::vector<entry> heap;          // lazy loop storage
  probe_seed seed;                  // shared by all critical-value probes
  std::vector<probe_scratch> probes;  // one slot per winner position
  coverage_state replay;            // feasibility re-check
};

ssam_scratch::ssam_scratch() : impl_(std::make_unique<impl>()) {}
ssam_scratch::~ssam_scratch() = default;
ssam_scratch::ssam_scratch(ssam_scratch&&) noexcept = default;
ssam_scratch& ssam_scratch::operator=(ssam_scratch&&) noexcept = default;

ssam_scratch::impl& ssam_scratch::buffers() { return *impl_; }

namespace {

// Both greedy loops share one callback contract. `price_override` (optional,
// `override_index == bids.size()` disables it) replaces the price of one bid
// for critical-value probing. Each selection is reported through `on_win`,
// which may inspect the candidate set via the provided coverage state and
// `seller_active` vector (indexed by seller id — a bid is a candidate iff
// its seller is active, constraint (9)) and returns false to veto the
// selection and stop the auction (budget exhaustion, probe early exit).

// Reference implementation: full O(n·m) rescan of every active bid per
// selection, with the original per-bid deactivation sweep. Its cost profile
// IS the eager baseline the benchmarks compare against, but it is also the
// fastest selection loop when no probes run (selection_mode::automatic
// routes runner_up calls here).
template <typename OnWin>
void eager_greedy_loop(const single_stage_instance& instance,
                       ssam_scratch::impl& ws, std::size_t override_index,
                       double override_price, OnWin&& on_win) {
  const std::size_t nbids = instance.bids.size();
  coverage_state& state = ws.state;
  state.reset(instance.requirements);
  ws.active.assign(nbids, 1);
  ws.seller_active.assign(seller_slots_of(instance), 1);

  auto price_of = [&](std::size_t idx) {
    return idx == override_index ? override_price : instance.bids[idx].price;
  };

  while (!state.satisfied()) {
    // Pick the active bid with the lowest ratio; ties break on the lowest
    // bid index for determinism.
    std::size_t best = nbids;
    units best_utility = 0;
    double best_ratio = kInf;
    for (std::size_t idx = 0; idx < nbids; ++idx) {
      if (!ws.active[idx]) continue;
      units utility = 0;
      const double ratio =
          ratio_of(instance.bids[idx], price_of(idx), state, utility);
      if (ratio < best_ratio) {
        best_ratio = ratio;
        best = idx;
        best_utility = utility;
      }
    }
    if (best == nbids) break;  // nothing helps: requirements unsatisfiable

    if (!on_win(best, best_utility, best_ratio, state, ws.seller_active)) {
      break;
    }

    state.apply(instance.bids[best]);
    // Remove every bid of the winning seller (constraint (9)).
    const seller_id winner_seller = instance.bids[best].seller;
    for (std::size_t idx = 0; idx < nbids; ++idx) {
      if (ws.active[idx] && instance.bids[idx].seller == winner_seller) {
        ws.active[idx] = 0;
      }
    }
    ws.seller_active[winner_seller] = 0;
  }
}

// The probe-friendly path: lazy evaluation on a min-heap of (stale ratio,
// bid index). U_ij(E) is submodular — coverage only grows, so marginal
// utilities only shrink and a bid's stale ratio is a LOWER bound on its
// current ratio. A popped bid whose fresh ratio is still no worse than the
// next stale key is therefore a true minimum; the index tie-break
// reproduces the eager scan's deterministic ordering bit-for-bit.
template <typename OnWin>
void lazy_greedy_loop(const single_stage_instance& instance,
                      ssam_scratch::impl& ws, std::size_t override_index,
                      double override_price, OnWin&& on_win) {
  const std::size_t nbids = instance.bids.size();
  coverage_state& state = ws.state;
  state.reset(instance.requirements);
  ws.seller_active.assign(seller_slots_of(instance), 1);

  auto price_of = [&](std::size_t idx) {
    return idx == override_index ? override_price : instance.bids[idx].price;
  };

  std::vector<entry>& heap = ws.heap;
  heap.clear();
  for (std::size_t idx = 0; idx < nbids; ++idx) {
    units utility = 0;
    const double ratio =
        ratio_of(instance.bids[idx], price_of(idx), state, utility);
    if (ratio != kInf) heap.emplace_back(ratio, idx);
  }
  std::make_heap(heap.begin(), heap.end(), std::greater<>{});

  while (!state.satisfied() && !heap.empty()) {
    const auto [stale_ratio, idx] = heap_pop(heap);
    if (!ws.seller_active[instance.bids[idx].seller]) continue;
    units utility = 0;
    const double ratio =
        ratio_of(instance.bids[idx], price_of(idx), state, utility);
    if (ratio == kInf) continue;  // no longer contributes
    // Select only if still no worse than the next candidate's (lower-bound)
    // key; ties go to the smaller index, exactly like the eager scan.
    if (!heap.empty()) {
      const auto& [next_ratio, next_idx] = heap.front();
      if (ratio > next_ratio || (ratio == next_ratio && idx > next_idx)) {
        heap_push(heap, {ratio, idx});
        continue;
      }
    }

    if (!on_win(idx, utility, ratio, state, ws.seller_active)) break;

    state.apply(instance.bids[idx]);
    ws.seller_active[instance.bids[idx].seller] = 0;
  }
}

template <typename OnWin>
void greedy_loop(const single_stage_instance& instance, ssam_scratch::impl& ws,
                 bool eager, std::size_t override_index, double override_price,
                 OnWin&& on_win) {
  if (eager) {
    eager_greedy_loop(instance, ws, override_index, override_price,
                      std::forward<OnWin>(on_win));
  } else {
    lazy_greedy_loop(instance, ws, override_index, override_price,
                     std::forward<OnWin>(on_win));
  }
}

// Rebuild the shared probe context in `seed`, reusing its storage. The
// empty-state marginal utility needs no coverage_state: it is
// sum_k min(amount, requirement_k) over the covered demanders.
void build_probe_seed(const single_stage_instance& instance,
                      probe_seed& seed) {
  seed.initial_utilities.clear();
  seed.initial_utilities.reserve(instance.bids.size());
  seed.entries.clear();
  seed.entries.reserve(instance.bids.size());
  for (std::size_t idx = 0; idx < instance.bids.size(); ++idx) {
    const bid& b = instance.bids[idx];
    units utility = 0;
    for (const demander_id k : b.coverage) {
      utility += std::min(b.amount, instance.requirements[k]);
    }
    seed.initial_utilities.push_back(utility);
    if (utility > 0) {
      seed.entries.emplace_back(b.price / static_cast<double>(utility), idx);
    }
  }
  std::sort(seed.entries.begin(), seed.entries.end());
  seed.seller_slots = seller_slots_of(instance);
}

// Lazy probe with early exit: does `bid_index` win when reporting
// `price_report`? Same selection rule as lazy_greedy_loop, but the candidate
// heap is split into three sources so nothing O(n) is rebuilt per probe:
//  - the shared pre-sorted seed, consumed through a cursor (stale initial
//    keys — lower bounds by submodularity);
//  - a small heap of entries that were popped and re-keyed this probe;
//  - one slot for the probed bid (its key uses the overridden price, so it
//    cannot live in the shared seed).
// Taking the (key, index)-lexicographic minimum over the three heads is
// equivalent to popping one heap holding all of them, so the selection
// sequence — and therefore the win/lose verdict — matches the generic loops
// bit for bit. The probe exits the moment the verdict is decided: the
// probed bid is selected (win), its marginal utility hits zero (it can
// never be selected later — loss), or its seller wins through another bid
// (constraint (9) — loss).
bool lazy_probe_wins(const single_stage_instance& instance,
                     const probe_seed& seed, probe_scratch& ws,
                     std::size_t bid_index, double price_report) {
  const units probed_utility = seed.initial_utilities[bid_index];
  if (probed_utility <= 0) return false;  // contributes nothing, never wins
  const seller_id probed_seller = instance.bids[bid_index].seller;

  coverage_state& state = ws.state;
  state.reset(instance.requirements);
  ws.seller_active.assign(seed.seller_slots, 1);
  std::vector<entry>& requeued = ws.requeued;
  requeued.clear();

  std::size_t cursor = 0;
  double probed_key = price_report / static_cast<double>(probed_utility);
  bool probed_pending = true;

  // Position the three heads on live candidates. The probed bid's seed
  // entry is skipped (the slot represents it); entries of deactivated
  // sellers are dead forever and are consumed/popped.
  auto skim = [&] {
    while (cursor < seed.entries.size() &&
           (seed.entries[cursor].second == bid_index ||
            !ws.seller_active[instance.bids[seed.entries[cursor].second]
                                  .seller])) {
      ++cursor;
    }
    while (!requeued.empty() &&
           !ws.seller_active[instance.bids[requeued.front().second].seller]) {
      heap_pop(requeued);
    }
  };
  // Minimum (key, index) over the three heads; false if all exhausted.
  auto peek = [&](entry& out) {
    bool found = false;
    if (cursor < seed.entries.size()) {
      out = seed.entries[cursor];
      found = true;
    }
    if (!requeued.empty() && (!found || requeued.front() < out)) {
      out = requeued.front();
      found = true;
    }
    if (probed_pending) {
      const entry probed{probed_key, bid_index};
      if (!found || probed < out) {
        out = probed;
        found = true;
      }
    }
    return found;
  };

  while (!state.satisfied()) {
    skim();
    entry head;
    if (!peek(head)) return false;  // nothing helps: auction ends, bid lost
    const std::size_t idx = head.second;
    // Pop the head from its source.
    if (idx == bid_index) {
      probed_pending = false;
    } else if (cursor < seed.entries.size() &&
               seed.entries[cursor].second == idx) {
      ++cursor;
    } else {
      heap_pop(requeued);
    }

    units utility = 0;
    const double price =
        idx == bid_index ? price_report : instance.bids[idx].price;
    const double ratio = ratio_of(instance.bids[idx], price, state, utility);
    if (ratio == kInf) {
      // No longer contributes. For the probed bid this is terminal: its
      // marginal utility can only shrink further (submodularity).
      if (idx == bid_index) return false;
      continue;
    }
    entry next;
    if (peek(next) &&
        (ratio > next.first || (ratio == next.first && idx > next.second))) {
      if (idx == bid_index) {
        probed_key = ratio;
        probed_pending = true;
      } else {
        heap_push(requeued, {ratio, idx});
      }
      continue;
    }

    // Selected.
    if (idx == bid_index) return true;
    if (instance.bids[idx].seller == probed_seller) return false;
    state.apply(instance.bids[idx]);
    ws.seller_active[instance.bids[idx].seller] = 0;
  }
  return false;  // requirements met without the probed bid
}

// Generic probe core (both loop flavours). With `early_exit`, the replayed
// auction stops the moment the verdict is decided: the probed bid was
// selected (won), or another bid of the same seller was selected, which
// deactivates the probed bid for the rest of the round (lost). Allocates
// its own workspace — this is the eager reference path, not the hot one.
bool wins_with_price_impl(const single_stage_instance& instance,
                          std::size_t bid_index, double price_report,
                          bool eager, bool early_exit) {
  ssam_scratch local;
  const seller_id probed_seller = instance.bids[bid_index].seller;
  bool won = false;
  greedy_loop(instance, local.buffers(), eager, bid_index, price_report,
              [&](std::size_t idx, units, double, const coverage_state&,
                  const std::vector<char>&) {
                if (idx == bid_index) {
                  won = true;
                  return !early_exit;
                }
                if (early_exit &&
                    instance.bids[idx].seller == probed_seller) {
                  return false;  // constraint (9) bars the probed bid now
                }
                return true;
              });
  return won;
}

// When `seed` is non-null the probes run through `lazy_probe_wins` (the hot
// path, with `probe_ws` as its workspace); otherwise the generic loop
// selected by `eager` replays the full auction per probe (the before/after
// reference).
double critical_value_payment_impl(const single_stage_instance& instance,
                                   std::size_t bid_index, double relative_eps,
                                   bool eager, const probe_seed* seed,
                                   probe_scratch* probe_ws) {
  ECRS_CHECK(bid_index < instance.bids.size());
  ECRS_CHECK_MSG(relative_eps > 0.0 && relative_eps < 1.0,
                 "bisection tolerance must be in (0, 1)");
  probe_seed local_seed;
  probe_scratch local_ws;
  if (!eager && seed == nullptr) {
    build_probe_seed(instance, local_seed);
    seed = &local_seed;
  }
  if (probe_ws == nullptr) probe_ws = &local_ws;
  auto probe = [&](double report) {
    return seed != nullptr
               ? lazy_probe_wins(instance, *seed, *probe_ws, bid_index, report)
               : wins_with_price_impl(instance, bid_index, report, eager,
                                      /*early_exit=*/false);
  };
  const double own_price = instance.bids[bid_index].price;
  ECRS_CHECK_MSG(probe(own_price),
                 "critical value requested for a losing bid");

  // Upper probe: a report so high the bid can only win if it faces no
  // competition at all.
  double max_price = 1.0;
  units total_supply = 0;
  for (const bid& b : instance.bids) {
    max_price = std::max(max_price, b.price);
    total_supply += b.amount * static_cast<units>(b.coverage.size());
  }
  const double hi_probe =
      (max_price + 1.0) * static_cast<double>(std::max<units>(total_supply, 1));
  if (probe(hi_probe)) {
    // No competition can displace this bid: pay-as-bid fallback.
    return own_price;
  }

  double lo = own_price;  // certified winning
  double hi = hi_probe;   // certified losing
  for (std::size_t round = 0;
       round < kMaxBisectionRounds && hi - lo > relative_eps * hi &&
       hi - lo > kBisectionAbsoluteFloor;
       ++round) {
    const double mid = 0.5 * (lo + hi);
    if (probe(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Resolve an options struct to "run the selection loop eagerly?".
bool eager_selection_of(const ssam_options& options) {
  if (options.eager_reference) return true;
  switch (options.selection) {
    case selection_mode::eager: return true;
    case selection_mode::lazy: return false;
    case selection_mode::automatic:
      // No probes to amortize the lazy heap against → eager's lower
      // constant wins (see BENCH_pr3.json for the measured crossover).
      return options.rule != payment_rule::critical_value;
  }
  return false;
}

}  // namespace

std::vector<std::size_t> greedy_selection(const single_stage_instance& instance,
                                          ssam_scratch* scratch) {
  std::optional<ssam_scratch> local;
  if (scratch == nullptr) scratch = &local.emplace();
  std::vector<std::size_t> winners;
  lazy_greedy_loop(instance, scratch->buffers(), instance.bids.size(), 0.0,
                   [&](std::size_t idx, units, double, const coverage_state&,
                       const std::vector<char>&) {
                     winners.push_back(idx);
                     return true;
                   });
  return winners;
}

std::vector<std::size_t> eager_greedy_selection(
    const single_stage_instance& instance, ssam_scratch* scratch) {
  std::optional<ssam_scratch> local;
  if (scratch == nullptr) scratch = &local.emplace();
  std::vector<std::size_t> winners;
  eager_greedy_loop(instance, scratch->buffers(), instance.bids.size(), 0.0,
                    [&](std::size_t idx, units, double, const coverage_state&,
                        const std::vector<char>&) {
                      winners.push_back(idx);
                      return true;
                    });
  return winners;
}

std::vector<std::size_t> lazy_greedy_selection(
    const single_stage_instance& instance) {
  instance.validate();
  return greedy_selection(instance);
}

bool wins_with_price(const single_stage_instance& instance,
                     std::size_t bid_index, double price_report) {
  ECRS_CHECK(bid_index < instance.bids.size());
  ECRS_CHECK_MSG(price_report >= 0.0, "price reports must be non-negative");
  probe_seed seed;
  build_probe_seed(instance, seed);
  probe_scratch ws;
  return lazy_probe_wins(instance, seed, ws, bid_index, price_report);
}

double critical_value_payment(const single_stage_instance& instance,
                              std::size_t bid_index, double relative_eps) {
  return critical_value_payment_impl(instance, bid_index, relative_eps,
                                     /*eager=*/false, nullptr, nullptr);
}

ssam_result run_ssam(const single_stage_instance& instance,
                     const ssam_options& options, ssam_scratch* scratch) {
  instance.validate();
  ECRS_CHECK_MSG(options.payment_budget >= 0.0,
                 "payment budget must be non-negative");
  ECRS_CHECK_MSG(
      options.critical_value_eps > 0.0 && options.critical_value_eps < 1.0,
      "bisection tolerance must be in (0, 1)");
  std::optional<ssam_scratch> local;
  if (scratch == nullptr) scratch = &local.emplace();
  ssam_scratch::impl& ws = scratch->buffers();

  ssam_result result;
  double budget_spent = 0.0;  // runner-up payment estimates

  greedy_loop(
      instance, ws, eager_selection_of(options), instance.bids.size(), 0.0,
      [&](std::size_t idx, units utility, double ratio,
          const coverage_state& state, const std::vector<char>& seller_active) {
        winning_bid w;
        w.bid_index = idx;
        w.utility_at_selection = utility;
        w.ratio_at_selection = ratio;

        const bool need_estimate = options.rule == payment_rule::runner_up ||
                                   options.payment_budget > 0.0;
        double estimate = instance.bids[idx].price;
        if (need_estimate) {
          // Best competing ratio among bids of *other* sellers still active
          // (Algorithm 1 line 6; see DESIGN.md for why same-seller
          // alternatives are excluded).
          const seller_id self = instance.bids[idx].seller;
          double runner_ratio = kInf;
          for (std::size_t other = 0; other < instance.bids.size(); ++other) {
            if (other == idx) continue;
            if (instance.bids[other].seller == self) continue;
            if (!seller_active[instance.bids[other].seller]) continue;
            units u = 0;
            const double r = ratio_of(instance.bids[other],
                                      instance.bids[other].price, state, u);
            runner_ratio = std::min(runner_ratio, r);
          }
          if (runner_ratio != kInf) {
            estimate = static_cast<double>(utility) * runner_ratio;
          }
          // Line 7 pays U·(runner ratio); the winner was selected because
          // its own ratio is minimal, so payment >= price always.
          estimate = std::max(estimate, instance.bids[idx].price);
        }
        if (options.payment_budget > 0.0 &&
            budget_spent + estimate > options.payment_budget) {
          return false;  // W depleted: stop the auction here (paper §IV)
        }
        budget_spent += estimate;
        if (options.rule == payment_rule::runner_up) w.payment = estimate;

        // Theorem 3 accounting: the winning price is distributed over the
        // `utility` covered units as equal shares f = ratio.
        for (units u = 0; u < utility; ++u) {
          result.unit_shares.push_back(ratio);
        }

        result.winners.push_back(w);
        result.social_cost += instance.bids[idx].price;
        return true;
      });

  if (options.rule == payment_rule::critical_value) {
    // Every payment is an independent pure probe of the instance, so they
    // run concurrently; each worker writes only its own winner's slot and
    // uses its own probe workspace, so the outcome is identical for any
    // thread count. The pre-sorted probe seed is shared read-only across
    // every probe of every winner.
    const probe_seed* seed = nullptr;
    if (!options.eager_reference) {
      build_probe_seed(instance, ws.seed);
      seed = &ws.seed;
    }
    if (ws.probes.size() < result.winners.size()) {
      ws.probes.resize(result.winners.size());
    }
    auto pay_one = [&](std::size_t pos) {
      result.winners[pos].payment = critical_value_payment_impl(
          instance, result.winners[pos].bid_index, options.critical_value_eps,
          options.eager_reference, seed,
          options.eager_reference ? nullptr : &ws.probes[pos]);
    };
    if (options.payment_threads == 1 || result.winners.size() < 2) {
      for (std::size_t pos = 0; pos < result.winners.size(); ++pos) {
        pay_one(pos);
      }
    } else {
      thread_pool::shared().parallel_for(result.winners.size(), pay_one,
                                         options.payment_threads);
    }

    // Budget re-verification: the in-loop gate only saw runner-up
    // ESTIMATES; the actual critical-value payments can exceed them. Drop
    // trailing winners (reverse selection order) until the realized total
    // respects W, then let the feasibility replay below re-certify the
    // surviving set (paper §IV budget feasibility).
    if (options.payment_budget > 0.0) {
      double total = 0.0;
      for (const winning_bid& w : result.winners) total += w.payment;
      while (!result.winners.empty() && total > options.payment_budget) {
        const winning_bid& last = result.winners.back();
        total -= last.payment;
        result.unit_shares.resize(
            result.unit_shares.size() -
            static_cast<std::size_t>(last.utility_at_selection));
        result.winners.pop_back();
        ++result.budget_dropped;
      }
      if (result.budget_dropped > 0) {
        result.social_cost = 0.0;
        for (const winning_bid& w : result.winners) {
          result.social_cost += instance.bids[w.bid_index].price;
        }
      }
    }
  }

  for (const winning_bid& w : result.winners) {
    result.total_payment += w.payment;
  }

  // Feasibility: replay the winners against a fresh state.
  coverage_state& replay = ws.replay;
  replay.reset(instance.requirements);
  for (const winning_bid& w : result.winners) {
    replay.apply(instance.bids[w.bid_index]);
  }
  result.feasible = replay.satisfied();

  // Dual certificate.
  if (!result.unit_shares.empty()) {
    const auto [lo_it, hi_it] = std::minmax_element(
        result.unit_shares.begin(), result.unit_shares.end());
    result.xi = *lo_it > 0.0 ? *hi_it / *lo_it : 1.0;
  }
  result.harmonic = harmonic_number(result.unit_shares.size());
  result.ratio_bound = std::max(1.0, result.harmonic * result.xi);
  result.dual_objective = result.social_cost / result.ratio_bound;

  if (options.self_audit) {
    audit_options audit;
    audit.payment_budget = options.payment_budget;
    audit_or_throw(instance, result, audit);
  }
  return result;
}

}  // namespace ecrs::auction
