#include "auction/ssam.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <utility>

#include "auction/compiled.h"
#include "auction/properties.h"
#include "common/annotations.h"
#include "common/arena.h"
#include "common/check.h"
#include "common/simd.h"
#include "common/statistics.h"
#include "common/thread_pool.h"

namespace ecrs::auction {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Hard cap on bisection rounds: the relative-gap criterion can stall only
// when the critical value degenerates towards zero, in which case the
// absolute floor below ends the search.
constexpr std::size_t kMaxBisectionRounds = 200;
constexpr double kBisectionAbsoluteFloor = 1e-12;

using entry = std::pair<double, std::size_t>;  // (ratio, bid index)

// Manual min-heap over (ratio, bid index) entries, operating on a borrowed
// vector so the storage survives across calls. std::priority_queue would
// force a fresh container per auction.
ECRS_HOT void heap_push(std::vector<entry>& heap, entry e) {
  heap.push_back(e);
  std::push_heap(heap.begin(), heap.end(), std::greater<>{});
}

ECRS_HOT entry heap_pop(std::vector<entry>& heap) {
  std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
  const entry top = heap.back();
  heap.pop_back();
  return top;
}

// Cost-effectiveness of a bid given the current coverage state; infinite
// when the bid adds nothing.
ECRS_HOT double ratio_of(const bid& b, double price,
                         const coverage_state& state,
                units& utility_out) {
  utility_out = state.marginal_utility(b);
  if (utility_out <= 0) return kInf;
  return price / static_cast<double>(utility_out);
}

seller_id max_seller_of(const single_stage_instance& instance) {
  seller_id max_seller = 0;
  for (const bid& b : instance.bids) {
    max_seller = std::max(max_seller, b.seller);
  }
  return max_seller;
}

std::size_t seller_slots_of(const single_stage_instance& instance) {
  return instance.bids.empty()
             ? 0
             : static_cast<std::size_t>(max_seller_of(instance)) + 1;
}

// Read-only probe context shared by every bisection probe of one instance
// on the bid-vector reference paths: the empty-state utilities plus all
// contributing bids pre-sorted by (initial ratio, bid index) — exactly the
// order a fresh lazy heap would pop them in. The compiled path gets the
// same thing for free from compiled_instance::order().
struct probe_seed {
  std::vector<units> initial_utilities;
  std::vector<entry> entries;  // ascending
  std::size_t seller_slots = 0;  // max seller id + 1
};

// Mutable per-probe workspace (one per concurrently running probe) for the
// bid-vector reference probes.
struct probe_scratch {
  coverage_state state;
  std::vector<char> seller_active;
  std::vector<entry> requeued;  // min-heap storage
};

// One step of a winner's probe trajectory: the competing bid the greedy
// selects at this step when the probed bid never wins, with its exact
// ratio, and the probed bid's marginal utility entering the step. A
// bisection probe at report p then resolves by walking these steps with
// two comparisons each (see trajectory_probe_wins) instead of replaying
// the whole auction.
struct probe_step {
  double ratio = 0.0;        // exact price / U of the selected competitor
  std::uint32_t idx = 0;     // its bid row (the (ratio, idx) tie-break)
  units probed_utility = 0;  // U_i(E) before this selection
  bool collision = false;    // competitor shares the probed bid's seller
};

// Mutable workspace for a full compiled probe replay (wins_with_price).
struct compiled_probe_scratch {
  compiled_state state;
  std::vector<char> seller_active;
  std::vector<compiled_entry> requeued;  // min-heap storage
};

// Per-winner critical-value workspace, carved from the calling thread's
// bump arena (common/arena.h) instead of owning vectors: one trajectory
// precompute per winner, reused across every probe of that winner's
// bisection. All buffers are plain trivially-destructible arrays, so a
// whole fan-out's slots are reclaimed by one arena rewind. The slots are
// carved serially on the calling thread BEFORE the parallel payment
// fan-out; workers only touch their own slot's disjoint memory and never
// call into the arena, which keeps the fan-out race-free.
struct probe_slot {
  units* remaining = nullptr;     // demander_count — scored remaining
  units* util = nullptr;          // bid_count — exact utilities
  char* seller_active = nullptr;  // seller_slots — per-seller liveness
  probe_step* steps = nullptr;    // capacity seller_count + 1 (see below)
  std::size_t step_count = 0;
  units end_probed_utility = 0;  // U_i when the trajectory ran out of bids
  bool end_satisfied = false;    // trajectory ended with demand met
};

// The step capacity is exact, not a guess: every recorded non-terminal step
// deactivates a distinct seller, and a terminal step ends the recording —
// so at most seller_count + 1 steps exist for any probed bid.
ECRS_HOT probe_slot carve_probe_slot(arena& a, const compiled_instance& c) {
  probe_slot slot;
  slot.remaining = a.alloc_array<units>(c.demander_count());
  slot.util = a.alloc_array<units>(c.bid_count());
  slot.seller_active = a.alloc_array<char>(c.seller_slots());
  slot.steps = a.alloc_array<probe_step>(c.seller_count() + 1);
  return slot;
}

}  // namespace

// Every buffer the selection loops and payment probes touch, grown on
// demand and reused across calls. The per-winner probe slots make the
// parallel payment fan-out safe with a single scratch: worker `pos` only
// touches probes[pos] (reference paths) or its arena-carved probe_slot
// (compiled path — see probe_slot above; those buffers live in the calling
// thread's bump arena, not here, so a scratch that migrates between
// threads never drags another thread's arena memory along).
struct ssam_scratch::impl {
  // Bid-vector reference paths.
  coverage_state state;             // selection loops
  std::vector<char> active;         // eager loop: per-bid liveness
  std::vector<char> seller_active;  // both loops: per-seller liveness
  std::vector<entry> heap;          // lazy loop storage
  probe_seed seed;                  // shared by all critical-value probes
  std::vector<probe_scratch> probes;  // one slot per winner position
  coverage_state replay;            // feasibility re-check
  // Compiled path.
  compiled_instance compiled;            // compile-on-entry shim target
  scored_state scored;                   // eager selection: exact utilities
  compiled_state cstate;                 // lazy selection: coverage only
  std::vector<compiled_entry> cheap;     // compiled lazy-loop heap storage
  std::vector<char> cseller_active;      // per-seller liveness
  compiled_state creplay;                // feasibility re-check
};

// ecrs-lint: allow(auction-hot-alloc) — one-time workspace construction.
ssam_scratch::ssam_scratch() : impl_(std::make_unique<impl>()) {}
ssam_scratch::~ssam_scratch() = default;
ssam_scratch::ssam_scratch(ssam_scratch&&) noexcept = default;
ssam_scratch& ssam_scratch::operator=(ssam_scratch&&) noexcept = default;

ssam_scratch::impl& ssam_scratch::buffers() { return *impl_; }

namespace {

// ---------------------------------------------------------------------------
// Bid-vector reference loops (eager_reference / legacy_reference). Both
// greedy loops share one callback contract. `price_override` (optional,
// `override_index == bids.size()` disables it) replaces the price of one bid
// for critical-value probing. Each selection is reported through `on_win`,
// which may inspect the candidate set via the provided coverage state and
// `seller_active` vector (indexed by seller id — a bid is a candidate iff
// its seller is active, constraint (9)) and returns false to veto the
// selection and stop the auction (budget exhaustion, probe early exit).

// Reference implementation: full O(n·m) rescan of every active bid per
// selection, with the original per-bid deactivation sweep. Its cost profile
// IS the eager baseline the benchmarks compare against.
template <typename OnWin>
ECRS_HOT void eager_greedy_loop(const single_stage_instance& instance,
                       ssam_scratch::impl& ws, std::size_t override_index,
                       double override_price, OnWin&& on_win) {
  const std::size_t nbids = instance.bids.size();
  coverage_state& state = ws.state;
  state.reset(instance.requirements);
  ws.active.assign(nbids, 1);
  ws.seller_active.assign(seller_slots_of(instance), 1);

  auto price_of = [&](std::size_t idx) {
    return idx == override_index ? override_price : instance.bids[idx].price;
  };

  while (!state.satisfied()) {
    // Pick the active bid with the lowest ratio; ties break on the lowest
    // bid index for determinism.
    std::size_t best = nbids;
    units best_utility = 0;
    double best_ratio = kInf;
    for (std::size_t idx = 0; idx < nbids; ++idx) {
      if (!ws.active[idx]) continue;
      units utility = 0;
      const double ratio =
          ratio_of(instance.bids[idx], price_of(idx), state, utility);
      if (ratio < best_ratio) {
        best_ratio = ratio;
        best = idx;
        best_utility = utility;
      }
    }
    if (best == nbids) break;  // nothing helps: requirements unsatisfiable

    if (!on_win(best, best_utility, best_ratio, state, ws.seller_active)) {
      break;
    }

    state.apply(instance.bids[best]);
    // Remove every bid of the winning seller (constraint (9)).
    const seller_id winner_seller = instance.bids[best].seller;
    for (std::size_t idx = 0; idx < nbids; ++idx) {
      if (ws.active[idx] && instance.bids[idx].seller == winner_seller) {
        ws.active[idx] = 0;
      }
    }
    ws.seller_active[winner_seller] = 0;
  }
}

// The PR 3 lazy path: lazy evaluation on a min-heap of (stale ratio, bid
// index). U_ij(E) is submodular — coverage only grows, so marginal
// utilities only shrink and a bid's stale ratio is a LOWER bound on its
// current ratio. A popped bid whose fresh ratio is still no worse than the
// next stale key is therefore a true minimum; the index tie-break
// reproduces the eager scan's deterministic ordering bit-for-bit.
template <typename OnWin>
ECRS_HOT void lazy_greedy_loop(const single_stage_instance& instance,
                      ssam_scratch::impl& ws, std::size_t override_index,
                      double override_price, OnWin&& on_win) {
  const std::size_t nbids = instance.bids.size();
  coverage_state& state = ws.state;
  state.reset(instance.requirements);
  ws.seller_active.assign(seller_slots_of(instance), 1);

  auto price_of = [&](std::size_t idx) {
    return idx == override_index ? override_price : instance.bids[idx].price;
  };

  std::vector<entry>& heap = ws.heap;
  heap.clear();
  for (std::size_t idx = 0; idx < nbids; ++idx) {
    units utility = 0;
    const double ratio =
        ratio_of(instance.bids[idx], price_of(idx), state, utility);
    if (ratio != kInf) heap.emplace_back(ratio, idx);
  }
  std::make_heap(heap.begin(), heap.end(), std::greater<>{});

  while (!state.satisfied() && !heap.empty()) {
    const auto [stale_ratio, idx] = heap_pop(heap);
    if (!ws.seller_active[instance.bids[idx].seller]) continue;
    units utility = 0;
    const double ratio =
        ratio_of(instance.bids[idx], price_of(idx), state, utility);
    if (ratio == kInf) continue;  // no longer contributes
    // Select only if still no worse than the next candidate's (lower-bound)
    // key; ties go to the smaller index, exactly like the eager scan.
    if (!heap.empty()) {
      const auto& [next_ratio, next_idx] = heap.front();
      if (ratio > next_ratio || (ratio == next_ratio && idx > next_idx)) {
        heap_push(heap, {ratio, idx});
        continue;
      }
    }

    if (!on_win(idx, utility, ratio, state, ws.seller_active)) break;

    state.apply(instance.bids[idx]);
    ws.seller_active[instance.bids[idx].seller] = 0;
  }
}

template <typename OnWin>
ECRS_HOT void greedy_loop(const single_stage_instance& instance,
                          ssam_scratch::impl& ws,
                 bool eager, std::size_t override_index, double override_price,
                 OnWin&& on_win) {
  if (eager) {
    eager_greedy_loop(instance, ws, override_index, override_price,
                      std::forward<OnWin>(on_win));
  } else {
    lazy_greedy_loop(instance, ws, override_index, override_price,
                     std::forward<OnWin>(on_win));
  }
}

// Rebuild the shared probe context in `seed`, reusing its storage. The
// empty-state marginal utility is evaluated against a freshly reset
// coverage state (borrowed from the caller), where U_ij(∅) is exactly the
// marginal utility.
ECRS_HOT void build_probe_seed(const single_stage_instance& instance,
                               probe_seed& seed, coverage_state& state) {
  state.reset(instance.requirements);
  seed.initial_utilities.clear();
  seed.initial_utilities.reserve(instance.bids.size());
  seed.entries.clear();
  seed.entries.reserve(instance.bids.size());
  for (std::size_t idx = 0; idx < instance.bids.size(); ++idx) {
    const bid& b = instance.bids[idx];
    const units utility = state.marginal_utility(b);
    seed.initial_utilities.push_back(utility);
    if (utility > 0) {
      seed.entries.emplace_back(b.price / static_cast<double>(utility), idx);
    }
  }
  std::sort(seed.entries.begin(), seed.entries.end());
  seed.seller_slots = seller_slots_of(instance);
}

// Lazy probe with early exit: does `bid_index` win when reporting
// `price_report`? Same selection rule as lazy_greedy_loop, but the candidate
// heap is split into three sources so nothing O(n) is rebuilt per probe:
//  - the shared pre-sorted seed, consumed through a cursor (stale initial
//    keys — lower bounds by submodularity);
//  - a small heap of entries that were popped and re-keyed this probe;
//  - one slot for the probed bid (its key uses the overridden price, so it
//    cannot live in the shared seed).
// Taking the (key, index)-lexicographic minimum over the three heads is
// equivalent to popping one heap holding all of them, so the selection
// sequence — and therefore the win/lose verdict — matches the generic loops
// bit for bit. The probe exits the moment the verdict is decided: the
// probed bid is selected (win), its marginal utility hits zero (it can
// never be selected later — loss), or its seller wins through another bid
// (constraint (9) — loss).
ECRS_HOT bool lazy_probe_wins(const single_stage_instance& instance,
                              const probe_seed& seed, probe_scratch& ws,
                              std::size_t bid_index, double price_report) {
  const units probed_utility = seed.initial_utilities[bid_index];
  if (probed_utility <= 0) return false;  // contributes nothing, never wins
  const seller_id probed_seller = instance.bids[bid_index].seller;

  coverage_state& state = ws.state;
  state.reset(instance.requirements);
  ws.seller_active.assign(seed.seller_slots, 1);
  std::vector<entry>& requeued = ws.requeued;
  requeued.clear();

  std::size_t cursor = 0;
  double probed_key = price_report / static_cast<double>(probed_utility);
  bool probed_pending = true;

  // Position the three heads on live candidates. The probed bid's seed
  // entry is skipped (the slot represents it); entries of deactivated
  // sellers are dead forever and are consumed/popped.
  auto skim = [&] {
    while (cursor < seed.entries.size() &&
           (seed.entries[cursor].second == bid_index ||
            !ws.seller_active[instance.bids[seed.entries[cursor].second]
                                  .seller])) {
      ++cursor;
    }
    while (!requeued.empty() &&
           !ws.seller_active[instance.bids[requeued.front().second].seller]) {
      heap_pop(requeued);
    }
  };
  // Minimum (key, index) over the three heads; false if all exhausted.
  auto peek = [&](entry& out) {
    bool found = false;
    if (cursor < seed.entries.size()) {
      out = seed.entries[cursor];
      found = true;
    }
    if (!requeued.empty() && (!found || requeued.front() < out)) {
      out = requeued.front();
      found = true;
    }
    if (probed_pending) {
      const entry probed{probed_key, bid_index};
      if (!found || probed < out) {
        out = probed;
        found = true;
      }
    }
    return found;
  };

  while (!state.satisfied()) {
    skim();
    entry head;
    if (!peek(head)) return false;  // nothing helps: auction ends, bid lost
    const std::size_t idx = head.second;
    // Pop the head from its source.
    if (idx == bid_index) {
      probed_pending = false;
    } else if (cursor < seed.entries.size() &&
               seed.entries[cursor].second == idx) {
      ++cursor;
    } else {
      heap_pop(requeued);
    }

    units utility = 0;
    const double price =
        idx == bid_index ? price_report : instance.bids[idx].price;
    const double ratio = ratio_of(instance.bids[idx], price, state, utility);
    if (ratio == kInf) {
      // No longer contributes. For the probed bid this is terminal: its
      // marginal utility can only shrink further (submodularity).
      if (idx == bid_index) return false;
      continue;
    }
    entry next;
    if (peek(next) &&
        (ratio > next.first || (ratio == next.first && idx > next.second))) {
      if (idx == bid_index) {
        probed_key = ratio;
        probed_pending = true;
      } else {
        heap_push(requeued, {ratio, idx});
      }
      continue;
    }

    // Selected.
    if (idx == bid_index) return true;
    if (instance.bids[idx].seller == probed_seller) return false;
    state.apply(instance.bids[idx]);
    ws.seller_active[instance.bids[idx].seller] = 0;
  }
  return false;  // requirements met without the probed bid
}

// Generic probe core (both reference loop flavours). With `early_exit`, the
// replayed auction stops the moment the verdict is decided: the probed bid
// was selected (won), or another bid of the same seller was selected, which
// deactivates the probed bid for the rest of the round (lost). Allocates
// its own workspace — this is the eager reference path, not the hot one.
bool wins_with_price_impl(const single_stage_instance& instance,
                          std::size_t bid_index, double price_report,
                          bool eager, bool early_exit) {
  ssam_scratch local;
  const seller_id probed_seller = instance.bids[bid_index].seller;
  bool won = false;
  greedy_loop(instance, local.buffers(), eager, bid_index, price_report,
              [&](std::size_t idx, units, double, const coverage_state&,
                  const std::vector<char>&) {
                if (idx == bid_index) {
                  won = true;
                  return !early_exit;
                }
                if (early_exit &&
                    instance.bids[idx].seller == probed_seller) {
                  return false;  // constraint (9) bars the probed bid now
                }
                return true;
              });
  return won;
}

// When `seed` is non-null the probes run through `lazy_probe_wins` (with
// `probe_ws` as workspace); otherwise the generic loop selected by `eager`
// replays the full auction per probe (the eager reference).
double critical_value_payment_impl(const single_stage_instance& instance,
                                   std::size_t bid_index, double relative_eps,
                                   bool eager, const probe_seed* seed,
                                   probe_scratch* probe_ws) {
  ECRS_CHECK(bid_index < instance.bids.size());
  ECRS_CHECK_MSG(relative_eps > 0.0 && relative_eps < 1.0,
                 "bisection tolerance must be in (0, 1)");
  probe_seed local_seed;
  probe_scratch local_ws;
  if (!eager && seed == nullptr) {
    build_probe_seed(instance, local_seed, local_ws.state);
    seed = &local_seed;
  }
  if (probe_ws == nullptr) probe_ws = &local_ws;
  auto probe = [&](double report) {
    return seed != nullptr
               ? lazy_probe_wins(instance, *seed, *probe_ws, bid_index, report)
               : wins_with_price_impl(instance, bid_index, report, eager,
                                      /*early_exit=*/false);
  };
  const double own_price = instance.bids[bid_index].price;
  ECRS_CHECK_MSG(probe(own_price),
                 "critical value requested for a losing bid");

  // Upper probe: a report so high the bid can only win if it faces no
  // competition at all.
  double max_price = 1.0;
  units total_supply = 0;
  for (const bid& b : instance.bids) {
    max_price = std::max(max_price, b.price);
    total_supply += b.amount * static_cast<units>(b.coverage_size());
  }
  const double hi_probe =
      (max_price + 1.0) * static_cast<double>(std::max<units>(total_supply, 1));
  if (probe(hi_probe)) {
    // No competition can displace this bid: pay-as-bid fallback.
    return own_price;
  }

  double lo = own_price;  // certified winning
  double hi = hi_probe;   // certified losing
  for (std::size_t round = 0;
       round < kMaxBisectionRounds && hi - lo > relative_eps * hi &&
       hi - lo > kBisectionAbsoluteFloor;
       ++round) {
    const double mid = 0.5 * (lo + hi);
    if (probe(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Resolve an options struct to "run the selection loop eagerly?".
bool eager_selection_of(const ssam_options& options) {
  if (options.eager_reference) return true;
  switch (options.selection) {
    case selection_mode::eager: return true;
    case selection_mode::lazy: return false;
    case selection_mode::automatic:
      // No probes to amortize the lazy heap against → eager's lower
      // constant wins (see BENCH_pr3.json for the measured crossover).
      return options.rule != payment_rule::critical_value;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Compiled selection loops. Same callback contract as the reference loops
// except the coverage view passed to `on_win` is a `utility_of` callable
// returning the bid's exact current U_ij(E) (O(1) from the eager loop's
// scored state, O(|coverage|) from the lazy loop's compiled state), plus a
// `util_data` pointer to the contiguous exact-utility row when the loop
// maintains one (the eager loop's scored state; nullptr from the lazy
// loop), which lets the runner-up scan use the vector argmin kernel.

// Eager: full O(n) argmin scan per pick over the exact utilities, served
// by the ratio_argmin kernel over the contiguous price/utility/seller rows
// (the scored apply that keeps the utilities exact walks only the
// inverted-index rows of the covered demanders). The kernel returns the
// (ratio, index)-lexicographic minimum — exactly what the scalar ascending
// strict-< scan selected.
template <typename OnWin>
ECRS_HOT void compiled_eager_loop(const compiled_instance& c,
                                  ssam_scratch::impl& ws, OnWin&& on_win) {
  scored_state& scored = ws.scored;
  scored.reset(c);
  ws.cseller_active.assign(c.seller_slots(), 1);
  auto utility_of = [&](std::size_t j) { return scored.utility(j); };

  while (!scored.satisfied()) {
    const simd::ratio_best pick = simd::ratio_argmin(
        c.price_data(), scored.utilities_data(), c.seller_data(),
        ws.cseller_active.data(), c.bid_count(), simd::kNoIndex,
        simd::kNoSeller);
    if (pick.index == simd::kNoIndex) {
      break;  // nothing helps: requirements unsatisfiable
    }
    const std::size_t best = pick.index;

    if (!on_win(best, scored.utility(best), pick.ratio, utility_of,
                scored.utilities_data(), ws.cseller_active)) {
      break;
    }

    scored.apply(c, best);
    ws.cseller_active[c.seller(best)] = 0;
  }
}

// Lazy: the two-source candidate merge of compiled_probe_wins, without the
// probed-bid slot. The pre-sorted order() is consumed through a cursor —
// its keys are the bids' initial ratios, lower bounds by submodularity, so
// advancing the cursor replaces an O(log n) heap pop with a pointer bump —
// and bids whose exact recomputed ratio no longer beats the next head are
// re-keyed into a small requeue heap (a bid lives in exactly one source).
// Taking the (key, idx)-lexicographic minimum over the two heads is
// equivalent to popping one heap holding all entries, so the selection
// sequence matches the eager scan bit for bit.
template <typename OnWin>
ECRS_HOT void compiled_lazy_loop(const compiled_instance& c,
                                 ssam_scratch::impl& ws, OnWin&& on_win) {
  compiled_state& state = ws.cstate;
  state.reset(c);
  ws.cseller_active.assign(c.seller_slots(), 1);
  auto utility_of = [&](std::size_t j) { return state.marginal_utility(c, j); };

  const std::vector<compiled_entry>& seed = c.order();
  std::size_t cursor = 0;
  std::vector<compiled_entry>& requeued = ws.cheap;
  requeued.clear();

  // Position both heads on live candidates (entries of deactivated sellers
  // are dead forever and are consumed/popped).
  auto skim = [&] {
    while (cursor < seed.size() && !ws.cseller_active[seed[cursor].seller]) {
      ++cursor;
    }
    while (!requeued.empty() && !ws.cseller_active[requeued.front().seller]) {
      std::pop_heap(requeued.begin(), requeued.end(), entry_greater{});
      requeued.pop_back();
    }
  };
  // Minimum (key, idx) over the two heads; false if both exhausted.
  auto peek = [&](compiled_entry& out) {
    bool found = false;
    if (cursor < seed.size()) {
      out = seed[cursor];
      found = true;
    }
    if (!requeued.empty() && (!found || entry_less(requeued.front(), out))) {
      out = requeued.front();
      found = true;
    }
    return found;
  };

  while (!state.satisfied()) {
    skim();
    compiled_entry head;
    if (!peek(head)) break;  // nothing helps: requirements unsatisfiable
    // Pop the head from its source (a bid sits in the unconsumed seed or in
    // the requeue heap, never both, so the idx match is unambiguous).
    if (cursor < seed.size() && seed[cursor].idx == head.idx) {
      ++cursor;
    } else {
      std::pop_heap(requeued.begin(), requeued.end(), entry_greater{});
      requeued.pop_back();
    }

    const units utility = state.marginal_utility(c, head.idx);
    if (utility <= 0) continue;  // dead forever (submodularity)
    const double ratio = c.price(head.idx) / static_cast<double>(utility);
    // Select only if still no worse than the next candidate's (lower-bound)
    // key; ties go to the smaller index, exactly like the eager scan.
    compiled_entry next;
    if (peek(next) &&
        (ratio > next.key || (ratio == next.key && head.idx > next.idx))) {
      requeued.push_back({ratio, head.idx, head.seller});
      std::push_heap(requeued.begin(), requeued.end(), entry_greater{});
      continue;
    }

    if (!on_win(head.idx, utility, ratio, utility_of, nullptr,
                ws.cseller_active)) {
      break;
    }

    state.apply(c, head.idx);
    ws.cseller_active[head.seller] = 0;
  }
}

// Compiled port of lazy_probe_wins: identical three-source candidate merge
// and early exits, with the shared seed and all per-bid lookups served by
// the compiled view (no per-call seed build, no pointer chasing into the
// bid table).
ECRS_HOT bool compiled_probe_wins(const compiled_instance& c,
                                  compiled_probe_scratch& ws,
                                  std::size_t bid_index, double price_report) {
  const units probed_utility = c.initial_utility(bid_index);
  if (probed_utility <= 0) return false;  // contributes nothing, never wins
  const seller_id probed_seller = c.seller(bid_index);

  compiled_state& state = ws.state;
  state.reset(c);
  ws.seller_active.assign(c.seller_slots(), 1);
  std::vector<compiled_entry>& requeued = ws.requeued;
  requeued.clear();

  const std::vector<compiled_entry>& seed = c.order();
  std::size_t cursor = 0;
  double probed_key = price_report / static_cast<double>(probed_utility);
  bool probed_pending = true;

  auto skim = [&] {
    while (cursor < seed.size() &&
           (seed[cursor].idx == bid_index ||
            !ws.seller_active[seed[cursor].seller])) {
      ++cursor;
    }
    while (!requeued.empty() && !ws.seller_active[requeued.front().seller]) {
      std::pop_heap(requeued.begin(), requeued.end(), entry_greater{});
      requeued.pop_back();
    }
  };
  auto peek = [&](compiled_entry& out) {
    bool found = false;
    if (cursor < seed.size()) {
      out = seed[cursor];
      found = true;
    }
    if (!requeued.empty() && (!found || entry_less(requeued.front(), out))) {
      out = requeued.front();
      found = true;
    }
    if (probed_pending) {
      const compiled_entry probed{probed_key,
                                  static_cast<std::uint32_t>(bid_index),
                                  probed_seller};
      if (!found || entry_less(probed, out)) {
        out = probed;
        found = true;
      }
    }
    return found;
  };

  while (!state.satisfied()) {
    skim();
    compiled_entry head;
    if (!peek(head)) return false;  // nothing helps: auction ends, bid lost
    const std::size_t idx = head.idx;
    // Pop the head from its source.
    if (idx == bid_index) {
      probed_pending = false;
    } else if (cursor < seed.size() && seed[cursor].idx == idx) {
      ++cursor;
    } else {
      std::pop_heap(requeued.begin(), requeued.end(), entry_greater{});
      requeued.pop_back();
    }

    const units utility = state.marginal_utility(c, idx);
    if (utility <= 0) {
      // No longer contributes. For the probed bid this is terminal: its
      // marginal utility can only shrink further (submodularity).
      if (idx == bid_index) return false;
      continue;
    }
    const double price = idx == bid_index ? price_report : c.price(idx);
    const double ratio = price / static_cast<double>(utility);
    compiled_entry next;
    if (peek(next) &&
        (ratio > next.key || (ratio == next.key && idx > next.idx))) {
      if (idx == bid_index) {
        probed_key = ratio;
        probed_pending = true;
      } else {
        requeued.push_back({ratio, static_cast<std::uint32_t>(idx),
                            head.seller});
        std::push_heap(requeued.begin(), requeued.end(), entry_greater{});
      }
      continue;
    }

    // Selected.
    if (idx == bid_index) return true;
    if (head.seller == probed_seller) return false;
    state.apply(c, idx);
    ws.seller_active[head.seller] = 0;
  }
  return false;  // requirements met without the probed bid
}

// Record the probe trajectory for one winner: the greedy selection sequence
// with the probed bid excluded, each step carrying the selected competitor's
// exact (ratio, idx) and the probed bid's marginal utility entering the
// step. Why this suffices for every probe price p: until the probed bid is
// selected it occupies no seller slot and covers nothing, so the
// competitors' selections are exactly this excluded sequence. At step s the
// probed bid wins iff its exact key p / U_i(s) beats the step's
// (ratio, idx) lexicographically; a step whose competitor shares the probed
// bid's seller is terminal (constraint (9) bars the bid from then on), as
// is U_i(s) = 0 (utilities only shrink). If the trajectory exhausts all
// competitors with demand unmet, the probed bid is the last resort and wins
// at any price. The recording stops at the first terminal step, so |steps|
// is at most the winner count.
ECRS_HOT void build_probe_trajectory(const compiled_instance& c,
                                     probe_slot& slot,
                                     std::size_t bid_index) {
  units deficit = scored_reset(c, slot.remaining, slot.util);
  std::fill_n(slot.seller_active, c.seller_slots(), char{1});
  slot.step_count = 0;
  slot.end_probed_utility = 0;
  slot.end_satisfied = false;
  const seller_id probed_seller = c.seller(bid_index);

  while (deficit > 0) {
    // Exact (ratio, idx)-lexicographic argmin over the active competitors
    // (the vector kernel over the slot's contiguous exact utilities).
    const simd::ratio_best pick = simd::ratio_argmin(
        c.price_data(), slot.util, c.seller_data(), slot.seller_active,
        c.bid_count(), static_cast<std::uint32_t>(bid_index),
        simd::kNoSeller);
    const units probed_u = slot.util[bid_index];
    if (pick.index == simd::kNoIndex) {
      slot.end_probed_utility = probed_u;  // last resort; end_satisfied false
      return;
    }
    probe_step step;
    step.ratio = pick.ratio;
    step.idx = pick.index;
    step.probed_utility = probed_u;
    step.collision = c.seller(pick.index) == probed_seller;
    slot.steps[slot.step_count++] = step;
    if (step.collision || probed_u <= 0) return;  // terminal for every probe
    deficit -= scored_apply(c, slot.remaining, slot.util, pick.index);
    slot.seller_active[c.seller(pick.index)] = 0;
  }
  slot.end_satisfied = true;
}

// Does the probed bid win at report p, resolved against the precomputed
// trajectory? Identical verdicts to a full replay (compiled_probe_wins):
// both decide "is the bid ever selected by the exact greedy", this one in
// O(|steps|).
ECRS_HOT bool trajectory_probe_wins(const probe_slot& slot,
                                    std::size_t bid_index, double report) {
  const auto probed_idx = static_cast<std::uint32_t>(bid_index);
  for (std::size_t i = 0; i < slot.step_count; ++i) {
    const probe_step& s = slot.steps[i];
    if (s.probed_utility <= 0) return false;  // can never contribute again
    const double key = report / static_cast<double>(s.probed_utility);
    if (key < s.ratio || (key == s.ratio && probed_idx < s.idx)) return true;
    if (s.collision) return false;  // seller slot taken (constraint (9))
  }
  if (slot.end_satisfied) return false;  // demand met without the bid
  return slot.end_probed_utility > 0;    // last useful bid wins at any price
}

// Compiled critical-value bisection: same bounds, same probe sequence, same
// arithmetic as the reference — the upper probe reuses the compile-time
// price bound and total supply instead of re-scanning the bids, and every
// probe resolves against the winner's precomputed trajectory instead of
// replaying the auction (bit-identical verdicts, so bit-identical
// payments).
ECRS_HOT double compiled_critical_value(const compiled_instance& c,
                                        std::size_t bid_index,
                                        double relative_eps,
                                        probe_slot& slot) {
  ECRS_CHECK(bid_index < c.bid_count());
  ECRS_CHECK_MSG(relative_eps > 0.0 && relative_eps < 1.0,
                 "bisection tolerance must be in (0, 1)");
  build_probe_trajectory(c, slot, bid_index);
  auto probe = [&](double report) {
    return trajectory_probe_wins(slot, bid_index, report);
  };
  const double own_price = c.price(bid_index);
  ECRS_CHECK_MSG(probe(own_price),
                 "critical value requested for a losing bid");

  // Upper probe: a report so high the bid can only win if it faces no
  // competition at all.
  const double hi_probe =
      (c.price_bound() + 1.0) *
      static_cast<double>(std::max<units>(c.total_supply(), 1));
  if (probe(hi_probe)) {
    // No competition can displace this bid: pay-as-bid fallback.
    return own_price;
  }

  double lo = own_price;  // certified winning
  double hi = hi_probe;   // certified losing
  for (std::size_t round = 0;
       round < kMaxBisectionRounds && hi - lo > relative_eps * hi &&
       hi - lo > kBisectionAbsoluteFloor;
       ++round) {
    const double mid = 0.5 * (lo + hi);
    if (probe(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Reset a (possibly reused) result to its default state, keeping the
// vectors' capacity — the into-API overloads rely on this for their
// 0-allocation steady state.
void reset_result(ssam_result& out) {
  out.winners.clear();
  out.feasible = false;
  out.social_cost = 0.0;
  out.total_payment = 0.0;
  out.budget_dropped = 0;
  out.unit_shares.clear();
  out.xi = 1.0;
  out.harmonic = 0.0;
  out.ratio_bound = 1.0;
  out.dual_objective = 0.0;
}

// The production mechanism body, running entirely on the compiled view.
void run_ssam_compiled(const compiled_instance& c, const ssam_options& options,
                       ssam_scratch::impl& ws, ssam_result& result) {
  reset_result(result);
  double budget_spent = 0.0;  // runner-up payment estimates

  auto on_win = [&](std::size_t idx, units utility, double ratio,
                    auto&& utility_of, const units* util_data,
                    const std::vector<char>& seller_active) {
    winning_bid w;
    w.bid_index = idx;
    w.utility_at_selection = utility;
    w.ratio_at_selection = ratio;

    const bool need_estimate = options.rule == payment_rule::runner_up ||
                               options.payment_budget > 0.0;
    double estimate = c.price(idx);
    if (need_estimate) {
      // Best competing ratio among bids of *other* sellers still active
      // (Algorithm 1 line 6; see DESIGN.md for why same-seller
      // alternatives are excluded). When the loop maintains a contiguous
      // exact-utility row (eager/scored), the scan is the vector argmin
      // kernel with the winner's seller excluded — the winner itself has
      // that seller, so skip_seller subsumes the other == idx skip; the
      // lexicographic minimum's ratio is the same minimum the scalar value
      // scan found. The lazy loop serves utilities through `utility_of`
      // (no contiguous row), so it keeps the scalar scan.
      const seller_id self = c.seller(idx);
      double runner_ratio = kInf;
      if (util_data != nullptr) {
        runner_ratio = simd::ratio_argmin(c.price_data(), util_data,
                                          c.seller_data(),
                                          seller_active.data(), c.bid_count(),
                                          simd::kNoIndex, self)
                           .ratio;
      } else {
        for (std::size_t other = 0; other < c.bid_count(); ++other) {
          if (other == idx) continue;
          const seller_id other_seller = c.seller(other);
          if (other_seller == self) continue;
          if (!seller_active[other_seller]) continue;
          const units u = utility_of(other);
          if (u <= 0) continue;  // ratio would be infinite
          runner_ratio = std::min(runner_ratio,
                                  c.price(other) / static_cast<double>(u));
        }
      }
      if (runner_ratio != kInf) {
        estimate = static_cast<double>(utility) * runner_ratio;
      }
      // Line 7 pays U·(runner ratio); the winner was selected because its
      // own ratio is minimal, so payment >= price always.
      estimate = std::max(estimate, c.price(idx));
    }
    if (options.payment_budget > 0.0 &&
        budget_spent + estimate > options.payment_budget) {
      return false;  // W depleted: stop the auction here (paper §IV)
    }
    budget_spent += estimate;
    if (options.rule == payment_rule::runner_up) w.payment = estimate;

    // Theorem 3 accounting: the winning price is distributed over the
    // `utility` covered units as equal shares f = ratio.
    for (units u = 0; u < utility; ++u) {
      result.unit_shares.push_back(ratio);
    }

    result.winners.push_back(w);
    result.social_cost += c.price(idx);
    return true;
  };

  if (eager_selection_of(options)) {
    compiled_eager_loop(c, ws, on_win);
  } else {
    compiled_lazy_loop(c, ws, on_win);
  }

  if (options.rule == payment_rule::critical_value) {
    // Every payment is an independent pure probe of the instance, so they
    // run concurrently; each worker writes only its own winner's
    // arena-carved probe slot, so the outcome is identical for any thread
    // count. All slots are carved serially on the calling thread before
    // the fan-out (workers never touch the arena — see probe_slot), and
    // one scope rewind reclaims the whole fan-out's memory on exit.
    arena& slab = arena::for_thread();
    const arena::scope payment_scope(slab);
    const std::size_t nwinners = result.winners.size();
    probe_slot* slots = slab.alloc_array<probe_slot>(nwinners);
    for (std::size_t pos = 0; pos < nwinners; ++pos) {
      slots[pos] = carve_probe_slot(slab, c);
    }
    auto pay_one = [&](std::size_t pos) {
      result.winners[pos].payment = compiled_critical_value(
          c, result.winners[pos].bid_index, options.critical_value_eps,
          slots[pos]);
    };
    if (options.payment_threads == 1 || nwinners < 2) {
      for (std::size_t pos = 0; pos < nwinners; ++pos) {
        pay_one(pos);
      }
    } else {
      thread_pool::shared().parallel_for(nwinners, pay_one,
                                         options.payment_threads);
    }

    // Budget re-verification: the in-loop gate only saw runner-up
    // ESTIMATES; the actual critical-value payments can exceed them. Drop
    // trailing winners (reverse selection order) until the realized total
    // respects W, then let the feasibility replay below re-certify the
    // surviving set (paper §IV budget feasibility).
    if (options.payment_budget > 0.0) {
      double total = 0.0;
      for (const winning_bid& w : result.winners) total += w.payment;
      while (!result.winners.empty() && total > options.payment_budget) {
        const winning_bid& last = result.winners.back();
        total -= last.payment;
        result.unit_shares.resize(
            result.unit_shares.size() -
            static_cast<std::size_t>(last.utility_at_selection));
        result.winners.pop_back();
        ++result.budget_dropped;
      }
      if (result.budget_dropped > 0) {
        result.social_cost = 0.0;
        for (const winning_bid& w : result.winners) {
          result.social_cost += c.price(w.bid_index);
        }
      }
    }
  }

  for (const winning_bid& w : result.winners) {
    result.total_payment += w.payment;
  }

  // Feasibility: replay the winners against a fresh state.
  compiled_state& replay = ws.creplay;
  replay.reset(c);
  for (const winning_bid& w : result.winners) {
    replay.apply(c, w.bid_index);
  }
  result.feasible = replay.satisfied();

  // Dual certificate.
  if (!result.unit_shares.empty()) {
    const auto [lo_it, hi_it] = std::minmax_element(
        result.unit_shares.begin(), result.unit_shares.end());
    result.xi = *lo_it > 0.0 ? *hi_it / *lo_it : 1.0;
  }
  result.harmonic = harmonic_number(result.unit_shares.size());
  result.ratio_bound = std::max(1.0, result.harmonic * result.xi);
  result.dual_objective = result.social_cost / result.ratio_bound;

  if (options.self_audit) {
    audit_options audit;
    audit.payment_budget = options.payment_budget;
    audit_or_throw(c, result, audit);
  }
}

// The bid-vector reference body (eager_reference / legacy_reference): the
// pre-compiled-view mechanism, kept verbatim as the equivalence and
// benchmark baseline.
void run_ssam_reference(const single_stage_instance& instance,
                        const ssam_options& options, ssam_scratch::impl& ws,
                        ssam_result& result) {
  reset_result(result);
  double budget_spent = 0.0;  // runner-up payment estimates

  greedy_loop(
      instance, ws, eager_selection_of(options), instance.bids.size(), 0.0,
      [&](std::size_t idx, units utility, double ratio,
          const coverage_state& state, const std::vector<char>& seller_active) {
        winning_bid w;
        w.bid_index = idx;
        w.utility_at_selection = utility;
        w.ratio_at_selection = ratio;

        const bool need_estimate = options.rule == payment_rule::runner_up ||
                                   options.payment_budget > 0.0;
        double estimate = instance.bids[idx].price;
        if (need_estimate) {
          // Best competing ratio among bids of *other* sellers still active
          // (Algorithm 1 line 6; see DESIGN.md for why same-seller
          // alternatives are excluded).
          const seller_id self = instance.bids[idx].seller;
          double runner_ratio = kInf;
          for (std::size_t other = 0; other < instance.bids.size(); ++other) {
            if (other == idx) continue;
            if (instance.bids[other].seller == self) continue;
            if (!seller_active[instance.bids[other].seller]) continue;
            units u = 0;
            const double r = ratio_of(instance.bids[other],
                                      instance.bids[other].price, state, u);
            runner_ratio = std::min(runner_ratio, r);
          }
          if (runner_ratio != kInf) {
            estimate = static_cast<double>(utility) * runner_ratio;
          }
          // Line 7 pays U·(runner ratio); the winner was selected because
          // its own ratio is minimal, so payment >= price always.
          estimate = std::max(estimate, instance.bids[idx].price);
        }
        if (options.payment_budget > 0.0 &&
            budget_spent + estimate > options.payment_budget) {
          return false;  // W depleted: stop the auction here (paper §IV)
        }
        budget_spent += estimate;
        if (options.rule == payment_rule::runner_up) w.payment = estimate;

        // Theorem 3 accounting: the winning price is distributed over the
        // `utility` covered units as equal shares f = ratio.
        for (units u = 0; u < utility; ++u) {
          result.unit_shares.push_back(ratio);
        }

        result.winners.push_back(w);
        result.social_cost += instance.bids[idx].price;
        return true;
      });

  if (options.rule == payment_rule::critical_value) {
    // Every payment is an independent pure probe of the instance, so they
    // run concurrently; each worker writes only its own winner's slot and
    // uses its own probe workspace, so the outcome is identical for any
    // thread count. The pre-sorted probe seed is shared read-only across
    // every probe of every winner.
    const probe_seed* seed = nullptr;
    if (!options.eager_reference) {
      build_probe_seed(instance, ws.seed, ws.state);
      seed = &ws.seed;
    }
    if (ws.probes.size() < result.winners.size()) {
      ws.probes.resize(result.winners.size());
    }
    auto pay_one = [&](std::size_t pos) {
      result.winners[pos].payment = critical_value_payment_impl(
          instance, result.winners[pos].bid_index, options.critical_value_eps,
          options.eager_reference, seed,
          options.eager_reference ? nullptr : &ws.probes[pos]);
    };
    if (options.payment_threads == 1 || result.winners.size() < 2) {
      for (std::size_t pos = 0; pos < result.winners.size(); ++pos) {
        pay_one(pos);
      }
    } else {
      thread_pool::shared().parallel_for(result.winners.size(), pay_one,
                                         options.payment_threads);
    }

    // Budget re-verification: the in-loop gate only saw runner-up
    // ESTIMATES; the actual critical-value payments can exceed them. Drop
    // trailing winners (reverse selection order) until the realized total
    // respects W, then let the feasibility replay below re-certify the
    // surviving set (paper §IV budget feasibility).
    if (options.payment_budget > 0.0) {
      double total = 0.0;
      for (const winning_bid& w : result.winners) total += w.payment;
      while (!result.winners.empty() && total > options.payment_budget) {
        const winning_bid& last = result.winners.back();
        total -= last.payment;
        result.unit_shares.resize(
            result.unit_shares.size() -
            static_cast<std::size_t>(last.utility_at_selection));
        result.winners.pop_back();
        ++result.budget_dropped;
      }
      if (result.budget_dropped > 0) {
        result.social_cost = 0.0;
        for (const winning_bid& w : result.winners) {
          result.social_cost += instance.bids[w.bid_index].price;
        }
      }
    }
  }

  for (const winning_bid& w : result.winners) {
    result.total_payment += w.payment;
  }

  // Feasibility: replay the winners against a fresh state.
  coverage_state& replay = ws.replay;
  replay.reset(instance.requirements);
  for (const winning_bid& w : result.winners) {
    replay.apply(instance.bids[w.bid_index]);
  }
  result.feasible = replay.satisfied();

  // Dual certificate.
  if (!result.unit_shares.empty()) {
    const auto [lo_it, hi_it] = std::minmax_element(
        result.unit_shares.begin(), result.unit_shares.end());
    result.xi = *lo_it > 0.0 ? *hi_it / *lo_it : 1.0;
  }
  result.harmonic = harmonic_number(result.unit_shares.size());
  result.ratio_bound = std::max(1.0, result.harmonic * result.xi);
  result.dual_objective = result.social_cost / result.ratio_bound;

  if (options.self_audit) {
    audit_options audit;
    audit.payment_budget = options.payment_budget;
    audit_or_throw(instance, result, audit);
  }
}

void check_run_options(const ssam_options& options) {
  ECRS_CHECK_MSG(options.payment_budget >= 0.0,
                 "payment budget must be non-negative");
  ECRS_CHECK_MSG(
      options.critical_value_eps > 0.0 && options.critical_value_eps < 1.0,
      "bisection tolerance must be in (0, 1)");
}

}  // namespace

std::vector<std::size_t> greedy_selection(const single_stage_instance& instance,
                                          ssam_scratch* scratch) {
  std::optional<ssam_scratch> local;
  if (scratch == nullptr) scratch = &local.emplace();
  ssam_scratch::impl& ws = scratch->buffers();
  ws.compiled.compile(instance);
  std::vector<std::size_t> winners;
  compiled_lazy_loop(ws.compiled, ws,
                     [&](std::size_t idx, units, double, auto&&,
                         const units*, const std::vector<char>&) {
                       winners.push_back(idx);
                       return true;
                     });
  return winners;
}

std::vector<std::size_t> eager_greedy_selection(
    const single_stage_instance& instance, ssam_scratch* scratch) {
  std::optional<ssam_scratch> local;
  if (scratch == nullptr) scratch = &local.emplace();
  std::vector<std::size_t> winners;
  eager_greedy_loop(instance, scratch->buffers(), instance.bids.size(), 0.0,
                    [&](std::size_t idx, units, double, const coverage_state&,
                        const std::vector<char>&) {
                      winners.push_back(idx);
                      return true;
                    });
  return winners;
}

std::vector<std::size_t> lazy_greedy_selection(
    const single_stage_instance& instance) {
  instance.validate();
  return greedy_selection(instance);
}

bool wins_with_price(const single_stage_instance& instance,
                     std::size_t bid_index, double price_report) {
  ECRS_CHECK(bid_index < instance.bids.size());
  ECRS_CHECK_MSG(price_report >= 0.0, "price reports must be non-negative");
  ssam_scratch local;
  ssam_scratch::impl& ws = local.buffers();
  ws.compiled.compile(instance);
  compiled_probe_scratch probe_ws;
  return compiled_probe_wins(ws.compiled, probe_ws, bid_index, price_report);
}

double critical_value_payment(const single_stage_instance& instance,
                              std::size_t bid_index, double relative_eps) {
  ECRS_CHECK(bid_index < instance.bids.size());
  ssam_scratch local;
  ssam_scratch::impl& ws = local.buffers();
  ws.compiled.compile(instance);
  arena& slab = arena::for_thread();
  const arena::scope probe_scope(slab);
  probe_slot slot = carve_probe_slot(slab, ws.compiled);
  return compiled_critical_value(ws.compiled, bid_index, relative_eps, slot);
}

void run_ssam(const single_stage_instance& instance,
              const ssam_options& options, ssam_scratch* scratch,
              ssam_result& out) {
  instance.validate();
  check_run_options(options);
  ECRS_CHECK_MSG(!(options.eager_reference && options.legacy_reference),
                 "pick at most one bid-vector reference path");
  std::optional<ssam_scratch> local;
  if (scratch == nullptr) scratch = &local.emplace();
  ssam_scratch::impl& ws = scratch->buffers();
  if (options.eager_reference || options.legacy_reference) {
    run_ssam_reference(instance, options, ws, out);
    return;
  }
  ws.compiled.compile(instance);
  run_ssam_compiled(ws.compiled, options, ws, out);
}

void run_ssam(const compiled_instance& compiled, const ssam_options& options,
              ssam_scratch* scratch, ssam_result& out) {
  ECRS_CHECK_MSG(!options.eager_reference && !options.legacy_reference,
                 "the bid-vector reference paths need the original instance; "
                 "call run_ssam(single_stage_instance) instead");
  check_run_options(options);
  std::optional<ssam_scratch> local;
  if (scratch == nullptr) scratch = &local.emplace();
  run_ssam_compiled(compiled, options, scratch->buffers(), out);
}

ssam_result run_ssam(const single_stage_instance& instance,
                     const ssam_options& options, ssam_scratch* scratch) {
  ssam_result result;
  run_ssam(instance, options, scratch, result);
  return result;
}

ssam_result run_ssam(const compiled_instance& compiled,
                     const ssam_options& options, ssam_scratch* scratch) {
  ssam_result result;
  run_ssam(compiled, options, scratch, result);
  return result;
}

}  // namespace ecrs::auction
