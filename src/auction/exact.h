// Reference solvers for the winner selection problem.
//
// These provide the "offline optimum" denominators of every performance-
// ratio figure, and ground truth for the property tests:
//
//  - solve_exact()       exact single-stage optimum. Dynamic programming for
//                        one demander (pseudo-polynomial, always exact);
//                        depth-first branch-and-bound over sellers
//                        otherwise. `exact` is false only if the node budget
//                        was exhausted, in which case `cost` is the best
//                        incumbent and `lower_bound` still certifies.
//  - lp_bound()          LP-relaxation lower bound via ecrs::lp (certified
//                        for any size).
//  - offline_exact()     exact multi-stage offline optimum (small instances;
//                        branch-and-bound over rounds×sellers).
//  - offline_lp_bound()  LP relaxation of the full multi-stage ILP (7)–(11).
#pragma once

#include <cstddef>
#include <vector>

#include "auction/bid.h"
#include "auction/online.h"

namespace ecrs::auction {

struct reference_solution {
  double cost = 0.0;          // best integral objective found
  double lower_bound = 0.0;   // certified bound (<= optimum)
  bool feasible = false;      // an integral solution exists / was found
  bool exact = true;          // cost is provably optimal
  std::vector<std::size_t> chosen;  // winning bid indices (single-stage) or
                                    // flattened (round, bid) pairs encoded as
                                    // round * stride + index (multi-stage)
  std::size_t nodes = 0;      // search nodes explored
};

// Exact single-stage optimum. node_limit bounds the branch-and-bound search
// (ignored by the single-demander DP).
[[nodiscard]] reference_solution solve_exact(
    const single_stage_instance& instance, std::size_t node_limit = 4000000);

// LP-relaxation lower bound of the single-stage ILP (12)-(15).
// Returns 0 for instances whose relaxation is infeasible? No: throws if the
// relaxation is infeasible (the caller should check coverable() first).
[[nodiscard]] double lp_bound(const single_stage_instance& instance);

// Exact offline multi-stage optimum of ILP (7)-(11) for small instances.
[[nodiscard]] reference_solution offline_exact(const online_instance& instance,
                                               std::size_t node_limit = 4000000);

// LP-relaxation lower bound of the full multi-stage ILP.
[[nodiscard]] double offline_lp_bound(const online_instance& instance);

// Stride used to encode (round, bid_index) pairs in
// reference_solution::chosen for multi-stage solutions.
constexpr std::size_t kRoundStride = 1u << 20;

}  // namespace ecrs::auction
