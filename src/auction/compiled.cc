#include "auction/compiled.h"

#include <algorithm>

#include "common/annotations.h"
#include "common/check.h"

namespace ecrs::auction {

void compiled_instance::compile(const single_stage_instance& instance) {
  const std::size_t nbids = instance.bids.size();
  const std::size_t ndem = instance.requirements.size();

  requirements_.assign(instance.requirements.begin(),
                       instance.requirements.end());
  total_requirement_ = 0;
  for (units x : requirements_) {
    ECRS_CHECK_MSG(x >= 0, "compile: negative requirement");
    total_requirement_ += x;
  }

  price_.clear();
  amount_.clear();
  seller_.clear();
  cov_off_.clear();
  cov_arena_.clear();
  price_.reserve(nbids);
  amount_.reserve(nbids);
  seller_.reserve(nbids);
  cov_off_.reserve(nbids + 1);
  cov_off_.push_back(0);

  seller_slots_ = 0;
  total_supply_ = 0;
  price_bound_ = 1.0;
  for (const bid& b : instance.bids) {
    price_.push_back(b.price);
    amount_.push_back(b.amount);
    seller_.push_back(b.seller);
    for (demander_id k : b.coverage) {
      ECRS_CHECK_MSG(k < ndem, "compile: coverage id out of range");
      cov_arena_.push_back(k);
    }
    cov_off_.push_back(static_cast<std::uint32_t>(cov_arena_.size()));
    seller_slots_ = std::max(seller_slots_,
                             static_cast<std::size_t>(b.seller) + 1);
    total_supply_ += b.amount * static_cast<units>(b.coverage_size());
    price_bound_ = std::max(price_bound_, b.price);
  }

  // Distinct seller count (cached; the bid-vector API recomputes this).
  seller_seen_.assign(seller_slots_, 0);
  seller_count_ = 0;
  for (seller_id s : seller_) {
    if (!seller_seen_[s]) {
      seller_seen_[s] = 1;
      ++seller_count_;
    }
  }

  // Inverted index by counting sort: per-demander degree, prefix sums,
  // then a fill pass — bids land in ascending index order per demander.
  inv_off_.assign(ndem + 1, 0);
  for (demander_id k : cov_arena_) ++inv_off_[k + 1];
  for (std::size_t k = 0; k < ndem; ++k) inv_off_[k + 1] += inv_off_[k];
  inv_arena_.resize(cov_arena_.size());
  {
    // Reuse fresh_'s allocation? No — cursors are uint32; use a scoped
    // borrow of dirty_ (same element type, unused during compile).
    std::vector<std::uint32_t>& cursor = dirty_;
    cursor.assign(inv_off_.begin(), inv_off_.end() - 1);
    for (std::uint32_t i = 0; i < nbids; ++i) {
      for (std::uint32_t j = cov_off_[i]; j < cov_off_[i + 1]; ++j) {
        inv_arena_[cursor[cov_arena_[j]]++] = i;
      }
    }
    cursor.clear();
  }

  // Empty-state utilities and the price-sorted order.
  util0_.clear();
  util0_.reserve(nbids);
  order_.clear();
  order_.reserve(nbids);
  for (std::uint32_t i = 0; i < nbids; ++i) {
    const units utility = simd::sum_min_indexed(
        requirements_.data(), cov_arena_.data() + cov_off_[i],
        cov_off_[i + 1] - cov_off_[i], amount_[i]);
    util0_.push_back(utility);
    if (utility > 0) {
      order_.push_back({price_[i] / static_cast<double>(utility), i,
                        seller_[i]});
    }
  }
  std::sort(order_.begin(), order_.end(), entry_ascending{});

  dirty_.clear();
  dirty_flag_.assign(nbids, 0);
}

ECRS_HOT void compiled_instance::mark_dirty(std::uint32_t i) {
  if (!dirty_flag_[i]) {
    dirty_flag_[i] = 1;
    dirty_.push_back(i);
  }
}

ECRS_HOT void compiled_instance::set_price(std::size_t i, double p) {
  ECRS_CHECK(i < price_.size());
  ECRS_CHECK_MSG(p >= 0.0, "set_price: negative price");
  if (price_[i] == p) return;
  price_[i] = p;
  mark_dirty(static_cast<std::uint32_t>(i));
}

ECRS_HOT void compiled_instance::set_requirement(demander_id k,
                                               units x) {
  ECRS_CHECK(k < requirements_.size());
  ECRS_CHECK_MSG(x >= 0, "set_requirement: negative requirement");
  const units old = requirements_[k];
  if (old == x) return;
  requirements_[k] = x;
  total_requirement_ += x - old;
  for (const std::uint32_t* it = covering_begin(k); it != covering_end(k);
       ++it) {
    const std::uint32_t i = *it;
    const units delta =
        std::min(amount_[i], x) - std::min(amount_[i], old);
    if (delta == 0) continue;
    util0_[i] += delta;
    mark_dirty(i);
  }
}

ECRS_HOT void compiled_instance::refresh_order() {
  if (dirty_.empty()) return;

  // Stable compaction: drop the dirty bids' (now stale) entries while
  // preserving the relative order of everything else.
  std::size_t keep = 0;
  for (const compiled_entry& e : order_) {
    if (!dirty_flag_[e.idx]) order_[keep++] = e;
  }
  order_.resize(keep);

  // Re-key the dirty bids that still contribute, sort just those, and
  // merge. Keys are recomputed with the same division a cold compile()
  // uses, and (key, idx) pairs are unique, so the merged order is
  // bit-identical to a full re-sort.
  fresh_.clear();
  for (std::uint32_t i : dirty_) {
    dirty_flag_[i] = 0;
    if (util0_[i] > 0) {
      fresh_.push_back({price_[i] / static_cast<double>(util0_[i]), i,
                        seller_[i]});
    }
  }
  dirty_.clear();
  std::sort(fresh_.begin(), fresh_.end(), entry_ascending{});

  order_tmp_.clear();
  order_tmp_.reserve(order_.size() + fresh_.size());
  std::merge(order_.begin(), order_.end(), fresh_.begin(), fresh_.end(),
             std::back_inserter(order_tmp_), entry_ascending{});
  order_.swap(order_tmp_);

  // Prices may have moved in either direction: recompute the probe bound
  // (O(bids), branch-free scan — the patched round runs many probes
  // against it).
  price_bound_ = 1.0;
  for (double p : price_) price_bound_ = std::max(price_bound_, p);
}

// ----------------------------------------------------------- compiled_state

void compiled_state::reset(const compiled_instance& c) {
  remaining_.assign(c.requirements().begin(), c.requirements().end());
  deficit_ = c.total_requirement();
}

// ------------------------------------------------------------- scored_state

ECRS_HOT units scored_reset(const compiled_instance& c, units* remaining,
                            units* util) {
  const std::vector<units>& req = c.requirements();
  std::copy(req.begin(), req.end(), remaining);
  for (std::size_t i = 0; i < c.bid_count(); ++i) {
    util[i] = c.initial_utility(i);
  }
  return c.total_requirement();
}

ECRS_HOT units scored_apply(const compiled_instance& c, units* remaining,
                            units* util, std::size_t w) {
  const units amount = c.amount(w);
  units gain = 0;
  for (const demander_id* kp = c.coverage_begin(w); kp != c.coverage_end(w);
       ++kp) {
    const demander_id k = *kp;
    const units before = remaining[k];
    const units used = std::min(amount, before);
    if (used == 0) continue;
    const units after = before - used;
    remaining[k] = after;
    gain += used;
    for (const std::uint32_t* it = c.covering_begin(k);
         it != c.covering_end(k); ++it) {
      const std::uint32_t b = *it;
      const units a = c.amount(b);
      util[b] -= std::min(a, before) - std::min(a, after);
    }
  }
  return gain;
}

void scored_state::reset(const compiled_instance& c) {
  remaining_.resize(c.demander_count());
  util_.resize(c.bid_count());
  deficit_ = scored_reset(c, remaining_.data(), util_.data());
  touched_.assign(c.bid_count(), 0);
}

ECRS_HOT units scored_state::apply(const compiled_instance& c, std::size_t w,
                                   std::vector<std::uint32_t>& dirty) {
  const std::size_t dirty_base = dirty.size();
  const units amount = c.amount(w);
  units gain = 0;
  for (const demander_id* kp = c.coverage_begin(w); kp != c.coverage_end(w);
       ++kp) {
    const demander_id k = *kp;
    const units before = remaining_[k];
    const units used = std::min(amount, before);
    if (used == 0) continue;
    const units after = before - used;
    remaining_[k] = after;
    gain += used;
    // Re-score exactly the bids touched by this demander's change.
    for (const std::uint32_t* it = c.covering_begin(k);
         it != c.covering_end(k); ++it) {
      const std::uint32_t b = *it;
      const units a = c.amount(b);
      const units delta = std::min(a, before) - std::min(a, after);
      if (delta == 0) continue;
      util_[b] -= delta;
      if (!touched_[b]) {
        touched_[b] = 1;
        dirty.push_back(b);
      }
    }
  }
  deficit_ -= gain;
  for (std::size_t pos = dirty_base; pos < dirty.size(); ++pos) {
    touched_[dirty[pos]] = 0;
  }
  return gain;
}

ECRS_HOT units scored_state::apply(const compiled_instance& c,
                                   std::size_t w) {
  const units gain = scored_apply(c, remaining_.data(), util_.data(), w);
  deficit_ -= gain;
  return gain;
}

}  // namespace ecrs::auction
