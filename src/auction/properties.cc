#include "auction/properties.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <unordered_set>

#include "auction/compiled.h"
#include "common/annotations.h"
#include "common/check.h"

namespace ecrs::auction {

bool selection_feasible(const single_stage_instance& instance,
                        const std::vector<std::size_t>& winners) {
  coverage_state state(instance.requirements);
  std::unordered_set<seller_id> sellers;
  for (std::size_t idx : winners) {
    if (idx >= instance.bids.size()) return false;
    if (!sellers.insert(instance.bids[idx].seller).second) return false;
    state.apply(instance.bids[idx]);
  }
  return state.satisfied();
}

ir_audit audit_individual_rationality(const single_stage_instance& instance,
                                      const ssam_result& result) {
  ir_audit audit;
  audit.winners = result.winners.size();
  audit.min_surplus = std::numeric_limits<double>::infinity();
  for (std::size_t pos = 0; pos < result.winners.size(); ++pos) {
    const winning_bid& w = result.winners[pos];
    const double surplus = w.payment - instance.bids[w.bid_index].price;
    audit.min_surplus = std::min(audit.min_surplus, surplus);
    if (surplus < -1e-9) {
      audit.ok = false;
      audit.violations.push_back(pos);
    }
  }
  if (result.winners.empty()) audit.min_surplus = 0.0;
  return audit;
}

void audit_or_throw(const single_stage_instance& instance,
                    const ssam_result& result, const audit_options& options) {
  compiled_instance compiled;
  compiled.compile(instance);
  audit_or_throw(compiled, result, options);
}

// ECRS_HOT_ESCAPE: run_ssam's optional self-audit calls this from the hot
// path, but auditing is a debug/verification mode — it allocates scratch and
// throws on violation by design, so the purity walk must not traverse it.
ECRS_HOT_ESCAPE void audit_or_throw(const compiled_instance& instance,
                                    const ssam_result& result,
                                    const audit_options& options) {
  const double tol = options.tolerance;

  // Structural validity: every winner names a real bid, one bid per seller.
  std::unordered_set<seller_id> sellers;
  for (const winning_bid& w : result.winners) {
    ECRS_CHECK_MSG(w.bid_index < instance.bid_count(),
                   "audit[structure]: winner references bid "
                       << w.bid_index << " but the instance has only "
                       << instance.bid_count() << " bids");
    ECRS_CHECK_MSG(sellers.insert(instance.seller(w.bid_index)).second,
                   "audit[structure]: seller "
                       << instance.seller(w.bid_index)
                       << " wins more than one bid (constraint (9))");
  }

  // Coverage: the feasible flag must match a replay of the winner set.
  compiled_state state;
  state.reset(instance);
  for (const winning_bid& w : result.winners) {
    state.apply(instance, w.bid_index);
  }
  ECRS_CHECK_MSG(result.feasible == state.satisfied(),
                 "audit[coverage]: result.feasible == "
                     << (result.feasible ? "true" : "false")
                     << " but replaying the winners leaves a deficit of "
                     << state.deficit() << " units");

  // Individual rationality: every winner's payment covers its asking price.
  double social_cost = 0.0;
  double total_payment = 0.0;
  for (std::size_t pos = 0; pos < result.winners.size(); ++pos) {
    const winning_bid& w = result.winners[pos];
    const double price = instance.price(w.bid_index);
    ECRS_CHECK_MSG(w.payment >= price - tol,
                   "audit[ir]: winner " << pos << " (bid " << w.bid_index
                                        << ") is paid " << w.payment
                                        << " below its asking price "
                                        << price);
    social_cost += price;
    total_payment += w.payment;
  }

  // Accounting: the advertised aggregates match the winner list.
  ECRS_CHECK_MSG(std::abs(result.social_cost - social_cost) <=
                     tol * (1.0 + std::abs(social_cost)),
                 "audit[accounting]: social_cost " << result.social_cost
                     << " != sum of winning prices " << social_cost);
  ECRS_CHECK_MSG(std::abs(result.total_payment - total_payment) <=
                     tol * (1.0 + std::abs(total_payment)),
                 "audit[accounting]: total_payment " << result.total_payment
                     << " != sum of payments " << total_payment);

  // Budget balance: realized payments respect the platform budget W.
  if (options.payment_budget > 0.0) {
    ECRS_CHECK_MSG(total_payment <= options.payment_budget + tol,
                   "audit[budget]: total payment "
                       << total_payment << " exceeds the platform budget "
                       << options.payment_budget);
  }

  // Dual-certificate sanity (Theorem 3): one share per covered unit, and
  // the bound factors are well-formed.
  units covered = 0;
  for (const winning_bid& w : result.winners) {
    covered += w.utility_at_selection;
  }
  ECRS_CHECK_MSG(result.unit_shares.size() == static_cast<std::size_t>(covered),
                 "audit[certificate]: " << result.unit_shares.size()
                     << " unit shares but winners covered " << covered
                     << " units");
  ECRS_CHECK_MSG(result.xi >= 1.0 - tol,
                 "audit[certificate]: share spread xi = " << result.xi
                                                          << " < 1");
  ECRS_CHECK_MSG(result.ratio_bound >= 1.0 - tol,
                 "audit[certificate]: ratio bound " << result.ratio_bound
                                                    << " < 1");
}

void audit_or_throw(const online_instance& instance, const msoa_result& result,
                    const audit_options& options) {
  const double tol = options.tolerance;

  // Per-round structural validity first, so audit_msoa can index safely.
  double social_cost = 0.0;
  double total_payment = 0.0;
  bool all_feasible = true;
  for (const msoa_round_outcome& round : result.rounds) {
    ECRS_CHECK_MSG(round.round >= 1 && round.round <= instance.rounds.size(),
                   "audit[structure]: outcome references round "
                       << round.round << " of an instance with "
                       << instance.rounds.size() << " rounds");
    ECRS_CHECK_MSG(round.winner_bids.size() == round.payments.size() &&
                       round.winner_bids.size() == round.true_prices.size(),
                   "audit[structure]: round "
                       << round.round << " has " << round.winner_bids.size()
                       << " winners but " << round.payments.size()
                       << " payments / " << round.true_prices.size()
                       << " prices");
    for (std::size_t b : round.winner_bids) {
      ECRS_CHECK_MSG(b < instance.rounds[round.round - 1].bids.size(),
                     "audit[structure]: round " << round.round
                         << " winner references bid " << b
                         << " out of range");
    }
    social_cost += round.social_cost;
    for (double p : round.payments) total_payment += p;
    all_feasible = all_feasible && round.feasible;
  }

  const msoa_audit audit = audit_msoa(instance, result);
  ECRS_CHECK_MSG(audit.windows_ok,
                 "audit[window]: a winner was selected outside its seller's "
                 "[t-, t+] window");
  ECRS_CHECK_MSG(audit.capacity_ok,
                 "audit[capacity]: a seller's lifetime capacity Theta was "
                 "exceeded");
  ECRS_CHECK_MSG(audit.coverage_ok,
                 "audit[coverage]: a round marked feasible does not satisfy "
                 "its requirements");
  ECRS_CHECK_MSG(audit.ir_ok,
                 "audit[ir]: a winner was paid below its true asking price");

  ECRS_CHECK_MSG(result.feasible == all_feasible,
                 "audit[accounting]: result.feasible == "
                     << (result.feasible ? "true" : "false")
                     << " but the per-round flags say "
                     << (all_feasible ? "true" : "false"));
  ECRS_CHECK_MSG(std::abs(result.social_cost - social_cost) <=
                     tol * (1.0 + std::abs(social_cost)),
                 "audit[accounting]: social_cost " << result.social_cost
                     << " != sum over rounds " << social_cost);
  ECRS_CHECK_MSG(std::abs(result.total_payment - total_payment) <=
                     tol * (1.0 + std::abs(total_payment)),
                 "audit[accounting]: total_payment " << result.total_payment
                     << " != sum over rounds " << total_payment);
  if (options.payment_budget > 0.0) {
    ECRS_CHECK_MSG(total_payment <= options.payment_budget + tol,
                   "audit[budget]: total payment "
                       << total_payment << " exceeds the platform budget "
                       << options.payment_budget);
  }
}

msoa_audit audit_msoa(const online_instance& instance,
                      const msoa_result& result) {
  msoa_audit audit;
  std::vector<units> used(instance.sellers.size(), 0);
  for (const msoa_round_outcome& round : result.rounds) {
    const single_stage_instance& stage = instance.rounds[round.round - 1];
    coverage_state state(stage.requirements);
    for (std::size_t pos = 0; pos < round.winner_bids.size(); ++pos) {
      const bid& b = stage.bids[round.winner_bids[pos]];
      if (!instance.in_window(b.seller, round.round)) {
        audit.windows_ok = false;
      }
      used[b.seller] += static_cast<units>(b.coverage_size());
      if (used[b.seller] > instance.sellers[b.seller].capacity) {
        audit.capacity_ok = false;
      }
      state.apply(b);
      if (round.payments[pos] < b.price - 1e-9) {
        audit.ir_ok = false;
      }
    }
    if (round.feasible && !state.satisfied()) {
      audit.coverage_ok = false;
    }
  }
  return audit;
}

double utility_with_report(const single_stage_instance& instance,
                           const ssam_options& options, std::size_t bid_index,
                           double report) {
  ECRS_CHECK(bid_index < instance.bids.size());
  ECRS_CHECK_MSG(report >= 0.0, "reports must be non-negative");
  single_stage_instance modified = instance;
  const double true_price = instance.bids[bid_index].price;
  modified.bids[bid_index].price = report;
  const ssam_result result = run_ssam(modified, options);
  for (const winning_bid& w : result.winners) {
    if (w.bid_index == bid_index) return w.payment - true_price;
  }
  return 0.0;
}

truthfulness_report probe_truthfulness(const single_stage_instance& instance,
                                       const ssam_options& options, rng& gen,
                                       std::size_t trials, double tolerance) {
  truthfulness_report report;
  if (instance.bids.empty()) return report;

  double price_hi = 0.0;
  for (const bid& b : instance.bids) price_hi = std::max(price_hi, b.price);

  for (std::size_t trial = 0; trial < trials; ++trial) {
    const auto idx = static_cast<std::size_t>(gen.uniform_int(
        0, static_cast<std::int64_t>(instance.bids.size()) - 1));
    // Misreports span under-bidding (down to near zero) and over-bidding
    // (up to 2x the global max price).
    const double report_price = gen.uniform_real(0.0, 2.0 * price_hi + 1.0);
    const double truthful =
        utility_with_report(instance, options, idx, instance.bids[idx].price);
    const double lying =
        utility_with_report(instance, options, idx, report_price);
    const double gain = lying - truthful;
    ++report.trials;
    if (gain > tolerance) {
      ++report.profitable_lies;
      if (gain > report.max_gain) {
        report.max_gain = gain;
        std::ostringstream os;
        os << "bid " << idx << " (seller " << instance.bids[idx].seller
           << "): truthful price " << instance.bids[idx].price << " -> report "
           << report_price << " gains " << gain;
        report.worst_case = os.str();
      }
    }
  }
  return report;
}

}  // namespace ecrs::auction
