#include "auction/properties.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <unordered_set>

#include "common/check.h"

namespace ecrs::auction {

bool selection_feasible(const single_stage_instance& instance,
                        const std::vector<std::size_t>& winners) {
  coverage_state state(instance.requirements);
  std::unordered_set<seller_id> sellers;
  for (std::size_t idx : winners) {
    if (idx >= instance.bids.size()) return false;
    if (!sellers.insert(instance.bids[idx].seller).second) return false;
    state.apply(instance.bids[idx]);
  }
  return state.satisfied();
}

ir_audit audit_individual_rationality(const single_stage_instance& instance,
                                      const ssam_result& result) {
  ir_audit audit;
  audit.winners = result.winners.size();
  audit.min_surplus = std::numeric_limits<double>::infinity();
  for (std::size_t pos = 0; pos < result.winners.size(); ++pos) {
    const winning_bid& w = result.winners[pos];
    const double surplus = w.payment - instance.bids[w.bid_index].price;
    audit.min_surplus = std::min(audit.min_surplus, surplus);
    if (surplus < -1e-9) {
      audit.ok = false;
      audit.violations.push_back(pos);
    }
  }
  if (result.winners.empty()) audit.min_surplus = 0.0;
  return audit;
}

msoa_audit audit_msoa(const online_instance& instance,
                      const msoa_result& result) {
  msoa_audit audit;
  std::vector<units> used(instance.sellers.size(), 0);
  for (const msoa_round_outcome& round : result.rounds) {
    const single_stage_instance& stage = instance.rounds[round.round - 1];
    coverage_state state(stage.requirements);
    for (std::size_t pos = 0; pos < round.winner_bids.size(); ++pos) {
      const bid& b = stage.bids[round.winner_bids[pos]];
      if (!instance.in_window(b.seller, round.round)) {
        audit.windows_ok = false;
      }
      used[b.seller] += static_cast<units>(b.coverage_size());
      if (used[b.seller] > instance.sellers[b.seller].capacity) {
        audit.capacity_ok = false;
      }
      state.apply(b);
      if (round.payments[pos] < b.price - 1e-9) {
        audit.ir_ok = false;
      }
    }
    if (round.feasible && !state.satisfied()) {
      audit.coverage_ok = false;
    }
  }
  return audit;
}

double utility_with_report(const single_stage_instance& instance,
                           const ssam_options& options, std::size_t bid_index,
                           double report) {
  ECRS_CHECK(bid_index < instance.bids.size());
  ECRS_CHECK_MSG(report >= 0.0, "reports must be non-negative");
  single_stage_instance modified = instance;
  const double true_price = instance.bids[bid_index].price;
  modified.bids[bid_index].price = report;
  const ssam_result result = run_ssam(modified, options);
  for (const winning_bid& w : result.winners) {
    if (w.bid_index == bid_index) return w.payment - true_price;
  }
  return 0.0;
}

truthfulness_report probe_truthfulness(const single_stage_instance& instance,
                                       const ssam_options& options, rng& gen,
                                       std::size_t trials, double tolerance) {
  truthfulness_report report;
  if (instance.bids.empty()) return report;

  double price_hi = 0.0;
  for (const bid& b : instance.bids) price_hi = std::max(price_hi, b.price);

  for (std::size_t trial = 0; trial < trials; ++trial) {
    const auto idx = static_cast<std::size_t>(gen.uniform_int(
        0, static_cast<std::int64_t>(instance.bids.size()) - 1));
    // Misreports span under-bidding (down to near zero) and over-bidding
    // (up to 2x the global max price).
    const double report_price = gen.uniform_real(0.0, 2.0 * price_hi + 1.0);
    const double truthful =
        utility_with_report(instance, options, idx, instance.bids[idx].price);
    const double lying =
        utility_with_report(instance, options, idx, report_price);
    const double gain = lying - truthful;
    ++report.trials;
    if (gain > tolerance) {
      ++report.profitable_lies;
      if (gain > report.max_gain) {
        report.max_gain = gain;
        std::ostringstream os;
        os << "bid " << idx << " (seller " << instance.bids[idx].seller
           << "): truthful price " << instance.bids[idx].price << " -> report "
           << report_price << " gains " << gain;
        report.worst_case = os.str();
      }
    }
  }
  return report;
}

}  // namespace ecrs::auction
