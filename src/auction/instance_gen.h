// Random auction-instance generators following the paper's parameter
// settings (§V-A): bid prices uniform in [10, 35], requirements 𝔾^t uniform
// in [10, 40], J bids per seller (default 2), sellers drawn from the
// microservices of the edge clouds. Generated instances are always
// satisfiable: requirements are clamped to the available supply with a
// safety margin.
#pragma once

#include <cstddef>
#include <vector>

#include "auction/bid.h"
#include "auction/online.h"
#include "common/rng.h"

namespace ecrs::auction {

struct instance_config {
  std::size_t sellers = 25;          // |S| microservices with spare resources
  std::size_t demanders = 5;         // |Ŝ| microservices in need
  std::size_t bids_per_seller = 2;   // F / J, alternative bids
  double price_lo = 10.0;            // paper: U[10, 35]
  double price_hi = 35.0;
  units requirement_lo = 10;         // paper: 𝔾^t in [10, 40]
  units requirement_hi = 40;
  units amount_lo = 1;               // a_ij: units offered per demander
  units amount_hi = 10;
  // Each bid covers a uniform number of demanders in
  // [1, max(1, coverage_fraction * demanders)] ...
  double coverage_fraction = 0.6;
  // ... unless max_coverage > 0, which caps the coverage size at an
  // absolute count regardless of how many demanders exist (used when
  // sweeping the demander count so per-bid supply stays comparable).
  std::size_t max_coverage = 0;
  // Requirements are clamped to this fraction of the achievable supply so
  // every generated instance is satisfiable.
  double supply_margin = 0.8;
};

[[nodiscard]] single_stage_instance random_instance(
    const instance_config& config, rng& gen);

// Per-demander guaranteed supply of `instance`'s bid set: the sum over
// covering sellers of the seller's MINIMUM bid amount — whatever
// alternative bid of a seller wins contributes at least that much (all
// bids of a seller share one coverage set; DESIGN.md §2). This is the
// satisfiability bound the generators clamp against and the streaming
// ingestor (market/ingest.h) caps quantized demand with.
[[nodiscard]] std::vector<units> guaranteed_supply(
    const single_stage_instance& instance);

struct online_config {
  instance_config stage;
  std::size_t rounds = 10;  // T (paper default 10, swept 1..15)
  // Seller lifetime capacity Θ_i in participation units, uniform in
  // [capacity_lo, capacity_hi]. 0,0 = auto: enough for roughly half the
  // horizon (keeps capacity binding but feasible).
  units capacity_lo = 0;
  units capacity_hi = 0;
  // Fraction of sellers whose [t-, t+] window is a strict sub-interval of
  // the horizon (the rest are present throughout).
  double windowed_fraction = 0.5;
  // Persistent per-seller price level: each seller draws a multiplicative
  // factor uniform in [1-bias, 1+bias] once, applied to all its bids in
  // every round. 0 = prices iid across rounds (no consistently cheap
  // sellers); > 0 makes capacity protection matter (some sellers stay cheap
  // for the whole horizon — the situation Algorithm 2's ψ-scaling targets).
  double seller_price_bias = 0.0;
};

[[nodiscard]] online_instance random_online_instance(
    const online_config& config, rng& gen);

// ---------------------------------------------------------------------------
// Region-aware generation (the sharded marketplace's input shape): one
// local auction per edge::topology region, each drawn from an independent
// per-region substream (gen.fork(region)), so a regional instance is
// byte-identical whether regions are generated serially or by concurrent
// shards, and adding a region never perturbs the others.

struct regional_config {
  std::size_t regions = 10;
  // Per-region overrides of the stage's seller/demander counts; empty = use
  // the stage config for every region, otherwise size must equal `regions`.
  std::vector<std::size_t> sellers_per_region;
  std::vector<std::size_t> demanders_per_region;
  // Post-clamp demand multiplier: the base generators clamp requirements to
  // the local guaranteed supply, so every region is locally satisfiable;
  // a scale > 1 re-inflates requirements past local supply, leaving
  // deficits only cross-region spillover can cover. Per-region overrides
  // (empty = scale everywhere) let tests overload a single region.
  double demand_scale = 1.0;
  std::vector<double> demand_scale_per_region;
};

// One local winner-selection problem per region; seller and demander ids
// are region-local (the marketplace's region_map assigns global ids).
struct regional_instance {
  std::vector<single_stage_instance> regions;

  [[nodiscard]] std::size_t region_count() const { return regions.size(); }
  void validate() const;  // validates every local instance
};

// Multi-round flavour: one online_instance (rounds + seller profiles) per
// region, for marketplaces that keep a warm msoa_session per shard.
struct regional_online_instance {
  std::vector<online_instance> regions;

  [[nodiscard]] std::size_t region_count() const { return regions.size(); }
  [[nodiscard]] std::size_t horizon() const {
    return regions.empty() ? 0 : regions.front().horizon();
  }
  void validate() const;
};

[[nodiscard]] regional_instance random_regional_instance(
    const instance_config& stage, const regional_config& config, rng& gen);

[[nodiscard]] regional_online_instance random_regional_online_instance(
    const online_config& stage, const regional_config& config, rng& gen);

}  // namespace ecrs::auction
