#include "auction/dual_certificate.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/statistics.h"

namespace ecrs::auction {

dual_certificate build_dual_certificate(const single_stage_instance& instance,
                                        const ssam_result& result) {
  instance.validate();
  dual_certificate cert;
  cert.y.assign(instance.requirements.size(), 0.0);

  // Replay the winners to attribute each covered unit's price share to its
  // demander; Λ(k) is the largest share any of k's units paid.
  coverage_state state(instance.requirements);
  std::vector<double> lambda(instance.requirements.size(), 0.0);
  units total_units = 0;
  double share_min = 0.0;
  double share_max = 0.0;
  bool first_share = true;
  for (const winning_bid& w : result.winners) {
    const bid& b = instance.bids[w.bid_index];
    const double share = w.ratio_at_selection;
    for (demander_id k : b.coverage) {
      const units used = std::min(b.amount, state.remaining(k));
      if (used <= 0) continue;
      lambda[k] = std::max(lambda[k], share);
      total_units += used;
      if (first_share) {
        share_min = share;
        share_max = share;
        first_share = false;
      } else {
        share_min = std::min(share_min, share);
        share_max = std::max(share_max, share);
      }
    }
    state.apply(b);
  }

  // Theorem 3 scale: 1/(W·Ξ) with W = H(total covered units), Ξ the share
  // spread. Degenerate (no winners) certificates are all-zero.
  const double xi = share_min > 0.0 ? share_max / share_min : 1.0;
  const double w_factor =
      harmonic_number(static_cast<std::size_t>(std::max<units>(0, total_units)));
  const double denom = std::max(1.0, w_factor * xi);
  cert.scale = 1.0 / denom;
  for (std::size_t k = 0; k < lambda.size(); ++k) {
    cert.y[k] = lambda[k] * cert.scale;
  }

  // Lift z to absorb any residual violation so (y, z) is feasible for every
  // bid, won or lost.
  for (const bid& b : instance.bids) {
    double lhs = 0.0;
    for (demander_id k : b.coverage) {
      lhs += static_cast<double>(b.amount) * cert.y[k];
    }
    const double violation = lhs - b.price;
    if (violation > 0.0) {
      auto [it, inserted] = cert.z.emplace(b.seller, violation);
      if (!inserted) it->second = std::max(it->second, violation);
    }
  }

  cert.objective = 0.0;
  for (std::size_t k = 0; k < cert.y.size(); ++k) {
    cert.objective +=
        static_cast<double>(instance.requirements[k]) * cert.y[k];
  }
  // FP accumulation is order-dependent; drain the unordered map through a
  // seller-sorted copy so the objective is bit-identical across runs.
  std::vector<std::pair<seller_id, double>> z_sorted(cert.z.begin(),
                                                     cert.z.end());
  std::sort(z_sorted.begin(), z_sorted.end());
  for (const auto& [seller, zs] : z_sorted) {
    (void)seller;
    cert.objective -= zs;
  }
  return cert;
}

bool dual_feasible(const single_stage_instance& instance,
                   const dual_certificate& cert, double tol) {
  ECRS_CHECK(cert.y.size() == instance.requirements.size());
  for (double yk : cert.y) {
    if (yk < -tol) return false;
  }
  // Pure per-element predicate: iteration order cannot change the result.
  // ecrs-analyze: allow(unordered-iter)
  for (const auto& [seller, zs] : cert.z) {
    (void)seller;
    if (zs < -tol) return false;
  }
  for (const bid& b : instance.bids) {
    double lhs = 0.0;
    for (demander_id k : b.coverage) {
      lhs += static_cast<double>(b.amount) * cert.y[k];
    }
    const auto it = cert.z.find(b.seller);
    const double zs = it == cert.z.end() ? 0.0 : it->second;
    if (lhs - zs > b.price + tol) return false;
  }
  return true;
}

}  // namespace ecrs::auction
