// Buyer-side settlement: who pays for the reclaimed resources.
//
// The paper's Definition 5 ("no economic loss") requires that what the
// platform charges the winning buyers covers what it pays the sellers.
// This module distributes the platform's outlay over the demanders in
// proportion to the resource units they actually received, optionally with
// a platform markup, and audits the no-deficit condition.
#pragma once

#include <cstddef>
#include <vector>

#include "auction/bid.h"
#include "auction/ssam.h"

namespace ecrs::auction {

struct settlement {
  std::vector<double> charges;   // per demander (index = demander id)
  std::vector<units> received;   // units delivered per demander
  double total_payment = 0.0;    // paid out to sellers
  double total_charged = 0.0;    // collected from demanders
  double platform_balance = 0.0; // charged − paid
  // Definition 5: the platform runs no deficit.
  [[nodiscard]] bool no_economic_loss(double tol = 1e-9) const {
    return platform_balance >= -tol;
  }
};

// Compute the settlement of a finished round. Each demander is charged
// (1 + markup) times its received-units share of the total payment;
// demanders that received nothing pay nothing. markup >= 0.
[[nodiscard]] settlement settle_round(const single_stage_instance& instance,
                                      const ssam_result& result,
                                      double markup = 0.0);

}  // namespace ecrs::auction
