// Baseline mechanisms the paper argues against (§I) or that serve as
// comparison points in the benches:
//
//  - fixed_price:   the "pricing" alternative from the introduction — the
//                   platform posts a flat per-unit repurchase price; sellers
//                   whose unit cost is below it accept; no market feedback.
//  - pay_as_bid:    the SSAM greedy selection but paying winners exactly
//                   their reported price (first-price; not truthful).
//  - random_select: pick bids uniformly at random (one per seller) until
//                   requirements are covered; pays reported prices.
#pragma once

#include <cstddef>
#include <vector>

#include "auction/bid.h"
#include "common/rng.h"

namespace ecrs::auction {

struct baseline_result {
  std::vector<std::size_t> winners;  // bid indices, selection order
  bool feasible = false;
  double social_cost = 0.0;   // sum of winners' true prices
  double total_payment = 0.0; // what the platform pays out
};

// Posted-price repurchasing at `unit_price` per resource unit. A seller
// accepts (its cheapest qualifying bid) iff price <= unit_price * potential
// units; accepting sellers are taken in index order until coverage. Payment
// per winner: unit_price * units actually used.
[[nodiscard]] baseline_result fixed_price_mechanism(
    const single_stage_instance& instance, double unit_price);

// Greedy selection identical to SSAM, but first-price payments.
[[nodiscard]] baseline_result pay_as_bid_greedy(
    const single_stage_instance& instance);

// Random selection: repeatedly pick a random remaining seller and a random
// one of its useful bids until requirements are met or sellers run out.
[[nodiscard]] baseline_result random_selection(
    const single_stage_instance& instance, rng& gen);

}  // namespace ecrs::auction
