#include "auction/io.h"

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/check.h"

namespace ecrs::auction {
namespace {

constexpr const char* kInstanceHeader = "ecrs-instance v1";
constexpr const char* kOnlineHeader = "ecrs-online v1";

void expect_token(std::istream& in, const std::string& expected) {
  std::string token;
  ECRS_CHECK_MSG(in >> token, "unexpected end of input, wanted '" << expected
                                                                  << "'");
  ECRS_CHECK_MSG(token == expected,
                 "expected '" << expected << "', found '" << token << "'");
}

void expect_header(std::istream& in, const std::string& header) {
  std::string line;
  // Skip blank lines between blocks.
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!line.empty()) break;
  }
  ECRS_CHECK_MSG(line == header,
                 "expected header '" << header << "', found '" << line << "'");
}

}  // namespace

void write_instance(std::ostream& out,
                    const single_stage_instance& instance) {
  instance.validate();
  out << kInstanceHeader << '\n';
  out << "requirements " << instance.requirements.size();
  for (units x : instance.requirements) out << ' ' << x;
  out << '\n';
  out << "bids " << instance.bids.size() << '\n';
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (const bid& b : instance.bids) {
    out << b.seller << ' ' << b.index << ' ' << b.amount << ' '
        << std::hexfloat << b.price << std::defaultfloat << ' '
        << b.coverage.size();
    for (demander_id k : b.coverage) out << ' ' << k;
    out << '\n';
  }
}

single_stage_instance read_instance(std::istream& in) {
  expect_header(in, kInstanceHeader);
  single_stage_instance instance;

  expect_token(in, "requirements");
  std::size_t m = 0;
  ECRS_CHECK_MSG(in >> m, "malformed requirements count");
  instance.requirements.resize(m);
  for (std::size_t k = 0; k < m; ++k) {
    ECRS_CHECK_MSG(in >> instance.requirements[k],
                   "malformed requirement " << k);
  }

  expect_token(in, "bids");
  std::size_t count = 0;
  ECRS_CHECK_MSG(in >> count, "malformed bid count");
  instance.bids.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    bid b;
    std::size_t cover = 0;
    std::string price_token;
    ECRS_CHECK_MSG(in >> b.seller >> b.index >> b.amount >> price_token >>
                       cover,
                   "malformed bid " << i);
    // strtod parses hexfloat portably; istream >> double does not.
    char* end = nullptr;
    b.price = std::strtod(price_token.c_str(), &end);
    ECRS_CHECK_MSG(end != price_token.c_str() && *end == '\0',
                   "malformed price in bid " << i << ": " << price_token);
    b.coverage.resize(cover);
    for (std::size_t c = 0; c < cover; ++c) {
      ECRS_CHECK_MSG(in >> b.coverage[c],
                     "malformed coverage in bid " << i);
    }
    instance.bids.push_back(std::move(b));
  }
  // Consume the trailing newline so block readers can continue.
  in.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
  instance.validate();
  return instance;
}

void write_online_instance(std::ostream& out, const online_instance& instance) {
  instance.validate();
  out << kOnlineHeader << '\n';
  out << "sellers " << instance.sellers.size() << '\n';
  for (const seller_profile& p : instance.sellers) {
    out << p.capacity << ' ' << p.t_arrive << ' ' << p.t_depart << '\n';
  }
  out << "rounds " << instance.rounds.size() << '\n';
  for (const single_stage_instance& round : instance.rounds) {
    write_instance(out, round);
  }
}

online_instance read_online_instance(std::istream& in) {
  expect_header(in, kOnlineHeader);
  online_instance instance;

  expect_token(in, "sellers");
  std::size_t n = 0;
  ECRS_CHECK_MSG(in >> n, "malformed seller count");
  instance.sellers.resize(n);
  for (std::size_t s = 0; s < n; ++s) {
    seller_profile& p = instance.sellers[s];
    ECRS_CHECK_MSG(in >> p.capacity >> p.t_arrive >> p.t_depart,
                   "malformed seller profile " << s);
  }

  expect_token(in, "rounds");
  std::size_t t_max = 0;
  ECRS_CHECK_MSG(in >> t_max, "malformed round count");
  in.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
  instance.rounds.reserve(t_max);
  for (std::size_t t = 0; t < t_max; ++t) {
    instance.rounds.push_back(read_instance(in));
  }
  instance.validate();
  return instance;
}

void write_instance_file(const std::string& path,
                         const single_stage_instance& instance) {
  std::ofstream out(path);
  ECRS_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  write_instance(out, instance);
}

single_stage_instance read_instance_file(const std::string& path) {
  std::ifstream in(path);
  ECRS_CHECK_MSG(in.good(), "cannot open " << path);
  return read_instance(in);
}

void write_online_instance_file(const std::string& path,
                                const online_instance& instance) {
  std::ofstream out(path);
  ECRS_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  write_online_instance(out, instance);
}

online_instance read_online_instance_file(const std::string& path) {
  std::ifstream in(path);
  ECRS_CHECK_MSG(in.good(), "cannot open " << path);
  return read_online_instance(in);
}

}  // namespace ecrs::auction
