// LP randomized rounding for the winner selection problem.
//
// Solves the LP relaxation of (12)-(15), interprets each seller's fractional
// bid mass as a probability distribution over its bids ("take bid j with
// probability x_ij, nothing with probability 1 − Σ_j x_ij"), samples
// selections independently, and keeps the cheapest feasible sample. Any
// residual deficit after the configured repetitions is closed greedily, so
// the result is always feasible when the instance is. A classic
// O(log n)-approximation recipe for covering ILPs; here it serves as a
// cost-only baseline next to SSAM's deterministic greedy (no payments, not
// a mechanism).
#pragma once

#include <cstddef>

#include "auction/baselines.h"
#include "auction/bid.h"
#include "common/rng.h"

namespace ecrs::auction {

struct rounding_options {
  std::size_t repetitions = 32;  // independent sampling rounds
};

// Returns the cheapest feasible rounded selection (greedy-completed if
// needed). `gen` drives the sampling; results are deterministic given it.
[[nodiscard]] baseline_result randomized_rounding(
    const single_stage_instance& instance, rng& gen,
    const rounding_options& options = {});

}  // namespace ecrs::auction
