// Multi-round (online) auction instance (paper §IV-E).
//
// Seller i is present in rounds [t_arrive, t_depart] (the paper's
// [t_i^-, t_i^+]) and can sell at most `capacity` participation units over
// the whole horizon (Θ_i, constraint (11)); each accepted bid consumes
// |S_ij| units. Rounds are 1-based to match the paper.
#pragma once

#include <cstdint>
#include <vector>

#include "auction/bid.h"

namespace ecrs::auction {

struct seller_profile {
  units capacity = 1;          // Θ_i, in participation units
  std::uint32_t t_arrive = 1;  // t_i^- (1-based, inclusive)
  std::uint32_t t_depart = 1;  // t_i^+ (inclusive)
};

struct online_instance {
  // rounds[t-1] is the single-stage instance of round t, with *true* prices.
  std::vector<single_stage_instance> rounds;
  // Indexed by seller_id; every seller appearing in any round must exist.
  std::vector<seller_profile> sellers;

  [[nodiscard]] std::size_t horizon() const { return rounds.size(); }

  // Throws ecrs::check_error on out-of-range seller ids, invalid windows, or
  // invalid per-round instances.
  void validate() const;

  // True if seller `s` may bid in 1-based round `t`.
  [[nodiscard]] bool in_window(seller_id s, std::uint32_t t) const;
};

}  // namespace ecrs::auction
