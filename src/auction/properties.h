// Mechanism-property verification utilities (used by the property tests and
// the ablation benches): feasibility, individual rationality, truthfulness
// probing, and budget-balance accounting.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "auction/bid.h"
#include "auction/msoa.h"
#include "auction/online.h"
#include "auction/ssam.h"
#include "common/annotations.h"
#include "common/rng.h"

namespace ecrs::auction {

// Does the winner set satisfy every requirement with at most one bid per
// seller?
[[nodiscard]] bool selection_feasible(const single_stage_instance& instance,
                                      const std::vector<std::size_t>& winners);

// ---------------------------------------------------------------------------
// Always-on invariant auditor. `run_ssam` / `run_msoa` call these on their
// own output when `ssam_options::self_audit` is set (the default in debug
// and sanitizer builds), so feasibility, individual rationality, and budget
// balance are re-checked on every mechanism invocation in every test — not
// only in properties_test.cc. Each violated invariant throws
// ecrs::check_error with a distinct message naming the invariant.

struct audit_options {
  // Numeric slack for price/payment comparisons (absolute).
  double tolerance = 1e-9;
  // The platform budget W the run was gated by; 0 = unlimited. When set,
  // the audit asserts total_payment <= W + tolerance.
  double payment_budget = 0.0;
};

// Audit a single-stage outcome: winner indices in range, at most one bid
// per seller, the `feasible` flag consistent with a coverage replay,
// individual rationality (payment >= asking price), social-cost and
// total-payment accounting, dual-certificate sanity, and the payment
// budget. Throws ecrs::check_error on the first violation. The
// bid-vector overload compiles the instance and delegates to the
// compiled-view auditor (the core implementation, and the one run_ssam's
// self-audit uses on its hot path).
void audit_or_throw(const single_stage_instance& instance,
                    const ssam_result& result,
                    const audit_options& options = {});
void audit_or_throw(const compiled_instance& instance,
                    const ssam_result& result,
                    const audit_options& options = {});

// Audit an online outcome: per-round windows, lifetime capacities,
// coverage, IR against true prices (via audit_msoa), plus social-cost /
// total-payment accounting across rounds. Throws ecrs::check_error on the
// first violation.
void audit_or_throw(const online_instance& instance, const msoa_result& result,
                    const audit_options& options = {});

struct ir_audit {
  bool ok = true;
  std::size_t winners = 0;
  double min_surplus = 0.0;  // min over winners of payment − price
  std::vector<std::size_t> violations;  // winner positions with payment < price
};

// Individual rationality: every winner's payment covers its reported price.
[[nodiscard]] ir_audit audit_individual_rationality(
    const single_stage_instance& instance, const ssam_result& result);

// MSOA-level audit: windows respected, capacities respected, per-round
// feasibility, and IR against *true* prices.
struct msoa_audit {
  bool windows_ok = true;
  bool capacity_ok = true;
  bool coverage_ok = true;
  bool ir_ok = true;
  [[nodiscard]] bool ok() const {
    return windows_ok && capacity_ok && coverage_ok && ir_ok;
  }
};

[[nodiscard]] msoa_audit audit_msoa(const online_instance& instance,
                                    const msoa_result& result);

// Truthfulness probe: for `trials` random (bid, misreport) pairs, compare
// the bidder's utility when reporting truthfully vs. misreporting, under
// the given payment rule. Utility = payment − true price if the bid wins,
// else 0 (Eq. 3). Records the largest utility gain achieved by lying; a
// truthful mechanism keeps max_gain <= tolerance.
struct truthfulness_report {
  std::size_t trials = 0;
  std::size_t profitable_lies = 0;
  double max_gain = 0.0;
  std::string worst_case;  // human-readable description of the worst lie
};

[[nodiscard]] truthfulness_report probe_truthfulness(
    const single_stage_instance& instance, const ssam_options& options,
    rng& gen, std::size_t trials, double tolerance = 1e-6);

// Utility of `bid_index`'s seller when that bid's reported price is
// `report` (all else truthful): runs the mechanism on the modified instance
// and returns payment − true_price if the bid wins, else 0.
[[nodiscard]] double utility_with_report(const single_stage_instance& instance,
                                         const ssam_options& options,
                                         std::size_t bid_index, double report);

}  // namespace ecrs::auction
