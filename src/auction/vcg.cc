#include "auction/vcg.h"

#include <algorithm>

#include "auction/exact.h"
#include "common/check.h"

namespace ecrs::auction {

vcg_result run_vcg(const single_stage_instance& instance,
                   std::size_t node_limit, double pivotal_reserve) {
  instance.validate();
  ECRS_CHECK_MSG(pivotal_reserve >= 0.0,
                 "pivotal reserve must be non-negative");
  vcg_result result;

  // Reserve-price admission: bids above the reserve never participate, so a
  // pivotal winner's payment (the reserve) is independent of its report.
  single_stage_instance admitted;
  std::vector<std::size_t> admitted_to_original;
  const single_stage_instance* solved = &instance;
  if (pivotal_reserve > 0.0) {
    admitted.requirements = instance.requirements;
    for (std::size_t idx = 0; idx < instance.bids.size(); ++idx) {
      if (instance.bids[idx].price <= pivotal_reserve) {
        admitted.bids.push_back(instance.bids[idx]);
        admitted_to_original.push_back(idx);
      }
    }
    solved = &admitted;
  }

  const reference_solution opt = solve_exact(*solved, node_limit);
  result.exact = opt.exact;
  result.feasible = opt.feasible;
  if (!opt.feasible) return result;
  result.winners = opt.chosen;
  if (pivotal_reserve > 0.0) {
    for (std::size_t& w : result.winners) w = admitted_to_original[w];
  }
  result.social_cost = opt.cost;

  result.payments.reserve(result.winners.size());
  for (std::size_t pos = 0; pos < result.winners.size(); ++pos) {
    const bid& winner = instance.bids[result.winners[pos]];

    // Optimal cost with the winning seller removed entirely (from the
    // admitted pool when a reserve is active).
    single_stage_instance without = *solved;
    without.bids.clear();
    for (const bid& b : solved->bids) {
      if (b.seller != winner.seller) without.bids.push_back(b);
    }
    // Reserve fallback for pivotal sellers: report-independent, so
    // truthfulness survives; see vcg.h.
    const double pivotal_payment =
        pivotal_reserve > 0.0 ? pivotal_reserve : winner.price;
    double payment;
    if (without.bids.empty()) {
      payment = pivotal_payment;
      result.pivotal_monopolists.push_back(pos);
    } else {
      const reference_solution opt_without = solve_exact(without, node_limit);
      result.exact = result.exact && opt_without.exact;
      if (!opt_without.feasible) {
        // The seller is pivotal for feasibility: no finite externality.
        payment = pivotal_payment;
        result.pivotal_monopolists.push_back(pos);
      } else {
        // Clarke pivot: what the rest of the market loses by this seller's
        // presence, credited on top of the cost it displaces.
        payment = opt_without.cost - (opt.cost - winner.price);
        // Guards numerical noise; theory gives payment >= price.
        payment = std::max(payment, winner.price);
      }
    }
    result.payments.push_back(payment);
    result.total_payment += payment;
  }
  return result;
}

}  // namespace ecrs::auction
