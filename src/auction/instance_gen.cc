#include "auction/instance_gen.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/check.h"

namespace ecrs::auction {
namespace {

// Clamp requirements so that EVERY greedy path of SSAM completes: per
// demander, the guaranteed supply is the sum over covering sellers of the
// seller's MINIMUM bid amount (whatever bid of a seller wins contributes at
// least that much). See DESIGN.md §2: all bids of a seller share one
// coverage set, so the instance stays satisfiable no matter which
// alternative bid is selected.
// guaranteed_supply restricted to the sellers flagged in `seller_present`
// (absent sellers contribute nothing — the online generator's windowed
// sellers).
std::vector<units> guaranteed_supply_of_present(
    const single_stage_instance& instance,
    const std::vector<bool>& seller_present) {
  std::map<seller_id, units> min_amount;
  std::map<seller_id, const std::vector<demander_id>*> coverage_of;
  for (const bid& b : instance.bids) {
    if (b.seller >= seller_present.size() || !seller_present[b.seller]) {
      continue;
    }
    auto [it, inserted] = min_amount.emplace(b.seller, b.amount);
    if (!inserted) it->second = std::min(it->second, b.amount);
    coverage_of[b.seller] = &b.coverage;
  }
  std::vector<units> supply(instance.requirements.size(), 0);
  for (const auto& [seller, amount] : min_amount) {
    for (demander_id k : *coverage_of[seller]) supply[k] += amount;
  }
  return supply;
}

void clamp_to_guaranteed_supply(single_stage_instance& instance,
                                double margin,
                                const std::vector<bool>* seller_present) {
  const std::vector<units> supply =
      seller_present == nullptr
          ? guaranteed_supply(instance)
          : guaranteed_supply_of_present(instance, *seller_present);
  for (std::size_t k = 0; k < instance.requirements.size(); ++k) {
    const auto cap = static_cast<units>(
        std::floor(margin * static_cast<double>(supply[k])));
    instance.requirements[k] =
        std::max<units>(0, std::min(instance.requirements[k], cap));
  }
}

}  // namespace

std::vector<units> guaranteed_supply(const single_stage_instance& instance) {
  std::map<seller_id, units> min_amount;
  std::map<seller_id, const std::vector<demander_id>*> coverage_of;
  for (const bid& b : instance.bids) {
    auto [it, inserted] = min_amount.emplace(b.seller, b.amount);
    if (!inserted) it->second = std::min(it->second, b.amount);
    coverage_of[b.seller] = &b.coverage;
  }
  std::vector<units> supply(instance.requirements.size(), 0);
  for (const auto& [seller, amount] : min_amount) {
    for (demander_id k : *coverage_of[seller]) supply[k] += amount;
  }
  return supply;
}

single_stage_instance random_instance(const instance_config& config,
                                      rng& gen) {
  ECRS_CHECK_MSG(config.sellers >= 1, "need at least one seller");
  ECRS_CHECK_MSG(config.demanders >= 1, "need at least one demander");
  ECRS_CHECK_MSG(config.bids_per_seller >= 1, "need at least one bid");
  ECRS_CHECK_MSG(config.price_lo >= 0.0 && config.price_hi >= config.price_lo,
                 "bad price range");
  ECRS_CHECK_MSG(
      config.requirement_lo >= 0 &&
          config.requirement_hi >= config.requirement_lo,
      "bad requirement range");
  ECRS_CHECK_MSG(config.amount_lo >= 1 && config.amount_hi >= config.amount_lo,
                 "bad amount range");
  ECRS_CHECK_MSG(
      config.coverage_fraction > 0.0 && config.coverage_fraction <= 1.0,
      "coverage fraction out of (0,1]");
  ECRS_CHECK_MSG(config.supply_margin > 0.0 && config.supply_margin <= 1.0,
                 "supply margin out of (0,1]");

  single_stage_instance instance;
  instance.requirements.resize(config.demanders);
  for (units& x : instance.requirements) {
    x = gen.uniform_int(config.requirement_lo, config.requirement_hi);
  }

  auto max_cover = static_cast<std::size_t>(std::max(
      1.0, config.coverage_fraction * static_cast<double>(config.demanders)));
  if (config.max_coverage > 0) {
    max_cover = std::min(max_cover, config.max_coverage);
  }
  max_cover = std::min(max_cover, config.demanders);
  for (std::size_t s = 0; s < config.sellers; ++s) {
    // One coverage set per seller; its alternative bids are different
    // (amount, price) offers for the same set of demanders.
    const auto cover_n = static_cast<std::size_t>(
        gen.uniform_int(1, static_cast<std::int64_t>(max_cover)));
    std::vector<demander_id> coverage;
    coverage.reserve(cover_n);
    for (std::size_t k : gen.sample_without_replacement(config.demanders,
                                                        cover_n)) {
      coverage.push_back(static_cast<demander_id>(k));
    }
    std::sort(coverage.begin(), coverage.end());

    for (std::size_t j = 0; j < config.bids_per_seller; ++j) {
      bid b;
      b.seller = static_cast<seller_id>(s);
      b.index = static_cast<std::uint32_t>(j);
      b.coverage = coverage;
      b.amount = gen.uniform_int(config.amount_lo, config.amount_hi);
      b.price = gen.uniform_real(config.price_lo, config.price_hi);
      instance.bids.push_back(std::move(b));
    }
  }

  clamp_to_guaranteed_supply(instance, config.supply_margin, nullptr);
  instance.validate();
  return instance;
}

online_instance random_online_instance(const online_config& config, rng& gen) {
  ECRS_CHECK_MSG(config.rounds >= 1, "need at least one round");
  ECRS_CHECK_MSG(
      config.windowed_fraction >= 0.0 && config.windowed_fraction <= 1.0,
      "windowed fraction out of [0,1]");
  ECRS_CHECK_MSG(
      config.seller_price_bias >= 0.0 && config.seller_price_bias < 1.0,
      "seller price bias out of [0,1)");

  online_instance instance;
  const auto t_max = static_cast<std::uint32_t>(config.rounds);

  // Seller profiles.
  const std::size_t n = config.stage.sellers;
  instance.sellers.resize(n);
  // Auto capacity: enough participation units to win with an average-size
  // coverage set in most rounds of the horizon — binding occasionally, but
  // rarely enough to starve coverage (see DESIGN.md §2).
  const double avg_cover = std::max(
      1.0, 0.5 * (1.0 + config.stage.coverage_fraction *
                            static_cast<double>(config.stage.demanders)));
  units cap_lo = config.capacity_lo;
  units cap_hi = config.capacity_hi;
  if (cap_lo == 0 && cap_hi == 0) {
    cap_lo = static_cast<units>(
        std::ceil(avg_cover * static_cast<double>(config.rounds) * 0.5));
    cap_hi = static_cast<units>(
        std::ceil(avg_cover * static_cast<double>(config.rounds) * 1.0));
  }
  ECRS_CHECK_MSG(cap_lo >= 1 && cap_hi >= cap_lo, "bad capacity range");

  for (std::size_t s = 0; s < n; ++s) {
    seller_profile& p = instance.sellers[s];
    p.capacity = gen.uniform_int(cap_lo, cap_hi);
    if (gen.bernoulli(config.windowed_fraction) && t_max > 1) {
      const auto a = static_cast<std::uint32_t>(gen.uniform_int(1, t_max));
      const auto b = static_cast<std::uint32_t>(gen.uniform_int(1, t_max));
      p.t_arrive = std::min(a, b);
      p.t_depart = std::max(a, b);
    } else {
      p.t_arrive = 1;
      p.t_depart = t_max;
    }
  }

  // Persistent per-seller price levels (see online_config).
  std::vector<double> price_factor(n, 1.0);
  if (config.seller_price_bias > 0.0) {
    for (double& factor : price_factor) {
      factor = gen.uniform_real(1.0 - config.seller_price_bias,
                                1.0 + config.seller_price_bias);
    }
  }

  // Per-round instances, clamped against the guaranteed supply of sellers
  // present in that round.
  instance.rounds.reserve(config.rounds);
  for (std::uint32_t t = 1; t <= t_max; ++t) {
    single_stage_instance round = random_instance(config.stage, gen);
    for (bid& b : round.bids) b.price *= price_factor[b.seller];
    std::vector<bool> present(n, false);
    for (std::size_t s = 0; s < n; ++s) {
      present[s] = t >= instance.sellers[s].t_arrive &&
                   t <= instance.sellers[s].t_depart;
    }
    clamp_to_guaranteed_supply(round, config.stage.supply_margin, &present);
    instance.rounds.push_back(std::move(round));
  }

  // Capacity-aware repair: simulate a feasible assignment round by round;
  // wherever even the repair greedy cannot cover, lower the requirement to
  // what it achieved. Guarantees the offline ILP (and its LP relaxation)
  // are feasible.
  std::vector<units> capacity_left;
  capacity_left.reserve(n);
  for (const seller_profile& p : instance.sellers) {
    capacity_left.push_back(p.capacity);
  }
  for (std::uint32_t t = 1; t <= t_max; ++t) {
    single_stage_instance& round = instance.rounds[t - 1];
    coverage_state state(round.requirements);
    std::vector<bool> seller_used(n, false);
    while (!state.satisfied()) {
      // Pick the admissible bid with maximal marginal utility; ties favour
      // sellers with more remaining capacity (preserve future rounds).
      std::size_t best = round.bids.size();
      units best_gain = 0;
      units best_cap = -1;
      for (std::size_t idx = 0; idx < round.bids.size(); ++idx) {
        const bid& b = round.bids[idx];
        if (seller_used[b.seller]) continue;
        if (!instance.in_window(b.seller, t)) continue;
        const auto weight = static_cast<units>(b.coverage_size());
        if (capacity_left[b.seller] < weight) continue;
        const units gain = state.marginal_utility(b);
        if (gain > best_gain ||
            (gain == best_gain && gain > 0 &&
             capacity_left[b.seller] > best_cap)) {
          best = idx;
          best_gain = gain;
          best_cap = capacity_left[b.seller];
        }
      }
      if (best == round.bids.size() || best_gain == 0) break;  // stuck
      const bid& b = round.bids[best];
      state.apply(b);
      seller_used[b.seller] = true;
      capacity_left[b.seller] -= static_cast<units>(b.coverage_size());
    }
    if (!state.satisfied()) {
      for (std::size_t k = 0; k < round.requirements.size(); ++k) {
        round.requirements[k] -= state.remaining(static_cast<demander_id>(k));
      }
    }
  }

  instance.validate();
  return instance;
}

namespace {

void validate_regional_config(const regional_config& config) {
  ECRS_CHECK_MSG(config.regions >= 1, "need at least one region");
  ECRS_CHECK_MSG(config.sellers_per_region.empty() ||
                     config.sellers_per_region.size() == config.regions,
                 "sellers_per_region must be empty or one entry per region");
  ECRS_CHECK_MSG(
      config.demanders_per_region.empty() ||
          config.demanders_per_region.size() == config.regions,
      "demanders_per_region must be empty or one entry per region");
  ECRS_CHECK_MSG(
      config.demand_scale_per_region.empty() ||
          config.demand_scale_per_region.size() == config.regions,
      "demand_scale_per_region must be empty or one entry per region");
  ECRS_CHECK_MSG(config.demand_scale >= 0.0,
                 "demand scale must be non-negative");
  for (const double s : config.demand_scale_per_region) {
    ECRS_CHECK_MSG(s >= 0.0, "demand scale must be non-negative");
  }
}

double region_scale(const regional_config& config, std::size_t r) {
  return config.demand_scale_per_region.empty()
             ? config.demand_scale
             : config.demand_scale_per_region[r];
}

// Re-inflate requirements past the satisfiability clamp (see
// regional_config::demand_scale); identity at scale 1.
void scale_requirements(single_stage_instance& instance, double scale) {
  if (scale == 1.0) return;
  for (units& x : instance.requirements) {
    x = static_cast<units>(
        std::ceil(static_cast<double>(x) * scale));
  }
}

instance_config region_stage(const instance_config& stage,
                             const regional_config& config, std::size_t r) {
  instance_config local = stage;
  if (!config.sellers_per_region.empty()) {
    local.sellers = config.sellers_per_region[r];
  }
  if (!config.demanders_per_region.empty()) {
    local.demanders = config.demanders_per_region[r];
  }
  return local;
}

}  // namespace

void regional_instance::validate() const {
  for (const single_stage_instance& local : regions) local.validate();
}

void regional_online_instance::validate() const {
  for (const online_instance& local : regions) {
    local.validate();
    ECRS_CHECK_MSG(local.horizon() == horizon(),
                   "all regions must share one horizon");
  }
}

regional_instance random_regional_instance(const instance_config& stage,
                                           const regional_config& config,
                                           rng& gen) {
  validate_regional_config(config);
  regional_instance instance;
  instance.regions.reserve(config.regions);
  for (std::size_t r = 0; r < config.regions; ++r) {
    rng sub = gen.fork(static_cast<std::uint64_t>(r));
    single_stage_instance local =
        random_instance(region_stage(stage, config, r), sub);
    scale_requirements(local, region_scale(config, r));
    local.validate();
    instance.regions.push_back(std::move(local));
  }
  return instance;
}

regional_online_instance random_regional_online_instance(
    const online_config& stage, const regional_config& config, rng& gen) {
  validate_regional_config(config);
  regional_online_instance instance;
  instance.regions.reserve(config.regions);
  for (std::size_t r = 0; r < config.regions; ++r) {
    rng sub = gen.fork(static_cast<std::uint64_t>(r));
    online_config local_cfg = stage;
    local_cfg.stage = region_stage(stage.stage, config, r);
    online_instance local = random_online_instance(local_cfg, sub);
    const double scale = region_scale(config, r);
    for (single_stage_instance& round : local.rounds) {
      scale_requirements(round, scale);
    }
    local.validate();
    instance.regions.push_back(std::move(local));
  }
  return instance;
}

}  // namespace ecrs::auction
