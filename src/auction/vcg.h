// VCG (Clarke pivot) reference mechanism for the winner selection problem.
//
// Selects the exact cost-minimizing winner set and pays each winning seller
//   p_i = OPT(without seller i) − (OPT − price_i),
// the classic externality payment. Truthful and individually rational like
// SSAM, but it needs the NP-hard optimum (twice per winner), so it only
// scales to reference sizes — which is exactly its role here: the
// benchmark SSAM's polynomial-time approximation is traded off against
// (see bench/payment_rules).
#pragma once

#include <cstddef>
#include <vector>

#include "auction/bid.h"

namespace ecrs::auction {

struct vcg_result {
  std::vector<std::size_t> winners;   // bid indices of the optimal selection
  std::vector<double> payments;       // parallel to winners
  bool feasible = false;              // an optimal selection exists
  bool exact = true;                  // all solves finished within budget
  double social_cost = 0.0;           // optimal objective value
  double total_payment = 0.0;
  // Winners whose removal makes the instance infeasible (no finite
  // externality exists); their positions in `winners` are listed here.
  std::vector<std::size_t> pivotal_monopolists;
};

// Runs VCG. `node_limit` bounds each exact solve; if any solve is cut off,
// `exact` is false and payments are computed from the incumbent costs
// (still >= the asking prices, but no longer provably truthful).
//
// Pivotal sellers — those whose removal makes the instance infeasible —
// have no finite Clarke externality. With `pivotal_reserve` > 0 the
// mechanism becomes a reserve-price VCG: bids priced above the reserve are
// rejected up front, and pivotal winners are paid exactly the reserve.
// That is report-independent, so truthfulness survives (a seller whose
// true cost is below the reserve can only lose by reporting above it).
// With pivotal_reserve = 0, pivotal winners are paid their reported price
// instead — individually rational but NOT truthful, matching the naive
// textbook fallback; callers should check pivotal_monopolists.
[[nodiscard]] vcg_result run_vcg(const single_stage_instance& instance,
                                 std::size_t node_limit = 4000000,
                                 double pivotal_reserve = 0.0);

}  // namespace ecrs::auction
