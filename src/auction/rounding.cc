#include "auction/rounding.h"

#include <algorithm>
#include <limits>
#include <map>

#include "common/check.h"
#include "lp/simplex.h"

namespace ecrs::auction {
namespace {

// Greedy completion: extend `selection` with unused sellers' bids until the
// requirements are met (or nothing helps).
void complete_greedily(const single_stage_instance& instance,
                       std::vector<std::size_t>& selection) {
  coverage_state state(instance.requirements);
  std::map<seller_id, bool> used;
  for (std::size_t idx : selection) {
    state.apply(instance.bids[idx]);
    used[instance.bids[idx].seller] = true;
  }
  while (!state.satisfied()) {
    std::size_t best = instance.bids.size();
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t idx = 0; idx < instance.bids.size(); ++idx) {
      const bid& b = instance.bids[idx];
      if (used.count(b.seller) > 0) continue;
      const units gain = state.marginal_utility(b);
      if (gain <= 0) continue;
      const double ratio = b.price / static_cast<double>(gain);
      if (ratio < best_ratio) {
        best_ratio = ratio;
        best = idx;
      }
    }
    if (best == instance.bids.size()) break;
    selection.push_back(best);
    state.apply(instance.bids[best]);
    used[instance.bids[best].seller] = true;
  }
}

}  // namespace

baseline_result randomized_rounding(const single_stage_instance& instance,
                                    rng& gen,
                                    const rounding_options& options) {
  instance.validate();
  ECRS_CHECK_MSG(options.repetitions >= 1, "need at least one repetition");
  baseline_result result;

  // Fractional optimum: reuse the lp_bound model by solving it directly.
  lp::model m;
  for (const bid& b : instance.bids) m.add_variable(b.price);
  std::map<seller_id, std::vector<std::size_t>> groups;
  for (std::size_t idx = 0; idx < instance.bids.size(); ++idx) {
    groups[instance.bids[idx].seller].push_back(idx);
  }
  for (const auto& [seller, bid_indices] : groups) {
    (void)seller;
    std::vector<std::pair<std::size_t, double>> row;
    for (std::size_t idx : bid_indices) row.emplace_back(idx, 1.0);
    m.add_constraint(row, lp::row_sense::le, 1.0);
  }
  for (std::size_t k = 0; k < instance.requirements.size(); ++k) {
    if (instance.requirements[k] == 0) continue;
    std::vector<std::pair<std::size_t, double>> row;
    for (std::size_t idx = 0; idx < instance.bids.size(); ++idx) {
      const bid& b = instance.bids[idx];
      if (std::binary_search(b.coverage.begin(), b.coverage.end(),
                             static_cast<demander_id>(k))) {
        row.emplace_back(idx, static_cast<double>(b.amount));
      }
    }
    m.add_constraint(row, lp::row_sense::ge,
                     static_cast<double>(instance.requirements[k]));
  }
  const lp::solution frac = lp::solve(m);
  if (frac.status != lp::solve_status::optimal) {
    return result;  // relaxation infeasible: the ILP is too
  }

  // Sample selections; keep the cheapest feasible one.
  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> best;
  std::vector<std::size_t> fallback;  // cheapest sample even if infeasible
  double fallback_cost = std::numeric_limits<double>::infinity();
  for (std::size_t rep = 0; rep < options.repetitions; ++rep) {
    std::vector<std::size_t> selection;
    for (const auto& [seller, bid_indices] : groups) {
      (void)seller;
      // Select at most one bid per seller according to its fractional mass.
      double point = gen.next_double();
      for (std::size_t idx : bid_indices) {
        point -= frac.x[idx];
        if (point < 0.0) {
          selection.push_back(idx);
          break;
        }
      }
    }
    coverage_state state(instance.requirements);
    double cost = 0.0;
    for (std::size_t idx : selection) {
      state.apply(instance.bids[idx]);
      cost += instance.bids[idx].price;
    }
    if (state.satisfied()) {
      if (cost < best_cost) {
        best_cost = cost;
        best = std::move(selection);
      }
    } else if (cost < fallback_cost) {
      fallback_cost = cost;
      fallback = std::move(selection);
    }
  }

  if (best.empty() && best_cost == std::numeric_limits<double>::infinity()) {
    // No sample was feasible: complete the cheapest one greedily.
    best = std::move(fallback);
    complete_greedily(instance, best);
  }

  coverage_state state(instance.requirements);
  result.social_cost = 0.0;
  for (std::size_t idx : best) {
    state.apply(instance.bids[idx]);
    result.social_cost += instance.bids[idx].price;
  }
  result.winners = std::move(best);
  result.feasible = state.satisfied();
  result.total_payment = result.social_cost;  // cost-only baseline
  return result;
}

}  // namespace ecrs::auction
