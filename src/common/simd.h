// Runtime-dispatched SIMD kernels for the compiled auction hot loops.
//
// Three kernels cover the loops that dominate a critical-value call
// (auction/compiled.h, auction/ssam.cc):
//
//  - sum_min_indexed     Σ_j min(bound, vals[idx[j]]) — the marginal-utility
//                        accumulation over a CSR coverage row;
//  - consume_min_indexed same walk, but decrements vals[idx[j]] by the min
//                        and returns the total consumed — the
//                        coverage-decrement sweep of applying a winner;
//  - ratio_argmin        lexicographic (price/util, index) minimum over the
//                        live candidate rows — the eager selection scan, the
//                        probe-trajectory argmin, and the runner-up scan.
//
// Each has a scalar, SSE2 and AVX2 implementation selected once at startup
// (CPU detection, overridable via the ECRS_SIMD environment variable or the
// force() test hook) through a table of function pointers. Every tier is
// BITWISE-IDENTICAL by construction, not just "close":
//
//  - the two indexed kernels are pure int64 arithmetic; reordering the
//    additions is exact. They require the index row to hold DISTINCT
//    indices (CSR coverage rows are sorted unique), otherwise the gathered
//    read-modify-write of consume_min_indexed would lose updates;
//  - ratio_argmin performs the same IEEE double division per element in
//    every tier. The vector tiers convert int64 utilities to double with
//    the exact 2^52 bias trick and fall back to scalar for any chunk
//    holding a utility >= 2^52 (outside the exact range); dead lanes are
//    blended to +inf before the compare so a 0/0 NaN never participates.
//    Lane-local strict-< keeps the first (smallest-index) occurrence per
//    lane and the horizontal reduce is (ratio, index)-lexicographic, which
//    reproduces the scalar ascending scan's argmin exactly.
//
// ECRS_SIMD values: "off" / "scalar" / "0" pin the scalar tier, "sse2" and
// "avx2" pin that tier (clamped to what the CPU supports), anything else —
// including unset — auto-detects. See DESIGN.md §11.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/annotations.h"

namespace ecrs::simd {

// Instruction-set tier of a kernel table. scalar is always available; on
// x86-64, sse2 is baseline and avx2 is detected at runtime.
enum class level : int { scalar = 0, sse2 = 1, avx2 = 2 };

[[nodiscard]] const char* to_string(level l);

// ratio_argmin sentinels: "no candidate found" / "exclude no seller".
inline constexpr std::uint32_t kNoIndex = 0xFFFFFFFFu;
inline constexpr std::uint32_t kNoSeller = 0xFFFFFFFFu;

// CSR rows shorter than this stay on the caller's inlined scalar loop: the
// dispatch (one relaxed atomic load + one indirect call) plus the gather
// setup costs more than a handful of scalar iterations. Typical bench
// coverage rows are ~5 wide and must not regress.
inline constexpr std::size_t kIndexedThreshold = 8;

struct ratio_best {
  double ratio = 0.0;        // +inf when index == kNoIndex
  std::uint32_t index = 0;
};

// One tier's kernel set. All pointers are always non-null.
struct kernel_table {
  level tier;
  std::int64_t (*sum_min_indexed)(const std::int64_t* vals,
                                  const std::uint32_t* idx, std::size_t n,
                                  std::int64_t bound);
  std::int64_t (*consume_min_indexed)(std::int64_t* vals,
                                      const std::uint32_t* idx, std::size_t n,
                                      std::int64_t bound);
  ratio_best (*ratio_argmin)(const double* price, const std::int64_t* util,
                             const std::uint32_t* seller,
                             const char* seller_active, std::size_t n,
                             std::uint32_t skip_index,
                             std::uint32_t skip_seller);
};

// The dispatched table (lazy-initialized, thread-safe, stable between
// force() calls).
[[nodiscard]] const kernel_table& active();
[[nodiscard]] level active_level();
// Highest tier this CPU can run.
[[nodiscard]] level max_supported();
// Test/bench hook: install the given tier's table (clamped to
// max_supported()); returns the tier actually installed. Not intended for
// use while kernels are running on other threads.
level force(level l);

// Σ_j min(bound, vals[idx[j]]) for j in [0, n). Indices must be distinct.
[[nodiscard]] ECRS_HOT inline std::int64_t sum_min_indexed(
    const std::int64_t* vals, const std::uint32_t* idx, std::size_t n,
    std::int64_t bound) {
  return active().sum_min_indexed(vals, idx, n, bound);
}

// For each j: used = min(bound, vals[idx[j]]); vals[idx[j]] -= used.
// Returns Σ used. Indices must be distinct.
ECRS_HOT inline std::int64_t consume_min_indexed(std::int64_t* vals,
                                                 const std::uint32_t* idx,
                                                 std::size_t n,
                                                 std::int64_t bound) {
  return active().consume_min_indexed(vals, idx, n, bound);
}

// Lexicographic (price[j] / util[j], j) minimum over the candidate rows
// j in [0, n) with util[j] > 0, seller_active[seller[j]] != 0,
// j != skip_index and seller[j] != skip_seller. Returns
// {+inf, kNoIndex} when no row qualifies.
[[nodiscard]] ECRS_HOT inline ratio_best ratio_argmin(
    const double* price, const std::int64_t* util, const std::uint32_t* seller,
    const char* seller_active, std::size_t n, std::uint32_t skip_index,
    std::uint32_t skip_seller) {
  return active().ratio_argmin(price, util, seller, seller_active, n,
                               skip_index, skip_seller);
}

}  // namespace ecrs::simd
