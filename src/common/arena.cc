#include "common/arena.h"

#include <algorithm>
#include <cstdint>

#include "common/check.h"

namespace ecrs {
namespace {

// First block size: big enough that small-instance auction calls fit in one
// block, small enough that idle threads don't hoard memory.
constexpr std::size_t kMinBlockBytes = 4096;

}  // namespace

ECRS_HOT void* arena::allocate(std::size_t bytes, std::size_t alignment) {
  ECRS_CHECK_MSG(alignment != 0 && (alignment & (alignment - 1)) == 0,
                 "arena alignment must be a power of two");
  if (bytes == 0) bytes = 1;

  // Walk forward through existing blocks (bump semantics: a block the
  // cursor passes is not revisited until the next rewind).
  while (block_ < blocks_.size()) {
    const block& b = blocks_[block_];
    const auto base = reinterpret_cast<std::uintptr_t>(b.data.get());
    const std::uintptr_t aligned =
        (base + offset_ + alignment - 1) & ~(static_cast<std::uintptr_t>(alignment) - 1);
    const std::size_t start = static_cast<std::size_t>(aligned - base);
    if (start + bytes <= b.size) {
      offset_ = start + bytes;
      return reinterpret_cast<void*>(aligned);
    }
    ++block_;
    offset_ = 0;
  }

  return grow(bytes, alignment);
}

// ECRS_HOT_ESCAPE (declared in the header): the one place the arena touches
// the system allocator. Geometric growth makes it amortized-zero — after the
// largest call has been seen once, allocate() never gets here again.
ECRS_HOT_ESCAPE void* arena::grow(std::size_t bytes, std::size_t alignment) {
  const std::size_t last = blocks_.empty() ? 0 : blocks_.back().size;
  const std::size_t size =
      std::max({bytes + alignment, last * 2, kMinBlockBytes});
  blocks_.push_back({std::make_unique<std::byte[]>(size), size});
  block_ = blocks_.size() - 1;
  offset_ = 0;

  const block& b = blocks_[block_];
  const auto base = reinterpret_cast<std::uintptr_t>(b.data.get());
  const std::uintptr_t aligned =
      (base + alignment - 1) & ~(static_cast<std::uintptr_t>(alignment) - 1);
  offset_ = static_cast<std::size_t>(aligned - base) + bytes;
  return reinterpret_cast<void*>(aligned);
}

std::size_t arena::capacity() const {
  std::size_t total = 0;
  for (const block& b : blocks_) total += b.size;
  return total;
}

arena& arena::for_thread() {
  thread_local arena instance;
  return instance;
}

}  // namespace ecrs
