// Result tables: the common output format of every bench binary.
//
// A table has named columns; rows are added cell-by-cell or all at once.
// Rendering targets: aligned ASCII (for the terminal) and CSV (for plotting).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace ecrs {

class table {
 public:
  using cell = std::variant<std::string, double, long long>;

  explicit table(std::vector<std::string> columns);

  [[nodiscard]] const std::vector<std::string>& columns() const {
    return columns_;
  }
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  // Append a full row; the number of cells must match the column count.
  void add_row(std::vector<cell> row);

  // Access a cell rendered as text (useful in tests).
  [[nodiscard]] std::string text_at(std::size_t row, std::size_t col) const;
  [[nodiscard]] double number_at(std::size_t row, std::size_t col) const;

  // Number of significant digits used when rendering doubles (default 4).
  void set_precision(int digits);

  [[nodiscard]] std::string to_ascii() const;
  [[nodiscard]] std::string to_csv() const;

  void write_csv(const std::string& path) const;

 private:
  [[nodiscard]] std::string render(const cell& c) const;

  std::vector<std::string> columns_;
  std::vector<std::vector<cell>> rows_;
  int precision_ = 4;
};

// Escape a CSV field (quotes fields containing separators or quotes).
[[nodiscard]] std::string csv_escape(const std::string& field);

}  // namespace ecrs
