#include "common/thread_pool.h"

#include <algorithm>
#include <memory>

namespace ecrs {
namespace {

// Shared drain state of one parallel_for call. Kept alive by shared_ptr so
// pool tasks that start after the caller already returned (e.g. when an
// exception cut the range short) find valid state and exit immediately.
struct drain_state {
  std::function<void(std::size_t)> fn;
  std::size_t n = 0;
  mutex m;
  condition_variable done;
  std::size_t next ECRS_GUARDED_BY(m) = 0;       // first unclaimed index
  std::size_t in_flight ECRS_GUARDED_BY(m) = 0;  // claimed but not finished
  std::exception_ptr err ECRS_GUARDED_BY(m);
};

void drain(const std::shared_ptr<drain_state>& s) {
  for (;;) {
    std::size_t index;
    {
      mutex_lock lock(s->m);
      if (s->next >= s->n) return;
      index = s->next++;
      ++s->in_flight;
    }
    try {
      s->fn(index);
    } catch (...) {
      mutex_lock lock(s->m);
      if (!s->err) s->err = std::current_exception();
      s->next = s->n;  // abandon the rest of the range
    }
    {
      mutex_lock lock(s->m);
      --s->in_flight;
      if (s->next >= s->n && s->in_flight == 0) s->done.notify_all();
    }
  }
}

}  // namespace

thread_pool::thread_pool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

thread_pool::~thread_pool() {
  {
    mutex_lock lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void thread_pool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      mutex_lock lock(mutex_);
      while (!stopping_ && tasks_.empty()) work_ready_.wait(lock);
      if (tasks_.empty()) return;  // stopping, queue drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void thread_pool::parallel_for(std::size_t n,
                               const std::function<void(std::size_t)>& fn,
                               std::size_t max_workers) {
  if (n == 0) return;
  auto state = std::make_shared<drain_state>();
  state->fn = fn;
  state->n = n;

  // One helper per worker (capped by the range and by `max_workers`, which
  // counts the calling thread); the caller drains too, so n == 1 or a fully
  // busy pool never deadlocks.
  std::size_t helpers = n > 1 ? std::min(size(), n) : 0;
  if (max_workers > 0) helpers = std::min(helpers, max_workers - 1);
  {
    mutex_lock lock(mutex_);
    for (std::size_t h = 0; h < helpers; ++h) {
      tasks_.emplace_back([state] { drain(state); });
    }
  }
  if (helpers > 0) work_ready_.notify_all();

  drain(state);
  mutex_lock lock(state->m);
  while (!(state->next >= state->n && state->in_flight == 0)) {
    state->done.wait(lock);
  }
  if (state->err) std::rethrow_exception(state->err);
}

thread_pool& thread_pool::shared() {
  static thread_pool pool;
  return pool;
}

void parallel_for(thread_pool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  if (pool == nullptr) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  pool->parallel_for(n, fn);
}

}  // namespace ecrs
