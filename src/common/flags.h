// Minimal command-line flag parser for bench and example binaries.
//
// Accepted syntax: --name=value, --name value, and bare --name (boolean
// true). Unknown positional arguments are collected separately.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace ecrs {

class flags {
 public:
  flags(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] long long get_int(const std::string& name,
                                  long long fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace ecrs
