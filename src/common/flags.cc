#include "common/flags.h"

#include <cstdlib>

#include "common/check.h"

namespace ecrs {

flags::flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";
    }
  }
}

bool flags::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string flags::get_string(const std::string& name,
                              const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

long long flags::get_int(const std::string& name, long long fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long long value = std::strtoll(it->second.c_str(), &end, 10);
  ECRS_CHECK_MSG(end != it->second.c_str() && *end == '\0',
                 "flag --" << name << " is not an integer: " << it->second);
  return value;
}

double flags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  ECRS_CHECK_MSG(end != it->second.c_str() && *end == '\0',
                 "flag --" << name << " is not a number: " << it->second);
  return value;
}

bool flags::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  ECRS_CHECK_MSG(false, "flag --" << name << " is not a boolean: " << v);
  return fallback;
}

}  // namespace ecrs
