// Source-level annotation macros: the vocabulary the static-analysis stack
// (tools/ecrs_analyze, Clang -Wthread-safety, the sanitizer lanes) reads.
//
// Hot-path purity (checked transitively by ecrs-analyze):
//
//  - ECRS_HOT marks a function as mechanism-hot: at steady state it must
//    not reach the global allocator (`new`, malloc, make_unique/shared), a
//    mutex acquisition, a `throw`, or a blocking call (parallel_for, wait,
//    join) through ANY call chain the analyzer can resolve within the TU.
//    Apply it to the inner kernels — selection loops, probe replays, SIMD
//    kernels, arena fast paths, the DES event loop — not to orchestrators
//    that legitimately compile, validate, fan out or audit.
//  - ECRS_HOT_ESCAPE marks an audited cold branch reachable from hot code:
//    arena/slab growth (amortized away at steady state), the ECRS_CHECK
//    failure path, audit_or_throw. The analyzer does not traverse into an
//    escape-marked function and ignores its own facts. Every escape must
//    carry a comment saying why the branch is cold; docs/ANALYSIS.md has
//    the policy.
//
// Thread-safety capability analysis (Clang -Wthread-safety; a no-op under
// GCC): the ECRS_CAPABILITY/ECRS_GUARDED_BY/... macros below follow the
// Clang thread-safety attribute reference. Use them with the annotated
// ecrs::mutex wrappers (common/mutex.h) — std::mutex itself carries no
// capability attribute, so the analysis cannot see through it.
//
// Thread ownership: ECRS_THREAD_OWNED documents single-thread-confined
// state (the bump arena's cursor, msoa_session's warm cache, ssam_scratch)
// where no mutex exists to guard it by. It expands to an `annotate`
// attribute under Clang so tools can surface it, and to nothing elsewhere.
#pragma once

#if defined(__clang__)
#define ECRS_ANNOTATE(text) __attribute__((annotate(text)))
#else
#define ECRS_ANNOTATE(text)
#endif

// Hot-path purity markers (tools/ecrs_analyze). Place at the start of the
// declaration: `ECRS_HOT void greedy_loop(...)`. The textual fallback
// front-end keys on the literal token, the libclang front-end on the
// expanded annotate attribute — keep the macro name on the same line(s) as
// the signature it marks.
#define ECRS_HOT ECRS_ANNOTATE("ecrs::hot")
#define ECRS_HOT_ESCAPE ECRS_ANNOTATE("ecrs::hot_escape")

// Single-thread-confined state; `what` names the owning thread or the
// confinement rule (e.g. "arena owner thread", "session thread").
#define ECRS_THREAD_OWNED(what) ECRS_ANNOTATE("ecrs::thread_owned:" what)

// ---------------------------------------------------------------------------
// Clang thread-safety analysis attributes. Mirrors the reference macro set
// from the Clang documentation, prefixed to avoid collisions. All of them
// compile away when the attribute is unsupported (GCC, old Clang).
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define ECRS_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef ECRS_THREAD_ANNOTATION
#define ECRS_THREAD_ANNOTATION(x)
#endif

// On a class: instances are a capability (a lockable resource).
#define ECRS_CAPABILITY(x) ECRS_THREAD_ANNOTATION(capability(x))
// On an RAII class whose constructor acquires and destructor releases.
#define ECRS_SCOPED_CAPABILITY ECRS_THREAD_ANNOTATION(scoped_lockable)
// On a data member: only accessible while holding the named capability.
#define ECRS_GUARDED_BY(x) ECRS_THREAD_ANNOTATION(guarded_by(x))
// On a pointer member: the pointed-to data is guarded.
#define ECRS_PT_GUARDED_BY(x) ECRS_THREAD_ANNOTATION(pt_guarded_by(x))
// On a function: the caller must hold the capability when calling.
#define ECRS_REQUIRES(...) \
  ECRS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
// On a function: acquires the capability; caller must not already hold it.
#define ECRS_ACQUIRE(...) \
  ECRS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
// On a function: releases the capability; caller must hold it.
#define ECRS_RELEASE(...) \
  ECRS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
// On a function: acquires iff the return value equals the first argument.
#define ECRS_TRY_ACQUIRE(...) \
  ECRS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
// On a function: must be called while NOT holding the capability
// (deadlock prevention for self-locking APIs).
#define ECRS_EXCLUDES(...) ECRS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
// On a function: returns a reference to the named capability.
#define ECRS_RETURN_CAPABILITY(x) ECRS_THREAD_ANNOTATION(lock_returned(x))
// Lock-ordering declarations.
#define ECRS_ACQUIRED_BEFORE(...) \
  ECRS_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ECRS_ACQUIRED_AFTER(...) \
  ECRS_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
// Escape hatch: the function is trusted to be correct without analysis.
// Every use needs a comment explaining why (docs/ANALYSIS.md policy).
#define ECRS_NO_THREAD_SAFETY_ANALYSIS \
  ECRS_THREAD_ANNOTATION(no_thread_safety_analysis)

// ---------------------------------------------------------------------------
// Sanitizer suppressions. The UBSan integer lane (-fsanitize=integer,
// implicit-conversion; CMakePresets `ubsan-int`) flags deliberate modular
// arithmetic and audited narrowing. Suppress at the FUNCTION that owns the
// audited arithmetic — never with blanket -fno-sanitize flags — and say in
// a comment what the benign pattern is. Clang-only: the `integer` and
// `implicit-conversion` sanitizer groups do not exist in GCC, and GCC
// rejects unknown no_sanitize arguments.
#if defined(__clang__)
#define ECRS_NO_SANITIZE_INTEGER \
  __attribute__((no_sanitize("integer", "implicit-conversion")))
#else
#define ECRS_NO_SANITIZE_INTEGER
#endif
