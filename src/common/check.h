// Lightweight runtime-check macros.
//
// ECRS_CHECK is always on and throws ecrs::check_error (derived from
// std::logic_error) so that violated preconditions are testable and never
// silently corrupt a simulation. ECRS_DCHECK compiles away in NDEBUG builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

#include "common/annotations.h"

namespace ecrs {

// Error thrown when a runtime check fails.
class check_error : public std::logic_error {
 public:
  explicit check_error(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

// ECRS_HOT_ESCAPE: the failure path of ECRS_CHECK. It streams a message
// and throws, but only ever runs when an invariant is already violated —
// cold by construction, so hot paths may ECRS_CHECK freely.
[[noreturn]] ECRS_HOT_ESCAPE inline void check_failed(
    const char* expr, const char* file, int line, const std::string& msg) {
  std::ostringstream os;
  os << "ECRS_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw check_error(os.str());
}

}  // namespace detail
}  // namespace ecrs

#define ECRS_CHECK(expr)                                                 \
  do {                                                                   \
    if (!(expr))                                                         \
      ::ecrs::detail::check_failed(#expr, __FILE__, __LINE__, "");       \
  } while (false)

#define ECRS_CHECK_MSG(expr, msg)                                        \
  do {                                                                   \
    if (!(expr)) {                                                       \
      std::ostringstream ecrs_check_os_;                                 \
      ecrs_check_os_ << msg;                                             \
      ::ecrs::detail::check_failed(#expr, __FILE__, __LINE__,            \
                                   ecrs_check_os_.str());                \
    }                                                                    \
  } while (false)

#ifdef NDEBUG
#define ECRS_DCHECK(expr) \
  do {                    \
  } while (false)
#else
#define ECRS_DCHECK(expr) ECRS_CHECK(expr)
#endif
