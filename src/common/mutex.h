// Capability-annotated wrappers over std::mutex / std::condition_variable.
//
// Clang's -Wthread-safety analysis tracks capabilities through attribute
// annotations; std::mutex carries none, so code locking it directly is
// invisible to the analysis. ecrs::mutex is a zero-overhead wrapper that
// IS a capability, ecrs::mutex_lock the matching RAII scope, and
// ecrs::condition_variable a std::condition_variable that waits on a
// mutex_lock (atomically unlocking the wrapped std::mutex underneath).
// Everything inlines to the std calls; the only addition is the attribute
// surface the analysis needs. See docs/ANALYSIS.md for the annotation
// conventions (which members get ECRS_GUARDED_BY, when to use
// ECRS_REQUIRES vs ECRS_EXCLUDES).
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/annotations.h"

namespace ecrs {

// A std::mutex that is a thread-safety capability.
class ECRS_CAPABILITY("mutex") mutex {
 public:
  mutex() = default;
  mutex(const mutex&) = delete;
  mutex& operator=(const mutex&) = delete;

  void lock() ECRS_ACQUIRE() { m_.lock(); }
  void unlock() ECRS_RELEASE() { m_.unlock(); }
  [[nodiscard]] bool try_lock() ECRS_TRY_ACQUIRE(true) {
    return m_.try_lock();
  }

  // The wrapped mutex, for interop (condition_variable::wait). Touching it
  // directly bypasses the capability tracking — keep it inside this header.
  [[nodiscard]] std::mutex& native() { return m_; }

 private:
  std::mutex m_;
};

// RAII lock scope over ecrs::mutex (the lock_guard/unique_lock of this
// header). Not movable: a scope acquires in its constructor and releases in
// its destructor, full stop — the analysis models exactly that.
class ECRS_SCOPED_CAPABILITY mutex_lock {
 public:
  explicit mutex_lock(mutex& m) ECRS_ACQUIRE(m) : mutex_(m) { mutex_.lock(); }
  ~mutex_lock() ECRS_RELEASE() { mutex_.unlock(); }
  mutex_lock(const mutex_lock&) = delete;
  mutex_lock& operator=(const mutex_lock&) = delete;

  [[nodiscard]] mutex& held() { return mutex_; }

 private:
  mutex& mutex_;
};

// Condition variable waiting on a mutex_lock. wait() atomically releases
// the wrapped std::mutex while sleeping and reacquires before returning,
// so from the analysis' point of view the capability is held across the
// call — which is exactly the guarantee the caller observes.
class condition_variable {
 public:
  condition_variable() = default;
  condition_variable(const condition_variable&) = delete;
  condition_variable& operator=(const condition_variable&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  // The std wait dance happens on the wrapped mutex: adopt the held lock,
  // wait, then release the std::unique_lock's ownership claim so the
  // mutex_lock destructor stays the one true unlocker.
  void wait(mutex_lock& lock) ECRS_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> native(lock.held().native(),
                                        std::adopt_lock);
    cv_.wait(native);
    native.release();  // ownership stays with `lock`
  }

  template <typename Predicate>
  void wait(mutex_lock& lock, Predicate pred) {
    while (!pred()) wait(lock);
  }

 private:
  std::condition_variable cv_;
};

}  // namespace ecrs
