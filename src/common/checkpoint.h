// Binary checkpoint primitives for the closed-loop daemon (DESIGN.md
// section 13).
//
// A checkpoint is a flat byte payload assembled by checkpoint_writer and
// consumed by checkpoint_reader: fixed-width little-endian integers and
// bit_cast doubles, so a payload restores FP state bit for bit. The file
// container adds a header — magic, format version, a caller-supplied
// config hash, payload size and an FNV-1a checksum — so the loader rejects
// foreign files, version skew, checkpoints from a differently-configured
// daemon, and truncated or corrupted payloads, all through ecrs::check_error
// (never by silently resuming from garbage).
//
// Components expose `save(checkpoint_writer&)` / `load(checkpoint_reader&)`
// pairs; the daemon concatenates them in a fixed order. Checkpoints are
// only valid at round boundaries, where every transient (DES heap, mailbox,
// ingest accumulators, spillover pools) is provably empty — the contract
// that keeps the format small and the restore bit-identical.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/annotations.h"

namespace ecrs {

// Format identity of the checkpoint container ("ECRSCKPT" little-endian)
// and the current payload layout version. Bump the version whenever a
// component's save() byte layout changes.
inline constexpr std::uint64_t kCheckpointMagic = 0x54504b4353524345ULL;
inline constexpr std::uint32_t kCheckpointVersion = 1;

// FNV-1a 64-bit over raw bytes (payload checksum).
// ECRS_NO_SANITIZE_INTEGER: the multiply wraps mod 2^64 by design.
ECRS_NO_SANITIZE_INTEGER [[nodiscard]] std::uint64_t fnv1a64(
    std::span<const std::uint8_t> bytes);

// Append-only typed byte sink. All integers little-endian fixed width;
// doubles stored as their bit pattern (bit-exact round trip).
class checkpoint_writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void size(std::size_t v) { u64(static_cast<std::uint64_t>(v)); }

  [[nodiscard]] std::span<const std::uint8_t> payload() const { return buf_; }
  [[nodiscard]] std::size_t bytes_written() const { return buf_.size(); }
  void clear() { buf_.clear(); }

 private:
  std::vector<std::uint8_t> buf_;
};

// Typed cursor over a payload. Every read checks the remaining length and
// raises ecrs::check_error on overrun, so a malformed payload can never
// read past its buffer.
class checkpoint_reader {
 public:
  explicit checkpoint_reader(std::span<const std::uint8_t> payload)
      : data_(payload) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int64_t i64() {
    return static_cast<std::int64_t>(u64());
  }
  [[nodiscard]] double f64();
  [[nodiscard]] std::size_t size() {
    return static_cast<std::size_t>(u64());
  }

  [[nodiscard]] std::size_t remaining() const {
    return data_.size() - pos_;
  }
  // True when the whole payload has been consumed (loaders assert this so
  // a component reading too little fails loudly instead of desyncing the
  // components behind it).
  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

// Write `payload` to `path` under the checkpoint header. Raises
// ecrs::check_error when the file cannot be written.
void save_checkpoint_file(const std::string& path, std::uint64_t config_hash,
                          std::span<const std::uint8_t> payload);

// Read a checkpoint container back. Verifies, in order: the file opens and
// the header is complete, the magic matches, the version matches
// kCheckpointVersion, the config hash matches `expected_config_hash`, the
// payload is exactly the declared size, and the FNV-1a checksum matches.
// Any failure raises ecrs::check_error naming the offending field.
[[nodiscard]] std::vector<std::uint8_t> load_checkpoint_file(
    const std::string& path, std::uint64_t expected_config_hash);

}  // namespace ecrs
