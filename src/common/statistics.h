// Streaming and batch statistics used throughout the evaluation harness.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ecrs {

// Numerically stable streaming moments (Welford's algorithm).
class running_stats {
 public:
  void add(double x);
  void merge(const running_stats& other);
  void reset();

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;  // population variance
  [[nodiscard]] double sample_variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Fixed-bin histogram over [lo, hi); values outside are clamped into the
// first/last bin so nothing is lost.
class histogram {
 public:
  histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::size_t bin_count(std::size_t bin) const;
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double bin_lower(std::size_t bin) const;
  [[nodiscard]] double bin_upper(std::size_t bin) const;

  // Render as a compact ASCII bar chart (one line per bin).
  [[nodiscard]] std::string to_ascii(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

// Percentile of a sample (linear interpolation between order statistics).
// q in [0, 100]. The input is copied; for repeated queries sort once and use
// sorted_percentile.
[[nodiscard]] double percentile(std::vector<double> values, double q);
[[nodiscard]] double sorted_percentile(const std::vector<double>& sorted,
                                       double q);

// Harmonic number H_n = sum_{k=1..n} 1/k; the paper's W_n factor.
[[nodiscard]] double harmonic_number(std::size_t n);

}  // namespace ecrs
