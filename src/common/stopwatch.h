// Wall-clock stopwatch for the runtime experiments (paper Fig. 4b).
#pragma once

#include <chrono>

namespace ecrs {

class stopwatch {
 public:
  stopwatch() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const { return elapsed_seconds() * 1e3; }
  [[nodiscard]] double elapsed_us() const { return elapsed_seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace ecrs
