#include "common/rng.h"

#include <cmath>

namespace ecrs {

double rng::exponential(double rate) {
  ECRS_CHECK_MSG(rate > 0.0, "exponential rate must be positive");
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

std::int64_t rng::poisson(double mean) {
  ECRS_CHECK_MSG(mean >= 0.0, "poisson mean must be non-negative");
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's multiplication method.
    const double threshold = std::exp(-mean);
    std::int64_t k = 0;
    double product = 1.0;
    do {
      ++k;
      product *= next_double();
    } while (product > threshold);
    return k - 1;
  }
  // Normal approximation, adequate for workload generation at large means.
  const double gauss = std::sqrt(-2.0 * std::log(1.0 - next_double())) *
                       std::cos(2.0 * 3.141592653589793 * next_double());
  const double value = mean + std::sqrt(mean) * gauss + 0.5;
  return value < 0.0 ? 0 : static_cast<std::int64_t>(value);
}

std::size_t rng::weighted_index(const std::vector<double>& weights) {
  ECRS_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    ECRS_CHECK_MSG(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  ECRS_CHECK_MSG(total > 0.0, "weights must not all be zero");
  double point = uniform_real(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    point -= weights[i];
    if (point < 0.0) return i;
  }
  return weights.size() - 1;  // guards against accumulated rounding
}

std::vector<std::size_t> rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  ECRS_CHECK_MSG(k <= n, "cannot sample " << k << " of " << n);
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(uniform_int(
        static_cast<std::int64_t>(i), static_cast<std::int64_t>(n) - 1));
    using std::swap;
    swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace ecrs
