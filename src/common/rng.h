// Deterministic pseudo-random number generation for simulations.
//
// All stochastic components of the library draw from ecrs::rng so that every
// experiment is reproducible from a single 64-bit seed. The engine is
// xoshiro256** (Blackman & Vigna), seeded through splitmix64; it satisfies
// std::uniform_random_bit_generator and is much faster than std::mt19937_64.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/annotations.h"
#include "common/check.h"

namespace ecrs {

// splitmix64: used to expand a single seed into engine state, and useful on
// its own for hashing stream ids into independent seeds.
// ECRS_NO_SANITIZE_INTEGER: the multiply-xor-shift mixing wraps mod 2^64 by
// design; -fsanitize=integer would flag every unsigned overflow here.
ECRS_NO_SANITIZE_INTEGER constexpr std::uint64_t splitmix64(
    std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** engine with convenience distributions.
class rng {
 public:
  using result_type = std::uint64_t;

  explicit rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  // Derive an independent generator for a named substream; generators for
  // different (seed, stream) pairs are statistically independent.
  // ECRS_NO_SANITIZE_INTEGER: stream-id hashing wraps by design.
  ECRS_NO_SANITIZE_INTEGER [[nodiscard]] rng fork(std::uint64_t stream) const {
    std::uint64_t mix = state_[0] ^ (stream * 0x9e3779b97f4a7c15ULL);
    return rng(splitmix64(mix));
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  // ECRS_NO_SANITIZE_INTEGER: xoshiro256** state transitions wrap mod 2^64
  // by design.
  ECRS_NO_SANITIZE_INTEGER result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [lo, hi] (inclusive). Unbiased via rejection.
  // ECRS_NO_SANITIZE_INTEGER: the [lo,hi] span is computed in uint64 with
  // intentional wrapping to cover the full-range case.
  ECRS_NO_SANITIZE_INTEGER std::int64_t uniform_int(std::int64_t lo,
                                                    std::int64_t hi) {
    ECRS_CHECK_MSG(lo <= hi, "uniform_int range [" << lo << "," << hi << "]");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
    const std::uint64_t limit = max() - max() % span;
    std::uint64_t draw;
    do {
      draw = (*this)();
    } while (draw >= limit);
    return lo + static_cast<std::int64_t>(draw % span);
  }

  // Uniform real in [lo, hi).
  double uniform_real(double lo, double hi) {
    ECRS_CHECK(lo <= hi);
    return lo + (hi - lo) * next_double();
  }

  // Uniform double in [0, 1) with 53 bits of precision.
  double next_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  bool bernoulli(double p) {
    ECRS_CHECK(p >= 0.0 && p <= 1.0);
    return next_double() < p;
  }

  // Exponential with the given rate (lambda).
  double exponential(double rate);

  // Poisson-distributed count with the given mean. Exact (Knuth) for small
  // means, normal approximation with continuity correction for large means.
  std::int64_t poisson(double mean);

  // Sample an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted_index(const std::vector<double>& weights);

  // Fisher-Yates shuffle.
  template <typename Container>
  void shuffle(Container& items) {
    if (items.size() < 2) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i)));
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  // Sample k distinct values from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  // Raw engine state, for checkpoint/restore (common/checkpoint.h): a
  // generator restored with set_state() continues the exact draw sequence.
  [[nodiscard]] const std::array<std::uint64_t, 4>& state() const {
    return state_;
  }
  void set_state(const std::array<std::uint64_t, 4>& state) {
    state_ = state;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace ecrs
