#include "common/statistics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace ecrs {

void running_stats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  // Welford's update is non-negative in exact arithmetic, but cancellation
  // in delta * (x - mean_) can push m2_ a few ulps below zero on
  // near-constant streams, and sqrt of that is NaN. Clamp at the source so
  // variance()/stddev() never see a negative second moment.
  if (m2_ < 0.0) m2_ = 0.0;
}

void running_stats::merge(const running_stats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * n2 / (n1 + n2);
  m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  if (m2_ < 0.0) m2_ = 0.0;  // same cancellation guard as add()
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void running_stats::reset() { *this = running_stats{}; }

double running_stats::mean() const {
  ECRS_CHECK_MSG(count_ > 0, "mean of empty sample");
  return mean_;
}

double running_stats::variance() const {
  ECRS_CHECK_MSG(count_ > 0, "variance of empty sample");
  return m2_ / static_cast<double>(count_);
}

double running_stats::sample_variance() const {
  ECRS_CHECK_MSG(count_ > 1, "sample variance needs >= 2 points");
  return m2_ / static_cast<double>(count_ - 1);
}

double running_stats::stddev() const { return std::sqrt(variance()); }

double running_stats::min() const {
  ECRS_CHECK_MSG(count_ > 0, "min of empty sample");
  return min_;
}

double running_stats::max() const {
  ECRS_CHECK_MSG(count_ > 0, "max of empty sample");
  return max_;
}

histogram::histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  ECRS_CHECK_MSG(hi > lo, "histogram range must be non-empty");
  ECRS_CHECK_MSG(bins > 0, "histogram needs at least one bin");
}

void histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto raw = static_cast<long>(std::floor((x - lo_) / width));
  raw = std::clamp(raw, 0L, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(raw)];
  ++total_;
}

std::size_t histogram::bin_count(std::size_t bin) const {
  ECRS_CHECK(bin < counts_.size());
  return counts_[bin];
}

double histogram::bin_lower(std::size_t bin) const {
  ECRS_CHECK(bin < counts_.size());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double histogram::bin_upper(std::size_t bin) const {
  return bin_lower(bin) + (hi_ - lo_) / static_cast<double>(counts_.size());
}

std::string histogram::to_ascii(std::size_t width) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar = counts_[b] * width / peak;
    os << "[" << bin_lower(b) << ", " << bin_upper(b) << ") ";
    for (std::size_t i = 0; i < bar; ++i) os << '#';
    os << ' ' << counts_[b] << '\n';
  }
  return os.str();
}

double percentile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  return sorted_percentile(values, q);
}

double sorted_percentile(const std::vector<double>& sorted, double q) {
  ECRS_CHECK_MSG(!sorted.empty(), "percentile of empty sample");
  ECRS_CHECK_MSG(q >= 0.0 && q <= 100.0, "percentile q out of [0,100]");
  if (sorted.size() == 1) return sorted.front();
  const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lower = static_cast<std::size_t>(std::floor(rank));
  const auto upper = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lower);
  return sorted[lower] + frac * (sorted[upper] - sorted[lower]);
}

double harmonic_number(std::size_t n) {
  double h = 0.0;
  for (std::size_t k = 1; k <= n; ++k) h += 1.0 / static_cast<double>(k);
  return h;
}

}  // namespace ecrs
