// Small reusable worker pool for embarrassingly parallel kernels.
//
// The pool owns its worker threads for its whole lifetime; `parallel_for`
// partitions an index range over the workers with a shared cursor, blocks
// until every index has been processed, and rethrows the first exception a
// worker hit (remaining indices are skipped). The calling thread drains
// indices too, so a `parallel_for` nested inside a worker still makes
// progress. Work items must write to disjoint output slots so the result is
// deterministic regardless of thread count or scheduling.
//
// `thread_pool::shared()` is a lazily constructed process-wide pool sized to
// the hardware concurrency; use it for short bursts (e.g. SSAM critical-value
// payments) instead of spawning threads per call.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"

namespace ecrs {

class thread_pool {
 public:
  // `threads == 0` sizes the pool to std::thread::hardware_concurrency()
  // (at least one worker either way).
  explicit thread_pool(std::size_t threads = 0);
  ~thread_pool();

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  // Run `fn(i)` for every i in [0, n). Blocks until all indices completed.
  // Rethrows the first exception thrown by any `fn(i)`; later indices are
  // then abandoned (already-started ones still finish). `max_workers` caps
  // the total concurrency including the calling thread (0 = pool size + 1).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    std::size_t max_workers = 0) ECRS_EXCLUDES(mutex_);

  // Process-wide pool, created on first use.
  static thread_pool& shared();

 private:
  void worker_loop() ECRS_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  mutex mutex_;
  condition_variable work_ready_;
  std::deque<std::function<void()>> tasks_ ECRS_GUARDED_BY(mutex_);
  bool stopping_ ECRS_GUARDED_BY(mutex_) = false;
};

// Convenience: `pool == nullptr` runs the loop inline on the calling thread.
void parallel_for(thread_pool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace ecrs
