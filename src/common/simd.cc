#include "common/simd.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/annotations.h"

#if defined(__x86_64__) || defined(__i386__)
#define ECRS_SIMD_X86 1
#include <immintrin.h>
#endif

namespace ecrs::simd {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Largest int64 a double represents exactly via the 2^52 bias trick; any
// chunk holding a utility beyond this is processed scalar.
constexpr std::int64_t kMaxExactUtil = (std::int64_t{1} << 52) - 1;

// ------------------------------------------------------------------ scalar

ECRS_HOT std::int64_t sum_min_scalar(const std::int64_t* vals,
                                     const std::uint32_t* idx,
                            std::size_t n, std::int64_t bound) {
  std::int64_t acc = 0;
  for (std::size_t j = 0; j < n; ++j) {
    acc += std::min(bound, vals[idx[j]]);
  }
  return acc;
}

ECRS_HOT std::int64_t consume_min_scalar(std::int64_t* vals,
                                         const std::uint32_t* idx,
                                std::size_t n, std::int64_t bound) {
  std::int64_t acc = 0;
  for (std::size_t j = 0; j < n; ++j) {
    const std::int64_t used = std::min(bound, vals[idx[j]]);
    vals[idx[j]] -= used;
    acc += used;
  }
  return acc;
}

// Fold rows [lo, hi) into `best` with the shared lexicographic update —
// also the tail/fallback path of the vector tiers, so every tier runs the
// identical per-element arithmetic.
ECRS_HOT void ratio_scan_scalar(const double* price,
                                const std::int64_t* util,
                       const std::uint32_t* seller, const char* seller_active,
                       std::size_t lo, std::size_t hi, std::uint32_t skip_index,
                       std::uint32_t skip_seller, ratio_best& best) {
  for (std::size_t j = lo; j < hi; ++j) {
    if (j == skip_index) continue;
    const std::uint32_t s = seller[j];
    if (s == skip_seller || !seller_active[s]) continue;
    const std::int64_t u = util[j];
    if (u <= 0) continue;
    const double r = price[j] / static_cast<double>(u);
    if (r < best.ratio || (r == best.ratio &&
                           static_cast<std::uint32_t>(j) < best.index)) {
      best.ratio = r;
      best.index = static_cast<std::uint32_t>(j);
    }
  }
}

ECRS_HOT ratio_best ratio_argmin_scalar(const double* price,
                                        const std::int64_t* util,
                               const std::uint32_t* seller,
                               const char* seller_active, std::size_t n,
                               std::uint32_t skip_index,
                               std::uint32_t skip_seller) {
  ratio_best best{kInf, kNoIndex};
  ratio_scan_scalar(price, util, seller, seller_active, 0, n, skip_index,
                    skip_seller, best);
  return best;
}

#if defined(ECRS_SIMD_X86)

// -------------------------------------------------------------------- SSE2
// x86-64 baseline. No 64-bit compare/min instructions exist at this tier:
// min(a, b) = b + ((a - b) & sign(a - b)), with the 64-bit arithmetic
// shift emulated by replicating each lane's high dword and shifting that —
// exact for the non-negative operands these kernels see (units are >= 0,
// so a - b cannot wrap).

inline __m128i min_epi64_sse2(__m128i a, __m128i b) {
  const __m128i diff = _mm_sub_epi64(a, b);
  const __m128i sign = _mm_srai_epi32(
      _mm_shuffle_epi32(diff, _MM_SHUFFLE(3, 3, 1, 1)), 31);
  return _mm_add_epi64(b, _mm_and_si128(diff, sign));
}

inline std::int64_t hsum_epi64_sse2(__m128i v) {
  alignas(16) std::int64_t lanes[2];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), v);
  return lanes[0] + lanes[1];
}

ECRS_HOT std::int64_t sum_min_sse2(const std::int64_t* vals,
                                   const std::uint32_t* idx,
                          std::size_t n, std::int64_t bound) {
  const __m128i b = _mm_set1_epi64x(bound);
  __m128i acc = _mm_setzero_si128();
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    const __m128i v = _mm_set_epi64x(vals[idx[j + 1]], vals[idx[j]]);
    acc = _mm_add_epi64(acc, min_epi64_sse2(v, b));
  }
  std::int64_t total = hsum_epi64_sse2(acc);
  for (; j < n; ++j) total += std::min(bound, vals[idx[j]]);
  return total;
}

ECRS_HOT std::int64_t consume_min_sse2(std::int64_t* vals,
                                       const std::uint32_t* idx,
                              std::size_t n, std::int64_t bound) {
  const __m128i b = _mm_set1_epi64x(bound);
  __m128i acc = _mm_setzero_si128();
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    const std::uint32_t i0 = idx[j];
    const std::uint32_t i1 = idx[j + 1];
    const __m128i v = _mm_set_epi64x(vals[i1], vals[i0]);
    const __m128i used = min_epi64_sse2(v, b);
    const __m128i rem = _mm_sub_epi64(v, used);
    alignas(16) std::int64_t rbuf[2];
    _mm_store_si128(reinterpret_cast<__m128i*>(rbuf), rem);
    vals[i0] = rbuf[0];
    vals[i1] = rbuf[1];
    acc = _mm_add_epi64(acc, used);
  }
  std::int64_t total = hsum_epi64_sse2(acc);
  for (; j < n; ++j) {
    const std::int64_t used = std::min(bound, vals[idx[j]]);
    vals[idx[j]] -= used;
    total += used;
  }
  return total;
}

// ECRS_NO_SANITIZE_INTEGER: the 2^52 magic-bias int64->double conversion
// and the int64 lane-index -> uint32 narrowing are exact by construction
// (guarded by kMaxExactUtil), but look like implicit-conversion findings to
// -fsanitize=integer.
ECRS_HOT ECRS_NO_SANITIZE_INTEGER ratio_best ratio_argmin_sse2(
    const double* price, const std::int64_t* util,
                             const std::uint32_t* seller,
                             const char* seller_active, std::size_t n,
                             std::uint32_t skip_index,
                             std::uint32_t skip_seller) {
  ratio_best best{kInf, kNoIndex};
  const __m128i magic_bits = _mm_set1_epi64x(0x4330000000000000LL);
  const __m128d magic = _mm_castsi128_pd(magic_bits);
  const __m128d inf = _mm_set1_pd(kInf);
  __m128d lane_best = inf;
  __m128i lane_idx = _mm_set1_epi64x(-1);

  // Per-lane liveness: byte-indexed seller liveness and the skip rules have
  // no vector form at this tier, so the predicate (and the exact-conversion
  // guard) is evaluated scalar and folded into one lane mask.
  auto lane_ok = [&](std::size_t jj) -> long long {
    if (jj == skip_index) return 0;
    const std::uint32_t s = seller[jj];
    if (s == skip_seller || !seller_active[s]) return 0;
    return util[jj] > 0 ? -1LL : 0LL;
  };

  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    if (util[j] > kMaxExactUtil || util[j + 1] > kMaxExactUtil) {
      ratio_scan_scalar(price, util, seller, seller_active, j, j + 2,
                        skip_index, skip_seller, best);
      continue;
    }
    const __m128i mask = _mm_set_epi64x(lane_ok(j + 1), lane_ok(j));
    if (_mm_movemask_epi8(mask) == 0) continue;
    // util <= 0 lanes are masked, so clamping to 0 before the biased
    // conversion only changes dead lanes (avoids a garbage mantissa OR).
    const __m128i u = _mm_and_si128(
        _mm_set_epi64x(util[j + 1], util[j]), mask);
    const __m128d ud = _mm_sub_pd(_mm_castsi128_pd(_mm_or_si128(u, magic_bits)),
                                  magic);
    const __m128d p = _mm_loadu_pd(price + j);
    const __m128d maskd = _mm_castsi128_pd(mask);
    __m128d r = _mm_div_pd(p, ud);
    r = _mm_or_pd(_mm_and_pd(maskd, r), _mm_andnot_pd(maskd, inf));
    const __m128d lt = _mm_cmplt_pd(r, lane_best);
    lane_best = _mm_or_pd(_mm_and_pd(lt, r), _mm_andnot_pd(lt, lane_best));
    const __m128i lti = _mm_castpd_si128(lt);
    const __m128i cur =
        _mm_set_epi64x(static_cast<long long>(j + 1), static_cast<long long>(j));
    lane_idx = _mm_or_si128(_mm_and_si128(lti, cur),
                            _mm_andnot_si128(lti, lane_idx));
  }
  ratio_scan_scalar(price, util, seller, seller_active, j, n, skip_index,
                    skip_seller, best);

  alignas(16) double rbuf[2];
  alignas(16) std::int64_t ibuf[2];
  _mm_store_pd(rbuf, lane_best);
  _mm_store_si128(reinterpret_cast<__m128i*>(ibuf), lane_idx);
  for (int k = 0; k < 2; ++k) {
    if (ibuf[k] < 0) continue;
    const auto cand = static_cast<std::uint32_t>(ibuf[k]);
    if (rbuf[k] < best.ratio || (rbuf[k] == best.ratio && cand < best.index)) {
      best.ratio = rbuf[k];
      best.index = cand;
    }
  }
  return best;
}

// -------------------------------------------------------------------- AVX2
// Compiled with a per-function target attribute so the rest of the binary
// stays at the baseline ISA; only reached when detection says the CPU has
// AVX2.

__attribute__((target("avx2"))) ECRS_HOT inline __m256i min_epi64_avx2(
    __m256i a, __m256i b) {
  return _mm256_blendv_epi8(a, b, _mm256_cmpgt_epi64(a, b));
}

__attribute__((target("avx2"))) ECRS_HOT inline std::int64_t hsum_epi64_avx2(
    __m256i v) {
  alignas(32) std::int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), v);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

__attribute__((target("avx2"))) ECRS_HOT std::int64_t sum_min_avx2(
    const std::int64_t* vals, const std::uint32_t* idx, std::size_t n,
    std::int64_t bound) {
  const __m256i b = _mm256_set1_epi64x(bound);
  __m256i acc = _mm256_setzero_si256();
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m128i vi =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + j));
    const __m256i g = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(vals), vi, 8);
    acc = _mm256_add_epi64(acc, min_epi64_avx2(g, b));
  }
  std::int64_t total = hsum_epi64_avx2(acc);
  for (; j < n; ++j) total += std::min(bound, vals[idx[j]]);
  return total;
}

__attribute__((target("avx2"))) ECRS_HOT std::int64_t consume_min_avx2(
    std::int64_t* vals, const std::uint32_t* idx, std::size_t n,
    std::int64_t bound) {
  const __m256i b = _mm256_set1_epi64x(bound);
  __m256i acc = _mm256_setzero_si256();
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m128i vi =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + j));
    const __m256i g = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(vals), vi, 8);
    const __m256i used = min_epi64_avx2(g, b);
    const __m256i rem = _mm256_sub_epi64(g, used);
    // No 64-bit scatter below AVX-512: four scalar stores. Distinct indices
    // (kernel contract) make the gather+store round-trip exact.
    alignas(32) std::int64_t rbuf[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(rbuf), rem);
    vals[idx[j]] = rbuf[0];
    vals[idx[j + 1]] = rbuf[1];
    vals[idx[j + 2]] = rbuf[2];
    vals[idx[j + 3]] = rbuf[3];
    acc = _mm256_add_epi64(acc, used);
  }
  std::int64_t total = hsum_epi64_avx2(acc);
  for (; j < n; ++j) {
    const std::int64_t used = std::min(bound, vals[idx[j]]);
    vals[idx[j]] -= used;
    total += used;
  }
  return total;
}

// ECRS_NO_SANITIZE_INTEGER: same exact-by-construction 2^52 bias
// conversions as the SSE2 kernel.
__attribute__((target("avx2"))) ECRS_HOT ECRS_NO_SANITIZE_INTEGER ratio_best
ratio_argmin_avx2(
    const double* price, const std::int64_t* util, const std::uint32_t* seller,
    const char* seller_active, std::size_t n, std::uint32_t skip_index,
    std::uint32_t skip_seller) {
  ratio_best best{kInf, kNoIndex};
  const __m256i magic_bits = _mm256_set1_epi64x(0x4330000000000000LL);
  const __m256d magic = _mm256_castsi256_pd(magic_bits);
  const __m256d inf = _mm256_set1_pd(kInf);
  __m256d lane_best = inf;
  __m256i lane_idx = _mm256_set1_epi64x(-1);
  const __m256i iota = _mm256_set_epi64x(3, 2, 1, 0);

  auto lane_ok = [&](std::size_t jj) -> long long {
    if (jj == skip_index) return 0;
    const std::uint32_t s = seller[jj];
    if (s == skip_seller || !seller_active[s]) return 0;
    return -1LL;
  };

  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256i u =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(util + j));
    // Exact-conversion guard: any utility >= 2^52 sends the chunk scalar.
    if (_mm256_movemask_pd(_mm256_castsi256_pd(
            _mm256_cmpgt_epi64(u, _mm256_set1_epi64x(kMaxExactUtil))))) {
      ratio_scan_scalar(price, util, seller, seller_active, j, j + 4,
                        skip_index, skip_seller, best);
      continue;
    }
    // Liveness: util > 0 vectorized; the byte-indexed seller liveness and
    // skip rules have no vector form, so they fold in scalar per lane.
    const __m256i live =
        _mm256_set_epi64x(lane_ok(j + 3), lane_ok(j + 2), lane_ok(j + 1),
                          lane_ok(j));
    const __m256i mask = _mm256_and_si256(
        _mm256_cmpgt_epi64(u, _mm256_setzero_si256()), live);
    if (_mm256_testz_si256(mask, mask)) continue;
    const __m256d ud = _mm256_sub_pd(
        _mm256_castsi256_pd(
            _mm256_or_si256(_mm256_and_si256(u, mask), magic_bits)),
        magic);
    const __m256d p = _mm256_loadu_pd(price + j);
    __m256d r = _mm256_div_pd(p, ud);
    // Dead lanes become +inf so a 0/0 NaN never reaches the compare.
    r = _mm256_blendv_pd(inf, r, _mm256_castsi256_pd(mask));
    const __m256d lt = _mm256_cmp_pd(r, lane_best, _CMP_LT_OQ);
    lane_best = _mm256_blendv_pd(lane_best, r, lt);
    const __m256i cur =
        _mm256_add_epi64(_mm256_set1_epi64x(static_cast<long long>(j)), iota);
    lane_idx = _mm256_blendv_epi8(lane_idx, cur, _mm256_castpd_si256(lt));
  }
  ratio_scan_scalar(price, util, seller, seller_active, j, n, skip_index,
                    skip_seller, best);

  alignas(32) double rbuf[4];
  alignas(32) std::int64_t ibuf[4];
  _mm256_store_pd(rbuf, lane_best);
  _mm256_store_si256(reinterpret_cast<__m256i*>(ibuf), lane_idx);
  for (int k = 0; k < 4; ++k) {
    if (ibuf[k] < 0) continue;
    const auto cand = static_cast<std::uint32_t>(ibuf[k]);
    if (rbuf[k] < best.ratio || (rbuf[k] == best.ratio && cand < best.index)) {
      best.ratio = rbuf[k];
      best.index = cand;
    }
  }
  return best;
}

#endif  // ECRS_SIMD_X86

// --------------------------------------------------------------- dispatch

constexpr kernel_table kScalarTable{level::scalar, sum_min_scalar,
                                    consume_min_scalar, ratio_argmin_scalar};
#if defined(ECRS_SIMD_X86)
constexpr kernel_table kSse2Table{level::sse2, sum_min_sse2, consume_min_sse2,
                                  ratio_argmin_sse2};
constexpr kernel_table kAvx2Table{level::avx2, sum_min_avx2, consume_min_avx2,
                                  ratio_argmin_avx2};
#endif

level detect() {
#if defined(ECRS_SIMD_X86)
  return __builtin_cpu_supports("avx2") ? level::avx2 : level::sse2;
#else
  return level::scalar;
#endif
}

const kernel_table& table_for(level l) {
#if defined(ECRS_SIMD_X86)
  switch (l) {
    case level::avx2: return kAvx2Table;
    case level::sse2: return kSse2Table;
    case level::scalar: break;
  }
#else
  (void)l;
#endif
  return kScalarTable;
}

level clamp_to_support(level l) { return std::min(l, detect()); }

level env_level() {
  const char* env = std::getenv("ECRS_SIMD");
  if (env == nullptr) return detect();
  if (std::strcmp(env, "off") == 0 || std::strcmp(env, "scalar") == 0 ||
      std::strcmp(env, "0") == 0) {
    return level::scalar;
  }
  if (std::strcmp(env, "sse2") == 0) return clamp_to_support(level::sse2);
  if (std::strcmp(env, "avx2") == 0) return clamp_to_support(level::avx2);
  return detect();  // unknown value: auto
}

std::atomic<const kernel_table*> g_active{nullptr};

}  // namespace

const char* to_string(level l) {
  switch (l) {
    case level::scalar: return "scalar";
    case level::sse2: return "sse2";
    case level::avx2: return "avx2";
  }
  return "unknown";
}

const kernel_table& active() {
  const kernel_table* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    // Benign race: concurrent first calls resolve the same env/CPU answer.
    table = &table_for(env_level());
    g_active.store(table, std::memory_order_release);
  }
  return *table;
}

level active_level() { return active().tier; }

level max_supported() { return detect(); }

level force(level l) {
  const kernel_table& table = table_for(clamp_to_support(l));
  g_active.store(&table, std::memory_order_release);
  return table.tier;
}

}  // namespace ecrs::simd
