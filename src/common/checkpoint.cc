#include "common/checkpoint.h"

#include <bit>
#include <cstdio>
#include <memory>

#include "common/check.h"

namespace ecrs {
namespace {

// Header layout (40 bytes): magic u64, version u32, pad u32 (zero),
// config_hash u64, payload_size u64, fnv1a64(payload) u64.
constexpr std::size_t kHeaderBytes = 40;

struct file_closer {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using unique_file = std::unique_ptr<std::FILE, file_closer>;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

ECRS_NO_SANITIZE_INTEGER std::uint64_t fnv1a64(
    std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

void checkpoint_writer::u32(std::uint32_t v) { put_u32(buf_, v); }

void checkpoint_writer::u64(std::uint64_t v) { put_u64(buf_, v); }

void checkpoint_writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

std::uint8_t checkpoint_reader::u8() {
  ECRS_CHECK_MSG(pos_ + 1 <= data_.size(), "checkpoint payload overrun");
  return data_[pos_++];
}

std::uint32_t checkpoint_reader::u32() {
  ECRS_CHECK_MSG(pos_ + 4 <= data_.size(), "checkpoint payload overrun");
  const std::uint32_t v = get_u32(data_.data() + pos_);
  pos_ += 4;
  return v;
}

std::uint64_t checkpoint_reader::u64() {
  ECRS_CHECK_MSG(pos_ + 8 <= data_.size(), "checkpoint payload overrun");
  const std::uint64_t v = get_u64(data_.data() + pos_);
  pos_ += 8;
  return v;
}

double checkpoint_reader::f64() { return std::bit_cast<double>(u64()); }

void save_checkpoint_file(const std::string& path, std::uint64_t config_hash,
                          std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> header;
  header.reserve(kHeaderBytes);
  put_u64(header, kCheckpointMagic);
  put_u32(header, kCheckpointVersion);
  put_u32(header, 0);  // pad, keeps every field 8-byte aligned
  put_u64(header, config_hash);
  put_u64(header, static_cast<std::uint64_t>(payload.size()));
  put_u64(header, fnv1a64(payload));

  unique_file f(std::fopen(path.c_str(), "wb"));
  ECRS_CHECK_MSG(f != nullptr, "cannot open checkpoint file '" << path
                                                               << "' for writing");
  const std::size_t wrote_header =
      std::fwrite(header.data(), 1, header.size(), f.get());
  const std::size_t wrote_payload =
      payload.empty() ? 0
                      : std::fwrite(payload.data(), 1, payload.size(), f.get());
  ECRS_CHECK_MSG(wrote_header == header.size() &&
                     wrote_payload == payload.size(),
                 "short write to checkpoint file '" << path << "'");
  ECRS_CHECK_MSG(std::fflush(f.get()) == 0,
                 "cannot flush checkpoint file '" << path << "'");
}

std::vector<std::uint8_t> load_checkpoint_file(
    const std::string& path, std::uint64_t expected_config_hash) {
  unique_file f(std::fopen(path.c_str(), "rb"));
  ECRS_CHECK_MSG(f != nullptr,
                 "cannot open checkpoint file '" << path << "'");

  std::uint8_t header[kHeaderBytes];
  const std::size_t got = std::fread(header, 1, kHeaderBytes, f.get());
  ECRS_CHECK_MSG(got == kHeaderBytes,
                 "checkpoint file '" << path << "' truncated: " << got
                                     << " header bytes of " << kHeaderBytes);

  const std::uint64_t magic = get_u64(header);
  ECRS_CHECK_MSG(magic == kCheckpointMagic,
                 "'" << path << "' is not an ECRS checkpoint (bad magic)");
  const std::uint32_t version = get_u32(header + 8);
  ECRS_CHECK_MSG(version == kCheckpointVersion,
                 "checkpoint '" << path << "' has format version " << version
                                << ", this build reads "
                                << kCheckpointVersion);
  const std::uint64_t config_hash = get_u64(header + 16);
  ECRS_CHECK_MSG(config_hash == expected_config_hash,
                 "checkpoint '" << path
                                << "' was written by a daemon with a "
                                   "different configuration");
  const std::uint64_t declared = get_u64(header + 24);
  const std::uint64_t checksum = get_u64(header + 32);

  std::vector<std::uint8_t> payload(static_cast<std::size_t>(declared));
  const std::size_t read =
      payload.empty() ? 0 : std::fread(payload.data(), 1, payload.size(), f.get());
  ECRS_CHECK_MSG(read == payload.size(),
                 "checkpoint '" << path << "' truncated: " << read
                                << " payload bytes of " << declared);
  // Trailing garbage would also mean the container is not what save wrote.
  std::uint8_t extra = 0;
  ECRS_CHECK_MSG(std::fread(&extra, 1, 1, f.get()) == 0,
                 "checkpoint '" << path << "' carries trailing bytes");
  ECRS_CHECK_MSG(fnv1a64(payload) == checksum,
                 "checkpoint '" << path << "' failed its checksum");
  return payload;
}

}  // namespace ecrs
