#include "common/table.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/check.h"

namespace ecrs {

table::table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  ECRS_CHECK_MSG(!columns_.empty(), "a table needs at least one column");
}

void table::add_row(std::vector<cell> row) {
  ECRS_CHECK_MSG(row.size() == columns_.size(),
                 "row has " << row.size() << " cells, table has "
                            << columns_.size() << " columns");
  rows_.push_back(std::move(row));
}

void table::set_precision(int digits) {
  ECRS_CHECK(digits >= 0 && digits <= 17);
  precision_ = digits;
}

std::string table::render(const cell& c) const {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* i = std::get_if<long long>(&c)) return std::to_string(*i);
  std::ostringstream os;
  os << std::setprecision(precision_) << std::get<double>(c);
  return os.str();
}

std::string table::text_at(std::size_t row, std::size_t col) const {
  ECRS_CHECK(row < rows_.size() && col < columns_.size());
  return render(rows_[row][col]);
}

double table::number_at(std::size_t row, std::size_t col) const {
  ECRS_CHECK(row < rows_.size() && col < columns_.size());
  const cell& c = rows_[row][col];
  if (const auto* d = std::get_if<double>(&c)) return *d;
  if (const auto* i = std::get_if<long long>(&c))
    return static_cast<double>(*i);
  return std::stod(std::get<std::string>(c));
}

std::string table::to_ascii() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c)
    widths[c] = columns_[c].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(render(row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }

  std::ostringstream os;
  auto rule = [&] {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      os << '+' << std::string(widths[c] + 2, '-');
    }
    os << "+\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "| " << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c] << ' ';
    }
    os << "|\n";
  };
  rule();
  line(columns_);
  rule();
  for (const auto& row : rendered) line(row);
  rule();
  return os.str();
}

std::string table::to_csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c) os << ',';
    os << csv_escape(columns_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(render(row[c]));
    }
    os << '\n';
  }
  return os.str();
}

void table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  ECRS_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  out << to_csv();
}

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace ecrs
