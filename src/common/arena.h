// Chunked bump-pointer arena for hot-path scratch memory.
//
// The SSAM critical-value fan-out needs one block of per-winner probe
// buffers per call (auction/ssam.cc probe_slot): short-lived, trivially
// destructible, all freed together when the call returns. A bump allocator
// serves that pattern with a pointer increment per allocation and zero
// per-object bookkeeping:
//
//  - allocate() bumps a cursor through a list of malloc'd blocks, appending
//    a geometrically grown block only when the existing ones are exhausted
//    — so once an arena has seen its largest call, later calls never touch
//    the system allocator again (0 steady-state allocations);
//  - scope (RAII over save()/rewind()) frees everything allocated since its
//    construction by moving the cursor back. Scopes must nest LIFO — the
//    natural shape of call-scoped scratch. Blocks are never returned to the
//    system until the arena is destroyed;
//  - for_thread() returns the calling thread's private arena. Hot paths
//    carve from it at call entry instead of owning buffers, which keeps
//    workspaces usable from any thread: memory carved by thread A may be
//    READ/WRITTEN by other threads (it is plain memory), but allocate()/
//    rewind() on one arena must stay on its owning thread.
//
// Objects placed in an arena are never destroyed, only abandoned —
// alloc_array therefore requires trivially destructible element types and
// returns UNINITIALIZED storage.
#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/annotations.h"

namespace ecrs {

class arena {
 public:
  arena() = default;
  arena(const arena&) = delete;
  arena& operator=(const arena&) = delete;
  arena(arena&&) noexcept = default;
  arena& operator=(arena&&) noexcept = default;

  // Raw bytes, aligned to `alignment` (a power of two). Never returns
  // nullptr; grows the arena when the current blocks are exhausted. The
  // fast path is a bump; growth lives in grow(), an audited cold branch.
  [[nodiscard]] ECRS_HOT void* allocate(std::size_t bytes,
                                        std::size_t alignment);

  // `count` default-uninitialized T slots. T must be trivially destructible
  // (arena storage is abandoned, never destroyed).
  template <typename T>
  [[nodiscard]] ECRS_HOT T* alloc_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage is never destroyed");
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  // Cursor checkpointing. rewind() abandons everything allocated after the
  // matching save(); marks must be rewound in LIFO order.
  struct mark {
    std::size_t block = 0;
    std::size_t offset = 0;
  };
  [[nodiscard]] ECRS_HOT mark save() const { return {block_, offset_}; }
  ECRS_HOT void rewind(mark m) {
    block_ = m.block;
    offset_ = m.offset;
  }

  // RAII rewind: everything allocated inside the scope is freed (abandoned)
  // when it closes.
  class scope {
   public:
    explicit scope(arena& a) : arena_(a), mark_(a.save()) {}
    ~scope() { arena_.rewind(mark_); }
    scope(const scope&) = delete;
    scope& operator=(const scope&) = delete;

   private:
    arena& arena_;
    mark mark_;
  };

  // Abandon everything; keeps all blocks for reuse.
  void reset() { rewind(mark{}); }

  [[nodiscard]] std::size_t capacity() const;        // bytes across blocks
  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }

  // The calling thread's private arena (thread_local). See the header
  // banner for the cross-thread rules.
  [[nodiscard]] static arena& for_thread();

 private:
  // ECRS_HOT_ESCAPE: appends a geometrically grown block. Amortized away —
  // once the arena has seen its largest call this branch never runs again,
  // so allocate() stays steady-state allocation-free.
  ECRS_HOT_ESCAPE void* grow(std::size_t bytes, std::size_t alignment);

  struct block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };
  // The cursor and block list are confined to the owning thread (see the
  // banner: carved memory may cross threads, allocate()/rewind() may not).
  ECRS_THREAD_OWNED("arena owner thread") std::vector<block> blocks_;
  ECRS_THREAD_OWNED("arena owner thread") std::size_t block_ = 0;
  ECRS_THREAD_OWNED("arena owner thread") std::size_t offset_ = 0;
};

}  // namespace ecrs
