// Driver for the sharded multi-region marketplace (DESIGN.md §12): runs a
// regional online market — one warm msoa_session shard per ring-backhaul
// region plus the cross-region spillover stage — and tabulates per-round
// totals. Determinism matches the sweep drivers: the whole input derives
// from one rng fork chain, each shard's stream from (seed, region), and
// the marketplace reduces serially in region order, so the table is
// byte-identical at any thread count.
//
// Two demand paths share the mechanism:
//  - batch (default): each round's requirements come pre-drawn from
//    auction::random_regional_online_instance;
//  - streaming (cfg.streaming): a workload::generator request stream is
//    quantized into the per-region instances by market::round_ingestor —
//    the ~1M-demander path, no global instance ever materialized.
#include <utility>
#include <vector>

#include "auction/instance_gen.h"
#include "common/check.h"
#include "edge/topology.h"
#include "harness/experiments.h"
#include "harness/internal.h"
#include "market/ingest.h"
#include "market/marketplace.h"
#include "workload/generator.h"

namespace ecrs::harness {
namespace {

// Figure tag of this driver in the (seed, figure, point, trial) fork chain
// (DESIGN.md section number; no paper figure exists for the extension).
constexpr std::uint64_t kMarketFigure = 12;

}  // namespace

table marketplace_rounds(const marketplace_config& cfg) {
  ECRS_CHECK_MSG(cfg.regions >= 1, "need at least one region");
  ECRS_CHECK_MSG(cfg.rounds >= 1, "need at least one round");

  // Input: independent per-region online instances with demand re-inflated
  // past local supply, on a unit-latency ring backhaul.
  auction::online_config stage;
  stage.stage = internal::paper_stage(cfg.sellers_per_region,
                                      cfg.demanders_per_region,
                                      /*bids_per_seller=*/2);
  stage.rounds = cfg.rounds;
  auction::regional_config regional;
  regional.regions = cfg.regions;
  // Streaming mode scales demand through the ingestor's quantization; the
  // pre-drawn requirements are overwritten anyway.
  regional.demand_scale = cfg.streaming ? 1.0 : cfg.demand_scale;
  rng gen = internal::point_rng(cfg.seed, kMarketFigure, 0, 0);
  const auction::regional_online_instance input =
      auction::random_regional_online_instance(stage, regional, gen);
  input.validate();

  edge::topology topo =
      edge::topology::ring(static_cast<std::uint32_t>(cfg.regions));

  market::marketplace_options options;
  options.threads = cfg.threads;
  // The marketplace already fans out across shards; per-round payment
  // probes stay on the shard's thread (results identical either way).
  options.shard.session.stage.payment_threads = 1;
  options.spillover.stage.payment_threads = 1;

  std::vector<std::vector<auction::seller_profile>> sellers;
  sellers.reserve(cfg.regions);
  for (const auction::online_instance& region : input.regions) {
    sellers.push_back(region.sellers);
  }
  market::marketplace mkt(topo, std::move(sellers), options);

  // Streaming path state: the generator's request stream and the ingestor
  // owning the standing (round-1) bid sets.
  std::vector<market::round_ingestor> ingestor;  // 0 or 1 elements
  std::vector<workload::generator> stream;       // 0 or 1 elements
  std::vector<workload::request> batch;
  if (cfg.streaming) {
    auction::regional_instance standing;
    standing.regions.reserve(cfg.regions);
    for (const auction::online_instance& region : input.regions) {
      ECRS_CHECK_MSG(!region.rounds.empty(), "streaming needs round 1 bids");
      standing.regions.push_back(region.rounds.front());
    }
    market::ingest_config icfg;
    icfg.regions = static_cast<std::uint32_t>(cfg.regions);
    icfg.microservices =
        static_cast<std::uint32_t>(cfg.regions * cfg.demanders_per_region);
    icfg.unit_demand = cfg.unit_demand;
    icfg.max_requirement = stage.stage.requirement_hi;
    icfg.supply_margin = stage.stage.supply_margin;
    icfg.demand_scale = cfg.demand_scale;
    icfg.threads = cfg.threads;
    ingestor.emplace_back(icfg, std::move(standing));

    workload::generator_config wcfg;
    wcfg.users = cfg.users;
    wcfg.microservices = icfg.microservices;
    wcfg.regions = icfg.regions;
    wcfg.seed = cfg.seed;
    stream.emplace_back(wcfg);
  }

  std::vector<std::string> columns = {
      "round",        "social_cost",   "payment",     "spill_requests",
      "spill_awards", "spill_granted", "unmet_units", "feasible"};
  if (cfg.perf_columns) {
    columns.push_back("allocs_per_round");
    columns.push_back("spill_assembly_ms");
  }
  table out(std::move(columns));
  auction::regional_instance round;
  if (!cfg.streaming) round.regions.resize(cfg.regions);
  market::marketplace_round result;
  for (std::size_t t = 0; t < cfg.rounds; ++t) {
    const std::uint64_t allocs_before =
        cfg.alloc_count != nullptr ? cfg.alloc_count() : 0;
    if (cfg.streaming) {
      stream.front().round_into(static_cast<double>(t), 1.0, batch);
      mkt.run_round(ingestor.front().ingest(batch), result);
    } else {
      for (std::size_t r = 0; r < cfg.regions; ++r) {
        round.regions[r] = input.regions[r].rounds[t];
      }
      mkt.run_round(round, result);
    }
    const std::uint64_t allocs_after =
        cfg.alloc_count != nullptr ? cfg.alloc_count() : 0;

    auction::units granted = 0;
    for (const market::region_spill& spill : result.spillover.regions) {
      granted += spill.granted;
    }
    std::vector<table::cell> row = {
        static_cast<long long>(result.round), result.social_cost,
        result.total_payment,
        static_cast<long long>(result.spillover.regions.size()),
        static_cast<long long>(result.spillover.awards.size()),
        static_cast<long long>(granted),
        static_cast<long long>(result.unmet_units),
        std::string(result.feasible ? "yes" : "no")};
    if (cfg.perf_columns) {
      row.push_back(static_cast<long long>(allocs_after - allocs_before));
      row.push_back(mkt.last_timing().spill_assembly_ms);
    }
    out.add_row(std::move(row));
  }
  return out;
}

}  // namespace ecrs::harness
