// Driver for the sharded multi-region marketplace (DESIGN.md §12): runs a
// regional online market — one warm msoa_session shard per ring-backhaul
// region plus the cross-region spillover stage — and tabulates per-round
// totals. Determinism matches the sweep drivers: the whole input derives
// from one rng fork chain, each shard's stream from (seed, region), and
// the marketplace reduces serially in region order, so the table is
// byte-identical at any thread count.
#include <utility>
#include <vector>

#include "auction/instance_gen.h"
#include "common/check.h"
#include "edge/topology.h"
#include "harness/experiments.h"
#include "harness/internal.h"
#include "market/marketplace.h"

namespace ecrs::harness {
namespace {

// Figure tag of this driver in the (seed, figure, point, trial) fork chain
// (DESIGN.md section number; no paper figure exists for the extension).
constexpr std::uint64_t kMarketFigure = 12;

}  // namespace

table marketplace_rounds(const marketplace_config& cfg) {
  ECRS_CHECK_MSG(cfg.regions >= 1, "need at least one region");
  ECRS_CHECK_MSG(cfg.rounds >= 1, "need at least one round");

  // Input: independent per-region online instances with demand re-inflated
  // past local supply, on a unit-latency ring backhaul.
  auction::online_config stage;
  stage.stage = internal::paper_stage(cfg.sellers_per_region,
                                      cfg.demanders_per_region,
                                      /*bids_per_seller=*/2);
  stage.rounds = cfg.rounds;
  auction::regional_config regional;
  regional.regions = cfg.regions;
  regional.demand_scale = cfg.demand_scale;
  rng gen = internal::point_rng(cfg.seed, kMarketFigure, 0, 0);
  const auction::regional_online_instance input =
      auction::random_regional_online_instance(stage, regional, gen);
  input.validate();

  edge::topology topo =
      edge::topology::ring(static_cast<std::uint32_t>(cfg.regions));

  market::marketplace_options options;
  options.threads = cfg.threads;
  // The marketplace already fans out across shards; per-round payment
  // probes stay on the shard's thread (results identical either way).
  options.shard.session.stage.payment_threads = 1;
  options.spillover.stage.payment_threads = 1;

  std::vector<std::vector<auction::seller_profile>> sellers;
  sellers.reserve(cfg.regions);
  for (const auction::online_instance& region : input.regions) {
    sellers.push_back(region.sellers);
  }
  market::marketplace mkt(topo, std::move(sellers), options);

  table out({"round", "social_cost", "payment", "spill_requests",
             "spill_awards", "spill_granted", "unmet_units", "feasible"});
  auction::regional_instance round;
  round.regions.resize(cfg.regions);
  market::marketplace_round result;
  for (std::size_t t = 0; t < cfg.rounds; ++t) {
    for (std::size_t r = 0; r < cfg.regions; ++r) {
      round.regions[r] = input.regions[r].rounds[t];
    }
    mkt.run_round(round, result);

    auction::units granted = 0;
    for (const market::region_spill& spill : result.spillover.regions) {
      granted += spill.granted;
    }
    out.add_row({static_cast<long long>(result.round), result.social_cost,
                 result.total_payment,
                 static_cast<long long>(result.spillover.regions.size()),
                 static_cast<long long>(result.spillover.awards.size()),
                 static_cast<long long>(granted),
                 static_cast<long long>(result.unmet_units),
                 std::string(result.feasible ? "yes" : "no")});
  }
  return out;
}

}  // namespace ecrs::harness
