// Drivers for the single-stage (SSAM) figures: 3(a), 3(b), 4(a), 4(b).
#include <string>

#include "auction/exact.h"
#include "auction/instance_gen.h"
#include "auction/ssam.h"
#include "common/stopwatch.h"
#include "harness/experiments.h"
#include "harness/internal.h"
#include "metrics/metrics.h"

namespace ecrs::harness {

namespace internal {

reference_cost single_stage_reference(
    const auction::single_stage_instance& instance, std::size_t node_limit) {
  const auction::reference_solution ref =
      auction::solve_exact(instance, node_limit);
  reference_cost out;
  if (ref.exact && ref.feasible) {
    out.value = ref.cost;
    out.exact = true;
  } else {
    out.value = ref.lower_bound > 0.0 ? ref.lower_bound
                                      : auction::lp_bound(instance);
    out.exact = false;
  }
  return out;
}

}  // namespace internal

table fig3a_ssam_ratio(const sweep_config& cfg,
                       const std::vector<std::size_t>& seller_counts) {
  table out({"microservices", "bids_per_seller", "ratio_mean", "ratio_max",
             "bound_WXi", "exact_frac", "trials", "ratio_ci95"});
  std::uint64_t point = 0;
  for (const std::size_t j : {std::size_t{1}, std::size_t{2}}) {
    for (const std::size_t n : seller_counts) {
      metrics::trial_accumulator acc;
      running_stats bound;
      std::size_t exact_count = 0;
      for (std::size_t trial = 0; trial < cfg.trials; ++trial) {
        rng gen = internal::point_rng(cfg.seed, 31, point, trial);
        const auto instance = auction::random_instance(
            internal::paper_stage(n, cfg.demanders, j), gen);
        const auction::ssam_result res = auction::run_ssam(instance);
        const auto ref = internal::single_stage_reference(instance);
        acc.add_trial(res.social_cost, res.total_payment, ref.value);
        bound.add(res.ratio_bound);
        if (ref.exact) ++exact_count;
      }
      out.add_row({static_cast<long long>(n), static_cast<long long>(j),
                   acc.mean_ratio(), acc.max_ratio(), bound.mean(),
                   static_cast<double>(exact_count) /
                       static_cast<double>(cfg.trials),
                   static_cast<long long>(cfg.trials), acc.ratio_ci95()});
      ++point;
    }
  }
  return out;
}

table fig3b_ssam_cost(const sweep_config& cfg,
                      const std::vector<std::size_t>& seller_counts,
                      const std::vector<std::size_t>& request_loads) {
  table out({"microservices", "requests", "social_cost", "payment",
             "optimal_cost", "trials"});
  std::uint64_t point = 0;
  for (const std::size_t load : request_loads) {
    for (const std::size_t n : seller_counts) {
      metrics::trial_accumulator acc;
      for (std::size_t trial = 0; trial < cfg.trials; ++trial) {
        rng gen = internal::point_rng(cfg.seed, 32, point, trial);
        const auto instance = auction::random_instance(
            internal::paper_stage(n, cfg.demanders, 2, load), gen);
        const auction::ssam_result res = auction::run_ssam(instance);
        const auto ref = internal::single_stage_reference(instance);
        acc.add_trial(res.social_cost, res.total_payment, ref.value);
      }
      out.add_row({static_cast<long long>(n), static_cast<long long>(load),
                   acc.mean_cost(), acc.mean_payment(), acc.mean_reference(),
                   static_cast<long long>(cfg.trials)});
      ++point;
    }
  }
  return out;
}

table fig4a_individual_rationality(std::uint64_t seed, std::size_t sellers) {
  table out({"winner", "seller", "actual_price", "payment", "surplus"});
  rng gen = internal::point_rng(seed, 41, 0, 0);
  const auto instance =
      auction::random_instance(internal::paper_stage(sellers, 5, 2), gen);
  const auction::ssam_result res = auction::run_ssam(instance);
  long long pos = 0;
  for (const auction::winning_bid& w : res.winners) {
    const auction::bid& b = instance.bids[w.bid_index];
    out.add_row({pos++, static_cast<long long>(b.seller), b.price, w.payment,
                 w.payment - b.price});
  }
  return out;
}

table fig4b_runtime(const sweep_config& cfg,
                    const std::vector<std::size_t>& seller_counts,
                    const std::vector<std::size_t>& request_loads) {
  table out({"microservices", "requests", "runtime_ms_mean", "runtime_ms_max",
             "winners_mean", "trials"});
  std::uint64_t point = 0;
  for (const std::size_t load : request_loads) {
    for (const std::size_t n : seller_counts) {
      running_stats runtime;
      running_stats winners;
      for (std::size_t trial = 0; trial < cfg.trials; ++trial) {
        rng gen = internal::point_rng(cfg.seed, 42, point, trial);
        const auto instance = auction::random_instance(
            internal::paper_stage(n, cfg.demanders, 2, load), gen);
        stopwatch clock;
        const auction::ssam_result res = auction::run_ssam(instance);
        runtime.add(clock.elapsed_ms());
        winners.add(static_cast<double>(res.winners.size()));
      }
      out.add_row({static_cast<long long>(n), static_cast<long long>(load),
                   runtime.mean(), runtime.max(), winners.mean(),
                   static_cast<long long>(cfg.trials)});
      ++point;
    }
  }
  return out;
}

}  // namespace ecrs::harness
