// Drivers for the single-stage (SSAM) figures: 3(a), 3(b), 4(a), 4(b).
//
// The sweep drivers fan their (point, trial) cells across the shared thread
// pool via harness::sweep_runner; every cell derives its RNG stream from the
// same (seed, figure, point, trial) fork chain the serial loops used, and
// reduction happens in serial point/trial order, so the tables are
// byte-identical at any thread count (sweep_test enforces this).
#include <string>

#include "auction/exact.h"
#include "auction/instance_gen.h"
#include "auction/ssam.h"
#include "common/stopwatch.h"
#include "harness/experiments.h"
#include "harness/internal.h"
#include "harness/sweep.h"
#include "metrics/metrics.h"

namespace ecrs::harness {

namespace internal {

reference_cost single_stage_reference(
    const auction::single_stage_instance& instance, std::size_t node_limit) {
  const auction::reference_solution ref =
      auction::solve_exact(instance, node_limit);
  reference_cost out;
  if (ref.exact && ref.feasible) {
    out.value = ref.cost;
    out.exact = true;
  } else {
    out.value = ref.lower_bound > 0.0 ? ref.lower_bound
                                      : auction::lp_bound(instance);
    out.exact = false;
  }
  return out;
}

}  // namespace internal

namespace {

// Per-cell SSAM options for swept drivers: payments stay on the calling
// thread — the sweep already keeps every core busy with whole cells, and
// nested fan-out would only add contention. Values are identical either way.
auction::ssam_options sweep_stage_options() {
  auction::ssam_options options;
  options.payment_threads = 1;
  return options;
}

}  // namespace

table fig3a_ssam_ratio(const sweep_config& cfg,
                       const std::vector<std::size_t>& seller_counts) {
  table out({"microservices", "bids_per_seller", "ratio_mean", "ratio_max",
             "bound_WXi", "exact_frac", "trials", "ratio_ci95"});
  struct cell_result {
    double social_cost = 0.0;
    double payment = 0.0;
    double reference = 0.0;
    double ratio_bound = 0.0;
    bool exact = false;
  };
  const std::size_t sizes = seller_counts.size();
  sweep_runner runner(cfg.seed, 31, cfg.trials, cfg.threads);
  runner.run<cell_result>(
      2 * sizes,
      [&](sweep_cell& cell) {
        const std::size_t j = cell.point / sizes + 1;  // J in {1, 2}
        const std::size_t n = seller_counts[cell.point % sizes];
        const auto instance = auction::random_instance(
            internal::paper_stage(n, cfg.demanders, j), cell.gen);
        const auction::ssam_result res =
            auction::run_ssam(instance, sweep_stage_options(), cell.scratch);
        const auto ref = internal::single_stage_reference(instance);
        return cell_result{res.social_cost, res.total_payment, ref.value,
                           res.ratio_bound, ref.exact};
      },
      [&](std::size_t point, std::span<const cell_result> results) {
        metrics::trial_accumulator acc;
        running_stats bound;
        std::size_t exact_count = 0;
        for (const cell_result& r : results) {
          acc.add_trial(r.social_cost, r.payment, r.reference);
          bound.add(r.ratio_bound);
          if (r.exact) ++exact_count;
        }
        const std::size_t j = point / sizes + 1;
        const std::size_t n = seller_counts[point % sizes];
        out.add_row({static_cast<long long>(n), static_cast<long long>(j),
                     acc.mean_ratio(), acc.max_ratio(), bound.mean(),
                     static_cast<double>(exact_count) /
                         static_cast<double>(cfg.trials),
                     static_cast<long long>(cfg.trials), acc.ratio_ci95()});
      });
  return out;
}

table fig3b_ssam_cost(const sweep_config& cfg,
                      const std::vector<std::size_t>& seller_counts,
                      const std::vector<std::size_t>& request_loads) {
  table out({"microservices", "requests", "social_cost", "payment",
             "optimal_cost", "trials"});
  struct cell_result {
    double social_cost = 0.0;
    double payment = 0.0;
    double reference = 0.0;
  };
  const std::size_t sizes = seller_counts.size();
  sweep_runner runner(cfg.seed, 32, cfg.trials, cfg.threads);
  runner.run<cell_result>(
      request_loads.size() * sizes,
      [&](sweep_cell& cell) {
        const std::size_t load = request_loads[cell.point / sizes];
        const std::size_t n = seller_counts[cell.point % sizes];
        const auto instance = auction::random_instance(
            internal::paper_stage(n, cfg.demanders, 2, load), cell.gen);
        const auction::ssam_result res =
            auction::run_ssam(instance, sweep_stage_options(), cell.scratch);
        const auto ref = internal::single_stage_reference(instance);
        return cell_result{res.social_cost, res.total_payment, ref.value};
      },
      [&](std::size_t point, std::span<const cell_result> results) {
        metrics::trial_accumulator acc;
        for (const cell_result& r : results) {
          acc.add_trial(r.social_cost, r.payment, r.reference);
        }
        out.add_row({static_cast<long long>(seller_counts[point % sizes]),
                     static_cast<long long>(request_loads[point / sizes]),
                     acc.mean_cost(), acc.mean_payment(), acc.mean_reference(),
                     static_cast<long long>(cfg.trials)});
      });
  return out;
}

table fig4a_individual_rationality(std::uint64_t seed, std::size_t sellers) {
  table out({"winner", "seller", "actual_price", "payment", "surplus"});
  rng gen = internal::point_rng(seed, 41, 0, 0);
  const auto instance =
      auction::random_instance(internal::paper_stage(sellers, 5, 2), gen);
  const auction::ssam_result res = auction::run_ssam(instance);
  long long pos = 0;
  for (const auction::winning_bid& w : res.winners) {
    const auction::bid& b = instance.bids[w.bid_index];
    out.add_row({pos++, static_cast<long long>(b.seller), b.price, w.payment,
                 w.payment - b.price});
  }
  return out;
}

table fig4b_runtime(const sweep_config& cfg,
                    const std::vector<std::size_t>& seller_counts,
                    const std::vector<std::size_t>& request_loads) {
  table out({"microservices", "requests", "runtime_ms_mean", "runtime_ms_max",
             "winners_mean", "trials"});
  struct cell_result {
    double runtime_ms = 0.0;  // wall-clock: the one non-deterministic column
    double winners = 0.0;
  };
  const std::size_t sizes = seller_counts.size();
  sweep_runner runner(cfg.seed, 42, cfg.trials, cfg.threads);
  runner.run<cell_result>(
      request_loads.size() * sizes,
      [&](sweep_cell& cell) {
        const std::size_t load = request_loads[cell.point / sizes];
        const std::size_t n = seller_counts[cell.point % sizes];
        const auto instance = auction::random_instance(
            internal::paper_stage(n, cfg.demanders, 2, load), cell.gen);
        stopwatch clock;
        const auction::ssam_result res =
            auction::run_ssam(instance, sweep_stage_options(), cell.scratch);
        return cell_result{clock.elapsed_ms(),
                           static_cast<double>(res.winners.size())};
      },
      [&](std::size_t point, std::span<const cell_result> results) {
        running_stats runtime;
        running_stats winners;
        for (const cell_result& r : results) {
          runtime.add(r.runtime_ms);
          winners.add(r.winners);
        }
        out.add_row({static_cast<long long>(seller_counts[point % sizes]),
                     static_cast<long long>(request_loads[point / sizes]),
                     runtime.mean(), runtime.max(), winners.mean(),
                     static_cast<long long>(cfg.trials)});
      });
  return out;
}

}  // namespace ecrs::harness
