#include "harness/sweep.h"

#include <memory>
#include <mutex>

#include "common/check.h"
#include "common/thread_pool.h"

namespace ecrs::harness {

void sweep_runner::dispatch(
    std::size_t cells,
    const std::function<void(std::size_t, auction::ssam_scratch&)>& fn) {
  ECRS_CHECK_MSG(trials_ > 0, "sweep needs at least one trial");
  if (cells == 0) return;
  if (threads_ == 1 || cells == 1) {
    auction::ssam_scratch scratch;
    for (std::size_t c = 0; c < cells; ++c) fn(c, scratch);
    return;
  }

  // Workspace pool: grows to the number of cells actually in flight at
  // once (bounded by the worker count), and every workspace is reused for
  // many cells. The handout order is scheduling-dependent, but a scratch
  // only ever affects performance, never results.
  std::mutex mu;
  std::vector<std::unique_ptr<auction::ssam_scratch>> owned;
  std::vector<auction::ssam_scratch*> idle;
  thread_pool::shared().parallel_for(
      cells,
      [&](std::size_t c) {
        auction::ssam_scratch* scratch = nullptr;
        {
          const std::lock_guard<std::mutex> lock(mu);
          if (idle.empty()) {
            owned.push_back(std::make_unique<auction::ssam_scratch>());
            scratch = owned.back().get();
          } else {
            scratch = idle.back();
            idle.pop_back();
          }
        }
        fn(c, *scratch);
        const std::lock_guard<std::mutex> lock(mu);
        idle.push_back(scratch);
      },
      threads_);
}

}  // namespace ecrs::harness
