#include "harness/sweep.h"

#include <memory>

#include "common/annotations.h"
#include "common/check.h"
#include "common/mutex.h"
#include "common/thread_pool.h"

namespace ecrs::harness {
namespace {

// Workspace pool for one dispatch() call: grows to the number of cells
// actually in flight at once (bounded by the worker count), and every
// workspace is reused for many cells. The handout order is
// scheduling-dependent, but a scratch only ever affects performance, never
// results.
class scratch_pool {
 public:
  [[nodiscard]] auction::ssam_scratch* acquire() ECRS_EXCLUDES(mu_) {
    mutex_lock lock(mu_);
    if (idle_.empty()) {
      owned_.push_back(std::make_unique<auction::ssam_scratch>());
      return owned_.back().get();
    }
    auction::ssam_scratch* scratch = idle_.back();
    idle_.pop_back();
    return scratch;
  }

  void release(auction::ssam_scratch* scratch) ECRS_EXCLUDES(mu_) {
    mutex_lock lock(mu_);
    idle_.push_back(scratch);
  }

 private:
  mutex mu_;
  std::vector<std::unique_ptr<auction::ssam_scratch>> owned_
      ECRS_GUARDED_BY(mu_);
  std::vector<auction::ssam_scratch*> idle_ ECRS_GUARDED_BY(mu_);
};

}  // namespace

void sweep_runner::dispatch(
    std::size_t cells,
    const std::function<void(std::size_t, auction::ssam_scratch&)>& fn) {
  ECRS_CHECK_MSG(trials_ > 0, "sweep needs at least one trial");
  if (cells == 0) return;
  if (threads_ == 1 || cells == 1) {
    auction::ssam_scratch scratch;
    for (std::size_t c = 0; c < cells; ++c) fn(c, scratch);
    return;
  }

  scratch_pool pool;
  thread_pool::shared().parallel_for(
      cells,
      [&](std::size_t c) {
        auction::ssam_scratch* scratch = pool.acquire();
        fn(c, *scratch);
        pool.release(scratch);
      },
      threads_);
}

}  // namespace ecrs::harness
