// Deterministic parallel sweep engine for the experiment drivers.
//
// Every paper figure is a grid of independent (point, trial) cells: generate
// an instance from a per-cell RNG stream, run a mechanism, record numbers.
// sweep_runner fans those cells out across the shared thread pool and then
// reduces per point IN SERIAL ORDER, so the produced table is byte-identical
// to a serial run at any thread count:
//
//  - each cell's generator comes from sweep_stream(master_seed, figure,
//    point, trial) — a pure function of the cell's coordinates, never of
//    scheduling order;
//  - each cell writes one pre-allocated result slot; no shared accumulator
//    is touched concurrently;
//  - the reduce callback sees each point's trial results in ascending trial
//    order, one point at a time, so floating-point accumulation order is
//    fixed.
//
// Worker threads draw reusable auction::ssam_scratch workspaces from a small
// pool (one in flight per running cell), so a sweep's allocator traffic
// stays flat no matter how many cells it visits.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "auction/ssam.h"
#include "common/rng.h"

namespace ecrs::harness {

// The per-cell substream: every (figure, point, trial) triple gets an
// independent generator, identical to the fork chain the serial drivers
// have always used (internal::point_rng delegates here).
[[nodiscard]] inline rng sweep_stream(std::uint64_t master_seed,
                                      std::uint64_t figure,
                                      std::uint64_t point,
                                      std::uint64_t trial) {
  rng root(master_seed);
  return root.fork(figure).fork(point).fork(trial);
}

// What a cell callback receives: its grid coordinates, its private RNG
// stream, and a reusable mechanism workspace (exclusive to this cell while
// the callback runs; contents are unspecified).
struct sweep_cell {
  std::size_t point = 0;  // grid index within this run() call
  std::size_t trial = 0;
  rng gen;
  auction::ssam_scratch* scratch = nullptr;
};

class sweep_runner {
 public:
  // `threads`: 1 = run cells serially on the caller (no pool), 0 = use the
  // shared pool at full hardware width, k > 1 = at most k workers. Results
  // are identical for every setting. `point_offset` shifts the stream ids
  // (not the grid indices) — for drivers whose point counter spans several
  // phases (ablation_bounds).
  sweep_runner(std::uint64_t master_seed, std::uint64_t figure,
               std::size_t trials, std::size_t threads,
               std::uint64_t point_offset = 0)
      : master_seed_(master_seed),
        figure_(figure),
        trials_(trials),
        threads_(threads),
        point_offset_(point_offset) {}

  [[nodiscard]] std::size_t trials() const { return trials_; }

  // Evaluate `cell` for every (point, trial) in the grid — concurrently when
  // threads allow — then call `reduce(point, results)` for each point in
  // ascending order, where `results` holds that point's trial outcomes in
  // ascending trial order.
  template <typename Result, typename Cell, typename Reduce>
  void run(std::size_t points, Cell&& cell, Reduce&& reduce) {
    std::vector<Result> slots(points * trials_);
    dispatch(points * trials_,
             [&](std::size_t c, auction::ssam_scratch& scratch) {
               sweep_cell ctx;
               ctx.point = c / trials_;
               ctx.trial = c % trials_;
               ctx.gen = sweep_stream(master_seed_, figure_,
                                      point_offset_ + ctx.point, ctx.trial);
               ctx.scratch = &scratch;
               slots[c] = cell(ctx);
             });
    for (std::size_t p = 0; p < points; ++p) {
      reduce(p, std::span<const Result>(slots.data() + p * trials_, trials_));
    }
  }

 private:
  // Run fn(cell_index, scratch) for every cell, scratches handed out so no
  // two concurrent cells share one. Defined in sweep.cc.
  void dispatch(
      std::size_t cells,
      const std::function<void(std::size_t, auction::ssam_scratch&)>& fn);

  std::uint64_t master_seed_;
  std::uint64_t figure_;
  std::size_t trials_;
  std::size_t threads_;
  std::uint64_t point_offset_;
};

}  // namespace ecrs::harness
