// Shared helpers for the experiment drivers (internal to ecrs::harness).
#pragma once

#include <cstddef>
#include <cstdint>

#include "auction/instance_gen.h"
#include "harness/sweep.h"

namespace ecrs::harness::internal {

// The paper's §V-A single-stage parameters: prices U[10,35], requirements
// 𝔾^t in [10,40]. The request load scales the number of demanding
// microservices (each demander aggregates a slice of the user request
// volume), so 200 requests ≈ twice the demanders of the 100-request
// setting. Scaling the per-demander requirement instead would be absorbed
// by the feasibility clamp at small seller counts (see DESIGN.md §2).
[[nodiscard]] inline auction::instance_config paper_stage(
    std::size_t sellers, std::size_t demanders, std::size_t bids_per_seller,
    std::size_t request_load = 100) {
  auction::instance_config cfg;
  cfg.sellers = sellers;
  cfg.demanders = std::max<std::size_t>(
      1, demanders * request_load / 100);
  cfg.bids_per_seller = bids_per_seller;
  cfg.price_lo = 10.0;
  cfg.price_hi = 35.0;
  cfg.requirement_lo = 10;
  cfg.requirement_hi = 40;
  // Absolute coverage cap with a non-binding fraction: per-bid supply must
  // not depend on the demander count, or the request-load sweep would be
  // self-cancelling.
  cfg.coverage_fraction = 1.0;
  cfg.max_coverage = 2;
  return cfg;
}

// Deterministic per-point substream: every (figure, point, trial) triple
// gets an independent generator. Same fork chain the sweep engine hands to
// parallel cells, so serial and swept drivers draw identical streams.
[[nodiscard]] inline rng point_rng(std::uint64_t master_seed,
                                   std::uint64_t figure, std::uint64_t point,
                                   std::uint64_t trial) {
  return sweep_stream(master_seed, figure, point, trial);
}

// Reference cost for a single-stage instance: exact when the search
// finishes within budget, else the certified lower bound. `exact` reports
// which one was returned.
struct reference_cost {
  double value = 0.0;
  bool exact = true;
};

[[nodiscard]] reference_cost single_stage_reference(
    const auction::single_stage_instance& instance,
    std::size_t node_limit = 300000);

}  // namespace ecrs::harness::internal
