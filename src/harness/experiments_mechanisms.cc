// Mechanism comparison driver: efficiency vs frugality across every
// implemented mechanism on identical instances.
#include <string>

#include "auction/baselines.h"
#include "auction/exact.h"
#include "auction/instance_gen.h"
#include "auction/local_search.h"
#include "auction/rounding.h"
#include "auction/ssam.h"
#include "auction/vcg.h"
#include "harness/experiments.h"
#include "harness/internal.h"
#include "metrics/metrics.h"

namespace ecrs::harness {

table payment_rules(const sweep_config& cfg, std::size_t sellers) {
  table out({"mechanism", "cost_vs_opt", "payment_vs_opt", "feasible_frac",
             "trials"});

  struct row {
    std::string name;
    metrics::trial_accumulator cost;      // reference = exact optimum
    metrics::trial_accumulator payment;   // reference = exact optimum
    std::size_t feasible = 0;
  };
  row rows[] = {{"SSAM_runner_up", {}, {}, 0},   {"SSAM_critical", {}, {}, 0},
                {"SSAM_budget_2xOPT", {}, {}, 0}, {"VCG_reserve70", {}, {}, 0},
                {"pay_as_bid", {}, {}, 0},        {"random", {}, {}, 0},
                {"greedy+local_search", {}, {}, 0},
                {"lp_rounding", {}, {}, 0}};

  std::size_t usable = 0;
  for (std::size_t trial = 0; trial < cfg.trials; ++trial) {
    rng gen = internal::point_rng(cfg.seed, 91, 0, trial);
    const auto inst = auction::random_instance(
        internal::paper_stage(sellers, cfg.demanders, 2), gen);
    const auto opt = auction::solve_exact(inst);
    if (!opt.exact || !opt.feasible || opt.cost <= 0.0) continue;
    ++usable;

    auto record = [&](row& r, bool feasible, double cost, double payment) {
      r.cost.add_trial(cost, 0.0, opt.cost);
      r.payment.add_trial(payment, 0.0, opt.cost);
      if (feasible) ++r.feasible;
    };

    {
      const auto res = auction::run_ssam(inst);
      record(rows[0], res.feasible, res.social_cost, res.total_payment);
    }
    {
      auction::ssam_options opts;
      opts.rule = auction::payment_rule::critical_value;
      const auto res = auction::run_ssam(inst, opts);
      record(rows[1], res.feasible, res.social_cost, res.total_payment);
    }
    {
      auction::ssam_options opts;
      opts.payment_budget = 2.0 * opt.cost;
      const auto res = auction::run_ssam(inst, opts);
      record(rows[2], res.feasible, res.social_cost, res.total_payment);
    }
    {
      const auto res = auction::run_vcg(inst, 2000000, 70.0);
      double payment = 0.0;
      for (double p : res.payments) payment += p;
      record(rows[3], res.feasible, res.social_cost, payment);
    }
    {
      const auto res = auction::pay_as_bid_greedy(inst);
      record(rows[4], res.feasible, res.social_cost, res.total_payment);
    }
    {
      rng pick = gen.fork(5);
      const auto res = auction::random_selection(inst, pick);
      record(rows[5], res.feasible, res.social_cost, res.total_payment);
    }
    {
      // Cost-only heuristic (no payments/incentives): efficiency reference.
      const auto res = auction::improve_selection(inst);
      record(rows[6], res.feasible, res.cost, res.cost);
    }
    {
      rng sample = gen.fork(7);
      const auto res = auction::randomized_rounding(inst, sample);
      record(rows[7], res.feasible, res.social_cost, res.total_payment);
    }
  }

  for (row& r : rows) {
    out.add_row({r.name, r.cost.trials() > 0 ? r.cost.mean_ratio() : 0.0,
                 r.payment.trials() > 0 ? r.payment.mean_ratio() : 0.0,
                 usable > 0 ? static_cast<double>(r.feasible) /
                                  static_cast<double>(usable)
                            : 0.0,
                 static_cast<long long>(usable)});
  }
  return out;
}

}  // namespace ecrs::harness
