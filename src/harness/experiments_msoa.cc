// Drivers for the online (MSOA) figures 5(a), 5(b), 6(a), 6(b), the
// theorem-bound ablation, and the posted-price baseline comparison.
#include <array>
#include <iomanip>
#include <sstream>
#include <string>

#include "auction/baselines.h"
#include "auction/exact.h"
#include "auction/instance_gen.h"
#include "auction/msoa.h"
#include "auction/ssam.h"
#include "harness/experiments.h"
#include "harness/internal.h"
#include "metrics/metrics.h"

namespace ecrs::harness {
namespace {

constexpr std::array<auction::msoa_variant, 4> kVariants = {
    auction::msoa_variant::base, auction::msoa_variant::demand_aware,
    auction::msoa_variant::high_capacity,
    auction::msoa_variant::fully_optimized};

auction::online_config paper_online(std::size_t sellers, std::size_t demanders,
                                    std::size_t bids_per_seller,
                                    std::size_t rounds,
                                    std::size_t request_load = 100,
                                    bool tight_capacity = false) {
  auction::online_config cfg;
  cfg.stage =
      internal::paper_stage(sellers, demanders, bids_per_seller, request_load);
  cfg.rounds = rounds;
  if (tight_capacity) {
    // Capacities that actually bind over the horizon (a seller can win in
    // roughly 20-60% of the rounds), so the MSOA-RC variant's extra
    // capacity is visible. avg participation weight per win is ~1.5 with
    // the paper_stage coverage cap of 2.
    const double avg_weight = 1.5;
    cfg.capacity_lo = static_cast<auction::units>(
        std::max(2.0, 0.2 * avg_weight * static_cast<double>(rounds)));
    cfg.capacity_hi = static_cast<auction::units>(
        std::max(3.0, 0.6 * avg_weight * static_cast<double>(rounds)));
  }
  return cfg;
}

}  // namespace

table fig5a_msoa_ratio_vs_sellers(const sweep_config& cfg,
                                  const std::vector<std::size_t>& seller_counts,
                                  std::size_t rounds) {
  table out({"microservices", "variant", "ratio_mean", "cost_mean",
             "offline_bound_mean", "trials", "ratio_ci95"});
  std::uint64_t point = 0;
  for (const std::size_t n : seller_counts) {
    for (const auction::msoa_variant variant : kVariants) {
      metrics::trial_accumulator acc;
      for (std::size_t trial = 0; trial < cfg.trials; ++trial) {
        rng gen = internal::point_rng(cfg.seed, 51, point, trial);
        const auto truth = auction::random_online_instance(
            paper_online(n, cfg.demanders, 2, rounds, 100,
                         /*tight_capacity=*/true),
            gen);
        const double offline = auction::offline_lp_bound(truth);
        rng noise = gen.fork(99);
        const auto shaped =
            auction::apply_variant(truth, variant, {}, noise);
        const auto res = auction::run_msoa(shaped);
        acc.add_trial(res.social_cost, res.total_payment, offline);
      }
      out.add_row({static_cast<long long>(n),
                   std::string(auction::to_string(variant)), acc.mean_ratio(),
                   acc.mean_cost(), acc.mean_reference(),
                   static_cast<long long>(cfg.trials), acc.ratio_ci95()});
    }
    ++point;
  }
  return out;
}

table fig5b_msoa_ratio_vs_requests(const sweep_config& cfg,
                                   const std::vector<std::size_t>& request_loads,
                                   std::size_t sellers, std::size_t rounds) {
  table out({"requests", "variant", "ratio_mean", "cost_mean",
             "offline_bound_mean", "trials"});
  std::uint64_t point = 0;
  for (const std::size_t load : request_loads) {
    for (const auction::msoa_variant variant : kVariants) {
      metrics::trial_accumulator acc;
      for (std::size_t trial = 0; trial < cfg.trials; ++trial) {
        rng gen = internal::point_rng(cfg.seed, 52, point, trial);
        const auto truth = auction::random_online_instance(
            paper_online(sellers, cfg.demanders, 2, rounds, load,
                         /*tight_capacity=*/true),
            gen);
        const double offline = auction::offline_lp_bound(truth);
        rng noise = gen.fork(99);
        const auto shaped =
            auction::apply_variant(truth, variant, {}, noise);
        const auto res = auction::run_msoa(shaped);
        acc.add_trial(res.social_cost, res.total_payment, offline);
      }
      out.add_row({static_cast<long long>(load),
                   std::string(auction::to_string(variant)), acc.mean_ratio(),
                   acc.mean_cost(), acc.mean_reference(),
                   static_cast<long long>(cfg.trials)});
    }
    ++point;
  }
  return out;
}

table fig6a_rounds_bids(const sweep_config& cfg,
                        const std::vector<std::size_t>& round_counts,
                        const std::vector<std::size_t>& bids_per_seller,
                        std::size_t sellers) {
  table out({"rounds", "bids_per_seller", "ratio_mean", "ratio_max",
             "competitive_bound", "trials"});
  std::uint64_t point = 0;
  for (const std::size_t j : bids_per_seller) {
    for (const std::size_t rounds : round_counts) {
      metrics::trial_accumulator acc;
      running_stats bound;
      for (std::size_t trial = 0; trial < cfg.trials; ++trial) {
        rng gen = internal::point_rng(cfg.seed, 61, point, trial);
        const auto truth = auction::random_online_instance(
            paper_online(sellers, cfg.demanders, j, rounds), gen);
        const double offline = auction::offline_lp_bound(truth);
        const auto res = auction::run_msoa(truth);
        acc.add_trial(res.social_cost, res.total_payment, offline);
        if (res.competitive_bound <
            std::numeric_limits<double>::infinity()) {
          bound.add(res.competitive_bound);
        }
      }
      out.add_row({static_cast<long long>(rounds), static_cast<long long>(j),
                   acc.mean_ratio(), acc.max_ratio(),
                   bound.empty() ? 0.0 : bound.mean(),
                   static_cast<long long>(cfg.trials)});
      ++point;
    }
  }
  return out;
}

table fig6b_msoa_cost(const sweep_config& cfg,
                      const std::vector<std::size_t>& seller_counts,
                      const std::vector<std::size_t>& request_loads,
                      std::size_t rounds) {
  table out({"microservices", "requests", "social_cost", "payment",
             "offline_bound", "trials"});
  std::uint64_t point = 0;
  for (const std::size_t load : request_loads) {
    for (const std::size_t n : seller_counts) {
      metrics::trial_accumulator acc;
      for (std::size_t trial = 0; trial < cfg.trials; ++trial) {
        rng gen = internal::point_rng(cfg.seed, 62, point, trial);
        const auto truth = auction::random_online_instance(
            paper_online(n, cfg.demanders, 2, rounds, load), gen);
        const double offline = auction::offline_lp_bound(truth);
        const auto res = auction::run_msoa(truth);
        acc.add_trial(res.social_cost, res.total_payment, offline);
      }
      out.add_row({static_cast<long long>(n), static_cast<long long>(load),
                   acc.mean_cost(), acc.mean_payment(), acc.mean_reference(),
                   static_cast<long long>(cfg.trials)});
      ++point;
    }
  }
  return out;
}

table ablation_bounds(const sweep_config& cfg,
                      const std::vector<std::size_t>& bids_per_seller) {
  table out({"stage", "bids_per_seller", "ratio_mean", "ratio_max",
             "bound_mean", "all_within_bound", "trials"});
  // Single-stage: measured vs W·Ξ (Theorem 3); exact denominators.
  std::uint64_t point = 0;
  for (const std::size_t j : bids_per_seller) {
    metrics::trial_accumulator acc;
    running_stats bound;
    bool within = true;
    for (std::size_t trial = 0; trial < cfg.trials; ++trial) {
      rng gen = internal::point_rng(cfg.seed, 71, point, trial);
      const auto instance = auction::random_instance(
          internal::paper_stage(10, cfg.demanders, j), gen);
      const auto res = auction::run_ssam(instance);
      const auto ref = internal::single_stage_reference(instance, 2000000);
      acc.add_trial(res.social_cost, res.total_payment, ref.value);
      bound.add(res.ratio_bound);
      if (ref.exact &&
          res.social_cost > res.ratio_bound * ref.value + 1e-6) {
        within = false;
      }
    }
    out.add_row({std::string("SSAM_theorem3"), static_cast<long long>(j),
                 acc.mean_ratio(), acc.max_ratio(), bound.mean(),
                 std::string(within ? "yes" : "NO"),
                 static_cast<long long>(cfg.trials)});
    ++point;
  }
  // Online: measured vs αβ/(β−1) (Theorem 7); tiny instances solved exactly.
  for (const std::size_t j : bids_per_seller) {
    metrics::trial_accumulator acc;
    running_stats bound;
    bool within = true;
    for (std::size_t trial = 0; trial < cfg.trials; ++trial) {
      rng gen = internal::point_rng(cfg.seed, 72, point, trial);
      auction::online_config ocfg;
      ocfg.stage = internal::paper_stage(5, 2, j);
      ocfg.rounds = 3;
      ocfg.capacity_lo = 4;
      ocfg.capacity_hi = 8;
      const auto truth = auction::random_online_instance(ocfg, gen);
      const auto exact = auction::offline_exact(truth, 2000000);
      if (!exact.exact || !exact.feasible) continue;
      const auto res = auction::run_msoa(truth);
      acc.add_trial(res.social_cost, res.total_payment, exact.cost);
      if (res.competitive_bound < std::numeric_limits<double>::infinity()) {
        bound.add(res.competitive_bound);
        if (res.social_cost > res.competitive_bound * exact.cost + 1e-6) {
          within = false;
        }
      }
    }
    out.add_row({std::string("MSOA_theorem7"), static_cast<long long>(j),
                 acc.trials() > 0 ? acc.mean_ratio() : 0.0,
                 acc.trials() > 0 ? acc.max_ratio() : 0.0,
                 bound.empty() ? 0.0 : bound.mean(),
                 std::string(within ? "yes" : "NO"),
                 static_cast<long long>(acc.trials())});
    ++point;
  }
  return out;
}

table ablation_scaling(const sweep_config& cfg,
                       const std::vector<std::size_t>& round_counts,
                       std::size_t sellers) {
  table out({"rounds", "mode", "cost_mean", "infeasible_rounds_mean",
             "offline_bound_mean", "trials"});
  std::uint64_t point = 0;
  for (const std::size_t rounds : round_counts) {
    struct mode {
      const char* name;
      double alpha;  // 0 = Algorithm 2's auto α; huge ⇒ ψ ≈ 0 (no scaling)
    };
    // "paper" uses Algorithm 2's α = SSAM's realized ratio bound (large, so
    // ψ is gentle); "aggressive" sets α = 1 (strong capacity protection);
    // "myopic" neutralizes scaling entirely.
    for (const mode m : {mode{"paper_alpha", 0.0}, mode{"aggressive", 1.0},
                         mode{"myopic", 1e12}}) {
      metrics::trial_accumulator acc;
      running_stats infeasible;
      for (std::size_t trial = 0; trial < cfg.trials; ++trial) {
        rng gen = internal::point_rng(cfg.seed, 73, point, trial);
        // Persistently cheap sellers + moderately binding capacity, no
        // windows: the regime where myopic selection burns the cheap
        // sellers early. (The measured effect of ψ-scaling is consistent
        // but small — a few percent — which EXPERIMENTS.md reports
        // honestly.)
        auction::online_config ocfg = paper_online(
            sellers, cfg.demanders, 2, rounds, 100);
        ocfg.windowed_fraction = 0.0;
        ocfg.seller_price_bias = 0.6;
        ocfg.stage.supply_margin = 0.5;
        const double budget = 1.5 * static_cast<double>(rounds) * 0.45;
        ocfg.capacity_lo =
            static_cast<auction::units>(std::max(1.0, budget * 0.8));
        ocfg.capacity_hi =
            static_cast<auction::units>(std::max(2.0, budget * 1.2));
        const auto truth = auction::random_online_instance(ocfg, gen);
        const double offline = auction::offline_lp_bound(truth);
        auction::msoa_options opts;
        opts.alpha = m.alpha;
        const auto res = auction::run_msoa(truth, opts);
        acc.add_trial(res.social_cost, res.total_payment, offline);
        std::size_t failed = 0;
        for (const auto& round : res.rounds) {
          if (!round.feasible) ++failed;
        }
        infeasible.add(static_cast<double>(failed));
      }
      out.add_row({static_cast<long long>(rounds), std::string(m.name),
                   acc.mean_cost(), infeasible.mean(), acc.mean_reference(),
                   static_cast<long long>(cfg.trials)});
    }
    ++point;
  }
  return out;
}

table baseline_comparison(const sweep_config& cfg,
                          const std::vector<double>& price_multipliers) {
  table out({"mechanism", "social_cost", "platform_payment", "feasible_frac",
             "trials"});
  // Mean unit cost of the bid population, used to anchor posted prices.
  const auto mean_unit_cost = [](const auction::single_stage_instance& inst) {
    double total = 0.0;
    for (const auction::bid& b : inst.bids) {
      total += b.price / static_cast<double>(
                             b.amount * static_cast<auction::units>(
                                            b.coverage.size()));
    }
    return total / static_cast<double>(inst.bids.size());
  };

  // Auction row.
  {
    metrics::trial_accumulator acc;
    std::size_t feasible = 0;
    for (std::size_t trial = 0; trial < cfg.trials; ++trial) {
      rng gen = internal::point_rng(cfg.seed, 81, 0, trial);
      const auto instance = auction::random_instance(
          internal::paper_stage(25, cfg.demanders, 2), gen);
      const auto res = auction::run_ssam(instance);
      acc.add_trial(res.social_cost, res.total_payment, 1.0);
      if (res.feasible) ++feasible;
    }
    out.add_row({std::string("SSAM_auction"), acc.mean_cost(),
                 acc.mean_payment(),
                 static_cast<double>(feasible) /
                     static_cast<double>(cfg.trials),
                 static_cast<long long>(cfg.trials)});
  }

  // Posted-price rows.
  std::uint64_t point = 1;
  for (const double mult : price_multipliers) {
    metrics::trial_accumulator acc;
    std::size_t feasible = 0;
    for (std::size_t trial = 0; trial < cfg.trials; ++trial) {
      rng gen = internal::point_rng(cfg.seed, 81, point, trial);
      const auto instance = auction::random_instance(
          internal::paper_stage(25, cfg.demanders, 2), gen);
      const double posted = mult * mean_unit_cost(instance);
      const auto res = auction::fixed_price_mechanism(instance, posted);
      acc.add_trial(res.social_cost, res.total_payment, 1.0);
      if (res.feasible) ++feasible;
    }
    std::ostringstream label;
    label << "posted_x" << std::setprecision(3) << mult;
    out.add_row({label.str(),
                 acc.mean_cost(), acc.mean_payment(),
                 static_cast<double>(feasible) /
                     static_cast<double>(cfg.trials),
                 static_cast<long long>(cfg.trials)});
    ++point;
  }
  return out;
}

}  // namespace ecrs::harness
