// Drivers for the online (MSOA) figures 5(a), 5(b), 6(a), 6(b), the
// theorem-bound ablation, and the posted-price baseline comparison.
//
// All sweeps run on harness::sweep_runner: cells fan out across the shared
// thread pool, every cell derives its RNG stream from the same
// (seed, figure, point, trial) fork chain the serial loops used, and
// reduction is serial in point/trial order — the tables are byte-identical
// at any thread count (sweep_test enforces this). Drivers whose point
// spans several grid values (fig5a/fig5b variants, ablation_scaling modes)
// compute the shared ground truth once per cell and evaluate every
// variant/mode from an identical generator state, exactly as the serial
// loops re-derived it.
#include <array>
#include <iomanip>
#include <sstream>
#include <string>

#include "auction/baselines.h"
#include "auction/exact.h"
#include "auction/instance_gen.h"
#include "auction/msoa.h"
#include "auction/ssam.h"
#include "harness/experiments.h"
#include "harness/internal.h"
#include "harness/sweep.h"
#include "metrics/metrics.h"

namespace ecrs::harness {
namespace {

constexpr std::array<auction::msoa_variant, 4> kVariants = {
    auction::msoa_variant::base, auction::msoa_variant::demand_aware,
    auction::msoa_variant::high_capacity,
    auction::msoa_variant::fully_optimized};

auction::online_config paper_online(std::size_t sellers, std::size_t demanders,
                                    std::size_t bids_per_seller,
                                    std::size_t rounds,
                                    std::size_t request_load = 100,
                                    bool tight_capacity = false) {
  auction::online_config cfg;
  cfg.stage =
      internal::paper_stage(sellers, demanders, bids_per_seller, request_load);
  cfg.rounds = rounds;
  if (tight_capacity) {
    // Capacities that actually bind over the horizon (a seller can win in
    // roughly 20-60% of the rounds), so the MSOA-RC variant's extra
    // capacity is visible. avg participation weight per win is ~1.5 with
    // the paper_stage coverage cap of 2.
    const double avg_weight = 1.5;
    cfg.capacity_lo = static_cast<auction::units>(
        std::max(2.0, 0.2 * avg_weight * static_cast<double>(rounds)));
    cfg.capacity_hi = static_cast<auction::units>(
        std::max(3.0, 0.6 * avg_weight * static_cast<double>(rounds)));
  }
  return cfg;
}

// MSOA options for swept cells: per-round payments stay on the calling
// thread — the sweep already keeps every core busy with whole cells.
// Results are identical either way (payments go to disjoint slots).
auction::msoa_options sweep_msoa_options(double alpha = 0.0) {
  auction::msoa_options opts;
  opts.alpha = alpha;
  opts.stage.payment_threads = 1;
  return opts;
}

// One variant's outcome within a fig5a/fig5b cell.
struct variant_outcome {
  double social_cost = 0.0;
  double payment = 0.0;
};

// Shared cell body of fig5a/fig5b: generate the ground truth, bound it
// offline once, then run every variant from an identical generator state
// (rng::fork is const, so each fork(99) below sees the same post-truth
// state the serial driver re-derived per variant).
struct variant_cell {
  double offline = 0.0;
  std::array<variant_outcome, kVariants.size()> variants;
};

variant_cell run_variant_cell(const auction::online_config& cfg,
                              sweep_cell& cell) {
  variant_cell out;
  const auto truth = auction::random_online_instance(cfg, cell.gen);
  out.offline = auction::offline_lp_bound(truth);
  for (std::size_t v = 0; v < kVariants.size(); ++v) {
    rng noise = cell.gen.fork(99);
    const auto shaped =
        auction::apply_variant(truth, kVariants[v], {}, noise);
    const auto res = auction::run_msoa(shaped, sweep_msoa_options());
    out.variants[v] = {res.social_cost, res.total_payment};
  }
  return out;
}

}  // namespace

table fig5a_msoa_ratio_vs_sellers(const sweep_config& cfg,
                                  const std::vector<std::size_t>& seller_counts,
                                  std::size_t rounds) {
  table out({"microservices", "variant", "ratio_mean", "cost_mean",
             "offline_bound_mean", "trials", "ratio_ci95"});
  sweep_runner runner(cfg.seed, 51, cfg.trials, cfg.threads);
  runner.run<variant_cell>(
      seller_counts.size(),
      [&](sweep_cell& cell) {
        return run_variant_cell(
            paper_online(seller_counts[cell.point], cfg.demanders, 2, rounds,
                         100, /*tight_capacity=*/true),
            cell);
      },
      [&](std::size_t point, std::span<const variant_cell> results) {
        for (std::size_t v = 0; v < kVariants.size(); ++v) {
          metrics::trial_accumulator acc;
          for (const variant_cell& r : results) {
            acc.add_trial(r.variants[v].social_cost, r.variants[v].payment,
                          r.offline);
          }
          out.add_row({static_cast<long long>(seller_counts[point]),
                       std::string(auction::to_string(kVariants[v])),
                       acc.mean_ratio(), acc.mean_cost(), acc.mean_reference(),
                       static_cast<long long>(cfg.trials), acc.ratio_ci95()});
        }
      });
  return out;
}

table fig5b_msoa_ratio_vs_requests(const sweep_config& cfg,
                                   const std::vector<std::size_t>& request_loads,
                                   std::size_t sellers, std::size_t rounds) {
  table out({"requests", "variant", "ratio_mean", "cost_mean",
             "offline_bound_mean", "trials"});
  sweep_runner runner(cfg.seed, 52, cfg.trials, cfg.threads);
  runner.run<variant_cell>(
      request_loads.size(),
      [&](sweep_cell& cell) {
        return run_variant_cell(
            paper_online(sellers, cfg.demanders, 2, rounds,
                         request_loads[cell.point], /*tight_capacity=*/true),
            cell);
      },
      [&](std::size_t point, std::span<const variant_cell> results) {
        for (std::size_t v = 0; v < kVariants.size(); ++v) {
          metrics::trial_accumulator acc;
          for (const variant_cell& r : results) {
            acc.add_trial(r.variants[v].social_cost, r.variants[v].payment,
                          r.offline);
          }
          out.add_row({static_cast<long long>(request_loads[point]),
                       std::string(auction::to_string(kVariants[v])),
                       acc.mean_ratio(), acc.mean_cost(), acc.mean_reference(),
                       static_cast<long long>(cfg.trials)});
        }
      });
  return out;
}

table fig6a_rounds_bids(const sweep_config& cfg,
                        const std::vector<std::size_t>& round_counts,
                        const std::vector<std::size_t>& bids_per_seller,
                        std::size_t sellers) {
  table out({"rounds", "bids_per_seller", "ratio_mean", "ratio_max",
             "competitive_bound", "trials"});
  struct cell_result {
    double social_cost = 0.0;
    double payment = 0.0;
    double offline = 0.0;
    double competitive_bound = std::numeric_limits<double>::infinity();
  };
  const std::size_t rsizes = round_counts.size();
  sweep_runner runner(cfg.seed, 61, cfg.trials, cfg.threads);
  runner.run<cell_result>(
      bids_per_seller.size() * rsizes,
      [&](sweep_cell& cell) {
        const std::size_t j = bids_per_seller[cell.point / rsizes];
        const std::size_t rounds = round_counts[cell.point % rsizes];
        const auto truth = auction::random_online_instance(
            paper_online(sellers, cfg.demanders, j, rounds), cell.gen);
        const double offline = auction::offline_lp_bound(truth);
        const auto res = auction::run_msoa(truth, sweep_msoa_options());
        return cell_result{res.social_cost, res.total_payment, offline,
                           res.competitive_bound};
      },
      [&](std::size_t point, std::span<const cell_result> results) {
        metrics::trial_accumulator acc;
        running_stats bound;
        for (const cell_result& r : results) {
          acc.add_trial(r.social_cost, r.payment, r.offline);
          if (r.competitive_bound < std::numeric_limits<double>::infinity()) {
            bound.add(r.competitive_bound);
          }
        }
        out.add_row({static_cast<long long>(round_counts[point % rsizes]),
                     static_cast<long long>(bids_per_seller[point / rsizes]),
                     acc.mean_ratio(), acc.max_ratio(),
                     bound.empty() ? 0.0 : bound.mean(),
                     static_cast<long long>(cfg.trials)});
      });
  return out;
}

table fig6b_msoa_cost(const sweep_config& cfg,
                      const std::vector<std::size_t>& seller_counts,
                      const std::vector<std::size_t>& request_loads,
                      std::size_t rounds) {
  table out({"microservices", "requests", "social_cost", "payment",
             "offline_bound", "trials"});
  struct cell_result {
    double social_cost = 0.0;
    double payment = 0.0;
    double offline = 0.0;
  };
  const std::size_t sizes = seller_counts.size();
  sweep_runner runner(cfg.seed, 62, cfg.trials, cfg.threads);
  runner.run<cell_result>(
      request_loads.size() * sizes,
      [&](sweep_cell& cell) {
        const std::size_t load = request_loads[cell.point / sizes];
        const std::size_t n = seller_counts[cell.point % sizes];
        const auto truth = auction::random_online_instance(
            paper_online(n, cfg.demanders, 2, rounds, load), cell.gen);
        const double offline = auction::offline_lp_bound(truth);
        const auto res = auction::run_msoa(truth, sweep_msoa_options());
        return cell_result{res.social_cost, res.total_payment, offline};
      },
      [&](std::size_t point, std::span<const cell_result> results) {
        metrics::trial_accumulator acc;
        for (const cell_result& r : results) {
          acc.add_trial(r.social_cost, r.payment, r.offline);
        }
        out.add_row({static_cast<long long>(seller_counts[point % sizes]),
                     static_cast<long long>(request_loads[point / sizes]),
                     acc.mean_cost(), acc.mean_payment(), acc.mean_reference(),
                     static_cast<long long>(cfg.trials)});
      });
  return out;
}

table ablation_bounds(const sweep_config& cfg,
                      const std::vector<std::size_t>& bids_per_seller) {
  table out({"stage", "bids_per_seller", "ratio_mean", "ratio_max",
             "bound_mean", "all_within_bound", "trials"});
  // Single-stage phase: measured vs W·Ξ (Theorem 3); exact denominators.
  // Stream id 71; one point per J.
  struct stage_result {
    double social_cost = 0.0;
    double payment = 0.0;
    double reference = 0.0;
    double ratio_bound = 0.0;
    bool violates = false;
  };
  {
    sweep_runner runner(cfg.seed, 71, cfg.trials, cfg.threads);
    runner.run<stage_result>(
        bids_per_seller.size(),
        [&](sweep_cell& cell) {
          const auto instance = auction::random_instance(
              internal::paper_stage(10, cfg.demanders,
                                    bids_per_seller[cell.point]),
              cell.gen);
          auction::ssam_options opts;
          opts.payment_threads = 1;
          const auto res = auction::run_ssam(instance, opts, cell.scratch);
          const auto ref = internal::single_stage_reference(instance, 2000000);
          return stage_result{
              res.social_cost, res.total_payment, ref.value, res.ratio_bound,
              ref.exact &&
                  res.social_cost > res.ratio_bound * ref.value + 1e-6};
        },
        [&](std::size_t point, std::span<const stage_result> results) {
          metrics::trial_accumulator acc;
          running_stats bound;
          bool within = true;
          for (const stage_result& r : results) {
            acc.add_trial(r.social_cost, r.payment, r.reference);
            bound.add(r.ratio_bound);
            if (r.violates) within = false;
          }
          out.add_row({std::string("SSAM_theorem3"),
                       static_cast<long long>(bids_per_seller[point]),
                       acc.mean_ratio(), acc.max_ratio(), bound.mean(),
                       std::string(within ? "yes" : "NO"),
                       static_cast<long long>(cfg.trials)});
        });
  }
  // Online phase: measured vs αβ/(β−1) (Theorem 7); tiny instances solved
  // exactly. Stream id 72; the point counter continues where the first
  // phase stopped (historical stream layout, preserved for reproducibility).
  struct online_result {
    double social_cost = 0.0;
    double payment = 0.0;
    double reference = 0.0;
    double competitive_bound = std::numeric_limits<double>::infinity();
    bool usable = false;  // offline solve was exact and feasible
    bool violates = false;
  };
  {
    sweep_runner runner(cfg.seed, 72, cfg.trials, cfg.threads,
                        /*point_offset=*/bids_per_seller.size());
    runner.run<online_result>(
        bids_per_seller.size(),
        [&](sweep_cell& cell) {
          auction::online_config ocfg;
          ocfg.stage =
              internal::paper_stage(5, 2, bids_per_seller[cell.point]);
          ocfg.rounds = 3;
          ocfg.capacity_lo = 4;
          ocfg.capacity_hi = 8;
          const auto truth = auction::random_online_instance(ocfg, cell.gen);
          const auto exact = auction::offline_exact(truth, 2000000);
          online_result r;
          if (!exact.exact || !exact.feasible) return r;
          const auto res = auction::run_msoa(truth, sweep_msoa_options());
          r.usable = true;
          r.social_cost = res.social_cost;
          r.payment = res.total_payment;
          r.reference = exact.cost;
          r.competitive_bound = res.competitive_bound;
          r.violates =
              res.competitive_bound < std::numeric_limits<double>::infinity() &&
              res.social_cost > res.competitive_bound * exact.cost + 1e-6;
          return r;
        },
        [&](std::size_t point, std::span<const online_result> results) {
          metrics::trial_accumulator acc;
          running_stats bound;
          bool within = true;
          for (const online_result& r : results) {
            if (!r.usable) continue;
            acc.add_trial(r.social_cost, r.payment, r.reference);
            if (r.competitive_bound <
                std::numeric_limits<double>::infinity()) {
              bound.add(r.competitive_bound);
              if (r.violates) within = false;
            }
          }
          out.add_row({std::string("MSOA_theorem7"),
                       static_cast<long long>(bids_per_seller[point]),
                       acc.trials() > 0 ? acc.mean_ratio() : 0.0,
                       acc.trials() > 0 ? acc.max_ratio() : 0.0,
                       bound.empty() ? 0.0 : bound.mean(),
                       std::string(within ? "yes" : "NO"),
                       static_cast<long long>(acc.trials())});
        });
  }
  return out;
}

table ablation_scaling(const sweep_config& cfg,
                       const std::vector<std::size_t>& round_counts,
                       std::size_t sellers) {
  table out({"rounds", "mode", "cost_mean", "infeasible_rounds_mean",
             "offline_bound_mean", "trials"});
  struct mode {
    const char* name;
    double alpha;  // 0 = Algorithm 2's auto α; huge ⇒ ψ ≈ 0 (no scaling)
  };
  // "paper" uses Algorithm 2's α = SSAM's realized ratio bound (large, so
  // ψ is gentle); "aggressive" sets α = 1 (strong capacity protection);
  // "myopic" neutralizes scaling entirely.
  constexpr std::array<mode, 3> kModes = {mode{"paper_alpha", 0.0},
                                          mode{"aggressive", 1.0},
                                          mode{"myopic", 1e12}};
  struct cell_result {
    double offline = 0.0;
    std::array<double, kModes.size()> cost{};
    std::array<double, kModes.size()> payment{};
    std::array<double, kModes.size()> infeasible{};
  };
  sweep_runner runner(cfg.seed, 73, cfg.trials, cfg.threads);
  runner.run<cell_result>(
      round_counts.size(),
      [&](sweep_cell& cell) {
        const std::size_t rounds = round_counts[cell.point];
        // Persistently cheap sellers + moderately binding capacity, no
        // windows: the regime where myopic selection burns the cheap
        // sellers early. (The measured effect of ψ-scaling is consistent
        // but small — a few percent — which EXPERIMENTS.md reports
        // honestly.) Every mode runs on the same ground truth, generated
        // once per cell (the serial loops re-derived it identically).
        auction::online_config ocfg =
            paper_online(sellers, cfg.demanders, 2, rounds, 100);
        ocfg.windowed_fraction = 0.0;
        ocfg.seller_price_bias = 0.6;
        ocfg.stage.supply_margin = 0.5;
        const double budget = 1.5 * static_cast<double>(rounds) * 0.45;
        ocfg.capacity_lo =
            static_cast<auction::units>(std::max(1.0, budget * 0.8));
        ocfg.capacity_hi =
            static_cast<auction::units>(std::max(2.0, budget * 1.2));
        const auto truth = auction::random_online_instance(ocfg, cell.gen);
        cell_result r;
        r.offline = auction::offline_lp_bound(truth);
        for (std::size_t m = 0; m < kModes.size(); ++m) {
          const auto res =
              auction::run_msoa(truth, sweep_msoa_options(kModes[m].alpha));
          r.cost[m] = res.social_cost;
          r.payment[m] = res.total_payment;
          std::size_t failed = 0;
          for (const auto& round : res.rounds) {
            if (!round.feasible) ++failed;
          }
          r.infeasible[m] = static_cast<double>(failed);
        }
        return r;
      },
      [&](std::size_t point, std::span<const cell_result> results) {
        for (std::size_t m = 0; m < kModes.size(); ++m) {
          metrics::trial_accumulator acc;
          running_stats infeasible;
          for (const cell_result& r : results) {
            acc.add_trial(r.cost[m], r.payment[m], r.offline);
            infeasible.add(r.infeasible[m]);
          }
          out.add_row({static_cast<long long>(round_counts[point]),
                       std::string(kModes[m].name), acc.mean_cost(),
                       infeasible.mean(), acc.mean_reference(),
                       static_cast<long long>(cfg.trials)});
        }
      });
  return out;
}

table baseline_comparison(const sweep_config& cfg,
                          const std::vector<double>& price_multipliers) {
  table out({"mechanism", "social_cost", "platform_payment", "feasible_frac",
             "trials"});
  // Mean unit cost of the bid population, used to anchor posted prices.
  const auto mean_unit_cost = [](const auction::single_stage_instance& inst) {
    double total = 0.0;
    for (const auction::bid& b : inst.bids) {
      total += b.price / static_cast<double>(
                             b.amount * static_cast<auction::units>(
                                            b.coverage.size()));
    }
    return total / static_cast<double>(inst.bids.size());
  };

  // Point 0 is the auction; points 1..k are the posted-price multipliers.
  struct cell_result {
    double social_cost = 0.0;
    double payment = 0.0;
    bool feasible = false;
  };
  sweep_runner runner(cfg.seed, 81, cfg.trials, cfg.threads);
  runner.run<cell_result>(
      1 + price_multipliers.size(),
      [&](sweep_cell& cell) {
        const auto instance = auction::random_instance(
            internal::paper_stage(25, cfg.demanders, 2), cell.gen);
        if (cell.point == 0) {
          auction::ssam_options opts;
          opts.payment_threads = 1;
          const auto res = auction::run_ssam(instance, opts, cell.scratch);
          return cell_result{res.social_cost, res.total_payment, res.feasible};
        }
        const double posted = price_multipliers[cell.point - 1] *
                              mean_unit_cost(instance);
        const auto res = auction::fixed_price_mechanism(instance, posted);
        return cell_result{res.social_cost, res.total_payment, res.feasible};
      },
      [&](std::size_t point, std::span<const cell_result> results) {
        metrics::trial_accumulator acc;
        std::size_t feasible = 0;
        for (const cell_result& r : results) {
          acc.add_trial(r.social_cost, r.payment, 1.0);
          if (r.feasible) ++feasible;
        }
        std::string label = "SSAM_auction";
        if (point > 0) {
          std::ostringstream os;
          os << "posted_x" << std::setprecision(3)
             << price_multipliers[point - 1];
          label = os.str();
        }
        out.add_row({label, acc.mean_cost(), acc.mean_payment(),
                     static_cast<double>(feasible) /
                         static_cast<double>(cfg.trials),
                     static_cast<long long>(cfg.trials)});
      });
  return out;
}

}  // namespace ecrs::harness
