// Experiment drivers: one function per paper table/figure (see DESIGN.md §5
// for the experiment index). Bench binaries are thin wrappers that print the
// returned table; integration tests call the same drivers at reduced sizes
// and assert on the shapes the paper reports.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/table.h"

namespace ecrs::harness {

struct sweep_config {
  std::size_t trials = 5;    // instances averaged per data point
  std::uint64_t seed = 1;    // master seed; every point derives from it
  std::size_t demanders = 5; // |Ŝ|: demanding microservices per round
  // Worker threads for the (point, trial) sweep grid: 0 = shared pool at
  // hardware width, 1 = serial, k = at most k workers. Tables are
  // byte-identical for every setting (see harness/sweep.h).
  std::size_t threads = 0;
};

// --- Figure 3(a): SSAM performance ratio vs number of microservices, for
// J = 1 and J = 2 bids per seller. Denominator: exact optimum (DP/B&B),
// falling back to the LP bound on node-budget exhaustion (column
// `exact_frac` reports the fraction of exactly-solved trials).
[[nodiscard]] table fig3a_ssam_ratio(
    const sweep_config& cfg = {},
    const std::vector<std::size_t>& seller_counts = {5, 10, 15, 25, 40, 55,
                                                     75});

// --- Figure 3(b): SSAM social cost, payment and optimal cost vs number of
// microservices, for request loads 100 and 200 (requirements scaled
// proportionally).
[[nodiscard]] table fig3b_ssam_cost(
    const sweep_config& cfg = {},
    const std::vector<std::size_t>& seller_counts = {25, 35, 45, 55, 65, 75},
    const std::vector<std::size_t>& request_loads = {100, 200});

// --- Figure 4(a): per-winner payment vs actual (bid) price for one default
// round — the individual-rationality scatter.
[[nodiscard]] table fig4a_individual_rationality(std::uint64_t seed = 1,
                                                 std::size_t sellers = 25);

// --- Figure 4(b): SSAM running time vs instance size, for request loads
// 100 and 200.
[[nodiscard]] table fig4b_runtime(
    const sweep_config& cfg = {},
    const std::vector<std::size_t>& seller_counts = {25, 50, 100, 200, 400},
    const std::vector<std::size_t>& request_loads = {100, 200});

// --- Figure 5(a), panel 1: MSOA performance ratio vs number of
// microservices, for the four variants (MSOA, MSOA-DA, MSOA-RC, MSOA-OA).
// Denominator: offline LP lower bound (certified; ratios are upper bounds).
[[nodiscard]] table fig5a_msoa_ratio_vs_sellers(
    const sweep_config& cfg = {},
    const std::vector<std::size_t>& seller_counts = {25, 40, 55, 75},
    std::size_t rounds = 10);

// --- Figure 5(a)/(b), panel 2: MSOA performance ratio vs request load.
[[nodiscard]] table fig5b_msoa_ratio_vs_requests(
    const sweep_config& cfg = {},
    const std::vector<std::size_t>& request_loads = {50, 100, 150, 200, 250},
    std::size_t sellers = 25, std::size_t rounds = 10);

// --- Figure 6(a): MSOA performance ratio vs number of rounds T, for
// J ∈ {1, 2, 4} bids per seller.
[[nodiscard]] table fig6a_rounds_bids(
    const sweep_config& cfg = {},
    const std::vector<std::size_t>& round_counts = {1, 3, 5, 7, 9, 11, 13, 15},
    const std::vector<std::size_t>& bids_per_seller = {1, 2, 4},
    std::size_t sellers = 25);

// --- Figure 6(b): MSOA social cost, payment and offline bound vs number of
// microservices for request loads 100 and 200.
[[nodiscard]] table fig6b_msoa_cost(
    const sweep_config& cfg = {},
    const std::vector<std::size_t>& seller_counts = {25, 35, 45, 55, 65, 75},
    const std::vector<std::size_t>& request_loads = {100, 200},
    std::size_t rounds = 10);

// --- §V-A setup validation: the full pipeline (workload generator → edge
// cluster queueing → demand estimator), one row per round, showing that the
// estimated demand tracks queue pressure.
[[nodiscard]] table demand_estimation_pipeline(std::uint64_t seed = 1,
                                               std::size_t rounds = 12,
                                               std::size_t users = 300,
                                               std::size_t microservices = 25,
                                               std::size_t clouds = 10);

// --- §III demand estimation driven event-accurately through the DES
// (simrun::des_driver): requests hit the queues at their exact arrival
// instants instead of as a round-start batch. Trials fan over the sweep
// grid; one row per round with trial-averaged observables. `batched`
// selects the simulator's batched arrival stream (the high-throughput
// default) — per-event delivery produces a bit-identical table
// (tests/simrun_test.cc enforces the equivalence).
[[nodiscard]] table demand_estimation_event_driven(
    const sweep_config& cfg = {}, std::size_t rounds = 12,
    std::size_t users = 300, std::size_t microservices = 25,
    std::size_t clouds = 10, bool batched = true);

// --- Theorem 3 / Theorem 7 ablation: measured ratios against the proven
// bounds W·Ξ (single-stage) and αβ/(β−1) (online).
[[nodiscard]] table ablation_bounds(
    const sweep_config& cfg = {},
    const std::vector<std::size_t>& bids_per_seller = {1, 2, 4});

// --- Ablation of MSOA's capacity-aware price scaling: the same
// tight-capacity markets run with the ψ-scaling active (Algorithm 2) and
// with it neutralized (α → ∞ makes ∇ = J, a myopic per-round SSAM).
// Expected: scaling lowers long-run social cost and leaves fewer rounds
// starved by early capacity depletion.
[[nodiscard]] table ablation_scaling(
    const sweep_config& cfg = {},
    const std::vector<std::size_t>& round_counts = {6, 10, 14},
    std::size_t sellers = 25);

// --- Mechanism comparison: SSAM under both payment rules, budgeted SSAM,
// reserve-price VCG, pay-as-bid and random selection — efficiency (social
// cost vs the exact optimum) against frugality (total payments).
[[nodiscard]] table payment_rules(
    const sweep_config& cfg = {}, std::size_t sellers = 12);

// --- §I motivation: auction vs posted-price repurchasing. Posted prices
// sweep a multiplier of the mean unit cost; the auction needs no tuning.
[[nodiscard]] table baseline_comparison(
    const sweep_config& cfg = {},
    const std::vector<double>& price_multipliers = {0.5, 0.75, 1.0, 1.5, 2.0,
                                                    3.0});

// --- Sharded multi-region marketplace (DESIGN.md §12): one SSAM/MSOA shard
// per edge cloud region on a ring backhaul, demand over-scaled past local
// supply so the spillover stage has cross-region work every round. One row
// per round: totals, spillover traffic and unmet demand. The table is
// byte-identical at any `threads` setting (tests/market_test enforces it).
struct marketplace_config {
  std::size_t regions = 10;
  std::size_t rounds = 5;
  std::size_t sellers_per_region = 8;
  std::size_t demanders_per_region = 4;
  // Post-clamp demand multiplier (> 1 leaves deficits only neighboring
  // regions can cover; see auction::regional_config::demand_scale).
  double demand_scale = 1.25;
  std::uint64_t seed = 1;
  // Shard fan-out width: 0 = shared pool at hardware width, 1 = serial,
  // k = at most k workers.
  std::size_t threads = 0;
  // Streaming ingestion mode (PR 9): per-round demand comes from a
  // workload::generator request stream fed through market::round_ingestor
  // (microservices = regions * demanders_per_region, round-robin hosted),
  // with the round-1 bid sets standing for the whole horizon so shard
  // warm-start engages. demand_scale / requirement caps apply through the
  // ingestor's quantization instead of the random requirement draw.
  bool streaming = false;
  std::uint32_t users = 300;   // stream width (streaming mode only)
  double unit_demand = 4.0;    // resource-seconds per requirement unit
  // Perf telemetry columns (allocs_per_round, spill_assembly_ms), OFF by
  // default: the base table must stay byte-identical across thread counts
  // and machines, and these columns are not. alloc_count supplies the
  // process-wide allocation counter (the bench binaries install an
  // operator-new hook); nullptr reports 0.
  bool perf_columns = false;
  std::uint64_t (*alloc_count)() = nullptr;
};

[[nodiscard]] table marketplace_rounds(const marketplace_config& cfg = {});

}  // namespace ecrs::harness
