// Full-pipeline driver: workload generator → edge cluster queueing →
// demand estimation (paper §II/§III + §V-A setup).
#include <algorithm>

#include "common/statistics.h"
#include "demand/estimator.h"
#include "des/simulator.h"
#include "edge/cluster.h"
#include "harness/experiments.h"
#include "harness/sweep.h"
#include "simrun/des_driver.h"
#include "workload/generator.h"

namespace ecrs::harness {

table demand_estimation_pipeline(std::uint64_t seed, std::size_t rounds,
                                 std::size_t users, std::size_t microservices,
                                 std::size_t clouds) {
  table out({"round", "arrivals", "served", "backlog_work",
             "mean_X_overloaded", "mean_X_idle", "mean_wait_s",
             "mean_utilization"});

  workload::generator_config wcfg;
  wcfg.users = static_cast<std::uint32_t>(users);
  wcfg.microservices = static_cast<std::uint32_t>(microservices);
  wcfg.seed = seed;
  workload::generator gen(wcfg);

  std::vector<workload::qos_class> qos;
  qos.reserve(microservices);
  for (std::uint32_t s = 0; s < microservices; ++s) {
    qos.push_back(gen.class_of(s));
  }

  // Capacity chosen so the cluster runs near saturation: expected work per
  // round is users*(sensitive+tolerant means)*mean_demand resource-seconds.
  const double round_duration = 600.0;  // paper: 10-minute rounds
  const double expected_work =
      static_cast<double>(users) *
      (wcfg.sensitive_mean + wcfg.tolerant_mean) * wcfg.mean_service_demand;
  edge::cluster_config ccfg;
  ccfg.clouds = static_cast<std::uint32_t>(clouds);
  // 130% of the rate needed on average: with random placement some clouds
  // still end up overloaded while others idle, which is exactly the
  // contrast the demand estimator must surface.
  ccfg.capacity_per_cloud = 1.3 * expected_work / round_duration /
                            static_cast<double>(clouds);
  ccfg.seed = seed ^ 0x9e37u;
  edge::cluster cluster(ccfg, qos);

  demand::estimator estimator(demand::make_default_config());

  double now = 0.0;
  for (std::size_t r = 1; r <= rounds; ++r) {
    const auto batch = gen.round(now, round_duration);
    cluster.allocate_fair(round_duration);
    cluster.route(batch);
    cluster.advance(now, round_duration);
    const auto stats = cluster.end_round(r, round_duration);
    const auto estimates = estimator.estimate_round(stats);

    std::uint64_t arrivals = 0;
    std::uint64_t served = 0;
    double backlog = 0.0;
    running_stats wait;
    running_stats util;
    running_stats x_overloaded;
    running_stats x_idle;
    for (std::size_t s = 0; s < stats.size(); ++s) {
      arrivals += stats[s].received;
      served += stats[s].served;
      backlog += stats[s].backlog_work;
      wait.add(stats[s].mean_wait);
      util.add(stats[s].utilization);
      if (stats[s].backlog_work > 0.0) {
        x_overloaded.add(estimates[s]);
      } else {
        x_idle.add(estimates[s]);
      }
    }
    out.add_row({static_cast<long long>(r), static_cast<long long>(arrivals),
                 static_cast<long long>(served), backlog,
                 x_overloaded.empty() ? 0.0 : x_overloaded.mean(),
                 x_idle.empty() ? 0.0 : x_idle.mean(),
                 wait.empty() ? 0.0 : wait.mean(),
                 util.empty() ? 0.0 : util.mean()});
    now += round_duration;
  }
  return out;
}

namespace {

// Per-(trial, round) observables carried from a sweep cell to the reducer.
struct event_round_obs {
  std::uint64_t arrivals = 0;
  std::uint64_t served = 0;
  double backlog = 0.0;
  double mean_estimate = 0.0;
  double mean_wait = 0.0;
  double mean_utilization = 0.0;
};

}  // namespace

table demand_estimation_event_driven(const sweep_config& cfg,
                                     std::size_t rounds, std::size_t users,
                                     std::size_t microservices,
                                     std::size_t clouds, bool batched) {
  table out({"round", "arrivals", "served", "backlog_work", "mean_X",
             "mean_wait_s", "mean_utilization"});

  const double round_duration = 600.0;  // paper: 10-minute rounds
  sweep_runner runner(cfg.seed, /*figure=*/91, cfg.trials, cfg.threads);
  runner.run<std::vector<event_round_obs>>(
      /*points=*/1,
      [&](sweep_cell& ctx) {
        workload::generator_config wcfg;
        wcfg.users = static_cast<std::uint32_t>(users);
        wcfg.microservices = static_cast<std::uint32_t>(microservices);
        wcfg.seed = ctx.gen();
        workload::generator gen(wcfg);

        std::vector<workload::qos_class> qos;
        qos.reserve(microservices);
        for (std::uint32_t s = 0; s < microservices; ++s) {
          qos.push_back(gen.class_of(s));
        }

        // Same near-saturation sizing as demand_estimation_pipeline.
        const double expected_work = static_cast<double>(users) *
                                     (wcfg.sensitive_mean + wcfg.tolerant_mean) *
                                     wcfg.mean_service_demand;
        edge::cluster_config ccfg;
        ccfg.clouds = static_cast<std::uint32_t>(clouds);
        ccfg.capacity_per_cloud = 1.3 * expected_work / round_duration /
                                  static_cast<double>(clouds);
        ccfg.seed = ctx.gen();
        edge::cluster cluster(ccfg, qos);

        demand::estimator estimator(demand::make_default_config());

        des::simulator sim;
        edge::des_driver_config dcfg;
        dcfg.round_duration = round_duration;
        dcfg.rounds = rounds;
        dcfg.delivery = batched ? edge::delivery_mode::batched
                                : edge::delivery_mode::per_event;
        edge::des_driver driver(sim, cluster, gen, estimator, dcfg);

        std::vector<event_round_obs> per_round;
        per_round.reserve(rounds);
        driver.set_round_callback(
            [&](std::uint64_t, const std::vector<edge::round_stats>& stats,
                const std::vector<double>& estimates) {
              event_round_obs obs;
              running_stats est;
              running_stats wait;
              running_stats util;
              for (std::size_t s = 0; s < stats.size(); ++s) {
                obs.arrivals += stats[s].received;
                obs.served += stats[s].served;
                obs.backlog += stats[s].backlog_work;
                est.add(estimates[s]);
                wait.add(stats[s].mean_wait);
                util.add(stats[s].utilization);
              }
              obs.mean_estimate = est.empty() ? 0.0 : est.mean();
              obs.mean_wait = wait.empty() ? 0.0 : wait.mean();
              obs.mean_utilization = util.empty() ? 0.0 : util.mean();
              per_round.push_back(obs);
            });
        driver.run();
        return per_round;
      },
      [&](std::size_t, std::span<const std::vector<event_round_obs>> trials) {
        for (std::size_t r = 0; r < rounds; ++r) {
          double arrivals = 0.0;
          double served = 0.0;
          double backlog = 0.0;
          double est = 0.0;
          double wait = 0.0;
          double util = 0.0;
          for (const auto& trial : trials) {
            arrivals += static_cast<double>(trial[r].arrivals);
            served += static_cast<double>(trial[r].served);
            backlog += trial[r].backlog;
            est += trial[r].mean_estimate;
            wait += trial[r].mean_wait;
            util += trial[r].mean_utilization;
          }
          const auto n = static_cast<double>(trials.size());
          out.add_row({static_cast<long long>(r + 1), arrivals / n, served / n,
                       backlog / n, est / n, wait / n, util / n});
        }
      });
  return out;
}

}  // namespace ecrs::harness
