// Full-pipeline driver: workload generator → edge cluster queueing →
// demand estimation (paper §II/§III + §V-A setup).
#include <algorithm>

#include "common/statistics.h"
#include "demand/estimator.h"
#include "edge/cluster.h"
#include "harness/experiments.h"
#include "workload/generator.h"

namespace ecrs::harness {

table demand_estimation_pipeline(std::uint64_t seed, std::size_t rounds,
                                 std::size_t users, std::size_t microservices,
                                 std::size_t clouds) {
  table out({"round", "arrivals", "served", "backlog_work",
             "mean_X_overloaded", "mean_X_idle", "mean_wait_s",
             "mean_utilization"});

  workload::generator_config wcfg;
  wcfg.users = static_cast<std::uint32_t>(users);
  wcfg.microservices = static_cast<std::uint32_t>(microservices);
  wcfg.seed = seed;
  workload::generator gen(wcfg);

  std::vector<workload::qos_class> qos;
  qos.reserve(microservices);
  for (std::uint32_t s = 0; s < microservices; ++s) {
    qos.push_back(gen.class_of(s));
  }

  // Capacity chosen so the cluster runs near saturation: expected work per
  // round is users*(sensitive+tolerant means)*mean_demand resource-seconds.
  const double round_duration = 600.0;  // paper: 10-minute rounds
  const double expected_work =
      static_cast<double>(users) *
      (wcfg.sensitive_mean + wcfg.tolerant_mean) * wcfg.mean_service_demand;
  edge::cluster_config ccfg;
  ccfg.clouds = static_cast<std::uint32_t>(clouds);
  // 130% of the rate needed on average: with random placement some clouds
  // still end up overloaded while others idle, which is exactly the
  // contrast the demand estimator must surface.
  ccfg.capacity_per_cloud = 1.3 * expected_work / round_duration /
                            static_cast<double>(clouds);
  ccfg.seed = seed ^ 0x9e37u;
  edge::cluster cluster(ccfg, qos);

  demand::estimator estimator(demand::make_default_config());

  double now = 0.0;
  for (std::size_t r = 1; r <= rounds; ++r) {
    const auto batch = gen.round(now, round_duration);
    cluster.allocate_fair(round_duration);
    cluster.route(batch);
    cluster.advance(now, round_duration);
    const auto stats = cluster.end_round(r, round_duration);
    const auto estimates = estimator.estimate_round(stats);

    std::uint64_t arrivals = 0;
    std::uint64_t served = 0;
    double backlog = 0.0;
    running_stats wait;
    running_stats util;
    running_stats x_overloaded;
    running_stats x_idle;
    for (std::size_t s = 0; s < stats.size(); ++s) {
      arrivals += stats[s].received;
      served += stats[s].served;
      backlog += stats[s].backlog_work;
      wait.add(stats[s].mean_wait);
      util.add(stats[s].utilization);
      if (stats[s].backlog_work > 0.0) {
        x_overloaded.add(estimates[s]);
      } else {
        x_idle.add(estimates[s]);
      }
    }
    out.add_row({static_cast<long long>(r), static_cast<long long>(arrivals),
                 static_cast<long long>(served), backlog,
                 x_overloaded.empty() ? 0.0 : x_overloaded.mean(),
                 x_idle.empty() ? 0.0 : x_idle.mean(),
                 wait.empty() ? 0.0 : wait.mean(),
                 util.empty() ? 0.0 : util.mean()});
    now += round_duration;
  }
  return out;
}

}  // namespace ecrs::harness
