// Experiment metric aggregation: per-trial accumulators for the quantities
// every figure reports (social cost, payments, reference optimum,
// performance ratio, runtime).
#pragma once

#include <cstddef>

#include "common/statistics.h"

namespace ecrs::metrics {

// Performance ratio of a mechanism against a reference cost (paper
// Definition 6 / §V-B). Guards the degenerate zero-cost case: 1 when both
// are ~0, infinity when only the reference is ~0.
[[nodiscard]] double performance_ratio(double mechanism_cost,
                                       double reference_cost);

// Half-width of the 95% confidence interval of the mean for a sample
// summarized by `stats` (Student t for small samples, normal beyond
// df = 30). Returns 0 for samples of size < 2.
[[nodiscard]] double ci95_half_width(const ecrs::running_stats& stats);

// Accumulates matched trials of (mechanism, reference) outcomes.
class trial_accumulator {
 public:
  void add_trial(double social_cost, double total_payment,
                 double reference_cost, double runtime_ms = 0.0);

  [[nodiscard]] std::size_t trials() const { return cost_.count(); }
  [[nodiscard]] double mean_cost() const { return cost_.mean(); }
  [[nodiscard]] double mean_payment() const { return payment_.mean(); }
  [[nodiscard]] double mean_reference() const { return reference_.mean(); }
  [[nodiscard]] double mean_ratio() const { return ratio_.mean(); }
  [[nodiscard]] double max_ratio() const { return ratio_.max(); }
  [[nodiscard]] double ratio_ci95() const { return ci95_half_width(ratio_); }
  [[nodiscard]] double mean_runtime_ms() const { return runtime_ms_.mean(); }

 private:
  ecrs::running_stats cost_;
  ecrs::running_stats payment_;
  ecrs::running_stats reference_;
  ecrs::running_stats ratio_;
  ecrs::running_stats runtime_ms_;
};

}  // namespace ecrs::metrics
