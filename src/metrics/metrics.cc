#include "metrics/metrics.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace ecrs::metrics {

double performance_ratio(double mechanism_cost, double reference_cost) {
  ECRS_CHECK_MSG(mechanism_cost >= 0.0 && reference_cost >= 0.0,
                 "costs must be non-negative");
  constexpr double kEps = 1e-12;
  if (reference_cost < kEps) {
    return mechanism_cost < kEps ? 1.0
                                 : std::numeric_limits<double>::infinity();
  }
  return mechanism_cost / reference_cost;
}

double ci95_half_width(const ecrs::running_stats& stats) {
  if (stats.count() < 2) return 0.0;
  // Two-sided 97.5% Student-t critical values for df = 1..30.
  static constexpr double kT975[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  const std::size_t df = stats.count() - 1;
  const double t = df <= 30 ? kT975[df - 1] : 1.960;
  const double sem = std::sqrt(stats.sample_variance() /
                               static_cast<double>(stats.count()));
  return t * sem;
}

void trial_accumulator::add_trial(double social_cost, double total_payment,
                                  double reference_cost, double runtime_ms) {
  cost_.add(social_cost);
  payment_.add(total_payment);
  reference_.add(reference_cost);
  ratio_.add(performance_ratio(social_cost, reference_cost));
  runtime_ms_.add(runtime_ms);
}

}  // namespace ecrs::metrics
