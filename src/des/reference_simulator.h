// Frozen pre-PR5 event engine, kept as an equivalence and benchmarking
// reference for the slab/indexed-heap simulator (des/simulator.h).
//
// This is the original design — one std::function per event, an
// unordered_map<event_id, record> registry, a std::priority_queue with
// lazy discarding of cancelled entries, and a run_until that re-pushes the
// peeked entry — preserved verbatim behind a pimpl so its std::function
// internals stay out of the header (ecrs-lint des-std-function).
// tests/des_test.cc drives both engines through identical scripts and
// requires identical observable behaviour; bench/des_throughput.cc times
// it as the "old shape" baseline. Do not optimise this class.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "des/simulator.h"  // sim_time, event_id

namespace ecrs::des {

class reference_simulator {
 public:
  using callback = std::function<void()>;

  reference_simulator();
  ~reference_simulator();
  reference_simulator(const reference_simulator&) = delete;
  reference_simulator& operator=(const reference_simulator&) = delete;

  [[nodiscard]] sim_time now() const;
  [[nodiscard]] std::size_t pending_events() const;
  [[nodiscard]] std::uint64_t executed_events() const;

  event_id schedule_at(sim_time when, callback fn);
  event_id schedule_in(sim_time delay, callback fn);
  event_id schedule_periodic(sim_time period, callback fn);
  bool cancel(event_id id);
  void run_until(sim_time horizon);
  void run();
  bool step();

 private:
  struct impl;
  std::unique_ptr<impl> impl_;
};

}  // namespace ecrs::des
