// Discrete-event simulation core.
//
// A single-threaded event loop with a virtual clock: events are callbacks
// scheduled at absolute or relative simulated times and executed in
// timestamp order (FIFO among equal timestamps). Supports cancellation,
// periodic processes, and batched time-sorted arrival streams. The
// edge-cloud queueing simulation (src/edge) and the workload generators
// (src/workload) are built on top of this.
//
// Engine layout (DESIGN.md section 10): pending events live in a slab of
// intrusive records addressed by generation-tagged handles (event_id =
// generation << 32 | slot). The slab is chunked so records never move —
// a periodic callback runs straight out of its own record — and freed
// slots recycle through an intrusive free list. Ordering is an indexed
// 4-ary heap whose entries cache the (timestamp, sequence) sort key next
// to the slot index, so sift comparisons stay inside the heap array
// instead of chasing into the slab: cancel removes its entry in place,
// periodic re-arm and stream advance are in-place sift-downs, so no stale
// entry is ever popped and run_until never re-pushes what it peeks.
// Callbacks use small-buffer storage (des/callback.h); typical lambdas
// never touch the allocator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/annotations.h"
#include "common/check.h"
#include "des/callback.h"

namespace ecrs::des {

using sim_time = double;
using event_id = std::uint64_t;

class simulator {
 public:
  using callback = basic_callback<void()>;
  // Receives the index of the stream entry that is firing.
  using drain_callback = basic_callback<void(std::size_t)>;

  simulator() = default;
  simulator(const simulator&) = delete;
  simulator& operator=(const simulator&) = delete;

  [[nodiscard]] sim_time now() const { return now_; }
  // Pending records: one-shots and periodic series count 1 each; a stream
  // counts 1 no matter how many entries it still holds.
  [[nodiscard]] std::size_t pending_events() const { return heap_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

  // Schedule `fn` at absolute time `when` (must be >= now()).
  ECRS_HOT event_id schedule_at(sim_time when, callback fn);

  // Schedule `fn` after `delay` (must be >= 0).
  ECRS_HOT event_id schedule_in(sim_time delay, callback fn);

  // Schedule `fn` every `period`, starting at now() + period. The returned
  // id identifies the whole series; cancel(id) stops it (including from
  // within the callback itself). Firing k lands exactly on
  // schedule_time + k * period — no floating-point drift accumulates
  // across firings.
  ECRS_HOT event_id schedule_periodic(sim_time period, callback fn);

  // Register a time-sorted batch of events as ONE pending record: on_item(i)
  // fires at times[i], interleaved with heap events exactly as if each entry
  // had been schedule_at'ed individually (in order) at registration time —
  // same FIFO tie-breaks, same executed_events() accounting — but with O(1)
  // schedules and allocations per batch. `times` must be sorted ascending
  // with times.front() >= now(), and the span must stay valid until the
  // stream drains or is cancelled. The returned id cancels the remainder of
  // the stream. An empty span is a no-op returning 0 (never a valid id).
  ECRS_HOT event_id schedule_stream(std::span<const sim_time> times,
                           drain_callback on_item);

  // Cancel a pending event, periodic series, or stream remainder. Returns
  // false if the event already ran or does not exist (cancelling twice is
  // harmless).
  ECRS_HOT bool cancel(event_id id);

  // Run events with timestamp <= horizon, then advance the clock to at
  // least `horizon` (events beyond it stay pending).
  ECRS_HOT void run_until(sim_time horizon);

  // Run all pending events (including those scheduled while running).
  // Periodic series must be cancelled first or this never returns; prefer
  // run_until for simulations containing periodic processes.
  ECRS_HOT void run();

  // Execute at most one event; returns false if none was pending.
  ECRS_HOT bool step();

 private:
  enum class event_kind : std::uint8_t { one_shot, periodic, stream };

  static constexpr std::uint32_t npos = 0xffffffffu;
  static constexpr std::size_t chunk_shift = 8;
  static constexpr std::size_t chunk_size = std::size_t{1} << chunk_shift;

  struct record {
    sim_time when = 0.0;
    std::uint64_t seq = 0;  // FIFO tie-break among equal timestamps
    callback fn;
    drain_callback drain;
    // Periodic series: firing k fires at anchor + k * period.
    sim_time period = 0.0;
    sim_time anchor = 0.0;
    std::uint64_t firing = 0;  // index of the next firing (1-based)
    // Stream lane.
    const sim_time* stream_times = nullptr;
    std::size_t stream_len = 0;
    std::size_t stream_pos = 0;
    std::uint64_t stream_seq_base = 0;
    // Handle/slab bookkeeping.
    std::uint32_t generation = 1;  // bumped on release; id must match
    std::uint32_t heap_pos = npos;
    std::uint32_t next_free = npos;
    event_kind kind = event_kind::one_shot;
    bool live = false;
  };

  // Heap entries carry a copy of the record's sort key: comparisons during
  // sifts touch only the (hot, contiguous) heap array, never the slab.
  struct heap_entry {
    sim_time when = 0.0;
    std::uint64_t seq = 0;
    std::uint32_t slot = npos;
  };

  [[nodiscard]] ECRS_HOT record& slot(std::uint32_t s) {
    return chunks_[s >> chunk_shift][s & (chunk_size - 1)];
  }
  [[nodiscard]] ECRS_HOT const record& slot(std::uint32_t s) const {
    return chunks_[s >> chunk_shift][s & (chunk_size - 1)];
  }

  // (timestamp, sequence) lexicographic heap order.
  [[nodiscard]] ECRS_HOT static bool before(const heap_entry& a,
                                            const heap_entry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  ECRS_HOT std::uint32_t acquire_slot();
  ECRS_HOT void release_slot(std::uint32_t s);
  // ECRS_HOT_ESCAPE: appends one slab chunk. Chunks are never returned, so
  // after the high-water slot count has been reached acquire_slot() never
  // gets here again — steady-state scheduling stays allocation-free.
  ECRS_HOT_ESCAPE void grow_chunk();
  ECRS_HOT static event_id encode(std::uint32_t generation, std::uint32_t s) {
    return (static_cast<event_id>(generation) << 32) | s;
  }
  // Returns the slot if `id` names a live record, npos otherwise.
  [[nodiscard]] ECRS_HOT std::uint32_t resolve(event_id id) const;

  ECRS_HOT void heap_push(std::uint32_t s);
  ECRS_HOT void heap_remove(std::uint32_t pos);
  ECRS_HOT void sift_up(std::uint32_t pos);
  ECRS_HOT void sift_down(std::uint32_t pos);
  // Re-key the heap top (periodic re-arm / stream cursor advance: the key
  // only grows) and restore heap order with one in-place sift-down.
  ECRS_HOT void rekey_top(sim_time when, std::uint64_t seq);

  sim_time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::vector<std::unique_ptr<record[]>> chunks_;
  std::uint32_t slots_in_use_ = 0;  // high-water slot count across chunks
  std::uint32_t free_head_ = npos;
  std::vector<heap_entry> heap_;  // 4-ary, indexed via record::heap_pos
  // Slot whose callback is currently executing out of its own record
  // (periodic firing / stream drain); a self-cancel defers the release
  // until the callback returns.
  std::uint32_t running_slot_ = npos;
  bool running_cancelled_ = false;
};

}  // namespace ecrs::des
