// Discrete-event simulation core.
//
// A single-threaded event loop with a virtual clock: events are callbacks
// scheduled at absolute or relative simulated times and executed in
// timestamp order (FIFO among equal timestamps). Supports cancellation and
// periodic processes. The edge-cloud queueing simulation (src/edge) and the
// workload generators (src/workload) are built on top of this.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/check.h"

namespace ecrs::des {

using sim_time = double;
using event_id = std::uint64_t;

class simulator {
 public:
  using callback = std::function<void()>;

  simulator() = default;
  simulator(const simulator&) = delete;
  simulator& operator=(const simulator&) = delete;

  [[nodiscard]] sim_time now() const { return now_; }
  [[nodiscard]] std::size_t pending_events() const { return records_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

  // Schedule `fn` at absolute time `when` (must be >= now()).
  event_id schedule_at(sim_time when, callback fn);

  // Schedule `fn` after `delay` (must be >= 0).
  event_id schedule_in(sim_time delay, callback fn);

  // Schedule `fn` every `period`, starting at now() + period. The returned
  // id identifies the whole series; cancel(id) stops it (including from
  // within the callback itself).
  event_id schedule_periodic(sim_time period, callback fn);

  // Cancel a pending event or periodic series. Returns false if the event
  // already ran or does not exist (cancelling twice is harmless).
  bool cancel(event_id id);

  // Run events with timestamp <= horizon, then advance the clock to at
  // least `horizon` (events beyond it stay pending).
  void run_until(sim_time horizon);

  // Run all pending events (including those scheduled while running).
  // Periodic series must be cancelled first or this never returns; prefer
  // run_until for simulations containing periodic processes.
  void run();

  // Execute at most one event; returns false if none was pending.
  bool step();

 private:
  struct heap_entry {
    sim_time when;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    event_id id;
  };
  struct heap_order {
    bool operator()(const heap_entry& a, const heap_entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  struct record {
    callback fn;
    sim_time period = 0.0;  // > 0 for periodic series
  };

  // Pops the next live entry, discarding stale/cancelled ones. Returns
  // false when the queue is exhausted.
  bool pop_next(heap_entry& out);
  void push(sim_time when, event_id id);

  sim_time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  event_id next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<heap_entry, std::vector<heap_entry>, heap_order> heap_;
  std::unordered_map<event_id, record> records_;
};

}  // namespace ecrs::des
