#include "des/reference_simulator.h"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"

namespace ecrs::des {

// The pre-PR5 engine, verbatim (see the header for why it is preserved).
struct reference_simulator::impl {
  struct heap_entry {
    sim_time when;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    event_id id;
  };
  struct heap_order {
    bool operator()(const heap_entry& a, const heap_entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  struct record {
    callback fn;
    sim_time period = 0.0;  // > 0 for periodic series
  };

  sim_time now = 0.0;
  std::uint64_t next_seq = 0;
  event_id next_id = 1;
  std::uint64_t executed = 0;
  std::priority_queue<heap_entry, std::vector<heap_entry>, heap_order> heap;
  std::unordered_map<event_id, record> records;

  void push(sim_time when, event_id id) {
    heap.push(heap_entry{when, next_seq++, id});
  }

  // Pops the next live entry, discarding stale/cancelled ones. Returns
  // false when the queue is exhausted.
  bool pop_next(heap_entry& out) {
    while (!heap.empty()) {
      heap_entry top = heap.top();
      heap.pop();
      if (records.count(top.id) == 0) continue;  // cancelled or stale
      out = top;
      return true;
    }
    return false;
  }

  bool step() {
    heap_entry next{};
    if (!pop_next(next)) return false;
    now = next.when;
    auto it = records.find(next.id);
    ECRS_DCHECK(it != records.end());
    ++executed;
    if (it->second.period > 0.0) {
      // Re-arm before running so cancel(id) from inside the callback
      // removes the record and pop_next discards the re-armed entry.
      push(now + it->second.period, next.id);
      // Copy: the callback may mutate records (schedule/cancel), which can
      // invalidate `it`.
      callback fn = it->second.fn;
      fn();
    } else {
      callback fn = std::move(it->second.fn);
      records.erase(it);
      fn();
    }
    return true;
  }
};

reference_simulator::reference_simulator() : impl_(std::make_unique<impl>()) {}
reference_simulator::~reference_simulator() = default;

sim_time reference_simulator::now() const { return impl_->now; }

std::size_t reference_simulator::pending_events() const {
  return impl_->records.size();
}

std::uint64_t reference_simulator::executed_events() const {
  return impl_->executed;
}

event_id reference_simulator::schedule_at(sim_time when, callback fn) {
  ECRS_CHECK_MSG(when >= impl_->now, "cannot schedule in the past: "
                                         << when << " < " << impl_->now);
  ECRS_CHECK_MSG(fn != nullptr, "null event callback");
  const event_id id = impl_->next_id++;
  impl_->records.emplace(id, impl::record{std::move(fn), 0.0});
  impl_->push(when, id);
  return id;
}

event_id reference_simulator::schedule_in(sim_time delay, callback fn) {
  ECRS_CHECK_MSG(delay >= 0.0, "negative delay: " << delay);
  return schedule_at(impl_->now + delay, std::move(fn));
}

event_id reference_simulator::schedule_periodic(sim_time period, callback fn) {
  ECRS_CHECK_MSG(period > 0.0, "periodic events need a positive period");
  ECRS_CHECK_MSG(fn != nullptr, "null event callback");
  const event_id id = impl_->next_id++;
  impl_->records.emplace(id, impl::record{std::move(fn), period});
  impl_->push(impl_->now + period, id);
  return id;
}

bool reference_simulator::cancel(event_id id) {
  return impl_->records.erase(id) > 0;
}

bool reference_simulator::step() { return impl_->step(); }

void reference_simulator::run_until(sim_time horizon) {
  ECRS_CHECK_MSG(horizon >= impl_->now, "horizon is in the past");
  impl::heap_entry next{};
  while (impl_->pop_next(next)) {
    if (next.when > horizon) {
      impl_->heap.push(next);  // keep it pending beyond the horizon
      break;
    }
    impl_->heap.push(next);  // step() re-pops; both paths share bookkeeping
    impl_->step();
  }
  impl_->now = std::max(impl_->now, horizon);
}

void reference_simulator::run() {
  while (impl_->step()) {
  }
}

}  // namespace ecrs::des
