#include "des/simulator.h"

#include <algorithm>
#include <utility>

namespace ecrs::des {

void simulator::push(sim_time when, event_id id) {
  heap_.push(heap_entry{when, next_seq_++, id});
}

event_id simulator::schedule_at(sim_time when, callback fn) {
  ECRS_CHECK_MSG(when >= now_,
                 "cannot schedule in the past: " << when << " < " << now_);
  ECRS_CHECK_MSG(fn != nullptr, "null event callback");
  const event_id id = next_id_++;
  records_.emplace(id, record{std::move(fn), 0.0});
  push(when, id);
  return id;
}

event_id simulator::schedule_in(sim_time delay, callback fn) {
  ECRS_CHECK_MSG(delay >= 0.0, "negative delay: " << delay);
  return schedule_at(now_ + delay, std::move(fn));
}

event_id simulator::schedule_periodic(sim_time period, callback fn) {
  ECRS_CHECK_MSG(period > 0.0, "periodic events need a positive period");
  ECRS_CHECK_MSG(fn != nullptr, "null event callback");
  const event_id id = next_id_++;
  records_.emplace(id, record{std::move(fn), period});
  push(now_ + period, id);
  return id;
}

bool simulator::cancel(event_id id) { return records_.erase(id) > 0; }

bool simulator::pop_next(heap_entry& out) {
  while (!heap_.empty()) {
    heap_entry top = heap_.top();
    heap_.pop();
    if (records_.count(top.id) == 0) continue;  // cancelled or stale
    out = top;
    return true;
  }
  return false;
}

bool simulator::step() {
  heap_entry next{};
  if (!pop_next(next)) return false;
  now_ = next.when;
  auto it = records_.find(next.id);
  ECRS_DCHECK(it != records_.end());
  ++executed_;
  if (it->second.period > 0.0) {
    // Re-arm before running so cancel(id) from inside the callback removes
    // the record and pop_next discards the re-armed entry.
    push(now_ + it->second.period, next.id);
    // Copy: the callback may mutate records_ (schedule/cancel), which can
    // invalidate `it`.
    callback fn = it->second.fn;
    fn();
  } else {
    callback fn = std::move(it->second.fn);
    records_.erase(it);
    fn();
  }
  return true;
}

void simulator::run_until(sim_time horizon) {
  ECRS_CHECK_MSG(horizon >= now_, "horizon is in the past");
  heap_entry next{};
  while (pop_next(next)) {
    if (next.when > horizon) {
      heap_.push(next);  // keep it pending beyond the horizon
      break;
    }
    heap_.push(next);  // step() re-pops; both paths share bookkeeping
    step();
  }
  now_ = std::max(now_, horizon);
}

void simulator::run() {
  while (step()) {
  }
}

}  // namespace ecrs::des
