#include "des/simulator.h"

#include <algorithm>
#include <utility>

namespace ecrs::des {

ECRS_HOT std::uint32_t simulator::acquire_slot() {
  std::uint32_t s;
  if (free_head_ != npos) {
    s = free_head_;
    free_head_ = slot(s).next_free;
  } else {
    if ((slots_in_use_ >> chunk_shift) >= chunks_.size()) grow_chunk();
    s = slots_in_use_++;
  }
  record& rec = slot(s);
  rec.live = true;
  rec.heap_pos = npos;
  rec.next_free = npos;
  return s;
}

// ECRS_HOT_ESCAPE (declared in the header): the one place the event slab
// touches the system allocator; amortized away once the simulation's
// high-water event count has been seen.
ECRS_HOT_ESCAPE void simulator::grow_chunk() {
  chunks_.push_back(std::make_unique<record[]>(chunk_size));
}

ECRS_HOT void simulator::release_slot(std::uint32_t s) {
  record& rec = slot(s);
  rec.live = false;
  ++rec.generation;  // stale handles to this slot stop resolving
  rec.fn = nullptr;
  rec.drain = nullptr;
  rec.stream_times = nullptr;
  rec.period = 0.0;
  rec.heap_pos = npos;
  rec.next_free = free_head_;
  free_head_ = s;
}

ECRS_HOT std::uint32_t simulator::resolve(event_id id) const {
  const auto s = static_cast<std::uint32_t>(id & 0xffffffffULL);
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  if (generation == 0 || s >= slots_in_use_) return npos;
  const record& rec = slot(s);
  if (!rec.live || rec.generation != generation) return npos;
  return s;
}

ECRS_HOT void simulator::sift_up(std::uint32_t pos) {
  const heap_entry e = heap_[pos];
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) >> 2;
    const heap_entry& pe = heap_[parent];
    if (!before(e, pe)) break;
    heap_[pos] = pe;
    slot(pe.slot).heap_pos = pos;
    pos = parent;
  }
  heap_[pos] = e;
  slot(e.slot).heap_pos = pos;
}

ECRS_HOT void simulator::sift_down(std::uint32_t pos) {
  const std::size_t n = heap_.size();
  const heap_entry e = heap_[pos];
  while (true) {
    const std::size_t first = 4 * static_cast<std::size_t>(pos) + 1;
    if (first >= n) break;
    const std::size_t last = std::min(first + 4, n);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], e)) break;
    heap_[pos] = heap_[best];
    slot(heap_[pos].slot).heap_pos = pos;
    pos = static_cast<std::uint32_t>(best);
  }
  heap_[pos] = e;
  slot(e.slot).heap_pos = pos;
}

ECRS_HOT void simulator::heap_push(std::uint32_t s) {
  const record& rec = slot(s);
  const auto pos = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(heap_entry{rec.when, rec.seq, s});
  slot(s).heap_pos = pos;
  sift_up(pos);
}

ECRS_HOT void simulator::heap_remove(std::uint32_t pos) {
  ECRS_DCHECK(pos < heap_.size());
  slot(heap_[pos].slot).heap_pos = npos;
  const auto last = static_cast<std::uint32_t>(heap_.size()) - 1;
  heap_[pos] = heap_[last];
  heap_.pop_back();
  if (pos == last) return;
  slot(heap_[pos].slot).heap_pos = pos;
  if (pos > 0 && before(heap_[pos], heap_[(pos - 1) >> 2])) {
    sift_up(pos);
  } else {
    sift_down(pos);
  }
}

ECRS_HOT void simulator::rekey_top(sim_time when, std::uint64_t seq) {
  heap_[0].when = when;
  heap_[0].seq = seq;
  sift_down(0);
}

ECRS_HOT event_id simulator::schedule_at(sim_time when, callback fn) {
  ECRS_CHECK_MSG(when >= now_,
                 "cannot schedule in the past: " << when << " < " << now_);
  ECRS_CHECK_MSG(fn != nullptr, "null event callback");
  const std::uint32_t s = acquire_slot();
  record& rec = slot(s);
  rec.kind = event_kind::one_shot;
  rec.when = when;
  rec.seq = next_seq_++;
  rec.fn = std::move(fn);
  heap_push(s);
  return encode(rec.generation, s);
}

ECRS_HOT event_id simulator::schedule_in(sim_time delay, callback fn) {
  ECRS_CHECK_MSG(delay >= 0.0, "negative delay: " << delay);
  return schedule_at(now_ + delay, std::move(fn));
}

ECRS_HOT event_id simulator::schedule_periodic(sim_time period,
                                       callback fn) {
  ECRS_CHECK_MSG(period > 0.0, "periodic events need a positive period");
  ECRS_CHECK_MSG(fn != nullptr, "null event callback");
  const std::uint32_t s = acquire_slot();
  record& rec = slot(s);
  rec.kind = event_kind::periodic;
  rec.period = period;
  rec.anchor = now_;
  rec.firing = 1;
  rec.when = rec.anchor + period;
  rec.seq = next_seq_++;
  rec.fn = std::move(fn);
  heap_push(s);
  return encode(rec.generation, s);
}

ECRS_HOT event_id simulator::schedule_stream(std::span<const sim_time> times,
                                             drain_callback on_item) {
  if (times.empty()) return 0;
  ECRS_CHECK_MSG(on_item != nullptr, "null stream callback");
  ECRS_CHECK_MSG(times.front() >= now_,
                 "stream starts in the past: " << times.front() << " < "
                                               << now_);
  for (std::size_t i = 1; i < times.size(); ++i) {
    ECRS_CHECK_MSG(times[i] >= times[i - 1],
                   "stream times must be sorted ascending (entry " << i << ")");
  }
  const std::uint32_t s = acquire_slot();
  record& rec = slot(s);
  rec.kind = event_kind::stream;
  rec.stream_times = times.data();
  rec.stream_len = times.size();
  rec.stream_pos = 0;
  // Claim one sequence number per entry, exactly as per-entry schedule_at
  // calls would have: equal-timestamp ties against heap events resolve
  // identically to the unbatched reference.
  rec.stream_seq_base = next_seq_;
  next_seq_ += times.size();
  rec.when = times.front();
  rec.seq = rec.stream_seq_base;
  rec.drain = std::move(on_item);
  heap_push(s);
  return encode(rec.generation, s);
}

ECRS_HOT bool simulator::cancel(event_id id) {
  const std::uint32_t s = resolve(id);
  if (s == npos) return false;
  record& rec = slot(s);
  if (rec.heap_pos != npos) heap_remove(rec.heap_pos);
  if (s == running_slot_) {
    // The record's own callback is executing right now; destroying the
    // callable would pull the lambda out from under itself. Mark dead and
    // let step() release the slot once the callback returns.
    rec.live = false;
    running_cancelled_ = true;
    return true;
  }
  release_slot(s);
  return true;
}

ECRS_HOT bool simulator::step() {
  if (heap_.empty()) return false;
  const std::uint32_t s = heap_[0].slot;
  record& rec = slot(s);  // chunked slab: stays valid across scheduling
  now_ = rec.when;
  ++executed_;
  switch (rec.kind) {
    case event_kind::one_shot: {
      heap_remove(0);
      callback fn = std::move(rec.fn);
      // Released before running, so a cancel of the own id from inside the
      // callback reports "already ran" — same contract as before.
      release_slot(s);
      fn();
      break;
    }
    case event_kind::periodic: {
      // Re-arm in place (the key only grows, so one sift-down) before
      // running, so cancel(id) from inside the callback removes the series.
      // Firings stay anchored at schedule_time + k * period: repeated
      // `when += period` would accumulate floating-point drift.
      ++rec.firing;
      rec.when = rec.anchor + static_cast<sim_time>(rec.firing) * rec.period;
      rec.seq = next_seq_++;
      rekey_top(rec.when, rec.seq);
      running_slot_ = s;
      running_cancelled_ = false;
      rec.fn();  // runs out of the stable slab record: no per-firing copy
      running_slot_ = npos;
      if (running_cancelled_) {
        running_cancelled_ = false;
        release_slot(s);
      }
      break;
    }
    case event_kind::stream: {
      const std::size_t item = rec.stream_pos++;
      if (rec.stream_pos < rec.stream_len) {
        rec.when = rec.stream_times[rec.stream_pos];
        rec.seq = rec.stream_seq_base + rec.stream_pos;
        rekey_top(rec.when, rec.seq);
        running_slot_ = s;
        running_cancelled_ = false;
        rec.drain(item);
        running_slot_ = npos;
        if (running_cancelled_) {
          running_cancelled_ = false;
          release_slot(s);
        }
      } else {
        heap_remove(0);
        drain_callback on_item = std::move(rec.drain);
        release_slot(s);
        on_item(item);
      }
      break;
    }
  }
  return true;
}

ECRS_HOT void simulator::run_until(sim_time horizon) {
  ECRS_CHECK_MSG(horizon >= now_, "horizon is in the past");
  while (!heap_.empty() && heap_[0].when <= horizon) step();
  now_ = std::max(now_, horizon);
}

ECRS_HOT void simulator::run() {
  while (step()) {
  }
}

}  // namespace ecrs::des
