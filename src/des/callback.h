// Small-buffer callable storage for the event engine.
//
// basic_callback<Sig> is a move-only type-erased callable like
// std::function, minus the copyability requirement and minus the allocator
// round-trip for small targets: callables up to `inline_capacity` bytes
// (comfortably a lambda capturing a `this` pointer plus a
// workload::request) live inside the object itself. Larger or
// throwing-move targets fall back to a single heap cell so moves stay
// noexcept pointer swaps. The event slab (des/simulator.h) stores millions
// of these; per-event allocator traffic is what this type exists to avoid.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace ecrs::des {

template <typename Sig>
class basic_callback;

template <typename R, typename... Args>
class basic_callback<R(Args...)> {
 public:
  // Sized so a lambda capturing `this` + one workload::request stays
  // inline; std::function<void()> (32 bytes on libstdc++) also fits, so
  // wrapping one never double-allocates.
  static constexpr std::size_t inline_capacity = 48;

  basic_callback() noexcept = default;
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors std::function.
  basic_callback(std::nullptr_t) noexcept {}

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, basic_callback> &&
                !std::is_same_v<D, std::nullptr_t> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors std::function.
  basic_callback(F&& f) {
    if constexpr (stored_inline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &inline_ops<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &boxed_ops<D>;
    }
  }

  basic_callback(basic_callback&& other) noexcept { take(other); }

  basic_callback& operator=(basic_callback&& other) noexcept {
    if (this != &other) {
      reset();
      take(other);
    }
    return *this;
  }

  basic_callback& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  basic_callback(const basic_callback&) = delete;
  basic_callback& operator=(const basic_callback&) = delete;

  ~basic_callback() { reset(); }

  R operator()(Args... args) {
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  friend bool operator==(const basic_callback& cb, std::nullptr_t) noexcept {
    return cb.ops_ == nullptr;
  }

 private:
  struct ops_table {
    R (*invoke)(void* storage, Args&&... args);
    // Move-construct into `dst` from `src`, then destroy `src`'s target.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename D>
  static constexpr bool stored_inline =
      sizeof(D) <= inline_capacity &&
      alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  static constexpr ops_table inline_ops = {
      [](void* storage, Args&&... args) -> R {
        return (*static_cast<D*>(storage))(std::forward<Args>(args)...);
      },
      [](void* dst, void* src) noexcept {
        ::new (dst) D(std::move(*static_cast<D*>(src)));
        static_cast<D*>(src)->~D();
      },
      [](void* storage) noexcept { static_cast<D*>(storage)->~D(); },
  };

  template <typename D>
  static constexpr ops_table boxed_ops = {
      [](void* storage, Args&&... args) -> R {
        return (**static_cast<D**>(storage))(std::forward<Args>(args)...);
      },
      [](void* dst, void* src) noexcept {
        ::new (dst) D*(*static_cast<D**>(src));
      },
      [](void* storage) noexcept { delete *static_cast<D**>(storage); },
  };

  void take(basic_callback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[inline_capacity];
  const ops_table* ops_ = nullptr;
};

}  // namespace ecrs::des
