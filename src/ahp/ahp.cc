#include "ahp/ahp.h"

#include <cmath>

#include "common/check.h"

namespace ecrs::ahp {

comparison_matrix::comparison_matrix(std::size_t n)
    : n_(n), data_(n * n, 1.0) {
  ECRS_CHECK_MSG(n >= 1, "comparison matrix needs at least one criterion");
}

void comparison_matrix::set_judgment(std::size_t i, std::size_t j,
                                     double value) {
  ECRS_CHECK(i < n_ && j < n_);
  ECRS_CHECK_MSG(i != j, "diagonal judgments are fixed at 1");
  ECRS_CHECK_MSG(value > 0.0, "judgments must be positive ratios");
  data_[i * n_ + j] = value;
  data_[j * n_ + i] = 1.0 / value;
}

double comparison_matrix::at(std::size_t i, std::size_t j) const {
  ECRS_CHECK(i < n_ && j < n_);
  return data_[i * n_ + j];
}

bool comparison_matrix::is_reciprocal(double tol) const {
  for (std::size_t i = 0; i < n_; ++i) {
    if (std::abs(at(i, i) - 1.0) > tol) return false;
    for (std::size_t j = i + 1; j < n_; ++j) {
      if (std::abs(at(i, j) * at(j, i) - 1.0) > tol) return false;
    }
  }
  return true;
}

double random_consistency_index(std::size_t n) {
  // Saaty's published RI values for orders 1..15.
  static constexpr double kRi[] = {0.0,  0.0,  0.0,  0.58, 0.90, 1.12,
                                   1.24, 1.32, 1.41, 1.45, 1.49, 1.51,
                                   1.48, 1.56, 1.57, 1.59};
  if (n == 0) return 0.0;
  if (n > 15) return kRi[15];
  return kRi[n];
}

ahp_result derive_weights(const comparison_matrix& m,
                          std::size_t max_iterations, double tolerance) {
  ECRS_CHECK_MSG(m.is_reciprocal(),
                 "AHP requires a reciprocal comparison matrix");
  const std::size_t n = m.size();
  ahp_result result;
  result.weights.assign(n, 1.0 / static_cast<double>(n));

  std::vector<double> next(n, 0.0);
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    // next = M * weights
    for (std::size_t i = 0; i < n; ++i) {
      double acc = 0.0;
      for (std::size_t j = 0; j < n; ++j) acc += m.at(i, j) * result.weights[j];
      next[i] = acc;
    }
    double norm = 0.0;
    for (double v : next) norm += v;
    ECRS_CHECK_MSG(norm > 0.0, "degenerate comparison matrix");
    double delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      next[i] /= norm;
      delta += std::abs(next[i] - result.weights[i]);
    }
    result.weights.swap(next);
    result.iterations = iter + 1;
    if (delta < tolerance) break;
  }

  // Rayleigh-quotient estimate of λmax: mean of (M·w)_i / w_i.
  double lambda = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < n; ++j) acc += m.at(i, j) * result.weights[j];
    lambda += acc / result.weights[i];
  }
  result.lambda_max = lambda / static_cast<double>(n);

  if (n > 1) {
    result.consistency_index =
        (result.lambda_max - static_cast<double>(n)) /
        (static_cast<double>(n) - 1.0);
    const double ri = random_consistency_index(n);
    result.consistency_ratio =
        ri > 0.0 ? result.consistency_index / ri : 0.0;
  }
  return result;
}

comparison_matrix default_demand_judgments() {
  // Order: waiting time (0), processing-rate slack (1), request rate (2).
  // Request rate is 2x waiting time and 4x processing slack; waiting time is
  // 2x processing slack. Perfectly consistent (it is a ratio scale), so the
  // derived weights are exactly (2/7, 1/7, 4/7).
  comparison_matrix m(3);
  m.set_judgment(2, 0, 2.0);
  m.set_judgment(2, 1, 4.0);
  m.set_judgment(0, 1, 2.0);
  return m;
}

}  // namespace ecrs::ahp
