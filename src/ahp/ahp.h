// Analytic Hierarchy Process (Saaty).
//
// The paper (§III) states that the demand-estimation scaling factors
// 1/w_γ, 1/w_ℝ, 1/w_𝕋 "can be decided by the analytical hierarchy process".
// This module implements AHP in full: a reciprocal pairwise-comparison
// matrix, its principal eigenvector (the criterion weights) computed by
// power iteration, and Saaty's consistency index / ratio to validate the
// judgments.
#pragma once

#include <cstddef>
#include <vector>

namespace ecrs::ahp {

// Square reciprocal matrix of pairwise judgments a_ij ("criterion i is a_ij
// times as important as criterion j"); a_ji = 1/a_ij, a_ii = 1.
class comparison_matrix {
 public:
  explicit comparison_matrix(std::size_t n);

  [[nodiscard]] std::size_t size() const { return n_; }

  // Set the judgment for (i, j), i != j; the reciprocal entry is maintained
  // automatically. value must be positive (Saaty scale is 1/9 .. 9 but any
  // positive ratio is accepted).
  void set_judgment(std::size_t i, std::size_t j, double value);

  [[nodiscard]] double at(std::size_t i, std::size_t j) const;

  // True if every entry satisfies a_ij * a_ji == 1 (within tolerance) and
  // the diagonal is 1.
  [[nodiscard]] bool is_reciprocal(double tol = 1e-9) const;

 private:
  std::size_t n_;
  std::vector<double> data_;
};

struct ahp_result {
  std::vector<double> weights;   // principal eigenvector, normalized to sum 1
  double lambda_max = 0.0;       // principal eigenvalue
  double consistency_index = 0.0;   // CI = (λmax − n) / (n − 1)
  double consistency_ratio = 0.0;   // CR = CI / RI(n)
  std::size_t iterations = 0;       // power-iteration steps used
};

// Saaty's random consistency index RI for matrix order n (n <= 15; larger
// orders reuse the n = 15 value). A CR below 0.10 is conventionally
// "consistent enough".
[[nodiscard]] double random_consistency_index(std::size_t n);

// Derive weights from a comparison matrix via power iteration.
// Throws ecrs::check_error if the matrix is not reciprocal.
[[nodiscard]] ahp_result derive_weights(const comparison_matrix& m,
                                        std::size_t max_iterations = 1000,
                                        double tolerance = 1e-12);

// The paper's three demand criteria in a fixed order: waiting time,
// processing-rate slack, request rate. These defaults encode "request rate
// matters most, waiting time comes second" — the qualitative ordering implied
// by §III ("higher request rate, larger demand" is the only factor with a
// dedicated scaling model). The matrix is consistent (CR = 0).
[[nodiscard]] comparison_matrix default_demand_judgments();

}  // namespace ecrs::ahp
