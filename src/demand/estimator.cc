#include "demand/estimator.h"

#include <algorithm>
#include <cmath>

#include "ahp/ahp.h"
#include "common/check.h"

namespace ecrs::demand {

estimator_config make_default_config() {
  estimator_config cfg;
  const ahp::ahp_result weights =
      ahp::derive_weights(ahp::default_demand_judgments());
  // Eq. (1) multiplies each indicator by 1/w; we store w = 1/weight so the
  // AHP importance weight is applied directly.
  cfg.w_waiting = 1.0 / weights.weights[0];
  cfg.w_processing = 1.0 / weights.weights[1];
  cfg.w_request_rate = 1.0 / weights.weights[2];
  return cfg;
}

estimator::estimator(estimator_config config) : config_(config) {
  ECRS_CHECK_MSG(config_.w_waiting > 0.0 && config_.w_processing > 0.0 &&
                     config_.w_request_rate > 0.0,
                 "criterion weights must be positive");
  ECRS_CHECK_MSG(config_.smoothing >= 0.0 && config_.smoothing < 1.0,
                 "smoothing factor must be in [0,1)");
  ECRS_CHECK_MSG(
      config_.trend_smoothing >= 0.0 && config_.trend_smoothing < 1.0,
      "trend smoothing factor must be in [0,1)");
  ECRS_CHECK_MSG(
      config_.max_utilization > 0.0 && config_.max_utilization < 1.0,
      "max utilization must be in (0,1)");
  ECRS_CHECK_MSG(config_.round_duration > 0.0,
                 "round duration must be positive");
}

indicator_values estimator::indicators(const edge::round_stats& s,
                                       double a_max) const {
  ECRS_CHECK_MSG(s.round >= 1, "rounds are 1-based");
  indicator_values v;

  // γ_i^t = ζ·θ_i/π_i. With no arrivals the completion ratio is taken as 1
  // (nothing is waiting).
  const double completion =
      s.received > 0
          ? static_cast<double>(s.served) / static_cast<double>(s.received)
          : 1.0;
  v.waiting = config_.zeta * completion;

  // ℝ_i^t = (ς_i − ϖ_i)/t: the processing-rate gap between what the
  // microservice needs (clear arrivals + backlog within the round) and what
  // it achieved, relaxed by the elapsed rounds. Negative gaps (over-served)
  // clamp to zero.
  const double needed = s.required_rate(config_.round_duration);
  const double achieved = s.achieved_rate(config_.round_duration);
  v.processing =
      std::max(0.0, needed - achieved) / static_cast<double>(s.round);

  // 𝕋_i^t = Δ·(a_i/a_max)·(L_i·t/V(n̄))·1/(1−L_i), with L clamped below 1
  // and V(n̄) = co-located microservice count (density of neighbours).
  const double util = std::clamp(s.utilization, 0.0, config_.max_utilization);
  const double alloc_ratio = a_max > 0.0 ? s.allocation / a_max : 0.0;
  const double density = static_cast<double>(std::max(1u, s.cloud_population));
  v.request_rate = config_.delta * alloc_ratio *
                   (util * static_cast<double>(s.round) / density) /
                   (1.0 - util);
  return v;
}

double estimator::raw_demand(const edge::round_stats& s, double a_max) const {
  const indicator_values v = indicators(s, a_max);
  const double x = v.waiting / config_.w_waiting +
                   v.processing / config_.w_processing +
                   v.request_rate / config_.w_request_rate;
  return std::max(0.0, x);
}

double estimator::estimate(const edge::round_stats& s, double a_max) {
  const double raw = raw_demand(s, a_max);
  holt_state& h = history_[s.microservice];
  if (!h.initialized) {
    h.level = raw;
    h.trend = 0.0;
    h.initialized = true;
    return raw;
  }
  const double previous_level = h.level;
  // Level: EWMA of the raw observation around the trend-projected level.
  h.level = (1.0 - config_.smoothing) * raw +
            config_.smoothing * (previous_level + h.trend);
  // Trend (Holt): EWMA of consecutive level differences; 0 keeps it off.
  if (config_.trend_smoothing > 0.0) {
    h.trend = config_.trend_smoothing * (h.level - previous_level) +
              (1.0 - config_.trend_smoothing) * h.trend;
  }
  // One-step-ahead forecast, floored at zero (demands are non-negative).
  return std::max(0.0, h.level + h.trend);
}

std::vector<double> estimator::estimate_round(
    const std::vector<edge::round_stats>& stats) {
  double a_max = 0.0;
  for (const edge::round_stats& s : stats) a_max = std::max(a_max, s.allocation);
  std::vector<double> out;
  out.reserve(stats.size());
  for (const edge::round_stats& s : stats) out.push_back(estimate(s, a_max));
  return out;
}

double estimator::last_estimate(std::uint32_t microservice) const {
  const auto it = history_.find(microservice);
  if (it == history_.end() || !it->second.initialized) return 0.0;
  return std::max(0.0, it->second.level + it->second.trend);
}

void estimator::reset_history() { history_.clear(); }

}  // namespace ecrs::demand
