#include "demand/estimator.h"

#include <algorithm>
#include <cmath>

#include "ahp/ahp.h"
#include "common/check.h"
#include "common/rng.h"

namespace ecrs::demand {
namespace {

// id -> table position hash (splitmix64 finalizer on the widened id).
ECRS_HOT std::uint64_t hash_id(std::uint32_t id) {
  std::uint64_t state = id;
  return splitmix64(state);
}

}  // namespace

estimator_config make_default_config() {
  estimator_config cfg;
  const ahp::ahp_result weights =
      ahp::derive_weights(ahp::default_demand_judgments());
  // Eq. (1) multiplies each indicator by 1/w; we store w = 1/weight so the
  // AHP importance weight is applied directly.
  cfg.w_waiting = 1.0 / weights.weights[0];
  cfg.w_processing = 1.0 / weights.weights[1];
  cfg.w_request_rate = 1.0 / weights.weights[2];
  return cfg;
}

estimator::estimator(estimator_config config) : config_(config) {
  ECRS_CHECK_MSG(config_.w_waiting > 0.0 && config_.w_processing > 0.0 &&
                     config_.w_request_rate > 0.0,
                 "criterion weights must be positive");
  ECRS_CHECK_MSG(config_.smoothing >= 0.0 && config_.smoothing < 1.0,
                 "smoothing factor must be in [0,1)");
  ECRS_CHECK_MSG(
      config_.trend_smoothing >= 0.0 && config_.trend_smoothing < 1.0,
      "trend smoothing factor must be in [0,1)");
  ECRS_CHECK_MSG(
      config_.max_utilization > 0.0 && config_.max_utilization < 1.0,
      "max utilization must be in (0,1)");
  ECRS_CHECK_MSG(config_.round_duration > 0.0,
                 "round duration must be positive");
}

indicator_values estimator::indicators(const edge::round_stats& s,
                                       double a_max) const {
  ECRS_CHECK_MSG(s.round >= 1, "rounds are 1-based");
  indicator_values v;

  // γ_i^t = ζ·θ_i/π_i. With no arrivals the completion ratio is taken as 1
  // (nothing is waiting).
  const double completion =
      s.received > 0
          ? static_cast<double>(s.served) / static_cast<double>(s.received)
          : 1.0;
  v.waiting = config_.zeta * completion;

  // ℝ_i^t = (ς_i − ϖ_i)/t: the processing-rate gap between what the
  // microservice needs (clear arrivals + backlog within the round) and what
  // it achieved, relaxed by the elapsed rounds. Negative gaps (over-served)
  // clamp to zero.
  const double needed = s.required_rate(config_.round_duration);
  const double achieved = s.achieved_rate(config_.round_duration);
  v.processing =
      std::max(0.0, needed - achieved) / static_cast<double>(s.round);

  // 𝕋_i^t = Δ·(a_i/a_max)·(L_i·t/V(n̄))·1/(1−L_i), with L clamped below 1
  // and V(n̄) = co-located microservice count (density of neighbours).
  const double util = std::clamp(s.utilization, 0.0, config_.max_utilization);
  const double alloc_ratio = a_max > 0.0 ? s.allocation / a_max : 0.0;
  const double density = static_cast<double>(std::max(1u, s.cloud_population));
  v.request_rate = config_.delta * alloc_ratio *
                   (util * static_cast<double>(s.round) / density) /
                   (1.0 - util);
  return v;
}

double estimator::raw_demand(const edge::round_stats& s, double a_max) const {
  const indicator_values v = indicators(s, a_max);
  const double x = v.waiting / config_.w_waiting +
                   v.processing / config_.w_processing +
                   v.request_rate / config_.w_request_rate;
  return std::max(0.0, x);
}

std::uint32_t estimator::find_slot(std::uint32_t id) const {
  if (table_slot_.empty()) return kEmptySlot;
  const std::size_t mask = table_slot_.size() - 1;
  std::size_t pos = static_cast<std::size_t>(hash_id(id)) & mask;
  while (table_slot_[pos] != kEmptySlot) {
    if (table_key_[pos] == id) return table_slot_[pos];
    pos = (pos + 1) & mask;
  }
  return kEmptySlot;
}

ECRS_HOT_ESCAPE void estimator::rebuild_table(std::size_t min_slots) {
  std::size_t cells = 16;
  // Power-of-two size keeping the load factor at or below ~70%.
  while (cells * 7 < (min_slots + 1) * 10) cells *= 2;
  if (cells < table_slot_.size()) cells = table_slot_.size();
  table_key_.assign(cells, 0);
  table_slot_.assign(cells, kEmptySlot);
  const std::size_t mask = cells - 1;
  for (std::uint32_t slot = 0; slot < slot_id_.size(); ++slot) {
    std::size_t pos = static_cast<std::size_t>(hash_id(slot_id_[slot])) & mask;
    while (table_slot_[pos] != kEmptySlot) pos = (pos + 1) & mask;
    table_key_[pos] = slot_id_[slot];
    table_slot_[pos] = slot;
  }
}

ECRS_HOT std::uint32_t estimator::find_or_create_slot(std::uint32_t id) {
  if (table_slot_.empty()) rebuild_table(1);
  const std::size_t mask = table_slot_.size() - 1;
  std::size_t pos = static_cast<std::size_t>(hash_id(id)) & mask;
  while (table_slot_[pos] != kEmptySlot) {
    if (table_key_[pos] == id) return table_slot_[pos];
    pos = (pos + 1) & mask;
  }
  const auto slot = static_cast<std::uint32_t>(slot_id_.size());
  slot_id_.push_back(id);
  slot_level_.push_back(0.0);
  slot_trend_.push_back(0.0);
  slot_seen_.push_back(rounds_);
  slot_init_.push_back(0);
  if ((slot_id_.size() + 1) * 10 > table_slot_.size() * 7) {
    rebuild_table(slot_id_.size());
  } else {
    table_key_[pos] = id;
    table_slot_[pos] = slot;
  }
  return slot;
}

ECRS_HOT double estimator::advance_holt(std::uint32_t slot, double raw) {
  if (slot_init_[slot] == 0) {
    slot_level_[slot] = raw;
    slot_trend_[slot] = 0.0;
    slot_init_[slot] = 1;
    return raw;
  }
  const double previous_level = slot_level_[slot];
  // Level: EWMA of the raw observation around the trend-projected level.
  slot_level_[slot] = (1.0 - config_.smoothing) * raw +
                      config_.smoothing * (previous_level + slot_trend_[slot]);
  // Trend (Holt): EWMA of consecutive level differences; 0 keeps it off.
  if (config_.trend_smoothing > 0.0) {
    slot_trend_[slot] =
        config_.trend_smoothing * (slot_level_[slot] - previous_level) +
        (1.0 - config_.trend_smoothing) * slot_trend_[slot];
  }
  // One-step-ahead forecast, floored at zero (demands are non-negative).
  return std::max(0.0, slot_level_[slot] + slot_trend_[slot]);
}

double estimator::estimate(const edge::round_stats& s, double a_max) {
  const double raw = raw_demand(s, a_max);
  const std::uint32_t slot = find_or_create_slot(s.microservice);
  slot_seen_[slot] = rounds_;
  return advance_holt(slot, raw);
}

ECRS_HOT void estimator::observe(const edge::round_stats& s) {
  ECRS_CHECK_MSG(s.round >= 1, "rounds are 1-based");
  pending_entry p;
  p.slot = find_or_create_slot(s.microservice);
  // Identical component arithmetic to indicators(); only the a_max factor
  // of Eq. (2) is deferred to estimates_into (where the round's maximum
  // allocation is known), preserving the exact FP operation order.
  const double completion =
      s.received > 0
          ? static_cast<double>(s.served) / static_cast<double>(s.received)
          : 1.0;
  p.waiting = config_.zeta * completion;
  const double needed = s.required_rate(config_.round_duration);
  const double achieved = s.achieved_rate(config_.round_duration);
  p.processing =
      std::max(0.0, needed - achieved) / static_cast<double>(s.round);
  const double util = std::clamp(s.utilization, 0.0, config_.max_utilization);
  const double density = static_cast<double>(std::max(1u, s.cloud_population));
  p.q = util * static_cast<double>(s.round) / density;
  p.one_minus_util = 1.0 - util;
  p.allocation = s.allocation;
  pending_.push_back(p);
  if (s.allocation > round_a_max_) round_a_max_ = s.allocation;
}

ECRS_HOT void estimator::estimates_into(std::span<double> out) {
  ECRS_CHECK_MSG(out.size() == pending_.size(),
                 "estimates_into span holds " << out.size() << " slots for "
                                              << pending_.size()
                                              << " observed entries");
  const double a_max = round_a_max_;
  ++rounds_;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    const pending_entry& p = pending_[i];
    const double alloc_ratio = a_max > 0.0 ? p.allocation / a_max : 0.0;
    const double request_rate =
        config_.delta * alloc_ratio * p.q / p.one_minus_util;
    const double x = p.waiting / config_.w_waiting +
                     p.processing / config_.w_processing +
                     request_rate / config_.w_request_rate;
    out[i] = advance_holt(p.slot, std::max(0.0, x));
    slot_seen_[p.slot] = rounds_;
  }
  pending_.clear();
  round_a_max_ = 0.0;
  if (config_.forget_after > 0) forget_stale();
}

void estimator::forget_stale() {
  std::size_t n = slot_id_.size();
  std::size_t i = 0;
  bool dropped = false;
  while (i < n) {
    if (rounds_ - slot_seen_[i] >= config_.forget_after) {
      --n;
      slot_id_[i] = slot_id_[n];
      slot_level_[i] = slot_level_[n];
      slot_trend_[i] = slot_trend_[n];
      slot_seen_[i] = slot_seen_[n];
      slot_init_[i] = slot_init_[n];
      dropped = true;
    } else {
      ++i;
    }
  }
  if (!dropped) return;
  slot_id_.resize(n);
  slot_level_.resize(n);
  slot_trend_.resize(n);
  slot_seen_.resize(n);
  slot_init_.resize(n);
  rebuild_table(n);
}

std::vector<double> estimator::estimate_round(
    const std::vector<edge::round_stats>& stats) {
  ECRS_CHECK_MSG(pending_.empty(),
                 "estimate_round cannot interleave with a pending streamed "
                 "round; finalize with estimates_into first");
  for (const edge::round_stats& s : stats) observe(s);
  std::vector<double> out(stats.size());
  estimates_into(out);
  return out;
}

double estimator::last_estimate(std::uint32_t microservice) const {
  const std::uint32_t slot = find_slot(microservice);
  if (slot == kEmptySlot || slot_init_[slot] == 0) return 0.0;
  return std::max(0.0, slot_level_[slot] + slot_trend_[slot]);
}

void estimator::reset_history() {
  slot_id_.clear();
  slot_level_.clear();
  slot_trend_.clear();
  slot_seen_.clear();
  slot_init_.clear();
  table_key_.clear();
  table_slot_.clear();
  pending_.clear();
  round_a_max_ = 0.0;
  rounds_ = 0;
}

void estimator::save(checkpoint_writer& w) const {
  ECRS_CHECK_MSG(pending_.empty(),
                 "estimator checkpoints are only valid at round boundaries "
                 "(pending round not finalized)");
  w.u64(rounds_);
  w.size(slot_id_.size());
  for (std::size_t i = 0; i < slot_id_.size(); ++i) {
    w.u32(slot_id_[i]);
    w.f64(slot_level_[i]);
    w.f64(slot_trend_[i]);
    w.u64(slot_seen_[i]);
    w.u8(static_cast<std::uint8_t>(slot_init_[i]));
  }
}

void estimator::load(checkpoint_reader& r) {
  reset_history();
  rounds_ = r.u64();
  const std::size_t n = r.size();
  // 29 bytes per slot; a corrupt count must fail here, not in a giant
  // resize.
  ECRS_CHECK_MSG(n <= r.remaining() / 29,
                 "estimator checkpoint declares " << n
                                                  << " slots but the payload "
                                                     "is too short");
  slot_id_.reserve(n);
  slot_level_.reserve(n);
  slot_trend_.reserve(n);
  slot_seen_.reserve(n);
  slot_init_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    slot_id_.push_back(r.u32());
    slot_level_.push_back(r.f64());
    slot_trend_.push_back(r.f64());
    slot_seen_.push_back(r.u64());
    slot_init_.push_back(static_cast<char>(r.u8()));
  }
  rebuild_table(n);
}

}  // namespace ecrs::demand
