// Microservice demand estimation (paper §III).
//
// Turns per-round queueing observables into a scalar resource demand
//   X_i^t = (1/w_γ)·γ_i^t + (1/w_ℝ)·ℝ_i^t + (1/w_𝕋)·𝕋_i^t          (Eq. 1)
// with
//   γ_i^t = ζ·θ_i/π_i                       (waiting-time indicator)
//   ℝ_i^t = (ς_i − ϖ_i)/t                   (processing-rate indicator)
//   𝕋_i^t = Δ·(a_i/a_max)·(L_i·t/V(n̄))·1/(1−L_i)   (request-rate, Eq. 2)
// The scaling factors 1/w are derived by AHP (DESIGN.md §2). Since "the
// demands of all microservices at t−1, t−2, … are more important" (§III),
// estimates are exponentially smoothed over the round history.
//
// Streaming contract (DESIGN.md section 13): the per-round path is
// observe() once per microservice followed by one estimates_into() —
// Holt level/trend state updates IN PLACE in flat indexed arrays (no
// per-call map, no fresh result vector), so a closed-loop daemon's
// steady-state estimation is allocation-free. estimate_round() remains as
// a thin compatibility wrapper over the same path and is bit-identical to
// the historical map-based implementation. With forget_after > 0, history
// entries unseen for that many finalized rounds are dropped, bounding the
// estimator's footprint by the peak number of concurrently live ids under
// microservice churn.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/annotations.h"
#include "common/checkpoint.h"
#include "edge/microservice.h"

namespace ecrs::demand {

struct indicator_values {
  double waiting = 0.0;      // γ_i^t
  double processing = 0.0;   // ℝ_i^t
  double request_rate = 0.0; // 𝕋_i^t
};

struct estimator_config {
  double zeta = 1.0;    // ζ: waiting-time scale
  double delta = 1.0;   // Δ: request-rate scale
  // Criterion weights w_γ, w_ℝ, w_𝕋; Eq. (1) uses their reciprocals as
  // importance factors. Defaults come from ahp::default_demand_judgments()
  // via make_default_config().
  double w_waiting = 3.5;      // 1/(2/7)
  double w_processing = 7.0;   // 1/(1/7)
  double w_request_rate = 1.75;  // 1/(4/7)
  // EWMA factor on history: estimate = (1−s)·raw + s·previous. s = 0
  // disables smoothing.
  double smoothing = 0.4;
  // Holt double-exponential (level + trend) smoothing factor for the trend
  // component. 0 = plain EWMA (no trend). With a trend, the estimate
  // anticipates demand that is still rising — useful for the bursty loads
  // of §V. Must satisfy 0 <= trend_smoothing < 1.
  double trend_smoothing = 0.0;
  // Utilization is clamped to at most this value so the 1/(1−L) term stays
  // finite under saturation.
  double max_utilization = 0.95;
  double round_duration = 600.0;  // paper: 10-minute rounds
  // Drop history entries unseen for this many finalized rounds (0 = keep
  // forever). Bounds memory under microservice churn: the footprint tracks
  // the PEAK concurrently-live id count, not the cumulative id space.
  std::uint64_t forget_after = 0;
};

// Config with AHP-derived weights (waiting 2/7, processing 1/7, request
// rate 4/7 — see ahp::default_demand_judgments()).
[[nodiscard]] estimator_config make_default_config();

class estimator {
 public:
  explicit estimator(estimator_config config);

  [[nodiscard]] const estimator_config& config() const { return config_; }

  // The three indicators for one microservice-round. `a_max` is the largest
  // allocation among all microservices this round (Eq. 2).
  [[nodiscard]] indicator_values indicators(const edge::round_stats& s,
                                            double a_max) const;

  // Raw (unsmoothed) Eq. (1) demand; never negative.
  [[nodiscard]] double raw_demand(const edge::round_stats& s,
                                  double a_max) const;

  // Smoothed estimate for one microservice; updates its history.
  double estimate(const edge::round_stats& s, double a_max);

  // ---- streaming round API -------------------------------------------------
  // Record one microservice's round observables into the pending round.
  // The a_max-dependent factor of Eq. (2) is deferred until the round's
  // maximum allocation is known, so observation order is free and no stats
  // vector has to be materialized. Allocation-free once the pending
  // buffers reached their steady-state capacity.
  ECRS_HOT void observe(const edge::round_stats& s);

  // Close the pending round: compute every observed entry's smoothed
  // estimate (observe order), commit the Holt updates in place, reset the
  // pending round, and — with forget_after > 0 — drop stale history.
  // `out.size()` must equal observed(). Pure arithmetic over flat arrays.
  ECRS_HOT void estimates_into(std::span<double> out);

  // Entries observed in the pending (not yet finalized) round.
  [[nodiscard]] std::size_t observed() const { return pending_.size(); }

  // Estimate a whole round at once. Compatibility wrapper over
  // observe()/estimates_into(): bit-identical to the historical map-based
  // implementation, but the only allocation left is the returned vector.
  std::vector<double> estimate_round(const std::vector<edge::round_stats>& stats);

  // Last smoothed estimate for a microservice (0 if never seen).
  [[nodiscard]] double last_estimate(std::uint32_t microservice) const;

  void reset_history();

  // ---- history telemetry (churn regression tests) --------------------------
  [[nodiscard]] std::size_t history_size() const { return slot_id_.size(); }
  // Capacity of the flat history storage — the RSS proxy the churn
  // regression bounds (capacities never shrink, so a flat capacity over a
  // long churning horizon means a flat resident set).
  [[nodiscard]] std::size_t history_capacity() const {
    return slot_id_.capacity() + table_slot_.capacity();
  }
  // Rounds finalized through estimates_into()/estimate_round().
  [[nodiscard]] std::uint64_t rounds_observed() const { return rounds_; }

  // ---- checkpoint/restore (common/checkpoint.h) ----------------------------
  // Only valid between rounds (nothing observed and not yet finalized);
  // load restores the Holt state and round counter bit for bit.
  void save(checkpoint_writer& w) const;
  void load(checkpoint_reader& r);

 private:
  // One observe() record: the indicator components that do not depend on
  // the round's a_max, plus the deferred allocation.
  struct pending_entry {
    std::uint32_t slot = 0;
    double waiting = 0.0;
    double processing = 0.0;
    double q = 0.0;               // (L·t)/V(n̄), the a_max-free Eq. 2 factor
    double one_minus_util = 0.0;  // 1 − L
    double allocation = 0.0;      // a_i, divided by a_max at finalize
  };

  static constexpr std::uint32_t kEmptySlot = 0xffffffffu;

  // Locate (or append) the flat-history slot of `id`.
  ECRS_HOT std::uint32_t find_or_create_slot(std::uint32_t id);
  [[nodiscard]] std::uint32_t find_slot(std::uint32_t id) const;
  // Commit one raw observation to slot `slot`'s Holt state; returns the
  // one-step-ahead forecast (the smoothed estimate).
  ECRS_HOT double advance_holt(std::uint32_t slot, double raw);
  // Rebuild the id -> slot table over the current slots.
  // ECRS_HOT_ESCAPE from the hot path's perspective: runs only when the
  // live id set grows past the table's load factor or shrinks via
  // forget_stale — both cold at steady state.
  ECRS_HOT_ESCAPE void rebuild_table(std::size_t min_slots);
  // Swap-remove every slot unseen for forget_after rounds, then rebuild
  // the table compactly. O(live) scan; no-op when nothing is stale.
  void forget_stale();

  estimator_config config_;
  std::uint64_t rounds_ = 0;  // finalized rounds

  // Flat Holt history, struct-of-arrays; slot order is insertion order
  // (perturbed only by forget_stale's swap-removes).
  std::vector<std::uint32_t> slot_id_;
  std::vector<double> slot_level_;
  std::vector<double> slot_trend_;
  std::vector<std::uint64_t> slot_seen_;  // rounds_ value at last touch
  std::vector<char> slot_init_;           // 0 until the first observation

  // Open-addressing id -> slot index (linear probing, power-of-two size,
  // <= 70% load). table_slot_[i] == kEmptySlot marks an empty cell.
  std::vector<std::uint32_t> table_key_;
  std::vector<std::uint32_t> table_slot_;

  // The pending (streamed, not yet finalized) round.
  std::vector<pending_entry> pending_;
  double round_a_max_ = 0.0;
};

}  // namespace ecrs::demand
