// Microservice demand estimation (paper §III).
//
// Turns per-round queueing observables into a scalar resource demand
//   X_i^t = (1/w_γ)·γ_i^t + (1/w_ℝ)·ℝ_i^t + (1/w_𝕋)·𝕋_i^t          (Eq. 1)
// with
//   γ_i^t = ζ·θ_i/π_i                       (waiting-time indicator)
//   ℝ_i^t = (ς_i − ϖ_i)/t                   (processing-rate indicator)
//   𝕋_i^t = Δ·(a_i/a_max)·(L_i·t/V(n̄))·1/(1−L_i)   (request-rate, Eq. 2)
// The scaling factors 1/w are derived by AHP (DESIGN.md §2). Since "the
// demands of all microservices at t−1, t−2, … are more important" (§III),
// estimates are exponentially smoothed over the round history.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "edge/microservice.h"

namespace ecrs::demand {

struct indicator_values {
  double waiting = 0.0;      // γ_i^t
  double processing = 0.0;   // ℝ_i^t
  double request_rate = 0.0; // 𝕋_i^t
};

struct estimator_config {
  double zeta = 1.0;    // ζ: waiting-time scale
  double delta = 1.0;   // Δ: request-rate scale
  // Criterion weights w_γ, w_ℝ, w_𝕋; Eq. (1) uses their reciprocals as
  // importance factors. Defaults come from ahp::default_demand_judgments()
  // via make_default_config().
  double w_waiting = 3.5;      // 1/(2/7)
  double w_processing = 7.0;   // 1/(1/7)
  double w_request_rate = 1.75;  // 1/(4/7)
  // EWMA factor on history: estimate = (1−s)·raw + s·previous. s = 0
  // disables smoothing.
  double smoothing = 0.4;
  // Holt double-exponential (level + trend) smoothing factor for the trend
  // component. 0 = plain EWMA (no trend). With a trend, the estimate
  // anticipates demand that is still rising — useful for the bursty loads
  // of §V. Must satisfy 0 <= trend_smoothing < 1.
  double trend_smoothing = 0.0;
  // Utilization is clamped to at most this value so the 1/(1−L) term stays
  // finite under saturation.
  double max_utilization = 0.95;
  double round_duration = 600.0;  // paper: 10-minute rounds
};

// Config with AHP-derived weights (waiting 2/7, processing 1/7, request
// rate 4/7 — see ahp::default_demand_judgments()).
[[nodiscard]] estimator_config make_default_config();

class estimator {
 public:
  explicit estimator(estimator_config config);

  [[nodiscard]] const estimator_config& config() const { return config_; }

  // The three indicators for one microservice-round. `a_max` is the largest
  // allocation among all microservices this round (Eq. 2).
  [[nodiscard]] indicator_values indicators(const edge::round_stats& s,
                                            double a_max) const;

  // Raw (unsmoothed) Eq. (1) demand; never negative.
  [[nodiscard]] double raw_demand(const edge::round_stats& s,
                                  double a_max) const;

  // Smoothed estimate for one microservice; updates its history.
  double estimate(const edge::round_stats& s, double a_max);

  // Estimate a whole round at once (computes a_max internally). Result is
  // indexed like `stats`.
  std::vector<double> estimate_round(const std::vector<edge::round_stats>& stats);

  // Last smoothed estimate for a microservice (0 if never seen).
  [[nodiscard]] double last_estimate(std::uint32_t microservice) const;

  void reset_history();

 private:
  struct holt_state {
    double level = 0.0;
    double trend = 0.0;
    bool initialized = false;
  };

  estimator_config config_;
  std::unordered_map<std::uint32_t, holt_state> history_;
};

}  // namespace ecrs::demand
