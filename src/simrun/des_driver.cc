#include "simrun/des_driver.h"

#include <utility>

#include "common/check.h"

namespace ecrs::edge {

des_driver::des_driver(des::simulator& sim, cluster& cl,
                       workload::round_source& traffic,
                       demand::estimator& est, des_driver_config config)
    : sim_(sim),
      cluster_(cl),
      traffic_(traffic),
      estimator_(est),
      config_(config) {
  ECRS_CHECK_MSG(config_.round_duration > 0.0,
                 "round duration must be positive");
  ECRS_CHECK_MSG(config_.rounds >= 1, "need at least one round");
  ECRS_CHECK_MSG(
      traffic_.microservice_count() == cluster_.microservice_count(),
      "traffic source and cluster disagree on the number of microservices");
  service_clock_.assign(cluster_.microservice_count(), 0.0);
}

void des_driver::catch_up(std::uint32_t m, double now) {
  double& mark = service_clock_[m];
  if (now > mark) {
    cluster_.service(m).advance(mark, now - mark);
    mark = now;
  }
}

void des_driver::deliver(const workload::request& r) {
  microservice& svc = cluster_.service(r.microservice);
  const double now = sim_.now();
  double& mark = service_clock_[r.microservice];
  if (now > mark) {
    svc.advance(mark, now - mark);
    mark = now;
  }
  svc.enqueue(r);
  ++delivered_;
}

void des_driver::schedule_round(std::uint64_t round) {
  const double start =
      static_cast<double>(round - 1) * config_.round_duration;
  const double end = start + config_.round_duration;

  // Allocate for the round using the state visible at its start.
  cluster_.allocate_fair(config_.round_duration);

  // Prefer the source's zero-copy view (replay sources hand out the stored
  // round directly); otherwise generate into the reusable batch buffer. The
  // buffer is safe to overwrite: the previous round's deliveries all carry
  // timestamps strictly before its boundary, which fired before this call,
  // so the old stream/closures have fully drained.
  current_ = traffic_.round_view(start, config_.round_duration);
  if (current_ == nullptr) {
    traffic_.round_into(start, config_.round_duration, batch_);
    current_ = &batch_;
  }
  const std::vector<workload::request>& batch = *current_;

  if (config_.delivery == delivery_mode::per_event) {
    // Reference shape: one scheduled closure per request, capturing a
    // reference into the round-lived batch (no per-request copy).
    for (const workload::request& r : batch) {
      sim_.schedule_at(r.arrival_time, [this, &r] { deliver(r); });
    }
  } else if (!batch.empty()) {
    // Batched: register the whole time-sorted batch as one stream record;
    // a single cursor drains it in arrival order, interleaved with the
    // round boundary exactly like the per-event reference.
    arrivals_.resize(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      arrivals_[i] = batch[i].arrival_time;
    }
    sim_.schedule_stream(arrivals_,
                         [this](std::size_t i) { deliver((*current_)[i]); });
  }

  // Round boundary: drain up to the boundary, close the round, estimate,
  // hand over to the callback, then arm the next round.
  sim_.schedule_at(end, [this, round, end] {
    // Sync every service to the boundary before closing the round (and
    // before allocate_fair changes allocations for the next one).
    for (std::uint32_t m = 0; m < service_clock_.size(); ++m) {
      catch_up(m, end);
    }
    const auto stats = cluster_.end_round(round, config_.round_duration);
    const auto estimates = estimator_.estimate_round(stats);
    ++completed_;
    if (callback_) callback_(round, stats, estimates);
    if (round < config_.rounds) schedule_round(round + 1);
  });
}

void des_driver::run() {
  ECRS_CHECK_MSG(completed_ == 0, "driver has already run");
  ECRS_CHECK_MSG(sim_.now() == 0.0, "driver requires a fresh simulator");
  schedule_round(1);
  sim_.run();
}

}  // namespace ecrs::edge
