#include "simrun/des_driver.h"

#include <utility>

#include "common/check.h"

namespace ecrs::edge {

des_driver::des_driver(des::simulator& sim, cluster& cl,
                       workload::generator& traffic, demand::estimator& est,
                       des_driver_config config)
    : sim_(sim),
      cluster_(cl),
      traffic_(traffic),
      estimator_(est),
      config_(config) {
  ECRS_CHECK_MSG(config_.round_duration > 0.0,
                 "round duration must be positive");
  ECRS_CHECK_MSG(config_.rounds >= 1, "need at least one round");
  ECRS_CHECK_MSG(
      traffic_.config().microservices == cluster_.microservice_count(),
      "generator and cluster disagree on the number of microservices");
}

void des_driver::advance_to_now() {
  const double now = sim_.now();
  if (now > last_advance_) {
    cluster_.advance(last_advance_, now - last_advance_);
    last_advance_ = now;
  }
}

void des_driver::schedule_round(std::uint64_t round) {
  const double start =
      static_cast<double>(round - 1) * config_.round_duration;
  const double end = start + config_.round_duration;

  // Allocate for the round using the state visible at its start.
  cluster_.allocate_fair(config_.round_duration);

  // Deliver each generated request at its own arrival instant, advancing
  // service up to that instant first.
  for (const workload::request& r :
       traffic_.round(start, config_.round_duration)) {
    sim_.schedule_at(r.arrival_time, [this, r] {
      advance_to_now();
      cluster_.service(r.microservice).enqueue(r);
      ++delivered_;
    });
  }

  // Round boundary: drain up to the boundary, close the round, estimate,
  // hand over to the callback, then arm the next round.
  sim_.schedule_at(end, [this, round, end] {
    advance_to_now();
    // advance_to_now() stops exactly at `end` because this event runs at it.
    ECRS_DCHECK(last_advance_ == end);
    const auto stats = cluster_.end_round(round, config_.round_duration);
    const auto estimates = estimator_.estimate_round(stats);
    ++completed_;
    if (callback_) callback_(round, stats, estimates);
    if (round < config_.rounds) schedule_round(round + 1);
  });
}

void des_driver::run() {
  ECRS_CHECK_MSG(completed_ == 0, "driver has already run");
  ECRS_CHECK_MSG(sim_.now() == 0.0, "driver requires a fresh simulator");
  schedule_round(1);
  sim_.run();
}

}  // namespace ecrs::edge
