// Event-driven cluster runner: binds the workload generator, the edge
// cluster, and the demand estimator to a des::simulator.
//
// Unlike the analytic per-round loop (enqueue whole batch, advance once),
// the driver delivers every request at its exact arrival timestamp and
// advances the queues between consecutive events, i.e. service progress is
// event-accurate. Queues advance lazily per microservice: a delivery
// catches up only the target service from its own clock (allocations are
// constant within a round, so the drain over [mark, now] is independent of
// how the interval is sliced), and the round boundary syncs every service
// before closing the round — O(1) queue work per event instead of
// O(services). At each round boundary it closes the round, runs the demand
// estimator, invokes the user callback (where an auction round typically
// happens, see examples/edge_marketplace.cpp for the analytic twin), and
// re-runs the fair-share allocator for the next round.
//
// Two delivery paths with bit-identical observable behaviour
// (tests/simrun_test.cc fuzzes the equivalence):
//  - batched (default): each round's time-sorted batch is registered once
//    as a simulator stream (simulator::schedule_stream) and drained by a
//    single cursor record — O(1) schedules and allocations per round;
//  - per_event: one scheduled closure per request, the original shape,
//    kept as the equivalence reference.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "demand/estimator.h"
#include "des/simulator.h"
#include "edge/cluster.h"
#include "workload/round_source.h"

namespace ecrs::edge {

// How requests get from the generator batch onto the simulator timeline.
enum class delivery_mode : std::uint8_t {
  batched,    // one stream record per round (high-throughput default)
  per_event,  // one scheduled closure per request (reference shape)
};

struct des_driver_config {
  double round_duration = 600.0;  // paper: 10-minute rounds
  std::size_t rounds = 10;
  delivery_mode delivery = delivery_mode::batched;
};

class des_driver {
 public:
  // Invoked at the end of each round with the closed round's statistics and
  // the smoothed demand estimates (indexed like the stats).
  using round_callback =
      std::function<void(std::uint64_t round,
                         const std::vector<round_stats>& stats,
                         const std::vector<double>& estimates)>;

  // `traffic` is any per-round request supplier: the stochastic
  // workload::generator, or a workload::replay_source feeding recorded
  // rounds (trace replay, generation-free benchmarking).
  des_driver(des::simulator& sim, cluster& cl,
             workload::round_source& traffic, demand::estimator& est,
             des_driver_config config);

  void set_round_callback(round_callback cb) { callback_ = std::move(cb); }

  // Schedule the whole horizon onto the simulator and run it to completion.
  void run();

  [[nodiscard]] std::uint64_t rounds_completed() const { return completed_; }
  [[nodiscard]] std::uint64_t requests_delivered() const { return delivered_; }

 private:
  void schedule_round(std::uint64_t round);
  // Catch service `m` up to simulated time `now` from its own clock.
  void catch_up(std::uint32_t m, double now);
  void deliver(const workload::request& r);

  des::simulator& sim_;
  cluster& cluster_;
  workload::round_source& traffic_;
  demand::estimator& estimator_;
  des_driver_config config_;
  round_callback callback_;
  // Round-scoped buffers, reused so steady-state rounds do not allocate:
  // the current batch (alive until its last request delivered — closures
  // and the stream cursor reference into it) and its arrival timestamps.
  // current_ points at the round's request storage: the source's zero-copy
  // view when it offers one, otherwise batch_.
  std::vector<workload::request> batch_;
  std::vector<des::sim_time> arrivals_;
  const std::vector<workload::request>* current_ = nullptr;
  // Per-microservice lazy-advance clocks (all equal at round boundaries).
  std::vector<double> service_clock_;
  std::uint64_t completed_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace ecrs::edge
