// Event-driven cluster runner: binds the workload generator, the edge
// cluster, and the demand estimator to a des::simulator.
//
// Unlike the analytic per-round loop (enqueue whole batch, advance once),
// the driver delivers every request at its exact arrival timestamp and
// advances the queues between consecutive events, i.e. service progress is
// event-accurate. At each round boundary it closes the round, runs the
// demand estimator, invokes the user callback (where an auction round
// typically happens, see examples/edge_marketplace.cpp for the analytic
// twin), and re-runs the fair-share allocator for the next round.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "demand/estimator.h"
#include "des/simulator.h"
#include "edge/cluster.h"
#include "workload/generator.h"

namespace ecrs::edge {

struct des_driver_config {
  double round_duration = 600.0;  // paper: 10-minute rounds
  std::size_t rounds = 10;
};

class des_driver {
 public:
  // Invoked at the end of each round with the closed round's statistics and
  // the smoothed demand estimates (indexed like the stats).
  using round_callback =
      std::function<void(std::uint64_t round,
                         const std::vector<round_stats>& stats,
                         const std::vector<double>& estimates)>;

  des_driver(des::simulator& sim, cluster& cl, workload::generator& traffic,
             demand::estimator& est, des_driver_config config);

  void set_round_callback(round_callback cb) { callback_ = std::move(cb); }

  // Schedule the whole horizon onto the simulator and run it to completion.
  void run();

  [[nodiscard]] std::uint64_t rounds_completed() const { return completed_; }
  [[nodiscard]] std::uint64_t requests_delivered() const { return delivered_; }

 private:
  void schedule_round(std::uint64_t round);
  void advance_to_now();

  des::simulator& sim_;
  cluster& cluster_;
  workload::generator& traffic_;
  demand::estimator& estimator_;
  des_driver_config config_;
  round_callback callback_;
  double last_advance_ = 0.0;
  std::uint64_t completed_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace ecrs::edge
