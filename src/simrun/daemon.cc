#include "simrun/daemon.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace ecrs::simrun {
namespace {

// QoS classes per microservice id, as the generator assigned them.
std::vector<workload::qos_class> qos_of(const workload::generator& gen) {
  std::vector<workload::qos_class> qos;
  const std::uint32_t n = gen.microservice_count();
  qos.reserve(n);
  for (std::uint32_t m = 0; m < n; ++m) qos.push_back(gen.class_of(m));
  return qos;
}

// FNV-1a over every behaviour-determining scalar of the setup. Two setups
// with equal hashes run the same horizon; the hash gates checkpoint
// restores (common/checkpoint.h header).
std::uint64_t hash_setup(const daemon_setup& s) {
  ecrs::checkpoint_writer w;
  w.f64(s.config.round_duration);
  w.f64(s.config.base_allocation);
  w.f64(s.config.resources_per_unit);
  w.f64(s.config.scenario.diurnal_amplitude);
  w.u64(s.config.scenario.diurnal_period);
  w.u64(s.config.scenario.flash_every);
  w.u64(s.config.scenario.flash_duration);
  w.f64(s.config.scenario.flash_factor);
  w.u64(s.config.scenario.churn_every);
  w.u64(s.config.scenario.churn_downtime);
  w.u32(s.workload.users);
  w.u32(s.workload.microservices);
  w.f64(s.workload.delay_sensitive_fraction);
  w.f64(s.workload.sensitive_mean);
  w.f64(s.workload.tolerant_mean);
  w.f64(s.workload.mean_service_demand);
  w.f64(s.workload.sensitive_mean_demand);
  w.f64(s.workload.tolerant_mean_demand);
  w.u32(s.workload.regions);
  w.u64(s.workload.seed);
  w.u32(s.cluster.clouds);
  w.f64(s.cluster.capacity_per_cloud);
  w.u64(s.cluster.seed);
  w.f64(s.estimator.zeta);
  w.f64(s.estimator.delta);
  w.f64(s.estimator.w_waiting);
  w.f64(s.estimator.w_processing);
  w.f64(s.estimator.w_request_rate);
  w.f64(s.estimator.smoothing);
  w.f64(s.estimator.trend_smoothing);
  w.f64(s.estimator.max_utilization);
  w.f64(s.estimator.round_duration);
  w.u64(s.estimator.forget_after);
  w.u32(s.ingest.regions);
  w.u32(s.ingest.microservices);
  w.f64(s.ingest.unit_demand);
  w.i64(s.ingest.max_requirement);
  w.f64(s.ingest.supply_margin);
  w.f64(s.ingest.demand_scale);
  w.size(s.sellers.size());
  for (const auto& region : s.sellers) {
    w.size(region.size());
    for (const auto& p : region) {
      w.i64(p.capacity);
      w.u32(p.t_arrive);
      w.u32(p.t_depart);
    }
  }
  return ecrs::fnv1a64(w.payload());
}

}  // namespace

daemon::daemon(daemon_setup setup)
    : config_(setup.config),
      gen_(setup.workload),
      cluster_(setup.cluster, qos_of(gen_)),
      estimator_(setup.estimator),
      topo_(std::move(setup.topology)),
      market_(topo_, setup.sellers, setup.market),
      ingestor_(setup.ingest, std::move(setup.standing)) {
  ECRS_CHECK_MSG(config_.round_duration > 0.0,
                 "round duration must be positive");
  ECRS_CHECK_MSG(config_.base_allocation >= 0.0 &&
                     config_.resources_per_unit >= 0.0,
                 "allocation coupling must be non-negative");
  ECRS_CHECK_MSG(setup.estimator.round_duration == config_.round_duration,
                 "estimator and daemon disagree on the round duration");
  ECRS_CHECK_MSG(
      setup.ingest.microservices == setup.workload.microservices,
      "ingest and workload disagree on the microservice count");
  ECRS_CHECK_MSG(setup.ingest.regions == setup.workload.regions,
                 "ingest and workload disagree on the region count");
  ECRS_CHECK_MSG(setup.sellers.size() == setup.ingest.regions,
                 "one seller set per region required");
  const scenario_config& sc = config_.scenario;
  ECRS_CHECK_MSG(sc.diurnal_amplitude >= 0.0 && sc.diurnal_amplitude < 1.0,
                 "diurnal amplitude must be in [0,1)");
  ECRS_CHECK_MSG(sc.flash_factor >= 0.0, "flash factor must be non-negative");
  ECRS_CHECK_MSG(sc.flash_every == 0 || sc.flash_duration >= 1,
                 "flash crowds need a positive duration");

  config_hash_ = hash_setup(setup);
  seller_counts_.reserve(setup.sellers.size());
  for (const auto& region : setup.sellers) {
    ECRS_CHECK_MSG(!region.empty(), "every region needs at least one seller");
    seller_counts_.push_back(static_cast<std::uint32_t>(region.size()));
  }

  const auto services =
      static_cast<std::uint32_t>(cluster_.microservice_count());
  population_.reserve(services);
  for (std::uint32_t m = 0; m < services; ++m) {
    population_.push_back(static_cast<std::uint32_t>(
        cluster_.cloud(cluster_.cloud_of(m)).hosted.size()));
  }
  estimates_.resize(services, 0.0);
  granted_.resize(services, 0);
  service_clock_.assign(services, 0.0);
}

void daemon::catch_up(std::uint32_t m, double now) {
  double& mark = service_clock_[m];
  if (now > mark) {
    cluster_.service(m).advance(mark, now - mark);
    mark = now;
  }
}

void daemon::deliver(std::size_t i) {
  const workload::request& r = batch_[i];
  edge::microservice& svc = cluster_.service(r.microservice);
  const double now = sim_.now();
  double& mark = service_clock_[r.microservice];
  if (now > mark) {
    svc.advance(mark, now - mark);
    mark = now;
  }
  svc.enqueue(r);
  ++delivered_;
}

churn_event daemon::churn_target(std::uint64_t ordinal) const {
  const auto regions = static_cast<std::uint64_t>(seller_counts_.size());
  churn_event e;
  e.region = static_cast<std::uint32_t>(ordinal % regions);
  e.seller = static_cast<std::uint32_t>((ordinal / regions) %
                                        seller_counts_[e.region]);
  return e;
}

void daemon::apply_churn(std::uint64_t round) {
  const scenario_config& sc = config_.scenario;
  if (sc.churn_every == 0) return;
  // Recover first, then fail: when a downtime expires in the same round a
  // new outage of the same seller starts, the outage wins.
  if (sc.churn_downtime > 0 && round > sc.churn_downtime &&
      (round - sc.churn_downtime) % sc.churn_every == 0) {
    const churn_event e =
        churn_target((round - sc.churn_downtime) / sc.churn_every);
    market_.set_seller_active(e.region, e.seller, true);
  }
  if (round % sc.churn_every == 0) {
    const churn_event e = churn_target(round / sc.churn_every);
    market_.set_seller_active(e.region, e.seller, false);
  }
}

void daemon::apply_allocations(const auction::regional_instance& inst,
                               const market::marketplace_round& out) {
  const std::uint32_t regions = ingestor_.config().regions;
  // Units each microservice ends up holding: its quantized requirement,
  // minus what the local round left uncovered, plus spillover awards.
  for (std::uint32_t r = 0; r < regions; ++r) {
    const std::vector<auction::units>& req = inst.regions[r].requirements;
    for (std::uint32_t k = 0; k < req.size(); ++k) {
      granted_[static_cast<std::size_t>(k) * regions + r] = req[k];
    }
  }
  for (std::uint32_t r = 0; r < regions; ++r) {
    for (const market::spill_deficit& def : out.shards[r].uncovered) {
      granted_[static_cast<std::size_t>(def.demander) * regions + r] -=
          def.missing;
    }
  }
  for (const market::spill_award& award : out.spillover.awards) {
    for (const auction::demander_id k : award.covered) {
      granted_[static_cast<std::size_t>(k) * regions +
               award.demand_region] += award.amount;
    }
  }
  for (std::size_t m = 0; m < granted_.size(); ++m) {
    const double g =
        static_cast<double>(std::max<auction::units>(0, granted_[m]));
    cluster_.service(static_cast<std::uint32_t>(m))
        .set_allocation(config_.base_allocation +
                        config_.resources_per_unit * g);
  }
}

void daemon::run_one_round() {
  const std::uint64_t r = completed_ + 1;
  const double dur = config_.round_duration;
  const double start = static_cast<double>(r - 1) * dur;
  // The boundary is r*dur, never start+dur: a daemon resumed from a
  // checkpoint computes the identical double for every boundary.
  const double end = static_cast<double>(r) * dur;

  gen_.set_rate_scale(scenario_rate_scale(config_.scenario, r));
  apply_churn(r);

  gen_.round_into(start, dur, batch_);
  if (!batch_.empty()) {
    arrivals_.resize(batch_.size());
    for (std::size_t i = 0; i < batch_.size(); ++i) {
      arrivals_[i] = batch_[i].arrival_time;
    }
    sim_.schedule_stream(arrivals_,
                         [this](std::size_t i) { deliver(i); });
  }
  sim_.run_until(end);
  // The stream must have fully drained: batch_ and arrivals_ are reused
  // next round, so a leaked cursor would read recycled storage.
  ECRS_CHECK_MSG(sim_.pending_events() == 0,
                 "arrivals leaked past the round boundary");

  const auto services =
      static_cast<std::uint32_t>(cluster_.microservice_count());
  if (probe_) probe_(true);
  for (std::uint32_t m = 0; m < services; ++m) {
    catch_up(m, end);
    estimator_.observe(
        cluster_.service(m).end_round(r, dur, population_[m]));
  }
  estimator_.estimates_into(estimates_);

  ingestor_.add_demands(estimates_);
  const auction::regional_instance& inst = ingestor_.finalize();
  if (probe_) probe_(false);
  market_.run_round(inst, market_out_);
  apply_allocations(inst, market_out_);

  ++completed_;
  if (callback_) callback_(r, market_out_, estimates_);
}

void daemon::run_rounds(std::uint64_t count) {
  for (std::uint64_t i = 0; i < count; ++i) run_one_round();
}

void daemon::save(ecrs::checkpoint_writer& w) const {
  w.u64(completed_);
  w.u64(delivered_);
  // The boundary clock mark (all per-service clocks are equal between
  // rounds). Serialized, never recomputed, so the restored FP state is the
  // straight-through run's bit for bit.
  w.f64(service_clock_.empty() ? 0.0 : service_clock_[0]);
  gen_.save(w);
  cluster_.save(w);
  estimator_.save(w);
  market_.save(w);
}

void daemon::load(ecrs::checkpoint_reader& r) {
  ECRS_CHECK_MSG(completed_ == 0 && sim_.now() == 0.0,
                 "checkpoints restore into a freshly constructed daemon");
  completed_ = r.u64();
  delivered_ = r.u64();
  const double mark = r.f64();
  service_clock_.assign(service_clock_.size(), mark);
  gen_.load(r);
  cluster_.load(r);
  estimator_.load(r);
  market_.load(r);
}

void daemon::save_file(const std::string& path) const {
  ecrs::checkpoint_writer w;
  save(w);
  ecrs::save_checkpoint_file(path, config_hash_, w.payload());
}

void daemon::load_file(const std::string& path) {
  const std::vector<std::uint8_t> payload =
      ecrs::load_checkpoint_file(path, config_hash_);
  ecrs::checkpoint_reader r(payload);
  load(r);
  ECRS_CHECK_MSG(r.exhausted(), "daemon checkpoint has trailing state");
}

}  // namespace ecrs::simrun
