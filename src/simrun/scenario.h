// Scenario programs for the closed-loop marketplace daemon (DESIGN.md
// section 13): deterministic per-round modulations layered on top of the
// stochastic workload::generator.
//
//  - diurnal load: a sinusoidal multiplier on the per-class Poisson
//    arrival means (period in rounds, amplitude as a fraction of the
//    base rate);
//  - flash crowds: periodic bursts multiplying the arrival rate for a
//    few rounds at the start of each period;
//  - seller churn: periodic seller failures (deactivation) with an
//    optional fixed downtime before recovery, driven by the daemon
//    (simrun/daemon.h) through marketplace::set_seller_active;
//  - mixed SLAs come from the workload config itself (QoS classes with
//    per-class arrival rates and service-demand means).
//
// Everything here is a PURE function of the round index and the config —
// no hidden state — so a daemon resumed from a checkpoint at any round
// boundary replays the exact same scenario as a straight-through run.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace ecrs::simrun {

struct scenario_config {
  // Diurnal cycle: rate multiplier 1 + amplitude * sin(2π·(round−1)/period).
  // amplitude 0 or period 0 disables it; amplitude must stay below 1 so the
  // rate never goes negative.
  double diurnal_amplitude = 0.0;
  std::uint64_t diurnal_period = 0;  // rounds per cycle

  // Flash crowds: the first `flash_duration` rounds of every
  // `flash_every`-round window (phase (round−1) % flash_every) multiply
  // the rate by `flash_factor`. flash_every 0 disables it.
  std::uint64_t flash_every = 0;
  std::uint64_t flash_duration = 1;
  double flash_factor = 3.0;

  // Seller churn: every `churn_every` rounds one seller fails (round-robin
  // over regions, then over the region's sellers — a pure function of the
  // failure ordinal). With `churn_downtime` > 0 the seller recovers that
  // many rounds later; 0 = permanent failure. churn_every 0 disables it.
  std::uint64_t churn_every = 0;
  std::uint64_t churn_downtime = 0;
};

// The arrival-rate multiplier for `round` (1-based). Pure; never negative.
[[nodiscard]] inline double scenario_rate_scale(const scenario_config& sc,
                                                std::uint64_t round) {
  double scale = 1.0;
  if (sc.diurnal_amplitude != 0.0 && sc.diurnal_period > 0) {
    const double phase = static_cast<double>((round - 1) % sc.diurnal_period) /
                         static_cast<double>(sc.diurnal_period);
    scale *= 1.0 + sc.diurnal_amplitude *
                       std::sin(2.0 * 3.141592653589793238462643 * phase);
  }
  if (sc.flash_every > 0 &&
      (round - 1) % sc.flash_every < sc.flash_duration) {
    scale *= sc.flash_factor;
  }
  return std::max(0.0, scale);
}

// The seller that fails at `round` (when one does): failure ordinal
// round / churn_every, mapped round-robin over regions first, then over
// the chosen region's sellers. Recovery reuses the same mapping for the
// ordinal of the original failure round.
struct churn_event {
  std::uint32_t region = 0;
  std::uint32_t seller = 0;
};

}  // namespace ecrs::simrun
