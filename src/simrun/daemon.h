// The sustained closed-loop marketplace daemon (DESIGN.md section 13).
//
// One long-running synchronous loop wiring the whole reproduction into the
// feedback cycle of paper §V: per round,
//
//   1. scenario: set the round's arrival-rate multiplier (diurnal cycle,
//      flash crowds — simrun/scenario.h) and apply seller churn events;
//   2. simulate: generate the round's request batch, register it as one
//      DES stream (des::simulator::schedule_stream) and run the event
//      clock to the round boundary — every request is delivered at its
//      exact arrival timestamp, queues advance lazily per microservice;
//   3. observe: close each microservice's round directly into the demand
//      estimator's streaming path (demand::estimator::observe — no
//      round_stats vector is materialized) and finalize the round's
//      smoothed estimates in place (estimates_into);
//   4. ingest: feed the estimates into the round_ingestor's accumulator
//      rows (add_demands) and quantize them into the standing per-region
//      instances;
//   5. auction: run the sharded marketplace round (local MSOA rounds +
//      cross-region spillover);
//   6. close the loop: the units each microservice was granted (local
//      coverage minus deficits plus spillover awards) become its service
//      rate for the next round — allocation = base + per_unit · granted.
//
// Steady state is allocation-free and rebuild-free: the batch/arrival
// buffers, estimator history, ingest accumulators, shard warm-start
// caches and spillover pools all reuse their storage, so the per-round
// observe → estimate → ingest → auction chain performs zero heap
// allocations once warm (bench/daemon_throughput.cc gates this).
//
// Checkpoint/restore: save() at any round boundary captures the complete
// dynamic state (generator rng, per-microservice queues with exact FP
// sums, estimator Holt history, per-shard ψ/χ/activity). A daemon
// restored from the checkpoint replays the remaining horizon
// byte-identically to the straight-through run: every cross-component
// contract it relies on (warm/cold auction identity, thread-count
// invariance, order-exact accumulation) is already ctest-enforced.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/checkpoint.h"
#include "demand/estimator.h"
#include "des/simulator.h"
#include "edge/cluster.h"
#include "edge/topology.h"
#include "market/ingest.h"
#include "market/marketplace.h"
#include "simrun/scenario.h"
#include "workload/generator.h"

namespace ecrs::simrun {

struct daemon_config {
  double round_duration = 600.0;  // paper: 10-minute rounds
  // Closed-loop coupling: a microservice granted g units runs the next
  // round at allocation = base_allocation + resources_per_unit * g. The
  // base keeps starved services serving (and their estimator indicators
  // finite) even when the market covers nothing.
  double base_allocation = 0.05;
  double resources_per_unit = 1.0;
  scenario_config scenario;
};

// Everything a daemon owns, by value: the daemon is self-contained and
// re-constructible from the same setup (the checkpoint contract — a
// restored daemon must be built from an identical setup, enforced by the
// config hash in the checkpoint header).
struct daemon_setup {
  workload::generator_config workload;
  edge::cluster_config cluster;
  demand::estimator_config estimator;
  market::ingest_config ingest;
  market::marketplace_options market;
  // Backhaul topology (finalized) and per-region standing bids/sellers,
  // exactly as fed to market::round_ingestor / market::marketplace.
  edge::topology topology{1};
  auction::regional_instance standing;
  std::vector<std::vector<auction::seller_profile>> sellers;
  daemon_config config;
};

class daemon {
 public:
  // Invoked after each completed round with the marketplace outcome and
  // the round's demand estimates (indexed by global microservice id).
  using round_callback =
      std::function<void(std::uint64_t round,
                         const market::marketplace_round& out,
                         std::span<const double> estimates)>;

  // Steady-state instrumentation: invoked with `true` immediately before
  // the round's observe -> estimate -> ingest chain and with `false` right
  // after the round's instances are finalized (before the auction).
  // bench/daemon_throughput brackets an allocation counter here to gate
  // the chain's allocation-free steady state.
  using chain_probe = std::function<void(bool entering)>;

  explicit daemon(daemon_setup setup);

  void set_round_callback(round_callback cb) { callback_ = std::move(cb); }
  void set_chain_probe(chain_probe probe) { probe_ = std::move(probe); }

  // Run `count` more rounds of the closed loop.
  void run_rounds(std::uint64_t count);

  [[nodiscard]] std::uint64_t rounds_completed() const { return completed_; }
  [[nodiscard]] std::uint64_t requests_delivered() const { return delivered_; }
  [[nodiscard]] const daemon_config& config() const { return config_; }
  [[nodiscard]] const demand::estimator& estimator() const {
    return estimator_;
  }
  [[nodiscard]] const edge::cluster& cluster() const { return cluster_; }
  [[nodiscard]] const market::marketplace& market() const { return market_; }
  [[nodiscard]] const workload::generator& generator() const { return gen_; }
  // Units granted per global microservice id in the last completed round.
  [[nodiscard]] std::span<const auction::units> last_grants() const {
    return granted_;
  }

  // ---- checkpoint/restore (common/checkpoint.h) ----------------------------
  // FNV-1a over the setup's behaviour-determining configuration; stored in
  // the checkpoint header so a checkpoint never restores into a daemon
  // built from a different setup.
  [[nodiscard]] std::uint64_t config_hash() const { return config_hash_; }

  // Serialize the complete dynamic state at the current round boundary.
  void save(ecrs::checkpoint_writer& w) const;
  // Restore into a FRESHLY CONSTRUCTED daemon (no rounds run) built from
  // the identical setup. Subsequent rounds are byte-identical to the
  // straight-through run.
  void load(ecrs::checkpoint_reader& r);
  void save_file(const std::string& path) const;
  void load_file(const std::string& path);

 private:
  void run_one_round();
  void apply_churn(std::uint64_t round);
  [[nodiscard]] churn_event churn_target(std::uint64_t ordinal) const;
  // Deliver batch_[i] at its arrival timestamp (stream drain callback).
  ECRS_HOT void deliver(std::size_t i);
  // Advance service `m` to simulated time `now` from its own clock.
  ECRS_HOT void catch_up(std::uint32_t m, double now);
  // Close the loop: turn the round's coverage into next-round allocations.
  void apply_allocations(const auction::regional_instance& inst,
                         const market::marketplace_round& out);

  daemon_config config_;
  workload::generator gen_;
  edge::cluster cluster_;
  demand::estimator estimator_;
  edge::topology topo_;  // must outlive market_
  market::marketplace market_;
  market::round_ingestor ingestor_;
  des::simulator sim_;
  round_callback callback_;
  chain_probe probe_;
  std::uint64_t config_hash_ = 0;
  std::vector<std::uint32_t> seller_counts_;  // per region
  std::vector<std::uint32_t> population_;     // per microservice, static
  // Round-scoped buffers, reused so steady-state rounds do not allocate.
  std::vector<workload::request> batch_;
  std::vector<des::sim_time> arrivals_;
  std::vector<double> estimates_;
  std::vector<auction::units> granted_;
  market::marketplace_round market_out_;
  // Per-microservice lazy-advance clocks (all equal at round boundaries).
  std::vector<double> service_clock_;
  std::uint64_t completed_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace ecrs::simrun
