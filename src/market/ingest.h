// Streaming regional ingestion: workload request batches straight into
// per-region shard instances (DESIGN.md section 12, PR 9).
//
// The PR 8 path materialized one GLOBAL single_stage_instance per round
// and split it with region_map::partition — at the 100-region / ~1M
// demander scale that is a full copy of every requirement and every bid,
// every round. The round_ingestor goes the other way: it owns the
// per-region standing bid sets once, and each round only rewrites the
// per-region requirement vectors from the request stream:
//
//   1. accumulate: every request adds its service_demand to its
//      microservice's accumulator row — region m % regions, local slot
//      m / regions, the same round-robin placement
//      workload::generator::region_of uses. Rows are carved from the
//      ingestor's arena at construction (one double row per region), so
//      the per-round loop is pure arithmetic into preallocated memory.
//   2. quantize: per region (parallel across regions, disjoint rows — or
//      serial; identical bytes either way), each accumulator becomes a
//      requirement: ceil(accumulated / unit_demand) units, capped by
//      max_requirement and by the region's guaranteed-supply bound
//      (auction::guaranteed_supply × supply_margin — the generators'
//      satisfiability clamp), then re-inflated by demand_scale exactly
//      like auction::regional_config::demand_scale. Accumulators reset
//      for the next round.
//
// The returned regional_instance is stable storage owned by the ingestor:
// feed it to marketplace::run_round, then ingest the next batch. Bids are
// standing across rounds, so shard warm-start caches engage. The steady
// state allocates nothing.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "auction/bid.h"
#include "auction/instance_gen.h"
#include "common/annotations.h"
#include "common/arena.h"
#include "workload/request.h"

namespace ecrs::market {

// Supply cap sentinel: no clamp (supply_margin == 0).
inline constexpr auction::units kNoSupplyCap =
    std::numeric_limits<auction::units>::max();

struct ingest_config {
  std::uint32_t regions = 1;
  // Microservice id space of the request stream; microservice m lands on
  // region m % regions, local demander slot m / regions (the
  // workload::generator contract).
  std::uint32_t microservices = 1;
  // Resource-seconds of accumulated service demand per requirement unit.
  double unit_demand = 1.0;
  // Hard per-demander requirement cap in units (0 = uncapped), applied
  // before the supply clamp. Mirrors instance_config::requirement_hi.
  auction::units max_requirement = 0;
  // Clamp requirements to this fraction of the region's guaranteed supply
  // (auction::guaranteed_supply over the standing bids); 0 = no clamp.
  double supply_margin = 0.0;
  // Post-clamp demand multiplier, exactly regional_config::demand_scale:
  // > 1 re-inflates requirements past local supply so only cross-region
  // spillover can cover them.
  double demand_scale = 1.0;
  // Worker threads for the quantize pass: 1 = serial, 0 = shared pool at
  // hardware width, k = at most k workers. Identical bytes at any value.
  std::size_t threads = 1;
};

// One request batch's demand, quantized to auction units: ceil of
// accumulated / unit_demand, capped by max_requirement (when > 0) and
// supply_cap (kNoSupplyCap = none), then scaled by demand_scale (ceil).
// Shared by the ingestor, the batch-partition equivalence tests and the
// bench's PR 8 reference path, so both paths quantize bit-identically.
[[nodiscard]] auction::units quantize_demand(double accumulated,
                                             const ingest_config& config,
                                             auction::units supply_cap);

class round_ingestor {
 public:
  // Takes ownership of the standing per-region bid sets. Requirement
  // vectors of `standing` are resized to the region's demander count
  // (microservices / regions rounded by slot) and rewritten every round;
  // bids must use region-local ids consistent with that demander count.
  round_ingestor(ingest_config config, auction::regional_instance standing);

  [[nodiscard]] const ingest_config& config() const { return config_; }
  // The current round view (requirements of the last ingest() call).
  [[nodiscard]] const auction::regional_instance& round() const {
    return round_;
  }

  [[nodiscard]] std::uint32_t region_of(std::uint32_t microservice) const {
    return microservice % config_.regions;
  }
  [[nodiscard]] std::uint32_t local_demander(
      std::uint32_t microservice) const {
    return microservice / config_.regions;
  }
  // Demanders hosted on `region` under round-robin placement.
  [[nodiscard]] std::uint32_t demanders_in(std::uint32_t region) const;
  // The region-local guaranteed-supply cap (kNoSupplyCap when unclamped).
  [[nodiscard]] auction::units supply_cap(std::uint32_t region,
                                          std::uint32_t local) const;

  // Add one (sub-)batch's service demand to the round's accumulators,
  // serial in batch order. Callable any number of times per round — the
  // stream does not have to arrive as one batch; sums are order-exact per
  // microservice, so splitting a batch at any point is byte-identical to
  // accumulating it whole.
  ECRS_HOT void accumulate(std::span<const workload::request> batch);

  // Estimator-driven flavour: add `amount` resource-seconds of estimated
  // demand directly to one microservice's accumulator — the closed-loop
  // daemon path, where requirements come from demand::estimator output
  // rather than raw request sums. Mixable with accumulate() in one round.
  ECRS_HOT void add_demand(std::uint32_t microservice, double amount);

  // add_demand for a dense per-microservice vector (index = global id).
  ECRS_HOT void add_demands(std::span<const double> by_microservice);

  // Close the round: quantize every accumulator into its region's
  // requirement vector (parallel across regions per config.threads,
  // disjoint writes — byte-identical at any thread count), reset the
  // accumulators, and return the round's per-region instances.
  const auction::regional_instance& finalize();

  // accumulate() + finalize() for the common one-batch-per-round loop.
  const auction::regional_instance& ingest(
      std::span<const workload::request> batch);

 private:
  ECRS_HOT void quantize_region(std::uint32_t region);

  ingest_config config_;
  auction::regional_instance round_;
  arena arena_;  // accumulator + cap rows, live for the ingestor lifetime
  std::vector<double*> accum_;          // per region, demanders_in(r) slots
  std::vector<auction::units*> caps_;   // per region (empty when unclamped)
};

}  // namespace ecrs::market
