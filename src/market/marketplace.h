// The sharded multi-region marketplace (DESIGN.md section 12).
//
// One MSOA shard per edge::topology region, run concurrently on the shared
// thread pool, then a serial spillover stage re-auctioning uncovered demand
// to neighboring regions. Per round:
//
//   1. fan out: every shard runs its region's local auction round on its
//      own warm-start msoa_session (disjoint state — results land in
//      disjoint slots, spill requests in disjoint mailbox slots);
//   2. drain #1: coordinator collects spill_requests ordered by
//      (to, from, post sequence) — ascending origin region;
//   3. spillover: uncovered demand is re-auctioned against neighbors'
//      spare capacity (market/spillover.h), grants posted as mail;
//   4. drain #2: helper shards apply their grants (capacity + ψ charge);
//   5. reduce: totals accumulated serially in ascending region order.
//
// Determinism: the parallel stage writes disjoint slots, every cross-shard
// ordering is a pure function of region ids (never completion order), and
// each shard's state depends only on its own instance stream — so a round's
// result is byte-identical at any thread count, including against the
// serial composition of the same shards (ctest-enforced; tests/market_test).
#pragma once

#include <cstdint>
#include <vector>

#include "auction/instance_gen.h"
#include "edge/topology.h"
#include "market/mailbox.h"
#include "market/shard.h"
#include "market/spillover.h"

namespace ecrs::market {

struct marketplace_options {
  shard_options shard;            // per-region session configuration
  spillover_options spillover;    // cross-region re-auction stage
  // Worker threads for the shard fan-out and the spillover candidate
  // assembly: 1 = serial on the calling thread, 0 = the shared pool at
  // hardware width, k = at most k workers. Results are identical for
  // every setting.
  std::size_t threads = 0;
};

// Wall-clock telemetry of the last round. Perf reporting only — values
// depend on the machine and thread count, so they are kept OUT of
// marketplace_round (whose bytes are thread-count-invariant).
struct marketplace_timing {
  double shard_ms = 0.0;           // parallel local-round fan-out
  double spill_ms = 0.0;           // whole spillover stage
  double spill_assembly_ms = 0.0;  // candidate assembly within spillover
};

// One marketplace round, all regions.
struct marketplace_round {
  std::uint32_t round = 0;                // 1-based
  std::vector<shard_round> shards;        // per region, local outcomes
  spillover_outcome spillover;
  double social_cost = 0.0;               // local true prices + spill asks
  double total_payment = 0.0;             // local + spill payments
  auction::units unmet_units = 0;         // demand no one could cover
  bool feasible = false;                  // unmet_units == 0
};

class marketplace {
 public:
  // `topo` must be finalized, cover at least `sellers_per_region.size()`
  // clouds, and outlive the marketplace. One shard is built per entry of
  // `sellers_per_region` (the region's seller profiles, local ids).
  marketplace(const edge::topology& topo,
              std::vector<std::vector<auction::seller_profile>>
                  sellers_per_region,
              marketplace_options options = {});

  [[nodiscard]] std::uint32_t regions() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  [[nodiscard]] std::uint32_t rounds_run() const { return round_; }
  [[nodiscard]] const shard& region(std::uint32_t r) const;

  // Run one round: `round` must carry one single-stage instance (true
  // prices, region-local ids) per region.
  [[nodiscard]] marketplace_round run_round(
      const auction::regional_instance& round);

  // Allocation-reusing flavour: clears and refills `out`'s vectors keeping
  // their capacity. Bit-identical to the value overload. With warm shard
  // sessions (payment_threads == 1) the steady-state round stays off the
  // allocator end to end: spill requests are spans into the round records,
  // spillover candidates live in the stage's arena, and every pooled
  // buffer reuses its capacity.
  void run_round(const auction::regional_instance& round,
                 marketplace_round& out);

  // Timing of the last run_round (see marketplace_timing).
  [[nodiscard]] const marketplace_timing& last_timing() const {
    return timing_;
  }

  // Seller churn: deactivate/reactivate one region-local seller. Takes
  // effect at the next round's admission (and spillover spare-offer) pass.
  void set_seller_active(std::uint32_t region, auction::seller_id s,
                         bool active);

  // Checkpoint the marketplace at a round boundary: round counter plus
  // every shard session's cross-round state. The mailbox must be drained
  // (it always is between run_round calls) and the spillover stage holds
  // only per-round scratch, so neither is serialized.
  void save(ecrs::checkpoint_writer& w) const;
  void load(ecrs::checkpoint_reader& r);

 private:
  const edge::topology* topo_;
  marketplace_options options_;
  std::vector<shard> shards_;
  post_office po_;
  std::uint32_t round_ = 0;
  // Coordinator scratch: requests drained from the mailbox each round.
  std::vector<message> requests_;
  // Persistent spillover stage: candidate arena, pooled re-auction
  // storage, SSAM scratch — reused across rounds.
  spillover_stage spill_stage_;
  marketplace_timing timing_;
};

}  // namespace ecrs::market
