#include "market/region_map.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace ecrs::market {
namespace {

std::vector<std::uint32_t> prefix_sum(
    const std::vector<std::uint32_t>& counts) {
  std::vector<std::uint32_t> base(counts.size() + 1, 0);
  for (std::size_t r = 0; r < counts.size(); ++r) {
    base[r + 1] = base[r] + counts[r];
  }
  return base;
}

// Region owning `global` under the prefix-sum layout: the last base entry
// <= global. O(log regions).
std::uint32_t region_of(const std::vector<std::uint32_t>& base,
                        std::uint32_t global) {
  ECRS_CHECK_MSG(!base.empty() && global < base.back(),
                 "global id " << global << " out of range");
  const auto it = std::upper_bound(base.begin(), base.end(), global);
  return static_cast<std::uint32_t>(it - base.begin() - 1);
}

}  // namespace

region_map::region_map(std::vector<std::uint32_t> sellers_per_region,
                       std::vector<std::uint32_t> demanders_per_region)
    : seller_base_(prefix_sum(sellers_per_region)),
      demander_base_(prefix_sum(demanders_per_region)) {
  ECRS_CHECK_MSG(sellers_per_region.size() == demanders_per_region.size(),
                 "seller and demander count vectors must cover the same "
                 "regions");
  ECRS_CHECK_MSG(!sellers_per_region.empty(), "need at least one region");
}

std::uint32_t region_map::sellers_in(std::uint32_t region) const {
  ECRS_CHECK(region < regions());
  return seller_base_[region + 1] - seller_base_[region];
}

std::uint32_t region_map::demanders_in(std::uint32_t region) const {
  ECRS_CHECK(region < regions());
  return demander_base_[region + 1] - demander_base_[region];
}

std::uint32_t region_map::global_seller(std::uint32_t region,
                                        std::uint32_t local) const {
  ECRS_CHECK(region < regions() && local < sellers_in(region));
  return seller_base_[region] + local;
}

std::uint32_t region_map::global_demander(std::uint32_t region,
                                          std::uint32_t local) const {
  ECRS_CHECK(region < regions() && local < demanders_in(region));
  return demander_base_[region] + local;
}

std::uint32_t region_map::region_of_seller(std::uint32_t global) const {
  return region_of(seller_base_, global);
}

std::uint32_t region_map::region_of_demander(std::uint32_t global) const {
  return region_of(demander_base_, global);
}

std::uint32_t region_map::local_seller(std::uint32_t global) const {
  return global - seller_base_[region_of_seller(global)];
}

std::uint32_t region_map::local_demander(std::uint32_t global) const {
  return global - demander_base_[region_of_demander(global)];
}

partitioned_instance partition(
    const auction::single_stage_instance& global, std::uint32_t regions,
    std::span<const std::uint32_t> seller_region,
    std::span<const std::uint32_t> demander_region) {
  ECRS_CHECK_MSG(regions >= 1, "need at least one region");
  ECRS_CHECK_MSG(demander_region.size() == global.demanders(),
                 "one region tag per demander required");
  for (const std::uint32_t r : seller_region) {
    ECRS_CHECK_MSG(r < regions, "seller region tag " << r << " out of range");
  }
  for (const std::uint32_t r : demander_region) {
    ECRS_CHECK_MSG(r < regions,
                   "demander region tag " << r << " out of range");
  }

  // Local ids in ascending global id order within each region.
  std::vector<std::uint32_t> sellers_per_region(regions, 0);
  std::vector<std::uint32_t> demanders_per_region(regions, 0);
  std::vector<std::uint32_t> local_of_seller(seller_region.size(), 0);
  std::vector<std::uint32_t> local_of_demander(demander_region.size(), 0);
  for (std::size_t s = 0; s < seller_region.size(); ++s) {
    local_of_seller[s] = sellers_per_region[seller_region[s]]++;
  }
  for (std::size_t k = 0; k < demander_region.size(); ++k) {
    local_of_demander[k] = demanders_per_region[demander_region[k]]++;
  }

  partitioned_instance out;
  out.shards.regions.resize(regions);
  for (std::uint32_t r = 0; r < regions; ++r) {
    out.shards.regions[r].requirements.resize(demanders_per_region[r]);
  }
  for (std::size_t k = 0; k < demander_region.size(); ++k) {
    out.shards.regions[demander_region[k]]
        .requirements[local_of_demander[k]] = global.requirements[k];
  }

  for (const auction::bid& b : global.bids) {
    ECRS_CHECK_MSG(b.seller < seller_region.size(),
                   "bid references untagged seller " << b.seller);
    const std::uint32_t r = seller_region[b.seller];
    auction::bid local = b;
    local.seller = local_of_seller[b.seller];
    local.coverage.clear();
    for (const auction::demander_id k : b.coverage) {
      if (demander_region[k] != r) {
        ++out.dropped_coverage;
        continue;
      }
      local.coverage.push_back(local_of_demander[k]);
    }
    if (local.coverage.empty()) {
      ++out.dropped_bids;
      continue;
    }
    // Local ids preserve ascending global order within a region, so the
    // mapped coverage is already sorted unique.
    out.shards.regions[r].bids.push_back(std::move(local));
  }

  out.map = region_map(std::move(sellers_per_region),
                       std::move(demanders_per_region));
  out.shards.validate();
  return out;
}

streaming_partitioner::streaming_partitioner(std::uint32_t regions)
    : regions_(regions) {
  ECRS_CHECK_MSG(regions >= 1, "need at least one region");
  begin();
}

void streaming_partitioner::begin() {
  phase_ = phase::demanders;
  sellers_per_region_.assign(regions_, 0);
  demanders_per_region_.assign(regions_, 0);
  seller_region_.clear();
  local_of_seller_.clear();
  demander_region_.clear();
  local_of_demander_.clear();
  work_.shards.regions.clear();
  work_.shards.regions.resize(regions_);
  work_.map = region_map();
  work_.dropped_coverage = 0;
  work_.dropped_bids = 0;
}

void streaming_partitioner::add_demander(std::uint32_t region,
                                         auction::units requirement) {
  ECRS_CHECK_MSG(phase_ == phase::demanders,
                 "demanders must all arrive before sellers and bids");
  ECRS_CHECK_MSG(region < regions_,
                 "demander region tag " << region << " out of range");
  demander_region_.push_back(region);
  local_of_demander_.push_back(demanders_per_region_[region]++);
  work_.shards.regions[region].requirements.push_back(requirement);
}

void streaming_partitioner::add_seller(std::uint32_t region) {
  ECRS_CHECK_MSG(phase_ != phase::bids, "sellers must arrive before bids");
  ECRS_CHECK_MSG(region < regions_,
                 "seller region tag " << region << " out of range");
  phase_ = phase::sellers;
  seller_region_.push_back(region);
  local_of_seller_.push_back(sellers_per_region_[region]++);
}

void streaming_partitioner::add_bid(const auction::bid& global) {
  phase_ = phase::bids;
  ECRS_CHECK_MSG(global.seller < seller_region_.size(),
                 "bid references untagged seller " << global.seller);
  const std::uint32_t r = seller_region_[global.seller];
  scratch_.seller = local_of_seller_[global.seller];
  scratch_.index = global.index;
  scratch_.amount = global.amount;
  scratch_.price = global.price;
  scratch_.coverage.clear();
  for (const auction::demander_id k : global.coverage) {
    ECRS_CHECK_MSG(k < demander_region_.size(),
                   "bid covers untagged demander " << k);
    if (demander_region_[k] != r) {
      ++work_.dropped_coverage;
      continue;
    }
    // Local ids preserve ascending global order within a region, so the
    // mapped coverage is already sorted unique.
    scratch_.coverage.push_back(local_of_demander_[k]);
  }
  if (scratch_.coverage.empty()) {
    ++work_.dropped_bids;
    return;
  }
  work_.shards.regions[r].bids.push_back(scratch_);
}

partitioned_instance streaming_partitioner::finish() {
  // An empty stream is legal, matching partition() on an empty global
  // instance: every region comes out with no demanders and no bids.
  work_.map =
      region_map(std::vector<std::uint32_t>(sellers_per_region_),
                 std::vector<std::uint32_t>(demanders_per_region_));
  work_.shards.validate();
  return std::exchange(work_, partitioned_instance{});
}

}  // namespace ecrs::market
