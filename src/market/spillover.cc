#include "market/spillover.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"

namespace ecrs::market {
namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

void seller_best_index::build(const auction::single_stage_instance& local,
                              std::span<const spare_offer> offers,
                              std::size_t sellers) {
  best_.assign(sellers, kNoSpareBid);
  sellers_.clear();
  for (const spare_offer& offer : offers) {
    const std::size_t incumbent = best_[offer.seller];
    if (incumbent == kNoSpareBid) {
      best_[offer.seller] = offer.bid_index;
      sellers_.push_back(offer.seller);
    } else if (local.bids[offer.bid_index].price <
               local.bids[incumbent].price) {
      // Strict <: ties keep the earlier (lower) bid index, exactly like
      // the old per-offer scan over the ascending offer list.
      best_[offer.seller] = offer.bid_index;
    }
  }
  // First-seen order is ascending bid index; candidates must enumerate in
  // ascending seller id.
  std::sort(sellers_.begin(), sellers_.end());
}

void spillover_stage::fill_request_rows(
    const edge::topology& topo,
    std::span<const auction::single_stage_instance> locals,
    const spillover_options& options, request_slot& slot,
    std::size_t deficits) const {
  candidate* row = slot.rows;
  for (std::uint32_t si = slot.seg_begin; si < slot.seg_end; ++si) {
    const segment& seg = segments_[si];
    const helper_slot& h = helpers_[seg.helper];
    const auction::single_stage_instance& local = locals[seg.helper];
    const double transfer =
        topo.transfer_cost(slot.region, seg.helper, options.cost_per_ms);
    for (const auction::seller_id s : h.best.sellers()) {
      const std::size_t bi = h.best.best_bid(s);
      const auction::bid& home = local.bids[bi];
      const std::size_t cover = std::min(home.coverage_size(), deficits);
      candidate& c = *row++;
      c.helper_region = seg.helper;
      c.seller = s;
      c.bid_index = bi;
      c.latency = seg.latency;
      c.price = home.price +
                transfer * static_cast<double>(
                               home.amount *
                               static_cast<auction::units>(cover));
      c.amount = home.amount;
      c.cover = static_cast<std::uint32_t>(cover);
    }
  }
  ECRS_CHECK(row == slot.rows + slot.row_count);
}

void spillover_stage::resize_spill_bids(std::size_t n) {
  // Shrunk-off bids park in the pool so their coverage vectors keep their
  // capacity; growing takes them back (a vector move swaps pointers — no
  // allocation once the pool is warm).
  while (spill_.bids.size() > n) {
    bid_pool_.push_back(std::move(spill_.bids.back()));
    spill_.bids.pop_back();
  }
  while (spill_.bids.size() < n) {
    if (!bid_pool_.empty()) {
      spill_.bids.push_back(std::move(bid_pool_.back()));
      bid_pool_.pop_back();
    } else {
      spill_.bids.emplace_back();
    }
  }
}

void spillover_stage::run(
    const edge::topology& topo,
    std::span<const auction::single_stage_instance> locals,
    std::span<const shard> shards, std::span<const shard_round> rounds,
    std::span<const message> requests, const spillover_options& options,
    std::size_t threads, post_office& po, spillover_outcome& out) {
  ECRS_CHECK_MSG(shards.size() == locals.size() &&
                     shards.size() == rounds.size(),
                 "one shard, local instance and round outcome per region");
  ECRS_CHECK_MSG(topo.clouds() >= shards.size(),
                 "topology must cover every region");
  ECRS_CHECK_MSG(options.cost_per_ms >= 0.0 && options.max_latency >= 0.0,
                 "spillover surcharge and latency budget must be >= 0");

  out.awards.clear();
  out.regions.clear();
  out.covered_pool.clear();
  out.unmet_units = 0;
  out.social_cost = 0.0;
  out.total_payment = 0.0;
  assembly_ms_ = 0.0;
  if (requests.empty()) return;

  const auto assembly_start = std::chrono::steady_clock::now();
  const std::size_t n = shards.size();
  const bool serial = threads == 1 || n == 1;
  helpers_.resize(n);

  // A0: every region's spare offers and per-seller best index, in
  // parallel. Disjoint slots; claims are reset here and only written by
  // the serial phase B. (PR 8 computed offers lazily per visited helper —
  // at scale every region is a potential helper anyway, and the build is
  // one O(bids) pass per region.)
  const auto prepare_helper = [&](std::size_t r) {
    helper_slot& h = helpers_[r];
    shards[r].spare_offers(locals[r], rounds[r], h.won_scratch, h.offers);
    h.best.build(locals[r], h.offers, shards[r].session().sellers());
    h.claimed.assign(shards[r].session().sellers(), 0);
  };
  if (serial) {
    for (std::size_t r = 0; r < n; ++r) prepare_helper(r);
  } else {
    thread_pool::shared().parallel_for(n, prepare_helper, threads);
  }

  // Serial pre-pass: size each request's candidate row block (every
  // neighbor in budget with at least one spare seller — the max_regions
  // cap is claim-dependent and applied in phase B) and carve the rows
  // from the round arena.
  arena_.reset();
  segments_.clear();
  slots_.clear();
  slots_.resize(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const message& req = requests[i];
    ECRS_CHECK_MSG(req.type == message::kind::spill_request,
                   "spillover expects only spill_request mail");
    ECRS_CHECK_MSG(req.from < n, "spill request from unknown region");
    ECRS_CHECK_MSG(i == 0 || requests[i - 1].from < req.from,
                   "spill requests must arrive in ascending region order");
    ECRS_CHECK_MSG(!req.deficits.empty(), "empty spill request");
    request_slot& slot = slots_[i];
    slot.region = req.from;
    slot.seg_begin = static_cast<std::uint32_t>(segments_.size());
    std::uint32_t rows = 0;
    for (const edge::neighbor& nb :
         topo.neighbors_by_latency(req.from, options.max_latency)) {
      if (nb.region >= n) continue;  // topology may be wider
      const std::size_t count = helpers_[nb.region].best.sellers().size();
      if (count == 0) continue;
      segments_.push_back({nb.region, nb.latency, rows,
                           static_cast<std::uint32_t>(count)});
      rows += static_cast<std::uint32_t>(count);
    }
    slot.seg_end = static_cast<std::uint32_t>(segments_.size());
    slot.row_count = rows;
    slot.rows = rows > 0 ? arena_.alloc_array<candidate>(rows) : nullptr;
  }

  // A1: fill every request's candidate rows in parallel. Pure function of
  // A0 output and the topology; each request writes only its own block.
  const auto fill = [&](std::size_t i) {
    fill_request_rows(topo, locals, options, slots_[i],
                      requests[i].deficits.size());
  };
  if (serial || requests.size() == 1) {
    for (std::size_t i = 0; i < requests.size(); ++i) fill(i);
  } else {
    thread_pool::shared().parallel_for(requests.size(), fill, threads);
  }
  assembly_ms_ = ms_since(assembly_start);

  // B: serial reduction in ascending requesting region order.
  covered_offsets_.clear();
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const message& req = requests[i];
    const request_slot& slot = slots_[i];
    const std::size_t deficits = req.deficits.size();

    region_spill tally;
    tally.region = slot.region;
    for (const spill_deficit& d : req.deficits) tally.requested += d.missing;

    // Closest helper regions first, at most options.max_regions of them
    // that still contribute a candidate, one bid per unclaimed seller —
    // the same walk PR 8 did, minus the per-offer rescans.
    active_.clear();
    std::size_t helper_regions = 0;
    for (std::uint32_t si = slot.seg_begin; si < slot.seg_end; ++si) {
      if (helper_regions == options.max_regions) break;
      const segment& seg = segments_[si];
      const std::vector<char>& claimed = helpers_[seg.helper].claimed;
      const std::size_t before = active_.size();
      for (std::uint32_t k = seg.begin; k < seg.begin + seg.count; ++k) {
        if (claimed[slot.rows[k].seller] != 0) continue;
        active_.push_back(k);
      }
      if (active_.size() > before) ++helper_regions;
    }

    // Build the re-auction: one demander per deficit entry, one bid per
    // candidate. A candidate keeps its home bid's amount and coverage
    // SIZE, but covers deficit slots rotated by its own index — spreading
    // coverage across the deficit deterministically instead of every
    // candidate piling onto slot 0. Seller ids are candidate indices
    // (each candidate is a distinct real seller, so constraint (9) is
    // vacuous here by construction).
    spill_.requirements.clear();
    for (const spill_deficit& d : req.deficits) {
      spill_.requirements.push_back(d.missing);
    }
    resize_spill_bids(active_.size());
    for (std::size_t a = 0; a < active_.size(); ++a) {
      const candidate& c = slot.rows[active_[a]];
      auction::bid& b = spill_.bids[a];
      b.seller = static_cast<auction::seller_id>(a);
      b.index = 0;
      b.amount = c.amount;
      b.price = c.price;
      b.coverage.clear();
      for (std::size_t k = 0; k < c.cover; ++k) {
        b.coverage.push_back(
            static_cast<auction::demander_id>((a + k) % deficits));
      }
      std::sort(b.coverage.begin(), b.coverage.end());
    }

    auction::run_ssam(spill_, options.stage, &scratch_, result_);

    remaining_.reset(spill_.requirements);
    for (const auction::winning_bid& w : result_.winners) {
      const auction::bid& sb = spill_.bids[w.bid_index];
      remaining_.apply(sb);
      const candidate& c = slot.rows[active_[sb.seller]];
      const auto weight = static_cast<auction::units>(sb.coverage.size());
      helpers_[c.helper_region].claimed[c.seller] = 1;

      spill_award award;
      award.demand_region = slot.region;
      award.helper_region = c.helper_region;
      award.seller = c.seller;
      award.bid_index = c.bid_index;
      // Map deficit-slot indices back to the demand region's local
      // demander ids so awards read in market terms. The ids append to
      // the outcome's pool; spans are patched in once the pool stops
      // growing (below).
      covered_offsets_.emplace_back(out.covered_pool.size(),
                                    sb.coverage.size());
      for (const auction::demander_id k : sb.coverage) {
        out.covered_pool.push_back(req.deficits[k].demander);
      }
      award.amount = sb.amount;
      award.latency = c.latency;
      award.ask = sb.price;
      award.payment = w.payment;
      out.social_cost += award.ask;
      out.total_payment += award.payment;
      out.awards.push_back(award);

      message grant;
      grant.type = message::kind::spill_grant;
      grant.from = po.coordinator();
      grant.to = c.helper_region;
      grant.seller = c.seller;
      grant.weight = weight;
      grant.price = sb.price;
      grant.buyer = slot.region;
      po.post(grant);
    }

    tally.granted = tally.requested - remaining_.deficit();
    out.unmet_units += remaining_.deficit();
    out.regions.push_back(tally);
  }

  // covered_pool is stable now — point every award at its slice.
  for (std::size_t a = 0; a < out.awards.size(); ++a) {
    const auto [offset, count] = covered_offsets_[a];
    out.awards[a].covered = {out.covered_pool.data() + offset, count};
  }
}

void run_spillover(const edge::topology& topo,
                   std::span<const auction::single_stage_instance> locals,
                   std::span<const shard> shards,
                   std::span<const shard_round> rounds,
                   std::span<const message> requests,
                   const spillover_options& options, post_office& po,
                   spillover_outcome& out) {
  spillover_stage stage;
  stage.run(topo, locals, shards, rounds, requests, options, /*threads=*/1,
            po, out);
}

}  // namespace ecrs::market
