#include "market/spillover.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace ecrs::market {
namespace {

// A helper bid eligible for one uncovered region's re-auction.
struct candidate {
  std::uint32_t helper_region = 0;
  auction::seller_id seller = 0;  // helper-local
  std::size_t bid_index = 0;      // into the helper's round instance
  double latency = 0.0;
};

// Lazily computed per-helper-region state: the round's spare offers and a
// claimed mask (a seller sells into at most one foreign region per round).
struct helper_state {
  bool offers_ready = false;
  std::vector<spare_offer> offers;   // ascending bid index
  std::vector<char> claimed;         // by helper-local seller id
};

// Cheapest unclaimed spare bid per seller of `helper`, ties broken by bid
// index. Appends to `out` in ascending seller id order.
void pick_per_seller(const auction::single_stage_instance& local,
                     const helper_state& helper, std::uint32_t region,
                     double latency, std::vector<candidate>& out) {
  // Offers arrive grouped by nothing in particular (ascending bid index),
  // so scan for each seller's best; offer lists are small (<= bids of one
  // region's round).
  std::vector<std::pair<auction::seller_id, std::size_t>> best;
  for (const spare_offer& offer : helper.offers) {
    if (helper.claimed[offer.seller] != 0) continue;
    const double price = local.bids[offer.bid_index].price;
    auto it = std::find_if(best.begin(), best.end(), [&](const auto& e) {
      return e.first == offer.seller;
    });
    if (it == best.end()) {
      best.emplace_back(offer.seller, offer.bid_index);
    } else if (price < local.bids[it->second].price) {
      it->second = offer.bid_index;
    }
  }
  std::sort(best.begin(), best.end());
  for (const auto& [seller, bid_index] : best) {
    out.push_back({region, seller, bid_index, latency});
  }
}

}  // namespace

void run_spillover(const edge::topology& topo,
                   std::span<const auction::single_stage_instance> locals,
                   std::span<const shard> shards,
                   std::span<const shard_round> rounds,
                   std::span<const message> requests,
                   const spillover_options& options, post_office& po,
                   spillover_outcome& out) {
  ECRS_CHECK_MSG(shards.size() == locals.size() &&
                     shards.size() == rounds.size(),
                 "one shard, local instance and round outcome per region");
  ECRS_CHECK_MSG(topo.clouds() >= shards.size(),
                 "topology must cover every region");
  ECRS_CHECK_MSG(options.cost_per_ms >= 0.0 && options.max_latency >= 0.0,
                 "spillover surcharge and latency budget must be >= 0");

  out.awards.clear();
  out.regions.clear();
  out.unmet_units = 0;
  out.social_cost = 0.0;
  out.total_payment = 0.0;
  if (requests.empty()) return;

  std::vector<helper_state> helpers(shards.size());
  std::vector<candidate> candidates;
  auction::single_stage_instance spill;
  auction::coverage_state remaining;

  for (const message& req : requests) {
    ECRS_CHECK_MSG(req.type == message::kind::spill_request,
                   "spillover expects only spill_request mail");
    const std::uint32_t r = req.from;
    ECRS_CHECK_MSG(r < shards.size(), "spill request from unknown region");
    ECRS_CHECK_MSG(out.regions.empty() || out.regions.back().region < r,
                   "spill requests must arrive in ascending region order");
    const std::size_t deficits = req.deficits.size();
    ECRS_CHECK_MSG(deficits > 0, "empty spill request");

    region_spill tally;
    tally.region = r;
    for (const spill_deficit& d : req.deficits) tally.requested += d.missing;

    // Assemble candidates: closest helper regions first, at most
    // options.max_regions of them, one bid per (still unclaimed) seller.
    candidates.clear();
    std::size_t helper_regions = 0;
    for (const edge::neighbor& nb :
         topo.neighbors_by_latency(r, options.max_latency)) {
      if (helper_regions == options.max_regions) break;
      if (nb.region >= shards.size()) continue;  // topology may be wider
      helper_state& h = helpers[nb.region];
      if (!h.offers_ready) {
        h.offers_ready = true;
        h.claimed.assign(shards[nb.region].session().sellers(), 0);
        shards[nb.region].spare_offers(locals[nb.region], rounds[nb.region],
                                       h.offers);
      }
      const std::size_t before = candidates.size();
      pick_per_seller(locals[nb.region], h, nb.region, nb.latency,
                      candidates);
      if (candidates.size() > before) ++helper_regions;
    }

    // Build the re-auction: one demander per deficit entry, one bid per
    // candidate. A candidate keeps its home bid's amount and coverage
    // SIZE, but covers deficit slots rotated by its own index — spreading
    // coverage across the deficit deterministically instead of every
    // candidate piling onto slot 0. Seller ids are candidate indices
    // (each candidate is a distinct real seller, so constraint (9) is
    // vacuous here by construction).
    spill.requirements.clear();
    for (const spill_deficit& d : req.deficits) {
      spill.requirements.push_back(d.missing);
    }
    spill.bids.clear();
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const candidate& c = candidates[i];
      const auction::bid& home = locals[c.helper_region].bids[c.bid_index];
      const std::size_t cover = std::min(home.coverage_size(), deficits);
      auction::bid b;
      b.seller = static_cast<auction::seller_id>(i);
      b.index = 0;
      b.amount = home.amount;
      for (std::size_t k = 0; k < cover; ++k) {
        b.coverage.push_back(
            static_cast<auction::demander_id>((i + k) % deficits));
      }
      std::sort(b.coverage.begin(), b.coverage.end());
      b.price = home.price +
                topo.transfer_cost(r, c.helper_region, options.cost_per_ms) *
                    static_cast<double>(home.amount *
                                        static_cast<auction::units>(cover));
      spill.bids.push_back(std::move(b));
    }

    const auction::ssam_result result =
        auction::run_ssam(spill, options.stage);

    remaining.reset(spill.requirements);
    for (const auction::winning_bid& w : result.winners) {
      const auction::bid& sb = spill.bids[w.bid_index];
      remaining.apply(sb);
      const candidate& c = candidates[sb.seller];
      const auto weight = static_cast<auction::units>(sb.coverage.size());
      helpers[c.helper_region].claimed[c.seller] = 1;

      spill_award award;
      award.demand_region = r;
      award.helper_region = c.helper_region;
      award.seller = c.seller;
      award.bid_index = c.bid_index;
      // Map deficit-slot indices back to the demand region's local
      // demander ids so awards read in market terms.
      award.covered = sb.coverage;
      for (auction::demander_id& k : award.covered) {
        k = req.deficits[k].demander;
      }
      award.amount = sb.amount;
      award.latency = c.latency;
      award.ask = sb.price;
      award.payment = w.payment;
      out.social_cost += award.ask;
      out.total_payment += award.payment;
      out.awards.push_back(std::move(award));

      message grant;
      grant.type = message::kind::spill_grant;
      grant.from = po.coordinator();
      grant.to = c.helper_region;
      grant.seller = c.seller;
      grant.weight = weight;
      grant.price = sb.price;
      grant.buyer = r;
      po.post(std::move(grant));
    }

    tally.granted = tally.requested - remaining.deficit();
    out.unmet_units += remaining.deficit();
    out.regions.push_back(tally);
  }
}

}  // namespace ecrs::market
