// One regional market: a warm-start auction::msoa_session plus the
// region-local bookkeeping the marketplace round loop needs.
//
// A shard is strictly region-local: it runs its region's rounds on its own
// session (ψ/χ state, compiled-instance warm-start cache, scratch), posts a
// spill_request when a round leaves demand uncovered, and applies
// spill_grants when the coordinator sells its sellers' spare capacity into
// neighboring regions. It never reads another shard's state — all
// cross-region traffic is mail (market/mailbox.h).
//
// Thread contract: the marketplace runs at most one shard::run_round per
// shard at a time (shards fan out across regions, not within one), and all
// grant application happens serially between rounds. Every member is
// therefore single-thread-confined per round, like msoa_session itself.
#pragma once

#include <cstdint>
#include <vector>

#include "auction/bid.h"
#include "auction/msoa.h"
#include "common/annotations.h"
#include "market/mailbox.h"

namespace ecrs::market {

struct shard_options {
  // Per-round mechanism configuration for the shard's session. The
  // marketplace's parallelism is across shards, so per-shard payment
  // probes default to serial (payment_threads left at the caller's value).
  auction::msoa_options session;
};

// What one local round produced.
struct shard_round {
  auction::msoa_round_outcome outcome;
  // Demand the local round could not cover, ascending local demander id
  // (empty when the round was feasible).
  std::vector<spill_deficit> uncovered;
  auction::units deficit = 0;  // total missing units
};

// A spare capacity offer: a bid of the current local round whose seller
// won nothing this round and still has the lifetime capacity to serve it.
struct spare_offer {
  std::size_t bid_index = 0;  // into the local round's bid vector
  auction::seller_id seller = 0;
};

class shard {
 public:
  shard(std::uint32_t region, std::vector<auction::seller_profile> sellers,
        shard_options options = {});

  [[nodiscard]] std::uint32_t region() const { return region_; }
  [[nodiscard]] auction::msoa_session& session() { return session_; }
  [[nodiscard]] const auction::msoa_session& session() const {
    return session_;
  }

  // Run the region's next local auction round (true prices). Fills `out`
  // (vector capacity reused) and posts one spill_request to the
  // coordinator slot of `po` when demand is left uncovered.
  void run_round(const auction::single_stage_instance& local, post_office& po,
                 shard_round& out);

  // Spare offers of the round just run: bids of `local` whose seller won
  // nothing in `result` and has capacity for the bid's participation
  // weight. Replaces the contents of `out` in ascending bid-index order
  // (deterministic). `won_scratch` is caller-owned per-seller scratch so
  // repeated rounds stay off the allocator once warm; const because the
  // spillover stage calls this from the parallel fan-out — only the
  // caller-owned scratch is written.
  ECRS_HOT void spare_offers(const auction::single_stage_instance& local,
                             const shard_round& result,
                             std::vector<char>& won_scratch,
                             std::vector<spare_offer>& out) const;

  // Apply a spill_grant addressed to this shard: charge the sale against
  // the seller's session capacity (and ψ).
  void apply_grant(const message& grant);

  // Seller churn passthrough: an inactive seller is skipped both by the
  // session's admission and by spare_offers (no spillover sales either).
  void set_seller_active(auction::seller_id s, bool active) {
    session_.set_seller_active(s, active);
  }

  // Checkpoint passthrough to the session (coverage replay state is
  // per-round scratch and not serialized).
  void save(ecrs::checkpoint_writer& w) const { session_.save(w); }
  void load(ecrs::checkpoint_reader& r) { session_.load(r); }

 private:
  std::uint32_t region_;
  std::vector<auction::seller_profile> profiles_;
  shard_options options_;
  ECRS_THREAD_OWNED("one shard round at a time") auction::msoa_session
      session_;
  ECRS_THREAD_OWNED("one shard round at a time") auction::coverage_state
      replay_;
};

}  // namespace ecrs::market
