// Cross-region spillover re-auctions (the marketplace's second stage).
//
// After every region's local round, demand the local auctions left
// uncovered is re-auctioned against the spare capacity of NEIGHBORING
// regions: for each uncovered region, candidate offers are assembled by
// walking edge::topology::neighbors_by_latency(region, max_latency) — so
// closer helpers are considered first — capped at `max_regions` helper
// regions, and priced at the original asking price plus the
// topology::transfer_cost surcharge for hauling the units across the
// backhaul. One SSAM re-auction per uncovered region then picks the
// cheapest feasible helper set; its winners become spill_grant mail for
// the helper shards (which charge the sale against seller capacity via
// msoa_session::consume_external).
//
// The stage is serial and deterministic by construction: uncovered regions
// are processed in ascending region id (the post office's drain order for
// coordinator mail), candidates are enumerated in ascending
// (latency, helper region id, seller id) order, and a seller sells into at
// most one foreign region per marketplace round.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "auction/bid.h"
#include "auction/ssam.h"
#include "edge/topology.h"
#include "market/mailbox.h"
#include "market/shard.h"

namespace ecrs::market {

struct spillover_options {
  // Per-unit-per-ms backhaul surcharge (edge::topology::transfer_cost).
  double cost_per_ms = 0.05;
  // Latency budget: helpers further than this (shortest path, ms) are never
  // considered. Infinity = any reachable region.
  double max_latency = std::numeric_limits<double>::infinity();
  // At most this many helper regions per uncovered region (closest first).
  std::size_t max_regions = 4;
  // Configuration of the per-region SSAM re-auction.
  auction::ssam_options stage;
};

// One spillover sale: helper region's seller covers part of the demand
// region's deficit.
struct spill_award {
  std::uint32_t demand_region = 0;
  std::uint32_t helper_region = 0;
  auction::seller_id seller = 0;  // helper-region-local id
  std::size_t bid_index = 0;      // into the helper region's round instance
  // Covered demanders, demand-region-local ids (sorted unique).
  std::vector<auction::demander_id> covered;
  auction::units amount = 0;   // units per covered demander
  double latency = 0.0;        // shortest-path ms between the two regions
  double ask = 0.0;            // surcharged asking price (social cost share)
  double payment = 0.0;        // what the platform pays the helper
};

// Per-uncovered-region accounting of what spillover achieved.
struct region_spill {
  std::uint32_t region = 0;
  auction::units requested = 0;  // units the local round left uncovered
  auction::units granted = 0;    // units spillover covered
};

struct spillover_outcome {
  std::vector<spill_award> awards;      // ascending demand region id
  std::vector<region_spill> regions;    // one per spill request, ascending
  auction::units unmet_units = 0;       // requested - granted, summed
  double social_cost = 0.0;             // sum of award asks
  double total_payment = 0.0;           // sum of award payments
};

// Run the spillover stage for one marketplace round. `locals` are the
// regions' round instances (true prices), `shards`/`rounds` the per-region
// shard state and local outcomes, `requests` the coordinator's drained
// spill_request mail in ascending origin-region order. Posts one
// spill_grant per award to `po` (from the coordinator slot); the caller
// drains and applies them. `out` is cleared and refilled (vector capacity
// reused).
void run_spillover(const edge::topology& topo,
                   std::span<const auction::single_stage_instance> locals,
                   std::span<const shard> shards,
                   std::span<const shard_round> rounds,
                   std::span<const message> requests,
                   const spillover_options& options, post_office& po,
                   spillover_outcome& out);

}  // namespace ecrs::market
