// Cross-region spillover re-auctions (the marketplace's second stage).
//
// After every region's local round, demand the local auctions left
// uncovered is re-auctioned against the spare capacity of NEIGHBORING
// regions: for each uncovered region, candidate offers are assembled by
// walking edge::topology::neighbors_by_latency(region, max_latency) — so
// closer helpers are considered first — capped at `max_regions` helper
// regions, and priced at the original asking price plus the
// topology::transfer_cost surcharge for hauling the units across the
// backhaul. One SSAM re-auction per uncovered region then picks the
// cheapest feasible helper set; its winners become spill_grant mail for
// the helper shards (which charge the sale against seller capacity via
// msoa_session::consume_external).
//
// Determinism contract (unchanged from the all-serial PR 8 stage, which
// this reproduces bit for bit): uncovered regions are processed in
// ascending region id (the post office's drain order for coordinator
// mail), candidates are enumerated in ascending (latency, helper region
// id, seller id) order, and a seller sells into at most one foreign region
// per marketplace round.
//
// Scale structure (PR 9): the stage is split into claim-independent
// assembly and a serial reduction.
//
//   A0  per HELPER region, parallel, disjoint slots: collect the round's
//       spare offers and build a seller_best_index (cheapest spare bid per
//       seller — the old per-offer find_if scan was O(offers · sellers)).
//   A1  per REQUESTING region, parallel, disjoint arena rows: walk the
//       neighbor list and materialize every potential candidate (helper,
//       seller, best bid, latency, surcharged price) into rows carved from
//       a common/arena. Claims are NOT consulted here — a claim only ever
//       removes a whole seller, so the per-seller best is claim-invariant.
//   B   serial reduction, ascending requesting region: filter claimed
//       sellers, apply the max_regions cap (a helper whose sellers are all
//       claimed does not count, exactly like the lazy PR 8 walk), build
//       the re-auction from pooled storage, award, claim, post grants.
//
// The steady-state round allocates nothing here: candidate rows live in
// the stage's arena (rewound every round, chunks kept), the re-auction
// instance/bids/result/scratch are pooled across rounds, and awards write
// covered ids into one pool per outcome.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "auction/bid.h"
#include "auction/ssam.h"
#include "common/annotations.h"
#include "common/arena.h"
#include "edge/topology.h"
#include "market/mailbox.h"
#include "market/shard.h"

namespace ecrs::market {

struct spillover_options {
  // Per-unit-per-ms backhaul surcharge (edge::topology::transfer_cost).
  double cost_per_ms = 0.05;
  // Latency budget: helpers further than this (shortest path, ms) are never
  // considered. Infinity = any reachable region.
  double max_latency = std::numeric_limits<double>::infinity();
  // At most this many helper regions per uncovered region (closest first).
  std::size_t max_regions = 4;
  // Configuration of the per-region SSAM re-auction.
  auction::ssam_options stage;
};

// One spillover sale: helper region's seller covers part of the demand
// region's deficit.
struct spill_award {
  std::uint32_t demand_region = 0;
  std::uint32_t helper_region = 0;
  auction::seller_id seller = 0;  // helper-region-local id
  std::size_t bid_index = 0;      // into the helper region's round instance
  // Covered demanders, demand-region-local ids (sorted unique). A view
  // into the owning spillover_outcome's covered_pool: valid as long as
  // that outcome lives, and survives MOVES of the outcome (the pool's heap
  // buffer moves with it) — but not copies, which leave the spans viewing
  // the source. Move outcomes or read them in place.
  std::span<const auction::demander_id> covered;
  auction::units amount = 0;   // units per covered demander
  double latency = 0.0;        // shortest-path ms between the two regions
  double ask = 0.0;            // surcharged asking price (social cost share)
  double payment = 0.0;        // what the platform pays the helper
};

// Per-uncovered-region accounting of what spillover achieved.
struct region_spill {
  std::uint32_t region = 0;
  auction::units requested = 0;  // units the local round left uncovered
  auction::units granted = 0;    // units spillover covered
};

struct spillover_outcome {
  std::vector<spill_award> awards;      // ascending demand region id
  std::vector<region_spill> regions;    // one per spill request, ascending
  // Backing store for every award's `covered` span, in award order.
  std::vector<auction::demander_id> covered_pool;
  auction::units unmet_units = 0;       // requested - granted, summed
  double social_cost = 0.0;             // sum of award asks
  double total_payment = 0.0;           // sum of award payments
};

// Sentinel of seller_best_index::best_bid: the seller offered nothing.
inline constexpr std::size_t kNoSpareBid =
    std::numeric_limits<std::size_t>::max();

// Per-helper-region index of one round's spare offers: for every seller
// the cheapest spare bid (ties to the lowest bid index — the order
// spare_offers emits). Replaces the old O(offers · sellers) per-offer
// find_if scan with one O(sellers + offers · log) build consumed by every
// requesting region. Exposed for the regression test that fuzzes it
// against the old scan (tests/market_test.cc).
class seller_best_index {
 public:
  // Rebuild from one region's spare offers (ascending bid index). `local`
  // supplies bid prices; `sellers` is the region's seller count. Reuses
  // capacity — warm rebuilds never allocate.
  ECRS_HOT void build(const auction::single_stage_instance& local,
                      std::span<const spare_offer> offers,
                      std::size_t sellers);

  // Sellers with at least one spare offer, ascending id.
  [[nodiscard]] std::span<const auction::seller_id> sellers() const {
    return sellers_;
  }
  // The cheapest spare bid of `seller`, or kNoSpareBid.
  [[nodiscard]] std::size_t best_bid(auction::seller_id seller) const {
    return best_[seller];
  }

 private:
  std::vector<std::size_t> best_;              // per seller id
  std::vector<auction::seller_id> sellers_;    // ascending, offers only
};

// The spillover stage with persistent cross-round storage. One instance
// serves one marketplace (or test harness); rounds reuse every buffer, so
// the steady state allocates nothing. run() is bit-identical to the PR 8
// serial stage at every `threads` value.
class spillover_stage {
 public:
  // `locals`/`shards`/`rounds` are the regions' round instances, shard
  // state and local outcomes; `requests` the coordinator's drained
  // spill_request mail in ascending origin-region order. `threads` follows
  // marketplace_options::threads (1 = serial on the calling thread, 0 =
  // shared pool at hardware width, k = at most k workers). Posts one
  // spill_grant per award to `po`; refills `out` (capacity reused).
  void run(const edge::topology& topo,
           std::span<const auction::single_stage_instance> locals,
           std::span<const shard> shards, std::span<const shard_round> rounds,
           std::span<const message> requests, const spillover_options& options,
           std::size_t threads, post_office& po, spillover_outcome& out);

  // Wall time the last run() spent in candidate assembly (phases A0 + A1),
  // milliseconds. Perf telemetry only — never part of the outcome.
  [[nodiscard]] double assembly_ms() const { return assembly_ms_; }

 private:
  // One potential candidate, fully priced. Claim-independent: phase B
  // drops rows of claimed sellers without re-deriving anything.
  struct candidate {
    std::uint32_t helper_region = 0;
    auction::seller_id seller = 0;  // helper-local
    std::size_t bid_index = 0;      // into the helper's round instance
    double latency = 0.0;
    double price = 0.0;             // home ask + backhaul surcharge
    auction::units amount = 0;      // units per covered deficit slot
    std::uint32_t cover = 0;        // deficit slots the bid spans
  };
  // One helper region's contribution to one request: a run of `count`
  // candidate rows starting at `begin` in the request's row block.
  struct segment {
    std::uint32_t helper = 0;
    double latency = 0.0;
    std::uint32_t begin = 0;
    std::uint32_t count = 0;
  };
  // Per-request assembly product: the arena row block plus its segments.
  struct request_slot {
    std::uint32_t region = 0;
    candidate* rows = nullptr;  // arena-carved, row_count entries
    std::uint32_t row_count = 0;
    std::uint32_t seg_begin = 0;  // into segments_
    std::uint32_t seg_end = 0;
  };
  // Per-helper-region round state (disjoint parallel slots in A0).
  struct helper_slot {
    std::vector<spare_offer> offers;
    seller_best_index best;
    std::vector<char> claimed;      // serial phase B only
    std::vector<char> won_scratch;  // shard::spare_offers scratch
  };

  ECRS_HOT void fill_request_rows(
      const edge::topology& topo,
      std::span<const auction::single_stage_instance> locals,
      const spillover_options& options, request_slot& slot,
      std::size_t deficits) const;
  // Grow/shrink the pooled re-auction bid vector without destroying bids
  // (shrunk-off bids park in bid_pool_ keeping their coverage capacity).
  void resize_spill_bids(std::size_t n);

  std::vector<helper_slot> helpers_;
  std::vector<request_slot> slots_;
  std::vector<segment> segments_;
  arena arena_;  // candidate rows; rewound every round, chunks kept
  // Pooled re-auction storage.
  auction::single_stage_instance spill_;
  std::vector<auction::bid> bid_pool_;
  std::vector<std::uint32_t> active_;  // unclaimed row indices, one request
  auction::coverage_state remaining_;
  auction::ssam_scratch scratch_;
  auction::ssam_result result_;
  // Award covered spans are recorded as offsets while covered_pool grows,
  // then patched to spans once it is stable.
  std::vector<std::pair<std::size_t, std::size_t>> covered_offsets_;
  double assembly_ms_ = 0.0;
};

// Run the spillover stage for one marketplace round on a throwaway
// spillover_stage (serial assembly). Kept for tests and one-shot callers;
// the marketplace owns a persistent stage instead so rounds reuse storage.
void run_spillover(const edge::topology& topo,
                   std::span<const auction::single_stage_instance> locals,
                   std::span<const shard> shards,
                   std::span<const shard_round> rounds,
                   std::span<const message> requests,
                   const spillover_options& options, post_office& po,
                   spillover_outcome& out);

}  // namespace ecrs::market
