#include "market/ingest.h"

#include <cmath>

#include "common/check.h"
#include "common/thread_pool.h"

namespace ecrs::market {

auction::units quantize_demand(double accumulated,
                               const ingest_config& config,
                               auction::units supply_cap) {
  if (accumulated <= 0.0) return 0;
  auto q = static_cast<auction::units>(
      std::ceil(accumulated / config.unit_demand));
  if (config.max_requirement > 0) q = std::min(q, config.max_requirement);
  q = std::min(q, supply_cap);
  if (config.demand_scale != 1.0) {
    q = static_cast<auction::units>(
        std::ceil(static_cast<double>(q) * config.demand_scale));
  }
  return q;
}

round_ingestor::round_ingestor(ingest_config config,
                               auction::regional_instance standing)
    : config_(config), round_(std::move(standing)) {
  ECRS_CHECK_MSG(config_.regions >= 1, "need at least one region");
  ECRS_CHECK_MSG(config_.microservices >= 1, "need at least one microservice");
  ECRS_CHECK_MSG(config_.unit_demand > 0.0, "unit_demand must be > 0");
  ECRS_CHECK_MSG(config_.supply_margin >= 0.0 && config_.supply_margin <= 1.0,
                 "supply margin out of [0,1]");
  ECRS_CHECK_MSG(config_.demand_scale >= 1.0, "demand scale must be >= 1");
  ECRS_CHECK_MSG(round_.regions.size() == config_.regions,
                 "standing bids carry " << round_.regions.size()
                                        << " regions, config says "
                                        << config_.regions);

  accum_.resize(config_.regions);
  if (config_.supply_margin > 0.0) caps_.resize(config_.regions);
  for (std::uint32_t r = 0; r < config_.regions; ++r) {
    const std::uint32_t n = demanders_in(r);
    auction::single_stage_instance& local = round_.regions[r];
    local.requirements.assign(n, 0);
    accum_[r] = arena_.alloc_array<double>(n);
    for (std::uint32_t k = 0; k < n; ++k) accum_[r][k] = 0.0;
    if (config_.supply_margin > 0.0) {
      // Guaranteed-supply cap per local demander, the generators'
      // satisfiability bound (computed once — bids are standing).
      const std::vector<auction::units> supply =
          auction::guaranteed_supply(local);
      caps_[r] = arena_.alloc_array<auction::units>(n);
      for (std::uint32_t k = 0; k < n; ++k) {
        caps_[r][k] = static_cast<auction::units>(std::floor(
            config_.supply_margin * static_cast<double>(supply[k])));
      }
    }
  }
  round_.validate();  // bids must be consistent with the demander counts
}

std::uint32_t round_ingestor::demanders_in(std::uint32_t region) const {
  ECRS_CHECK(region < config_.regions);
  if (region >= config_.microservices) return 0;
  return (config_.microservices - 1 - region) / config_.regions + 1;
}

auction::units round_ingestor::supply_cap(std::uint32_t region,
                                          std::uint32_t local) const {
  ECRS_CHECK(region < config_.regions && local < demanders_in(region));
  return caps_.empty() ? kNoSupplyCap : caps_[region][local];
}

void round_ingestor::accumulate(std::span<const workload::request> batch) {
  const std::uint32_t regions = config_.regions;
  for (const workload::request& q : batch) {
    ECRS_CHECK_MSG(q.microservice < config_.microservices,
                   "request targets microservice "
                       << q.microservice << " outside the configured "
                       << config_.microservices);
    accum_[q.microservice % regions][q.microservice / regions] +=
        q.service_demand;
  }
}

void round_ingestor::add_demand(std::uint32_t microservice, double amount) {
  ECRS_CHECK_MSG(microservice < config_.microservices,
                 "demand targets microservice "
                     << microservice << " outside the configured "
                     << config_.microservices);
  ECRS_CHECK_MSG(amount >= 0.0, "negative demand");
  accum_[microservice % config_.regions][microservice / config_.regions] +=
      amount;
}

void round_ingestor::add_demands(std::span<const double> by_microservice) {
  ECRS_CHECK_MSG(by_microservice.size() == config_.microservices,
                 "dense demand vector carries "
                     << by_microservice.size() << " entries for "
                     << config_.microservices << " microservices");
  const std::uint32_t regions = config_.regions;
  for (std::uint32_t m = 0; m < config_.microservices; ++m) {
    const double amount = by_microservice[m];
    ECRS_CHECK_MSG(amount >= 0.0, "negative demand");
    accum_[m % regions][m / regions] += amount;
  }
}

void round_ingestor::quantize_region(std::uint32_t region) {
  const std::uint32_t n = demanders_in(region);
  double* acc = accum_[region];
  const auction::units* caps = caps_.empty() ? nullptr : caps_[region];
  std::vector<auction::units>& req = round_.regions[region].requirements;
  for (std::uint32_t k = 0; k < n; ++k) {
    req[k] = quantize_demand(acc[k], config_,
                             caps != nullptr ? caps[k] : kNoSupplyCap);
    acc[k] = 0.0;
  }
}

const auction::regional_instance& round_ingestor::finalize() {
  const std::uint32_t regions = config_.regions;
  if (config_.threads == 1 || regions == 1) {
    for (std::uint32_t r = 0; r < regions; ++r) quantize_region(r);
  } else {
    thread_pool::shared().parallel_for(
        regions,
        [&](std::size_t r) {
          quantize_region(static_cast<std::uint32_t>(r));
        },
        config_.threads);
  }
  return round_;
}

const auction::regional_instance& round_ingestor::ingest(
    std::span<const workload::request> batch) {
  accumulate(batch);
  return finalize();
}

}  // namespace ecrs::market
