// Global <-> (region, local) id translation for the sharded marketplace.
//
// Each region runs its own auction over region-local seller/demander ids
// (so shard instances are self-contained and shards never share mutable
// state); the region_map records how those local ids line up with the
// platform's global ids. Global ids are contiguous in ascending region
// order: region 0's sellers first, then region 1's, and so on — the same
// layout auction::regional_instance generation produces.
//
// partition() builds a regional_instance (plus its map) from a GLOBAL
// instance and per-entity region tags: every bid follows its seller's
// region, and coverage entries naming demanders outside that region are
// dropped — regional markets are local by construction; cross-region help
// is the spillover stage's job, not a bid's (DESIGN.md section 12).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "auction/instance_gen.h"

namespace ecrs::market {

class region_map {
 public:
  region_map() = default;
  // Per-region entity counts; global ids are assigned contiguously in
  // region order.
  region_map(std::vector<std::uint32_t> sellers_per_region,
             std::vector<std::uint32_t> demanders_per_region);

  [[nodiscard]] std::uint32_t regions() const {
    return static_cast<std::uint32_t>(seller_base_.empty()
                                          ? 0
                                          : seller_base_.size() - 1);
  }
  [[nodiscard]] std::uint32_t seller_count() const {
    return seller_base_.empty() ? 0 : seller_base_.back();
  }
  [[nodiscard]] std::uint32_t demander_count() const {
    return demander_base_.empty() ? 0 : demander_base_.back();
  }
  [[nodiscard]] std::uint32_t sellers_in(std::uint32_t region) const;
  [[nodiscard]] std::uint32_t demanders_in(std::uint32_t region) const;

  [[nodiscard]] std::uint32_t global_seller(std::uint32_t region,
                                            std::uint32_t local) const;
  [[nodiscard]] std::uint32_t global_demander(std::uint32_t region,
                                              std::uint32_t local) const;
  [[nodiscard]] std::uint32_t region_of_seller(std::uint32_t global) const;
  [[nodiscard]] std::uint32_t region_of_demander(std::uint32_t global) const;
  [[nodiscard]] std::uint32_t local_seller(std::uint32_t global) const;
  [[nodiscard]] std::uint32_t local_demander(std::uint32_t global) const;

 private:
  // Prefix sums, regions()+1 entries each (empty when default-constructed).
  std::vector<std::uint32_t> seller_base_;
  std::vector<std::uint32_t> demander_base_;
};

// A global instance split into per-region locals.
struct partitioned_instance {
  auction::regional_instance shards;
  region_map map;
  // Coverage entries that named a demander outside the bid's seller's
  // region (dropped), and bids left with no coverage at all (dropped).
  std::size_t dropped_coverage = 0;
  std::size_t dropped_bids = 0;
};

// Partition `global` by the given region tags (one entry per seller /
// demander id, values < regions). Local ids preserve ascending global id
// order within each region, so the split is deterministic and reversible
// through the returned map.
[[nodiscard]] partitioned_instance partition(
    const auction::single_stage_instance& global, std::uint32_t regions,
    std::span<const std::uint32_t> seller_region,
    std::span<const std::uint32_t> demander_region);

// Incremental flavour of partition(): the global instance arrives as a
// stream instead of being materialized first. Feed in three phases —
// every demander in ascending global id order, then every seller in
// ascending global id order, then the bids in global bid order (bids may
// reference any already-tagged seller). finish() yields the same
// partitioned_instance, byte for byte, that partition() builds from the
// equivalent global instance (fuzz-enforced by tests/market_test.cc).
class streaming_partitioner {
 public:
  explicit streaming_partitioner(std::uint32_t regions);

  // Restart for a new stream, keeping buffer capacity.
  void begin();
  // Phase 1: demander with global id = number of add_demander calls so
  // far this stream.
  void add_demander(std::uint32_t region, auction::units requirement);
  // Phase 2 (after all demanders): seller with global id = number of
  // add_seller calls so far.
  void add_seller(std::uint32_t region);
  // Phase 3 (after all sellers): a bid in GLOBAL ids; routed to its
  // seller's region, out-of-region coverage dropped like partition().
  void add_bid(const auction::bid& global);
  // Finalize: build the region_map, validate, and move the result out.
  // The partitioner must begin() again before reuse.
  [[nodiscard]] partitioned_instance finish();

 private:
  enum class phase : std::uint8_t { demanders, sellers, bids };

  std::uint32_t regions_;
  phase phase_ = phase::demanders;
  std::vector<std::uint32_t> sellers_per_region_;
  std::vector<std::uint32_t> demanders_per_region_;
  std::vector<std::uint32_t> seller_region_;      // by global seller id
  std::vector<std::uint32_t> local_of_seller_;    // by global seller id
  std::vector<std::uint32_t> demander_region_;    // by global demander id
  std::vector<std::uint32_t> local_of_demander_;  // by global demander id
  partitioned_instance work_;
  auction::bid scratch_;  // local-id staging for add_bid
};

}  // namespace ecrs::market
