#include "market/shard.h"

#include <utility>

#include "common/check.h"

namespace ecrs::market {
namespace {

// Replay the round's winners against the round's requirements and emit
// what is left uncovered, ascending local demander id. Pure arithmetic
// over preallocated state — the sharded round loop's hot tail.
ECRS_HOT auction::units collect_shard_deficit(
    const auction::single_stage_instance& local,
    const auction::msoa_round_outcome& outcome,
    auction::coverage_state& replay, std::vector<spill_deficit>& uncovered) {
  replay.reset(local.requirements);
  for (const std::size_t idx : outcome.winner_bids) {
    replay.apply(local.bids[idx]);
  }
  uncovered.clear();
  if (replay.satisfied()) return 0;
  const auto demanders =
      static_cast<auction::demander_id>(local.requirements.size());
  for (auction::demander_id k = 0; k < demanders; ++k) {
    const auction::units missing = replay.remaining(k);
    if (missing > 0) uncovered.push_back({k, missing});
  }
  return replay.deficit();
}

}  // namespace

shard::shard(std::uint32_t region,
             std::vector<auction::seller_profile> sellers,
             shard_options options)
    : region_(region),
      profiles_(sellers),  // session takes its own copy below
      options_(options),
      session_(std::move(sellers), options_.session) {}

void shard::run_round(const auction::single_stage_instance& local,
                      post_office& po, shard_round& out) {
  ECRS_CHECK_MSG(region_ < po.regions(),
                 "shard region " << region_ << " unknown to the post office");
  session_.run_round(local, out.outcome);
  out.deficit = collect_shard_deficit(local, out.outcome, replay_,
                                      out.uncovered);
  if (out.deficit > 0) {
    message m;
    m.type = message::kind::spill_request;
    m.from = region_;
    m.to = po.coordinator();
    m.deficits = out.uncovered;
    po.post(std::move(m));
  }
}

void shard::spare_offers(const auction::single_stage_instance& local,
                         const shard_round& result,
                         std::vector<char>& won_scratch,
                         std::vector<spare_offer>& out) const {
  // Sellers that won this round are ineligible: constraint (9) allows at
  // most one accepted bid per seller per round, and a spillover sale
  // happens in the same round as the local auction it follows.
  out.clear();
  won_scratch.assign(profiles_.size(), 0);
  std::vector<char>& won = won_scratch;
  for (const std::size_t idx : result.outcome.winner_bids) {
    won[local.bids[idx].seller] = 1;
  }
  const std::uint32_t t = session_.rounds_run();
  for (std::size_t idx = 0; idx < local.bids.size(); ++idx) {
    const auction::bid& b = local.bids[idx];
    if (won[b.seller]) continue;
    if (t < profiles_[b.seller].t_arrive || t > profiles_[b.seller].t_depart) {
      continue;
    }
    if (!session_.seller_active(b.seller)) continue;
    const auto weight = static_cast<auction::units>(b.coverage_size());
    if (session_.capacity_left(b.seller) < weight) continue;
    out.push_back({idx, b.seller});
  }
}

void shard::apply_grant(const message& grant) {
  ECRS_CHECK_MSG(grant.type == message::kind::spill_grant,
                 "shard can only apply spill grants");
  ECRS_CHECK_MSG(grant.to == region_, "grant addressed to region "
                                          << grant.to << ", applied to "
                                          << region_);
  session_.consume_external(grant.seller, grant.weight, grant.price);
}

}  // namespace ecrs::market
