// In-process inter-shard mail for the sharded marketplace.
//
// Shards never call each other: everything that crosses a region boundary
// is a message, so a later PR can swap the post_office for real transport
// without touching shard logic. Two kinds exist today:
//
//  - spill_request: a shard reports the demand its local round left
//    uncovered (to the coordinator slot);
//  - spill_grant: the coordinator tells a helper shard that its seller sold
//    spare capacity into another region (the shard charges the sale
//    against the seller's session capacity via consume_external).
//
// Concurrency and determinism contract:
//  - the slot array is pre-sized at construction (one outbox per region
//    plus the coordinator slot) — enqueue during the parallel shard stage
//    is each shard appending to ITS OWN slot, so no lock is taken and no
//    two threads touch one slot;
//  - drain() delivers strictly ordered by (to, from, post sequence) —
//    never by completion or scheduling order — so every marketplace round
//    processes mail in the same order at any thread count.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "auction/bid.h"
#include "common/annotations.h"
#include "common/check.h"

namespace ecrs::market {

// One demander's unmet demand after a local round.
struct spill_deficit {
  auction::demander_id demander = 0;  // region-local id
  auction::units missing = 0;         // > 0
};

struct message {
  enum class kind : std::uint8_t { spill_request, spill_grant };

  kind type = kind::spill_request;
  std::uint32_t from = 0;  // origin slot (a region, or the coordinator)
  std::uint32_t to = 0;    // destination slot
  // spill_request payload: uncovered demand, ascending local demander id.
  // A VIEW into the posting shard's round record (shard_round::uncovered),
  // not a copy — messages are consumed within the round that posted them,
  // while the round record outlives the drain, so the view is always valid
  // and a spill request costs zero allocations however large the deficit
  // list is. A transport-backed post office would serialize it here.
  std::span<const spill_deficit> deficits;
  // spill_grant payload: the destination shard's local seller `seller`
  // sold `weight` participation units at asking price `price` into region
  // `buyer`.
  auction::seller_id seller = 0;
  auction::units weight = 0;
  double price = 0.0;
  std::uint32_t buyer = 0;
};
static_assert(std::is_trivially_destructible_v<message>,
              "messages must recycle in the pre-sized slots without freeing "
              "payload storage (the steady-state round allocates nothing)");

// Pre-sized per-region slot mail. Slot ids 0..regions-1 belong to the
// shards; slot `regions` is the coordinator (the marketplace driver).
class post_office {
 public:
  explicit post_office(std::uint32_t regions)
      : outbox_(static_cast<std::size_t>(regions) + 1) {
    ECRS_CHECK_MSG(regions >= 1, "need at least one region");
  }

  [[nodiscard]] std::uint32_t regions() const {
    return static_cast<std::uint32_t>(outbox_.size() - 1);
  }
  [[nodiscard]] std::uint32_t coordinator() const { return regions(); }

  // Append to slot `m.from`. During the parallel shard stage each shard
  // posts only with from == its own region, so writes are disjoint by
  // construction and no lock exists to contend on. The slot vector itself
  // is never resized after construction.
  ECRS_HOT void post(message m) {
    ECRS_CHECK(m.from < outbox_.size() && m.to < outbox_.size());
    outbox_[m.from].push_back(std::move(m));
  }

  [[nodiscard]] std::size_t pending() const {
    std::size_t n = 0;
    for (const auto& slot : outbox_) n += slot.size();
    return n;
  }

  // Deliver every pending message ordered by (to, from, post sequence),
  // then clear all slots (capacity kept for the next round). The ordering
  // is a pure function of what was posted where — never of which shard
  // finished first.
  template <typename Deliver>
  ECRS_HOT void drain(Deliver&& deliver) {
    for (std::size_t to = 0; to < outbox_.size(); ++to) {
      for (std::size_t from = 0; from < outbox_.size(); ++from) {
        for (message& m : outbox_[from]) {
          if (m.to == to) deliver(m);
        }
      }
    }
    for (auto& slot : outbox_) slot.clear();
  }

 private:
  std::vector<std::vector<message>> outbox_;  // slot per origin, pre-sized
};

}  // namespace ecrs::market
