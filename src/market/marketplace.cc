#include "market/marketplace.h"

#include <chrono>
#include <span>
#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"

namespace ecrs::market {
namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

marketplace::marketplace(
    const edge::topology& topo,
    std::vector<std::vector<auction::seller_profile>> sellers_per_region,
    marketplace_options options)
    : topo_(&topo),
      options_(options),
      po_(static_cast<std::uint32_t>(sellers_per_region.size())) {
  ECRS_CHECK_MSG(!sellers_per_region.empty(), "need at least one region");
  ECRS_CHECK_MSG(topo.clouds() >= sellers_per_region.size(),
                 "topology must cover every region");
  shards_.reserve(sellers_per_region.size());
  for (std::size_t r = 0; r < sellers_per_region.size(); ++r) {
    shards_.emplace_back(static_cast<std::uint32_t>(r),
                         std::move(sellers_per_region[r]), options_.shard);
  }
}

const shard& marketplace::region(std::uint32_t r) const {
  ECRS_CHECK(r < shards_.size());
  return shards_[r];
}

marketplace_round marketplace::run_round(
    const auction::regional_instance& round) {
  marketplace_round out;
  run_round(round, out);
  return out;
}

void marketplace::run_round(const auction::regional_instance& round,
                            marketplace_round& out) {
  const std::size_t n = shards_.size();
  ECRS_CHECK_MSG(round.regions.size() == n,
                 "round carries " << round.regions.size()
                                  << " regional instances for " << n
                                  << " shards");
  ECRS_CHECK_MSG(po_.pending() == 0, "mailbox not drained");

  out.round = ++round_;
  out.shards.resize(n);
  out.social_cost = 0.0;
  out.total_payment = 0.0;
  out.unmet_units = 0;

  // 1. Fan out the local rounds. Each shard writes only its own result
  // slot and its own mailbox slot, so the stage is lock-free and the
  // outcome is independent of scheduling.
  const auto shard_start = std::chrono::steady_clock::now();
  if (options_.threads == 1 || n == 1) {
    for (std::size_t r = 0; r < n; ++r) {
      shards_[r].run_round(round.regions[r], po_, out.shards[r]);
    }
  } else {
    thread_pool::shared().parallel_for(
        n,
        [&](std::size_t r) {
          shards_[r].run_round(round.regions[r], po_, out.shards[r]);
        },
        options_.threads);
  }
  timing_.shard_ms = ms_since(shard_start);

  // 2. Coordinator drain: spill requests arrive ordered by origin region.
  requests_.clear();
  po_.drain([&](message& m) {
    ECRS_CHECK_MSG(m.to == po_.coordinator() &&
                       m.type == message::kind::spill_request,
                   "only spill requests may be in flight after the fan-out");
    requests_.push_back(std::move(m));
  });

  // 3. Spillover re-auctions (parallel assembly, serial reduction);
  // grants go back into the mailbox.
  const auto spill_start = std::chrono::steady_clock::now();
  spill_stage_.run(*topo_,
                   std::span<const auction::single_stage_instance>(
                       round.regions),
                   std::span<const shard>(shards_),
                   std::span<const shard_round>(out.shards),
                   std::span<const message>(requests_), options_.spillover,
                   options_.threads, po_, out.spillover);
  timing_.spill_ms = ms_since(spill_start);
  timing_.spill_assembly_ms = spill_stage_.assembly_ms();

  // 4. Helper shards charge the sales against their sellers.
  po_.drain([&](message& m) {
    ECRS_CHECK_MSG(m.type == message::kind::spill_grant,
                   "only grants may be in flight after spillover");
    shards_[m.to].apply_grant(m);
  });

  // 5. Serial reduction, ascending region id.
  for (std::size_t r = 0; r < n; ++r) {
    out.social_cost += out.shards[r].outcome.social_cost;
    for (const double p : out.shards[r].outcome.payments) {
      out.total_payment += p;
    }
  }
  out.social_cost += out.spillover.social_cost;
  out.total_payment += out.spillover.total_payment;
  out.unmet_units = out.spillover.unmet_units;
  out.feasible = out.unmet_units == 0;
}

void marketplace::set_seller_active(std::uint32_t region,
                                    auction::seller_id s, bool active) {
  ECRS_CHECK(region < shards_.size());
  shards_[region].set_seller_active(s, active);
}

void marketplace::save(ecrs::checkpoint_writer& w) const {
  ECRS_CHECK_MSG(po_.pending() == 0,
                 "marketplace checkpoint only valid at a round boundary");
  w.u32(round_);
  w.size(shards_.size());
  for (const shard& sh : shards_) sh.save(w);
}

void marketplace::load(ecrs::checkpoint_reader& r) {
  ECRS_CHECK_MSG(po_.pending() == 0,
                 "marketplace restore only valid at a round boundary");
  round_ = r.u32();
  const std::size_t n = r.size();
  ECRS_CHECK_MSG(n == shards_.size(),
                 "checkpoint holds " << n << " shards, marketplace has "
                                     << shards_.size());
  for (shard& sh : shards_) sh.load(r);
}

}  // namespace ecrs::market
