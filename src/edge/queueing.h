// Analytic queueing formulas (M/M/1 and M/M/c) used to validate the
// event-driven simulation and for capacity planning: a microservice with
// allocation a serving exponential demands of mean d behaves as an M/M/1
// server with μ = a/d.
#pragma once

#include <cstddef>
#include <optional>

namespace ecrs::edge {

// Offered load ρ = λ/(c·μ); the stability condition for all formulas below
// is ρ < 1 (they throw ecrs::check_error otherwise).
[[nodiscard]] double utilization(double lambda, double mu, std::size_t servers = 1);

// --- M/M/1 -----------------------------------------------------------------
// Mean sojourn (waiting + service) time W = 1/(μ−λ).
[[nodiscard]] double mm1_sojourn_time(double lambda, double mu);
// Mean waiting time (queue only) Wq = ρ/(μ−λ).
[[nodiscard]] double mm1_waiting_time(double lambda, double mu);
// Mean number in system L = ρ/(1−ρ).
[[nodiscard]] double mm1_number_in_system(double lambda, double mu);
// P(system empty) = 1 − ρ.
[[nodiscard]] double mm1_p_empty(double lambda, double mu);

// --- M/M/c -----------------------------------------------------------------
// Erlang-C: probability an arrival must wait.
[[nodiscard]] double erlang_c(double lambda, double mu, std::size_t servers);
// Mean waiting time Wq = C(c, λ/μ) / (c·μ − λ).
[[nodiscard]] double mmc_waiting_time(double lambda, double mu,
                                      std::size_t servers);
// Mean sojourn W = Wq + 1/μ.
[[nodiscard]] double mmc_sojourn_time(double lambda, double mu,
                                      std::size_t servers);

// Smallest server count keeping the Erlang-C waiting time below
// `max_waiting_time` (capacity planning); searches up to `max_servers` and
// returns std::nullopt if even that many servers cannot meet the target.
// (Earlier revisions returned 0 as an in-band "infeasible" sentinel, which
// silently flowed into arithmetic at call sites; the optional makes the
// infeasible case impossible to ignore.)
[[nodiscard]] std::optional<std::size_t> servers_for_waiting_time(
    double lambda, double mu, double max_waiting_time,
    std::size_t max_servers = 4096);

}  // namespace ecrs::edge
