#include "edge/queueing.h"

#include <cmath>

#include "common/check.h"

namespace ecrs::edge {
namespace {

void check_stable(double lambda, double mu, std::size_t servers) {
  ECRS_CHECK_MSG(lambda > 0.0, "arrival rate must be positive");
  ECRS_CHECK_MSG(mu > 0.0, "service rate must be positive");
  ECRS_CHECK_MSG(servers >= 1, "need at least one server");
  ECRS_CHECK_MSG(lambda < static_cast<double>(servers) * mu,
                 "unstable queue: lambda=" << lambda << " >= c*mu="
                                           << static_cast<double>(servers) * mu);
}

}  // namespace

double utilization(double lambda, double mu, std::size_t servers) {
  check_stable(lambda, mu, servers);
  return lambda / (static_cast<double>(servers) * mu);
}

double mm1_sojourn_time(double lambda, double mu) {
  check_stable(lambda, mu, 1);
  return 1.0 / (mu - lambda);
}

double mm1_waiting_time(double lambda, double mu) {
  check_stable(lambda, mu, 1);
  return (lambda / mu) / (mu - lambda);
}

double mm1_number_in_system(double lambda, double mu) {
  check_stable(lambda, mu, 1);
  const double rho = lambda / mu;
  return rho / (1.0 - rho);
}

double mm1_p_empty(double lambda, double mu) {
  check_stable(lambda, mu, 1);
  return 1.0 - lambda / mu;
}

double erlang_c(double lambda, double mu, std::size_t servers) {
  check_stable(lambda, mu, servers);
  const double a = lambda / mu;  // offered load in Erlangs
  const auto c = static_cast<double>(servers);
  // Iterative Erlang-B, then convert to Erlang-C (numerically stable).
  double b = 1.0;
  for (std::size_t k = 1; k <= servers; ++k) {
    b = a * b / (static_cast<double>(k) + a * b);
  }
  const double rho = a / c;
  return b / (1.0 - rho + rho * b);
}

double mmc_waiting_time(double lambda, double mu, std::size_t servers) {
  const double c_prob = erlang_c(lambda, mu, servers);
  return c_prob / (static_cast<double>(servers) * mu - lambda);
}

double mmc_sojourn_time(double lambda, double mu, std::size_t servers) {
  return mmc_waiting_time(lambda, mu, servers) + 1.0 / mu;
}

std::optional<std::size_t> servers_for_waiting_time(double lambda, double mu,
                                                    double max_waiting_time,
                                                    std::size_t max_servers) {
  ECRS_CHECK_MSG(max_waiting_time > 0.0, "waiting-time target must be positive");
  const auto min_servers = static_cast<std::size_t>(
      std::floor(lambda / mu)) + 1;  // stability requires c > λ/μ
  for (std::size_t c = min_servers; c <= max_servers; ++c) {
    if (mmc_waiting_time(lambda, mu, c) <= max_waiting_time) return c;
  }
  return std::nullopt;
}

}  // namespace ecrs::edge
