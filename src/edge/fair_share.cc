#include "edge/fair_share.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace ecrs::edge {

std::vector<double> max_min_fair_share(const std::vector<double>& demands,
                                       double capacity) {
  ECRS_CHECK_MSG(capacity >= 0.0, "capacity must be non-negative");
  for (double d : demands)
    ECRS_CHECK_MSG(d >= 0.0, "demands must be non-negative");

  std::vector<double> alloc(demands.size(), 0.0);
  if (demands.empty() || capacity == 0.0) return alloc;

  // Water-filling over demands sorted ascending.
  std::vector<std::size_t> order(demands.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return demands[a] < demands[b];
  });

  double remaining = capacity;
  std::size_t unsatisfied = demands.size();
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const std::size_t idx = order[rank];
    const double level = remaining / static_cast<double>(unsatisfied);
    const double grant = std::min(demands[idx], level);
    alloc[idx] = grant;
    remaining -= grant;
    --unsatisfied;
  }
  return alloc;
}

std::vector<double> weighted_max_min_fair_share(
    const std::vector<double>& demands, const std::vector<double>& weights,
    double capacity) {
  ECRS_CHECK_MSG(capacity >= 0.0, "capacity must be non-negative");
  ECRS_CHECK_MSG(weights.size() == demands.size(),
                 "weights/demands size mismatch");
  for (double d : demands)
    ECRS_CHECK_MSG(d >= 0.0, "demands must be non-negative");
  for (double w : weights)
    ECRS_CHECK_MSG(w > 0.0, "weights must be positive");

  std::vector<double> alloc(demands.size(), 0.0);
  if (demands.empty() || capacity == 0.0) return alloc;

  // Water-filling on normalized demand (demand / weight) ascending.
  std::vector<std::size_t> order(demands.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return demands[a] / weights[a] < demands[b] / weights[b];
  });

  double remaining = capacity;
  double remaining_weight = 0.0;
  for (double w : weights) remaining_weight += w;
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const std::size_t idx = order[rank];
    const double level = remaining / remaining_weight;
    const double grant = std::min(demands[idx], level * weights[idx]);
    alloc[idx] = grant;
    remaining -= grant;
    remaining_weight -= weights[idx];
  }
  return alloc;
}

std::vector<double> equal_share(std::size_t n, double capacity) {
  ECRS_CHECK_MSG(capacity >= 0.0, "capacity must be non-negative");
  if (n == 0) return {};
  return std::vector<double>(n, capacity / static_cast<double>(n));
}

}  // namespace ecrs::edge
