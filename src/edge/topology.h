// Backhaul topology between edge clouds (paper §II: "the edge clouds are
// connected to each other through a backhaul network and every edge cloud
// is reachable from every network access point").
//
// Models the inter-cloud link graph with per-link latencies, all-pairs
// shortest paths (Floyd–Warshall), and a per-unit transfer cost used when a
// seller helps a demander hosted on another cloud (examples/edge_marketplace
// prices remote help with it).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"

namespace ecrs::edge {

// One reachable peer cloud, as seen from a fixed origin cloud: the peer's id
// and the shortest-path latency to it.
struct neighbor {
  std::uint32_t region = 0;
  double latency = 0.0;
};

class topology {
 public:
  // A graph with `clouds` nodes and no links (latencies infinite except the
  // zero diagonal).
  explicit topology(std::uint32_t clouds);

  [[nodiscard]] std::uint32_t clouds() const { return size_; }

  // Add an undirected link with the given latency (ms); keeps the smaller
  // latency if the link already exists. Call finalize() afterwards.
  void add_link(std::uint32_t a, std::uint32_t b, double latency);

  // Recompute all-pairs shortest paths (Floyd–Warshall). Required after the
  // last add_link and before latency()/connected().
  void finalize();

  // Shortest-path latency; infinity when unreachable.
  [[nodiscard]] double latency(std::uint32_t a, std::uint32_t b) const;

  [[nodiscard]] bool connected() const;

  // Per-resource-unit transfer surcharge between two clouds: proportional
  // to the shortest-path latency (0 within a cloud).
  [[nodiscard]] double transfer_cost(std::uint32_t a, std::uint32_t b,
                                     double cost_per_ms) const;

  // All clouds reachable from `region` (itself excluded), ascending by
  // (latency, region id). Precomputed once by finalize(), so per-round
  // consumers (the marketplace spillover stage) never rescan the
  // Floyd–Warshall row.
  [[nodiscard]] std::span<const neighbor> neighbors_by_latency(
      std::uint32_t region) const;

  // The prefix of neighbors_by_latency(region) with latency <= max_latency
  // (a binary search over the precomputed row; the full row when
  // max_latency is infinite).
  [[nodiscard]] std::span<const neighbor> neighbors_by_latency(
      std::uint32_t region, double max_latency) const;

  // --- Factories -----------------------------------------------------------
  // Ring: cloud i links to i+1 (mod n) with the given per-hop latency.
  [[nodiscard]] static topology ring(std::uint32_t clouds,
                                     double hop_latency = 1.0);
  // Star: every cloud links to cloud 0.
  [[nodiscard]] static topology star(std::uint32_t clouds,
                                     double spoke_latency = 1.0);
  // Full mesh with uniform latency.
  [[nodiscard]] static topology mesh(std::uint32_t clouds,
                                     double latency = 1.0);
  // Random geometric graph on the unit square: clouds within `radius`
  // connect, latency = Euclidean distance * latency_per_unit. A ring
  // overlay guarantees connectivity.
  [[nodiscard]] static topology random_geometric(std::uint32_t clouds,
                                                 double radius,
                                                 double latency_per_unit,
                                                 rng& gen);

 private:
  std::uint32_t size_;
  std::vector<double> dist_;  // row-major size_ x size_
  bool finalized_ = true;     // a linkless graph is trivially final
  // CSR rows of reachable peers per cloud, each row ascending by
  // (latency, region id); rebuilt by finalize().
  std::vector<neighbor> neighbors_;
  std::vector<std::size_t> neighbor_offset_;  // size_ + 1 entries

  [[nodiscard]] double& at(std::uint32_t a, std::uint32_t b);
  [[nodiscard]] double at(std::uint32_t a, std::uint32_t b) const;
  void rebuild_neighbors();
};

}  // namespace ecrs::edge
