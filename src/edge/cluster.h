// Edge-cloud cluster: a set of capacity-constrained edge clouds hosting
// microservices (paper §II). Every cloud is reachable from every access
// point, so routing reduces to delivering each request to the cloud hosting
// its target microservice. Resources inside a cloud are distributed by the
// fair-sharing policy.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "edge/microservice.h"
#include "workload/request.h"

namespace ecrs::edge {

struct edge_cloud {
  std::uint32_t id = 0;
  double capacity = 0.0;                  // resource units
  std::vector<std::uint32_t> hosted;      // microservice ids
};

struct cluster_config {
  std::uint32_t clouds = 10;              // paper: 10 base stations
  double capacity_per_cloud = 30.0;       // resource units per cloud
  std::uint64_t seed = 7;
};

class cluster {
 public:
  // Places one microservice per entry of `qos` (index = microservice id)
  // uniformly at random onto the configured clouds.
  cluster(cluster_config config, const std::vector<workload::qos_class>& qos);

  [[nodiscard]] std::size_t microservice_count() const {
    return services_.size();
  }
  [[nodiscard]] std::size_t cloud_count() const { return clouds_.size(); }
  [[nodiscard]] const edge_cloud& cloud(std::uint32_t id) const;
  [[nodiscard]] const microservice& service(std::uint32_t id) const;
  [[nodiscard]] microservice& service(std::uint32_t id);
  [[nodiscard]] std::uint32_t cloud_of(std::uint32_t microservice_id) const;

  // Deliver a batch of requests to their target microservices.
  void route(const std::vector<workload::request>& batch);

  // Recompute each cloud's allocations by max-min fair sharing over the
  // microservices' current demand proxies (backlog plus projected arrivals
  // per unit time, with a minimal keep-alive share). `sensitive_weight` > 1
  // biases the water level toward delay-sensitive microservices (paper
  // §V-A priority); 1.0 = unweighted.
  void allocate_fair(double round_duration, double sensitive_weight = 1.0);

  // Grant `amount` extra resources to one microservice (the platform
  // reallocating reclaimed resources after an auction round), or reclaim
  // with a negative amount (clamped at zero).
  void adjust_allocation(std::uint32_t microservice_id, double amount);

  // Serve all queues for `duration` seconds starting at `now`.
  void advance(double now, double duration);

  // Close the round: per-microservice statistics, with cloud populations.
  [[nodiscard]] std::vector<round_stats> end_round(std::uint64_t round,
                                                   double round_duration);

  // Checkpoint every microservice's runtime state. Placement and cloud
  // capacities are construction-time (deterministic from config_.seed), so
  // only the per-service state is serialized; load verifies the service
  // count matches the constructed topology.
  void save(ecrs::checkpoint_writer& w) const;
  void load(ecrs::checkpoint_reader& r);

 private:
  cluster_config config_;
  std::vector<edge_cloud> clouds_;
  std::vector<microservice> services_;
  std::vector<std::uint32_t> placement_;  // microservice id -> cloud id
};

}  // namespace ecrs::edge
