#include "edge/cluster.h"

#include <algorithm>

#include "common/check.h"
#include "edge/fair_share.h"

namespace ecrs::edge {

cluster::cluster(cluster_config config,
                 const std::vector<workload::qos_class>& qos)
    : config_(config) {
  ECRS_CHECK_MSG(config_.clouds > 0, "need at least one edge cloud");
  ECRS_CHECK_MSG(config_.capacity_per_cloud > 0.0,
                 "cloud capacity must be positive");
  ECRS_CHECK_MSG(!qos.empty(), "need at least one microservice");

  clouds_.reserve(config_.clouds);
  for (std::uint32_t c = 0; c < config_.clouds; ++c) {
    clouds_.push_back(edge_cloud{c, config_.capacity_per_cloud, {}});
  }

  rng gen(config_.seed);
  services_.reserve(qos.size());
  placement_.reserve(qos.size());
  for (std::uint32_t s = 0; s < qos.size(); ++s) {
    services_.emplace_back(s, qos[s]);
    const auto cloud_id = static_cast<std::uint32_t>(
        gen.uniform_int(0, static_cast<std::int64_t>(config_.clouds) - 1));
    placement_.push_back(cloud_id);
    clouds_[cloud_id].hosted.push_back(s);
  }
}

const edge_cloud& cluster::cloud(std::uint32_t id) const {
  ECRS_CHECK(id < clouds_.size());
  return clouds_[id];
}

const microservice& cluster::service(std::uint32_t id) const {
  ECRS_CHECK(id < services_.size());
  return services_[id];
}

microservice& cluster::service(std::uint32_t id) {
  ECRS_CHECK(id < services_.size());
  return services_[id];
}

std::uint32_t cluster::cloud_of(std::uint32_t microservice_id) const {
  ECRS_CHECK(microservice_id < placement_.size());
  return placement_[microservice_id];
}

void cluster::route(const std::vector<workload::request>& batch) {
  for (const workload::request& r : batch) {
    ECRS_CHECK_MSG(r.microservice < services_.size(),
                   "request targets unknown microservice " << r.microservice);
    services_[r.microservice].enqueue(r);
  }
}

void cluster::allocate_fair(double round_duration, double sensitive_weight) {
  ECRS_CHECK(round_duration > 0.0);
  ECRS_CHECK_MSG(sensitive_weight >= 1.0,
                 "sensitive weight must be at least 1");
  // A microservice's demand proxy: clear its backlog plus a recurrence of
  // last round's arrivals (with headroom) within one round, but never below
  // a minimal keep-alive share so idle services stay responsive. Backlog
  // alone converges to allocation = arrival rate, i.e. permanent
  // saturation; the arrival term lets underloaded services drain.
  constexpr double kKeepAlive = 0.05;
  constexpr double kHeadroom = 1.25;
  for (const edge_cloud& cl : clouds_) {
    if (cl.hosted.empty()) continue;
    std::vector<double> demands;
    std::vector<double> weights;
    demands.reserve(cl.hosted.size());
    weights.reserve(cl.hosted.size());
    for (std::uint32_t s : cl.hosted) {
      const double projected =
          services_[s].backlog_work() +
          kHeadroom * services_[s].last_round_arrived_work();
      demands.push_back(std::max(kKeepAlive, projected / round_duration));
      weights.push_back(
          services_[s].qos() == workload::qos_class::delay_sensitive
              ? sensitive_weight
              : 1.0);
    }
    const std::vector<double> alloc =
        sensitive_weight > 1.0
            ? weighted_max_min_fair_share(demands, weights, cl.capacity)
            : max_min_fair_share(demands, cl.capacity);
    for (std::size_t k = 0; k < cl.hosted.size(); ++k) {
      services_[cl.hosted[k]].set_allocation(alloc[k]);
    }
  }
}

void cluster::adjust_allocation(std::uint32_t microservice_id, double amount) {
  ECRS_CHECK(microservice_id < services_.size());
  microservice& svc = services_[microservice_id];
  svc.set_allocation(std::max(0.0, svc.allocation() + amount));
}

void cluster::advance(double now, double duration) {
  for (microservice& svc : services_) svc.advance(now, duration);
}

std::vector<round_stats> cluster::end_round(std::uint64_t round,
                                            double round_duration) {
  std::vector<round_stats> stats;
  stats.reserve(services_.size());
  for (microservice& svc : services_) {
    const auto population = static_cast<std::uint32_t>(
        clouds_[placement_[svc.id()]].hosted.size());
    stats.push_back(svc.end_round(round, round_duration, population));
  }
  return stats;
}

void cluster::save(ecrs::checkpoint_writer& w) const {
  w.size(services_.size());
  for (const microservice& svc : services_) svc.save(w);
}

void cluster::load(ecrs::checkpoint_reader& r) {
  const std::size_t n = r.size();
  ECRS_CHECK_MSG(n == services_.size(),
                 "checkpoint holds " << n << " microservices, cluster has "
                                     << services_.size());
  for (microservice& svc : services_) svc.load(r);
}

}  // namespace ecrs::edge
