#include "edge/topology.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace ecrs::edge {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

topology::topology(std::uint32_t clouds)
    : size_(clouds), dist_(static_cast<std::size_t>(clouds) * clouds, kInf) {
  ECRS_CHECK_MSG(clouds >= 1, "topology needs at least one cloud");
  for (std::uint32_t i = 0; i < size_; ++i) at(i, i) = 0.0;
  rebuild_neighbors();  // a linkless graph has empty rows but valid offsets
}

double& topology::at(std::uint32_t a, std::uint32_t b) {
  ECRS_CHECK(a < size_ && b < size_);
  return dist_[static_cast<std::size_t>(a) * size_ + b];
}

double topology::at(std::uint32_t a, std::uint32_t b) const {
  ECRS_CHECK(a < size_ && b < size_);
  return dist_[static_cast<std::size_t>(a) * size_ + b];
}

void topology::add_link(std::uint32_t a, std::uint32_t b, double latency) {
  ECRS_CHECK_MSG(a != b, "self-links are implicit (latency 0)");
  ECRS_CHECK_MSG(latency >= 0.0, "latency must be non-negative");
  at(a, b) = std::min(at(a, b), latency);
  at(b, a) = std::min(at(b, a), latency);
  finalized_ = false;
}

void topology::finalize() {
  for (std::uint32_t k = 0; k < size_; ++k) {
    for (std::uint32_t i = 0; i < size_; ++i) {
      const double dik = at(i, k);
      if (dik == kInf) continue;
      for (std::uint32_t j = 0; j < size_; ++j) {
        const double through = dik + at(k, j);
        if (through < at(i, j)) at(i, j) = through;
      }
    }
  }
  finalized_ = true;
  rebuild_neighbors();
}

void topology::rebuild_neighbors() {
  neighbors_.clear();
  neighbor_offset_.assign(static_cast<std::size_t>(size_) + 1, 0);
  for (std::uint32_t i = 0; i < size_; ++i) {
    neighbor_offset_[i] = neighbors_.size();
    const std::size_t row_start = neighbors_.size();
    for (std::uint32_t j = 0; j < size_; ++j) {
      if (j == i || at(i, j) == kInf) continue;
      neighbors_.push_back({j, at(i, j)});
    }
    std::sort(neighbors_.begin() + static_cast<std::ptrdiff_t>(row_start),
              neighbors_.end(), [](const neighbor& a, const neighbor& b) {
                if (a.latency != b.latency) return a.latency < b.latency;
                return a.region < b.region;
              });
  }
  neighbor_offset_[size_] = neighbors_.size();
}

std::span<const neighbor> topology::neighbors_by_latency(
    std::uint32_t region) const {
  ECRS_CHECK_MSG(finalized_, "call finalize() after add_link()");
  ECRS_CHECK(region < size_);
  return {neighbors_.data() + neighbor_offset_[region],
          neighbor_offset_[region + 1] - neighbor_offset_[region]};
}

std::span<const neighbor> topology::neighbors_by_latency(
    std::uint32_t region, double max_latency) const {
  const std::span<const neighbor> row = neighbors_by_latency(region);
  ECRS_CHECK_MSG(max_latency >= 0.0, "latency budget must be non-negative");
  const auto end = std::upper_bound(
      row.begin(), row.end(), max_latency,
      [](double budget, const neighbor& n) { return budget < n.latency; });
  return row.first(static_cast<std::size_t>(end - row.begin()));
}

double topology::latency(std::uint32_t a, std::uint32_t b) const {
  ECRS_CHECK_MSG(finalized_, "call finalize() after add_link()");
  return at(a, b);
}

bool topology::connected() const {
  ECRS_CHECK_MSG(finalized_, "call finalize() after add_link()");
  for (std::uint32_t j = 0; j < size_; ++j) {
    if (at(0, j) == kInf) return false;
  }
  return true;
}

double topology::transfer_cost(std::uint32_t a, std::uint32_t b,
                               double cost_per_ms) const {
  ECRS_CHECK_MSG(cost_per_ms >= 0.0, "cost rate must be non-negative");
  const double l = latency(a, b);
  ECRS_CHECK_MSG(l != kInf, "clouds " << a << " and " << b
                                      << " are not connected");
  return l * cost_per_ms;
}

topology topology::ring(std::uint32_t clouds, double hop_latency) {
  topology t(clouds);
  for (std::uint32_t i = 0; i + 1 < clouds; ++i) {
    t.add_link(i, i + 1, hop_latency);
  }
  if (clouds > 2) t.add_link(clouds - 1, 0, hop_latency);
  t.finalize();
  return t;
}

topology topology::star(std::uint32_t clouds, double spoke_latency) {
  topology t(clouds);
  for (std::uint32_t i = 1; i < clouds; ++i) t.add_link(0, i, spoke_latency);
  t.finalize();
  return t;
}

topology topology::mesh(std::uint32_t clouds, double latency) {
  topology t(clouds);
  for (std::uint32_t i = 0; i < clouds; ++i) {
    for (std::uint32_t j = i + 1; j < clouds; ++j) t.add_link(i, j, latency);
  }
  t.finalize();
  return t;
}

topology topology::random_geometric(std::uint32_t clouds, double radius,
                                    double latency_per_unit, rng& gen) {
  ECRS_CHECK_MSG(radius > 0.0, "radius must be positive");
  ECRS_CHECK_MSG(latency_per_unit > 0.0, "latency rate must be positive");
  topology t(clouds);
  std::vector<double> x(clouds);
  std::vector<double> y(clouds);
  for (std::uint32_t i = 0; i < clouds; ++i) {
    x[i] = gen.next_double();
    y[i] = gen.next_double();
  }
  for (std::uint32_t i = 0; i < clouds; ++i) {
    for (std::uint32_t j = i + 1; j < clouds; ++j) {
      const double d = std::hypot(x[i] - x[j], y[i] - y[j]);
      if (d <= radius) t.add_link(i, j, d * latency_per_unit);
    }
  }
  // Ring overlay guarantees connectivity.
  for (std::uint32_t i = 0; i + 1 < clouds; ++i) {
    const double d = std::hypot(x[i] - x[i + 1], y[i] - y[i + 1]);
    t.add_link(i, i + 1, d * latency_per_unit);
  }
  t.finalize();
  return t;
}

}  // namespace ecrs::edge
