#include "edge/microservice.h"

#include <algorithm>

#include "common/check.h"

namespace ecrs::edge {

double round_stats::required_rate(double round_duration) const {
  ECRS_CHECK(round_duration > 0.0);
  return (arrived_work + backlog_work) / round_duration;
}

double round_stats::achieved_rate(double round_duration) const {
  ECRS_CHECK(round_duration > 0.0);
  return served_work / round_duration;
}

microservice::microservice(std::uint32_t id, workload::qos_class qos)
    : id_(id), qos_(qos) {}

double microservice::backlog_work() const {
  if (queue_.empty()) return 0.0;
  const queued& head = queue_.front();
  const double total =
      queued_demand_sum_ - (head.req.service_demand - head.remaining);
  return total > 0.0 ? total : 0.0;
}

void microservice::set_allocation(double resources) {
  ECRS_CHECK_MSG(resources >= 0.0, "allocation must be non-negative");
  allocation_ = resources;
}

void microservice::enqueue(const workload::request& r) {
  ECRS_CHECK_MSG(r.microservice == id_,
                 "request for microservice " << r.microservice
                                             << " routed to " << id_);
  ECRS_CHECK_MSG(r.service_demand >= 0.0, "negative service demand");
  queue_.push_back(queued{r, r.service_demand});
  queued_demand_sum_ += r.service_demand;
  ++round_received_;
  ++total_received_;
  round_arrived_work_ += r.service_demand;
}

void microservice::advance(double now, double duration) {
  ECRS_CHECK_MSG(duration >= 0.0, "negative duration");
  round_elapsed_ += duration;
  if (allocation_ <= 0.0 || queue_.empty()) return;

  double budget = allocation_ * duration;  // resource-seconds available
  double clock = now;
  while (budget > 0.0 && !queue_.empty()) {
    queued& head = queue_.front();
    const double spend = std::min(budget, head.remaining);
    head.remaining -= spend;
    budget -= spend;
    clock += spend / allocation_;
    round_served_work_ += spend;
    round_busy_time_ += spend / allocation_;
    if (head.remaining <= 1e-12) {
      ++round_served_;
      ++total_served_;
      round_wait_sum_ += std::max(0.0, clock - head.req.arrival_time);
      queued_demand_sum_ -= head.req.service_demand;
      queue_.pop_front();
    }
  }
  // Pin the incremental sum back to exact zero whenever the queue drains so
  // rounding residue cannot accumulate across rounds.
  if (queue_.empty()) queued_demand_sum_ = 0.0;
}

round_stats microservice::end_round(std::uint64_t round, double round_duration,
                                    std::uint32_t cloud_population) {
  ECRS_CHECK(round_duration > 0.0);
  ECRS_CHECK(cloud_population >= 1);
  round_stats s;
  s.microservice = id_;
  s.round = round;
  s.received = round_received_;
  s.served = round_served_;
  s.arrived_work = round_arrived_work_;
  s.served_work = round_served_work_;
  s.backlog_work = backlog_work();
  s.allocation = allocation_;
  const double elapsed = round_elapsed_ > 0.0 ? round_elapsed_ : round_duration;
  s.utilization = std::clamp(round_busy_time_ / elapsed, 0.0, 1.0);
  s.mean_wait = round_served_ > 0
                    ? round_wait_sum_ / static_cast<double>(round_served_)
                    : 0.0;
  s.cloud_population = cloud_population;

  last_arrived_work_ = round_arrived_work_;
  round_received_ = 0;
  round_served_ = 0;
  round_arrived_work_ = 0.0;
  round_served_work_ = 0.0;
  round_busy_time_ = 0.0;
  round_wait_sum_ = 0.0;
  round_elapsed_ = 0.0;
  return s;
}

void microservice::save(ecrs::checkpoint_writer& w) const {
  w.u32(id_);
  w.u8(static_cast<std::uint8_t>(qos_));
  w.f64(allocation_);
  w.f64(queued_demand_sum_);
  w.u64(round_received_);
  w.u64(round_served_);
  w.f64(round_arrived_work_);
  w.f64(round_served_work_);
  w.f64(round_busy_time_);
  w.f64(round_wait_sum_);
  w.f64(round_elapsed_);
  w.u64(total_received_);
  w.u64(total_served_);
  w.f64(last_arrived_work_);
  w.size(queue_.size());
  for (const queued& q : queue_) {
    w.u64(q.req.id);
    w.u32(q.req.user);
    w.u32(q.req.microservice);
    w.u32(q.req.region);
    w.u8(static_cast<std::uint8_t>(q.req.qos));
    w.f64(q.req.arrival_time);
    w.f64(q.req.service_demand);
    w.f64(q.remaining);
  }
}

void microservice::load(ecrs::checkpoint_reader& r) {
  const std::uint32_t id = r.u32();
  const auto qos = static_cast<workload::qos_class>(r.u8());
  ECRS_CHECK_MSG(id == id_ && qos == qos_,
                 "checkpoint holds microservice " << id
                                                  << ", restoring into "
                                                  << id_);
  allocation_ = r.f64();
  queued_demand_sum_ = r.f64();
  round_received_ = r.u64();
  round_served_ = r.u64();
  round_arrived_work_ = r.f64();
  round_served_work_ = r.f64();
  round_busy_time_ = r.f64();
  round_wait_sum_ = r.f64();
  round_elapsed_ = r.f64();
  total_received_ = r.u64();
  total_served_ = r.u64();
  last_arrived_work_ = r.f64();
  const std::size_t n = r.size();
  // 45 bytes per queued request; bound before any resize.
  ECRS_CHECK_MSG(n <= r.remaining() / 45,
                 "microservice checkpoint declares " << n
                                                     << " queued requests "
                                                        "but the payload is "
                                                        "too short");
  queue_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    queued q;
    q.req.id = r.u64();
    q.req.user = r.u32();
    q.req.microservice = r.u32();
    q.req.region = r.u32();
    q.req.qos = static_cast<workload::qos_class>(r.u8());
    q.req.arrival_time = r.f64();
    q.req.service_demand = r.f64();
    q.remaining = r.f64();
    queue_.push_back(q);
  }
}

}  // namespace ecrs::edge
