#include "edge/microservice.h"

#include <algorithm>

#include "common/check.h"

namespace ecrs::edge {

double round_stats::required_rate(double round_duration) const {
  ECRS_CHECK(round_duration > 0.0);
  return (arrived_work + backlog_work) / round_duration;
}

double round_stats::achieved_rate(double round_duration) const {
  ECRS_CHECK(round_duration > 0.0);
  return served_work / round_duration;
}

microservice::microservice(std::uint32_t id, workload::qos_class qos)
    : id_(id), qos_(qos) {}

double microservice::backlog_work() const {
  if (queue_.empty()) return 0.0;
  const queued& head = queue_.front();
  const double total =
      queued_demand_sum_ - (head.req.service_demand - head.remaining);
  return total > 0.0 ? total : 0.0;
}

void microservice::set_allocation(double resources) {
  ECRS_CHECK_MSG(resources >= 0.0, "allocation must be non-negative");
  allocation_ = resources;
}

void microservice::enqueue(const workload::request& r) {
  ECRS_CHECK_MSG(r.microservice == id_,
                 "request for microservice " << r.microservice
                                             << " routed to " << id_);
  ECRS_CHECK_MSG(r.service_demand >= 0.0, "negative service demand");
  queue_.push_back(queued{r, r.service_demand});
  queued_demand_sum_ += r.service_demand;
  ++round_received_;
  ++total_received_;
  round_arrived_work_ += r.service_demand;
}

void microservice::advance(double now, double duration) {
  ECRS_CHECK_MSG(duration >= 0.0, "negative duration");
  round_elapsed_ += duration;
  if (allocation_ <= 0.0 || queue_.empty()) return;

  double budget = allocation_ * duration;  // resource-seconds available
  double clock = now;
  while (budget > 0.0 && !queue_.empty()) {
    queued& head = queue_.front();
    const double spend = std::min(budget, head.remaining);
    head.remaining -= spend;
    budget -= spend;
    clock += spend / allocation_;
    round_served_work_ += spend;
    round_busy_time_ += spend / allocation_;
    if (head.remaining <= 1e-12) {
      ++round_served_;
      ++total_served_;
      round_wait_sum_ += std::max(0.0, clock - head.req.arrival_time);
      queued_demand_sum_ -= head.req.service_demand;
      queue_.pop_front();
    }
  }
  // Pin the incremental sum back to exact zero whenever the queue drains so
  // rounding residue cannot accumulate across rounds.
  if (queue_.empty()) queued_demand_sum_ = 0.0;
}

round_stats microservice::end_round(std::uint64_t round, double round_duration,
                                    std::uint32_t cloud_population) {
  ECRS_CHECK(round_duration > 0.0);
  ECRS_CHECK(cloud_population >= 1);
  round_stats s;
  s.microservice = id_;
  s.round = round;
  s.received = round_received_;
  s.served = round_served_;
  s.arrived_work = round_arrived_work_;
  s.served_work = round_served_work_;
  s.backlog_work = backlog_work();
  s.allocation = allocation_;
  const double elapsed = round_elapsed_ > 0.0 ? round_elapsed_ : round_duration;
  s.utilization = std::clamp(round_busy_time_ / elapsed, 0.0, 1.0);
  s.mean_wait = round_served_ > 0
                    ? round_wait_sum_ / static_cast<double>(round_served_)
                    : 0.0;
  s.cloud_population = cloud_population;

  last_arrived_work_ = round_arrived_work_;
  round_received_ = 0;
  round_served_ = 0;
  round_arrived_work_ = 0.0;
  round_served_work_ = 0.0;
  round_busy_time_ = 0.0;
  round_wait_sum_ = 0.0;
  round_elapsed_ = 0.0;
  return s;
}

}  // namespace ecrs::edge
