// Microservice runtime state: a work-conserving FIFO queue served at the
// rate of the resources currently allocated to the microservice.
//
// Tracks the observables the paper's demand estimator (§III) consumes:
// received/served request counts (π_i, θ_i), achieved vs. required
// processing rate (ς_i, ϖ_i), utilization (execution rate L_i), and the
// current allocation a_i.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/checkpoint.h"
#include "workload/request.h"

namespace ecrs::edge {

// Snapshot of one auction round, consumed by ecrs::demand.
struct round_stats {
  std::uint32_t microservice = 0;
  std::uint64_t round = 0;            // t, 1-based
  std::uint64_t received = 0;         // π_i: requests that arrived this round
  std::uint64_t served = 0;           // θ_i: requests completed this round
  double arrived_work = 0.0;          // resource-seconds that arrived
  double served_work = 0.0;           // resource-seconds completed
  double backlog_work = 0.0;          // queued resource-seconds at round end
  double allocation = 0.0;            // a_i^t: resource units held
  double utilization = 0.0;           // L_i^t in [0, 1]: busy fraction
  double mean_wait = 0.0;             // mean sojourn of requests completed
  std::uint32_t cloud_population = 1; // microservices co-located on the cloud

  // ς_i: processing rate needed to clear arrivals + backlog in one round.
  [[nodiscard]] double required_rate(double round_duration) const;
  // Achieved service rate this round.
  [[nodiscard]] double achieved_rate(double round_duration) const;
};

class microservice {
 public:
  microservice(std::uint32_t id, workload::qos_class qos);

  [[nodiscard]] std::uint32_t id() const { return id_; }
  [[nodiscard]] workload::qos_class qos() const { return qos_; }
  [[nodiscard]] double allocation() const { return allocation_; }
  [[nodiscard]] double backlog_work() const;
  // Work that arrived during the most recently closed round (0 before the
  // first end_round); used by arrival-aware allocation policies.
  [[nodiscard]] double last_round_arrived_work() const {
    return last_arrived_work_;
  }
  [[nodiscard]] std::size_t queue_length() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t total_received() const { return total_received_; }
  [[nodiscard]] std::uint64_t total_served() const { return total_served_; }

  // Set the resources the microservice holds for the upcoming interval.
  void set_allocation(double resources);

  // Admit a request (assumed to arrive within the current round).
  void enqueue(const workload::request& r);

  // Serve queued work for `duration` simulated seconds starting at `now`,
  // at a rate equal to the current allocation. Requests complete FIFO;
  // partially served requests stay at the head of the queue.
  void advance(double now, double duration);

  // Close the current round: return its statistics and reset per-round
  // counters. `round` is the 1-based round index, `cloud_population` the
  // number of microservices co-located on the same edge cloud.
  round_stats end_round(std::uint64_t round, double round_duration,
                        std::uint32_t cloud_population);

  // Checkpoint the full runtime state — allocation, queue contents (with
  // the head's partial-service progress), the incremental backlog sum at
  // its EXACT current value (serialized, never recomputed, so restored FP
  // state matches bit for bit), per-round accumulators and lifetime
  // counters. id/qos are construction-time identity and verified on load.
  void save(ecrs::checkpoint_writer& w) const;
  void load(ecrs::checkpoint_reader& r);

 private:
  struct queued {
    workload::request req;
    double remaining;  // resource-seconds still to serve
  };

  std::uint32_t id_;
  workload::qos_class qos_;
  double allocation_ = 1.0;
  std::deque<queued> queue_;
  // Sum of the FULL service demands of queued requests, maintained
  // incrementally so backlog_work() is O(1) instead of an O(queue) scan
  // (allocate_fair and end_round both read it every round, and a
  // persistently under-allocated service's queue grows without bound).
  // Only the head request is ever partially served, so
  // backlog = this sum minus the head's consumed portion.
  double queued_demand_sum_ = 0.0;

  // Per-round accumulators.
  std::uint64_t round_received_ = 0;
  std::uint64_t round_served_ = 0;
  double round_arrived_work_ = 0.0;
  double round_served_work_ = 0.0;
  double round_busy_time_ = 0.0;
  double round_wait_sum_ = 0.0;
  double round_elapsed_ = 0.0;

  // Lifetime counters.
  std::uint64_t total_received_ = 0;
  std::uint64_t total_served_ = 0;
  double last_arrived_work_ = 0.0;
};

}  // namespace ecrs::edge
