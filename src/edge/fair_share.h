// Max-min fair sharing (the paper's "fair sharing policy", §II).
//
// Given per-microservice demands and a cloud capacity, water-fill: every
// microservice gets min(demand, fair level), and the level rises until the
// capacity is exhausted or every demand is met.
#pragma once

#include <vector>

namespace ecrs::edge {

// Returns allocations a_i with sum(a_i) <= capacity, a_i <= demand_i, and
// the max-min fairness property: an allocation can only be below its demand
// if it equals the highest allocation among unsatisfied demands.
// Demands must be non-negative; capacity must be non-negative.
[[nodiscard]] std::vector<double> max_min_fair_share(
    const std::vector<double>& demands, double capacity);

// Weighted max-min fairness: recipient i's fair level is weight_i times the
// common water level; used to prioritize delay-sensitive microservices
// (paper §V-A: "higher priority is given to delay-sensitive microservices").
// weights must be positive and match demands in size.
[[nodiscard]] std::vector<double> weighted_max_min_fair_share(
    const std::vector<double>& demands, const std::vector<double>& weights,
    double capacity);

// Plain equal split of `capacity` over n recipients (the naive baseline the
// paper contrasts with demand-aware reallocation).
[[nodiscard]] std::vector<double> equal_share(std::size_t n, double capacity);

}  // namespace ecrs::edge
