#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace ecrs::lp {

const char* to_string(solve_status s) {
  switch (s) {
    case solve_status::optimal: return "optimal";
    case solve_status::infeasible: return "infeasible";
    case solve_status::unbounded: return "unbounded";
    case solve_status::iteration_limit: return "iteration_limit";
  }
  return "unknown";
}

std::size_t model::add_variable(double cost) {
  costs_.push_back(cost);
  for (auto& row : rows_) row.push_back(0.0);
  return costs_.size() - 1;
}

std::size_t model::add_constraint(
    const std::vector<std::pair<std::size_t, double>>& coeffs, row_sense sense,
    double rhs) {
  std::vector<double> row(costs_.size(), 0.0);
  for (const auto& [var, coef] : coeffs) {
    ECRS_CHECK_MSG(var < costs_.size(), "constraint references unknown variable "
                                            << var);
    row[var] += coef;
  }
  rows_.push_back(std::move(row));
  senses_.push_back(sense);
  rhs_.push_back(rhs);
  return senses_.size() - 1;
}

double model::cost(std::size_t var) const {
  ECRS_CHECK(var < costs_.size());
  return costs_[var];
}

row_sense model::sense(std::size_t row) const {
  ECRS_CHECK(row < senses_.size());
  return senses_[row];
}

double model::rhs(std::size_t row) const {
  ECRS_CHECK(row < rhs_.size());
  return rhs_[row];
}

double model::coefficient(std::size_t row, std::size_t var) const {
  ECRS_CHECK(row < rows_.size());
  ECRS_CHECK(var < costs_.size());
  return rows_[row][var];
}

// Tableau-based two-phase simplex. Column layout:
//   [0, n)              structural variables
//   [n, n + s)          slack/surplus variables (one per le/ge row)
//   [n + s, n + s + m)  artificial variables (one per row; identity start)
// Phase 1 minimizes the sum of artificials; phase 2 minimizes the true cost
// with artificials barred from entering the basis.
class simplex_solver {
 public:
  simplex_solver(const model& m, const solve_options& opts)
      : model_(m), opts_(opts) {}

  solution run();

 private:
  static constexpr double kInf = std::numeric_limits<double>::infinity();

  // One simplex phase over the current tableau with objective row obj_.
  // `allow` marks columns permitted to enter the basis.
  solve_status iterate(const std::vector<bool>& allow, std::size_t& iters);

  void pivot(std::size_t row, std::size_t col);
  void compute_objective_row(const std::vector<double>& costs);

  const model& model_;
  const solve_options& opts_;

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;                    // total columns incl. artificials
  std::size_t artificial_start_ = 0;
  std::vector<std::vector<double>> tab_;    // rows_ x cols_
  std::vector<double> b_;                   // current RHS
  std::vector<std::size_t> basis_;          // basic column per row
  std::vector<double> obj_;                 // reduced-cost row
  double obj_value_ = 0.0;
};

void simplex_solver::pivot(std::size_t prow, std::size_t pcol) {
  const double pivot_value = tab_[prow][pcol];
  ECRS_DCHECK(std::abs(pivot_value) > 0.0);
  const double inv = 1.0 / pivot_value;
  for (double& v : tab_[prow]) v *= inv;
  b_[prow] *= inv;
  for (std::size_t r = 0; r < rows_; ++r) {
    if (r == prow) continue;
    const double factor = tab_[r][pcol];
    if (factor == 0.0) continue;
    for (std::size_t c = 0; c < cols_; ++c) tab_[r][c] -= factor * tab_[prow][c];
    b_[r] -= factor * b_[prow];
  }
  const double ofactor = obj_[pcol];
  if (ofactor != 0.0) {
    for (std::size_t c = 0; c < cols_; ++c) obj_[c] -= ofactor * tab_[prow][c];
    obj_value_ -= ofactor * b_[prow];
  }
  basis_[prow] = pcol;
}

void simplex_solver::compute_objective_row(const std::vector<double>& costs) {
  // obj_ = costs - c_B^T * tab (reduced costs), obj_value_ = -c_B^T b.
  obj_ = costs;
  obj_value_ = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    const double cb = costs[basis_[r]];
    if (cb == 0.0) continue;
    for (std::size_t c = 0; c < cols_; ++c) obj_[c] -= cb * tab_[r][c];
    obj_value_ -= cb * b_[r];
  }
}

solve_status simplex_solver::iterate(const std::vector<bool>& allow,
                                     std::size_t& iters) {
  const double tol = opts_.tolerance;
  // Dantzig pricing (most negative reduced cost) for speed; after a run of
  // degenerate pivots, fall back to Bland's rule, which cannot cycle.
  std::size_t degenerate_streak = 0;
  constexpr std::size_t kBlandThreshold = 64;
  while (true) {
    if (iters >= opts_.max_iterations) return solve_status::iteration_limit;
    ++iters;
    std::size_t enter = cols_;
    if (degenerate_streak < kBlandThreshold) {
      double most_negative = -tol;
      for (std::size_t c = 0; c < cols_; ++c) {
        if (!allow[c]) continue;
        if (obj_[c] < most_negative) {
          most_negative = obj_[c];
          enter = c;
        }
      }
    } else {
      for (std::size_t c = 0; c < cols_; ++c) {
        if (!allow[c]) continue;
        if (obj_[c] < -tol) {
          enter = c;
          break;
        }
      }
    }
    if (enter == cols_) return solve_status::optimal;

    // Ratio test; Bland tie-break on the smallest basis column index.
    std::size_t leave = rows_;
    double best_ratio = kInf;
    for (std::size_t r = 0; r < rows_; ++r) {
      const double a = tab_[r][enter];
      if (a > tol) {
        const double ratio = b_[r] / a;
        if (ratio < best_ratio - tol ||
            (std::abs(ratio - best_ratio) <= tol &&
             (leave == rows_ || basis_[r] < basis_[leave]))) {
          best_ratio = ratio;
          leave = r;
        }
      }
    }
    if (leave == rows_) return solve_status::unbounded;
    if (best_ratio <= tol) {
      ++degenerate_streak;
    } else {
      degenerate_streak = 0;
    }
    pivot(leave, enter);
  }
}

solution simplex_solver::run() {
  const std::size_t n = model_.variables();
  rows_ = model_.constraints();
  // Count slack/surplus columns.
  std::size_t slacks = 0;
  for (std::size_t r = 0; r < rows_; ++r) {
    if (model_.sense(r) != row_sense::eq) ++slacks;
  }
  artificial_start_ = n + slacks;
  cols_ = artificial_start_ + rows_;

  tab_.assign(rows_, std::vector<double>(cols_, 0.0));
  b_.assign(rows_, 0.0);
  basis_.assign(rows_, 0);

  std::size_t next_slack = n;
  for (std::size_t r = 0; r < rows_; ++r) {
    double sign = 1.0;
    // Normalize to non-negative RHS so the artificial start is feasible.
    if (model_.rhs(r) < 0.0) sign = -1.0;
    for (std::size_t v = 0; v < n; ++v) {
      tab_[r][v] = sign * model_.coefficient(r, v);
    }
    b_[r] = sign * model_.rhs(r);
    row_sense sense = model_.sense(r);
    if (sign < 0.0) {
      if (sense == row_sense::le) sense = row_sense::ge;
      else if (sense == row_sense::ge) sense = row_sense::le;
    }
    if (sense == row_sense::le) {
      tab_[r][next_slack++] = 1.0;
    } else if (sense == row_sense::ge) {
      tab_[r][next_slack++] = -1.0;
    }
    tab_[r][artificial_start_ + r] = 1.0;
    basis_[r] = artificial_start_ + r;
  }

  solution result;

  // Phase 1.
  std::vector<double> phase1_costs(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r)
    phase1_costs[artificial_start_ + r] = 1.0;
  compute_objective_row(phase1_costs);
  std::vector<bool> allow_all(cols_, true);
  std::size_t iters = 0;
  solve_status status = iterate(allow_all, iters);
  result.iterations = iters;
  if (status != solve_status::optimal) {
    result.status = status;
    return result;
  }
  // -obj_value_ is the phase-1 objective (sum of artificials).
  if (-obj_value_ > 1e-6) {
    result.status = solve_status::infeasible;
    result.iterations = iters;
    return result;
  }

  // Drive any artificial still in the basis out (degenerate at zero), or
  // mark its row as redundant by leaving it — barring artificials from
  // entering keeps them at zero either way.
  for (std::size_t r = 0; r < rows_; ++r) {
    if (basis_[r] < artificial_start_) continue;
    for (std::size_t c = 0; c < artificial_start_; ++c) {
      if (std::abs(tab_[r][c]) > opts_.tolerance) {
        pivot(r, c);
        break;
      }
    }
  }

  // Phase 2.
  std::vector<double> phase2_costs(cols_, 0.0);
  for (std::size_t v = 0; v < n; ++v) phase2_costs[v] = model_.cost(v);
  compute_objective_row(phase2_costs);
  std::vector<bool> allow(cols_, true);
  for (std::size_t r = 0; r < rows_; ++r) allow[artificial_start_ + r] = false;
  status = iterate(allow, iters);
  result.iterations = iters;
  if (status != solve_status::optimal) {
    result.status = status;
    return result;
  }

  result.status = solve_status::optimal;
  result.x.assign(n, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    if (basis_[r] < n) result.x[basis_[r]] = b_[r];
  }
  result.objective = -obj_value_;

  // Duals: for initial identity column (artificial of row r), reduced cost
  // r_j = c_j − y_r with c_j = 0, so y_r = −obj_[artificial_r]. Rows that
  // were sign-flipped (negative RHS) flip the dual back.
  result.duals.assign(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double y = -obj_[artificial_start_ + r];
    if (model_.rhs(r) < 0.0) y = -y;
    result.duals[r] = y;
  }
  return result;
}

solution solve(const model& m, const solve_options& opts) {
  ECRS_CHECK_MSG(m.variables() > 0, "model has no variables");
  if (m.constraints() == 0) {
    // Minimum of c^T x over x >= 0: 0 if all costs >= 0, else unbounded.
    solution s;
    for (std::size_t v = 0; v < m.variables(); ++v) {
      if (m.cost(v) < 0.0) {
        s.status = solve_status::unbounded;
        return s;
      }
    }
    s.status = solve_status::optimal;
    s.objective = 0.0;
    s.x.assign(m.variables(), 0.0);
    return s;
  }
  simplex_solver solver(m, opts);
  return solver.run();
}

}  // namespace ecrs::lp
