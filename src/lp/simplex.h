// Dense two-phase primal simplex solver.
//
// Used by the auction package to compute LP-relaxation lower bounds of the
// winner selection ILP (the certified denominator of performance-ratio
// figures on instances too large for exact search) and as the bound inside
// branch-and-bound. Minimizes c^T x over {A x {<=,>=,==} b, x >= 0}.
//
// Scope: small/medium dense models (hundreds of rows/columns); Bland's rule
// for anti-cycling; duals recovered from the final tableau. Not a
// general-purpose LP library — no presolve, no sparsity, no bounded
// variables (encode upper bounds as rows).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ecrs::lp {

enum class row_sense { le, ge, eq };

enum class solve_status { optimal, infeasible, unbounded, iteration_limit };

[[nodiscard]] const char* to_string(solve_status s);

// Linear model in natural (row) form.
class model {
 public:
  // Adds a variable with the given objective coefficient; returns its index.
  std::size_t add_variable(double cost);

  // Adds the constraint sum(coeffs[k].second * x[coeffs[k].first]) sense rhs.
  // Variable indices must already exist; duplicate indices are accumulated.
  std::size_t add_constraint(
      const std::vector<std::pair<std::size_t, double>>& coeffs,
      row_sense sense, double rhs);

  [[nodiscard]] std::size_t variables() const { return costs_.size(); }
  [[nodiscard]] std::size_t constraints() const { return senses_.size(); }
  [[nodiscard]] double cost(std::size_t var) const;
  [[nodiscard]] row_sense sense(std::size_t row) const;
  [[nodiscard]] double rhs(std::size_t row) const;
  [[nodiscard]] double coefficient(std::size_t row, std::size_t var) const;

 private:
  friend class simplex_solver;
  std::vector<double> costs_;
  // Dense row-major constraint matrix, resized lazily as vars/rows grow.
  std::vector<std::vector<double>> rows_;
  std::vector<row_sense> senses_;
  std::vector<double> rhs_;
};

struct solve_options {
  std::size_t max_iterations = 200000;
  double tolerance = 1e-9;
};

struct solution {
  solve_status status = solve_status::infeasible;
  double objective = 0.0;
  std::vector<double> x;      // primal values, one per model variable
  std::vector<double> duals;  // one per constraint (shadow prices); for a
                              // minimization, duals of >= rows are >= 0 and
                              // duals of <= rows are <= 0
  std::size_t iterations = 0;
};

// Solve the model. The returned duals satisfy strong duality at optimality:
// objective == sum(duals[i] * rhs[i]) (within tolerance).
[[nodiscard]] solution solve(const model& m, const solve_options& opts = {});

}  // namespace ecrs::lp
