// Mechanism-property tests: truthfulness (Theorem 4), individual
// rationality (Theorem 5), monotonicity (Lemma 2), and the audits
// themselves. These are the paper's central claims, verified empirically
// over seeded random instances.
#include <gtest/gtest.h>

#include "auction/instance_gen.h"
#include "auction/properties.h"
#include "auction/ssam.h"
#include "common/rng.h"

namespace ecrs::auction {
namespace {

bid make_bid(seller_id s, std::vector<demander_id> cover, units amount,
             double price, std::uint32_t j = 0) {
  bid b;
  b.seller = s;
  b.index = j;
  b.coverage = std::move(cover);
  b.amount = amount;
  b.price = price;
  return b;
}

single_stage_instance random_paper_instance(std::uint64_t seed,
                                            std::size_t sellers = 8,
                                            std::size_t bids_per_seller = 2) {
  rng gen(seed);
  instance_config cfg;
  cfg.sellers = sellers;
  cfg.demanders = 3;
  cfg.bids_per_seller = bids_per_seller;
  return random_instance(cfg, gen);
}

// ----------------------------------------------------- selection_feasible

TEST(SelectionFeasible, AcceptsValidSelection) {
  single_stage_instance inst;
  inst.requirements = {2};
  inst.bids = {make_bid(0, {0}, 2, 1.0)};
  EXPECT_TRUE(selection_feasible(inst, {0}));
}

TEST(SelectionFeasible, RejectsShortCoverage) {
  single_stage_instance inst;
  inst.requirements = {5};
  inst.bids = {make_bid(0, {0}, 2, 1.0)};
  EXPECT_FALSE(selection_feasible(inst, {0}));
}

TEST(SelectionFeasible, RejectsTwoBidsSameSeller) {
  single_stage_instance inst;
  inst.requirements = {2};
  inst.bids = {make_bid(0, {0}, 2, 1.0, 0), make_bid(0, {0}, 2, 1.0, 1)};
  EXPECT_FALSE(selection_feasible(inst, {0, 1}));
}

TEST(SelectionFeasible, RejectsOutOfRangeIndex) {
  single_stage_instance inst;
  inst.requirements = {0};
  EXPECT_FALSE(selection_feasible(inst, {3}));
}

// ------------------------------------------------- individual rationality

class IrSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IrSweep, RunnerUpPaymentsCoverPrices) {
  const auto inst = random_paper_instance(GetParam());
  const auto res = run_ssam(inst);
  const auto audit = audit_individual_rationality(inst, res);
  EXPECT_TRUE(audit.ok) << "violations: " << audit.violations.size();
  EXPECT_GE(audit.min_surplus, -1e-9);
}

TEST_P(IrSweep, CriticalValuePaymentsCoverPrices) {
  const auto inst = random_paper_instance(GetParam() + 500);
  ssam_options opts;
  opts.rule = payment_rule::critical_value;
  const auto res = run_ssam(inst, opts);
  const auto audit = audit_individual_rationality(inst, res);
  EXPECT_TRUE(audit.ok);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IrSweep,
                         ::testing::Range<std::uint64_t>(1, 31));

TEST(IrAudit, FlagsUnderpayment) {
  single_stage_instance inst;
  inst.requirements = {2};
  inst.bids = {make_bid(0, {0}, 2, 10.0)};
  ssam_result res;
  winning_bid w;
  w.bid_index = 0;
  w.payment = 8.0;  // below price: a violation
  res.winners.push_back(w);
  const auto audit = audit_individual_rationality(inst, res);
  EXPECT_FALSE(audit.ok);
  ASSERT_EQ(audit.violations.size(), 1u);
  EXPECT_NEAR(audit.min_surplus, -2.0, 1e-12);
}

TEST(IrAudit, EmptyWinnersIsTriviallyOk) {
  single_stage_instance inst;
  inst.requirements = {0};
  const auto audit = audit_individual_rationality(inst, ssam_result{});
  EXPECT_TRUE(audit.ok);
  EXPECT_DOUBLE_EQ(audit.min_surplus, 0.0);
}

// ------------------------------------------------------ monotonicity (L2)

class MonotonicitySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MonotonicitySweep, LoweringWinningPriceKeepsWinning) {
  const auto inst = random_paper_instance(GetParam());
  const auto winners = greedy_selection(inst);
  rng gen(GetParam() * 77 + 1);
  for (std::size_t idx : winners) {
    const double lower =
        gen.uniform_real(0.0, inst.bids[idx].price);
    EXPECT_TRUE(wins_with_price(inst, idx, lower))
        << "bid " << idx << " lost after lowering its price to " << lower;
  }
}

TEST_P(MonotonicitySweep, RaisingLosingPriceKeepsLosing) {
  const auto inst = random_paper_instance(GetParam() + 250);
  const auto winners = greedy_selection(inst);
  std::vector<bool> is_winner(inst.bids.size(), false);
  for (std::size_t idx : winners) is_winner[idx] = true;
  rng gen(GetParam() * 13 + 5);
  for (std::size_t idx = 0; idx < inst.bids.size(); ++idx) {
    if (is_winner[idx]) continue;
    const double higher =
        inst.bids[idx].price + gen.uniform_real(0.1, 50.0);
    EXPECT_FALSE(wins_with_price(inst, idx, higher))
        << "losing bid " << idx << " started winning at a higher price";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonotonicitySweep,
                         ::testing::Range<std::uint64_t>(1, 21));

// --------------------------------------------------- truthfulness (Thm 4)

class TruthfulnessSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TruthfulnessSweep, CriticalValueRuleAdmitsNoProfitableLie) {
  const auto inst = random_paper_instance(GetParam());
  ssam_options opts;
  opts.rule = payment_rule::critical_value;
  rng gen(GetParam() * 31 + 7);
  const auto report = probe_truthfulness(inst, opts, gen, 40, 1e-5);
  EXPECT_EQ(report.profitable_lies, 0u) << report.worst_case;
  EXPECT_LE(report.max_gain, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TruthfulnessSweep,
                         ::testing::Range<std::uint64_t>(1, 16));

TEST(Truthfulness, UtilityWithReportComputesWinnersSurplus) {
  single_stage_instance inst;
  inst.requirements = {4};
  inst.bids = {make_bid(0, {0}, 4, 10.0), make_bid(1, {0}, 4, 12.0)};
  ssam_options opts;
  opts.rule = payment_rule::critical_value;
  // Truthful report: wins, pays critical value 12, utility 2.
  EXPECT_NEAR(utility_with_report(inst, opts, 0, 10.0), 2.0, 1e-5);
  // Overbidding beyond the threshold loses: utility 0.
  EXPECT_NEAR(utility_with_report(inst, opts, 0, 13.0), 0.0, 1e-12);
  // Underbidding does not change the payment (critical value property).
  EXPECT_NEAR(utility_with_report(inst, opts, 0, 1.0), 2.0, 1e-5);
}

TEST(Truthfulness, RunnerUpRuleUnderbidCannotBeatTruth) {
  // For the paper's in-loop rule, check the canonical manipulation: a
  // winner under-reporting cannot increase its payment on this instance.
  single_stage_instance inst;
  inst.requirements = {4};
  inst.bids = {make_bid(0, {0}, 4, 10.0), make_bid(1, {0}, 4, 12.0),
               make_bid(2, {0}, 2, 9.0)};
  ssam_options opts;  // runner_up
  const double truthful = utility_with_report(inst, opts, 0, 10.0);
  for (double lie : {1.0, 5.0, 8.0, 9.99}) {
    EXPECT_LE(utility_with_report(inst, opts, 0, lie), truthful + 1e-9);
  }
}

TEST(Truthfulness, ProbeOnEmptyInstanceIsNoop) {
  single_stage_instance inst;
  inst.requirements = {0};
  rng gen(1);
  const auto report = probe_truthfulness(inst, {}, gen, 10);
  EXPECT_EQ(report.trials, 0u);
}

TEST(Truthfulness, ProbeRejectsNegativeReport) {
  single_stage_instance inst;
  inst.requirements = {1};
  inst.bids = {make_bid(0, {0}, 1, 1.0)};
  EXPECT_THROW(utility_with_report(inst, {}, 0, -1.0), check_error);
}

}  // namespace
}  // namespace ecrs::auction
