// Tests for the event-driven cluster runner (simrun::des_driver) and the
// per-class service demand extension.
#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "common/statistics.h"
#include "demand/estimator.h"
#include "des/simulator.h"
#include "edge/cluster.h"
#include "simrun/des_driver.h"
#include "workload/generator.h"

namespace ecrs::edge {
namespace {

struct pipeline {
  workload::generator traffic;
  cluster cl;
  demand::estimator est;

  explicit pipeline(std::uint64_t seed, std::uint32_t services = 8,
                    std::uint32_t users = 40, double capacity = 1.0)
      : traffic(make_generator_config(seed, services, users)),
        cl(make_cluster_config(seed, capacity), qos_of(traffic, services)),
        est(make_estimator_config()) {}

  static workload::generator_config make_generator_config(
      std::uint64_t seed, std::uint32_t services, std::uint32_t users) {
    workload::generator_config cfg;
    cfg.users = users;
    cfg.microservices = services;
    cfg.seed = seed;
    return cfg;
  }
  static cluster_config make_cluster_config(std::uint64_t seed,
                                            double capacity) {
    cluster_config cfg;
    cfg.clouds = 3;
    cfg.capacity_per_cloud = capacity;
    cfg.seed = seed ^ 0xc0ffeeULL;
    return cfg;
  }
  static std::vector<workload::qos_class> qos_of(
      const workload::generator& gen, std::uint32_t services) {
    std::vector<workload::qos_class> qos;
    for (std::uint32_t s = 0; s < services; ++s) {
      qos.push_back(gen.class_of(s));
    }
    return qos;
  }
  static demand::estimator_config make_estimator_config() {
    demand::estimator_config cfg = demand::make_default_config();
    cfg.round_duration = 100.0;
    return cfg;
  }
};

des_driver_config driver_config(std::size_t rounds) {
  des_driver_config cfg;
  cfg.round_duration = 100.0;
  cfg.rounds = rounds;
  return cfg;
}

TEST(DesDriver, CompletesAllRoundsAndDeliversEverything) {
  pipeline p(1);
  des::simulator sim;
  des_driver driver(sim, p.cl, p.traffic, p.est, driver_config(4));
  std::size_t callbacks = 0;
  std::uint64_t total_received = 0;
  driver.set_round_callback([&](std::uint64_t round,
                                const std::vector<round_stats>& stats,
                                const std::vector<double>& estimates) {
    ++callbacks;
    EXPECT_EQ(round, callbacks);
    EXPECT_EQ(stats.size(), 8u);
    EXPECT_EQ(estimates.size(), stats.size());
    for (const auto& s : stats) total_received += s.received;
  });
  driver.run();
  EXPECT_EQ(driver.rounds_completed(), 4u);
  EXPECT_EQ(callbacks, 4u);
  EXPECT_GT(driver.requests_delivered(), 0u);
  EXPECT_EQ(total_received, driver.requests_delivered());
  EXPECT_DOUBLE_EQ(sim.now(), 400.0);
}

TEST(DesDriver, DeterministicAcrossRuns) {
  auto run_once = [](std::uint64_t seed) {
    pipeline p(seed);
    des::simulator sim;
    des_driver driver(sim, p.cl, p.traffic, p.est, driver_config(3));
    double demand_sum = 0.0;
    driver.set_round_callback([&](std::uint64_t, const auto&,
                                  const std::vector<double>& estimates) {
      for (double x : estimates) demand_sum += x;
    });
    driver.run();
    return demand_sum;
  };
  EXPECT_DOUBLE_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8));
}

TEST(DesDriver, EventAccurateServiceMatchesAnalyticTotalsApproximately) {
  // Event-accurate delivery serves no more work than the analytic round
  // (which pretends all requests are available at round start).
  const std::uint64_t seed = 5;
  pipeline event_p(seed);
  des::simulator sim;
  des_driver driver(sim, event_p.cl, event_p.traffic, event_p.est,
                    driver_config(3));
  std::uint64_t event_served = 0;
  driver.set_round_callback(
      [&](std::uint64_t, const std::vector<round_stats>& stats, const auto&) {
        for (const auto& s : stats) event_served += s.served;
      });
  driver.run();

  pipeline analytic_p(seed);
  std::uint64_t analytic_served = 0;
  double now = 0.0;
  for (std::uint64_t r = 1; r <= 3; ++r) {
    analytic_p.cl.allocate_fair(100.0);
    analytic_p.cl.route(analytic_p.traffic.round(now, 100.0));
    analytic_p.cl.advance(now, 100.0);
    for (const auto& s : analytic_p.cl.end_round(r, 100.0)) {
      analytic_served += s.served;
    }
    now += 100.0;
  }
  EXPECT_GT(event_served, 0u);
  EXPECT_LE(event_served, analytic_served);
  // Same workload stream: the gap is bounded by in-flight work.
  EXPECT_GT(static_cast<double>(event_served),
            0.5 * static_cast<double>(analytic_served));
}

TEST(DesDriver, RejectsReuseAndMismatchedPipelines) {
  pipeline p(2);
  des::simulator sim;
  des_driver driver(sim, p.cl, p.traffic, p.est, driver_config(1));
  driver.run();
  EXPECT_THROW(driver.run(), check_error);

  pipeline q(3, /*services=*/8);
  workload::generator_config mismatched =
      pipeline::make_generator_config(3, 5, 40);
  workload::generator wrong(mismatched);
  des::simulator sim2;
  EXPECT_THROW(
      des_driver(sim2, q.cl, wrong, q.est, driver_config(1)),
      check_error);
}

// Fingerprint of everything a driver run observes: per-round cluster stats
// and demand estimates, plus the delivery/round counters. Two runs are
// "bit-identical" when these match with EXPECT_EQ on every double.
struct run_fingerprint {
  std::uint64_t rounds_completed = 0;
  std::uint64_t requests_delivered = 0;
  std::vector<std::vector<edge::round_stats>> stats;
  std::vector<std::vector<double>> estimates;
};

run_fingerprint run_driver(std::uint64_t seed, std::uint32_t services,
                           std::uint32_t users, double capacity,
                           std::size_t rounds, delivery_mode delivery) {
  pipeline p(seed, services, users, capacity);
  des::simulator sim;
  des_driver_config cfg = driver_config(rounds);
  cfg.delivery = delivery;
  des_driver driver(sim, p.cl, p.traffic, p.est, cfg);
  run_fingerprint fp;
  driver.set_round_callback([&](std::uint64_t,
                                const std::vector<round_stats>& stats,
                                const std::vector<double>& estimates) {
    fp.stats.push_back(stats);
    fp.estimates.push_back(estimates);
  });
  driver.run();
  fp.rounds_completed = driver.rounds_completed();
  fp.requests_delivered = driver.requests_delivered();
  return fp;
}

// The tentpole contract: batched arrival streams are a pure throughput
// optimisation. Across 50 fuzzed configurations, every per-round statistic
// and every demand estimate must be bitwise identical to per-event delivery.
TEST(DesDriver, BatchedDeliveryBitIdenticalToPerEventAcrossFuzzedConfigs) {
  ecrs::rng fuzz(0xdecaf);
  for (int trial = 0; trial < 50; ++trial) {
    const auto seed = fuzz();
    const auto services =
        static_cast<std::uint32_t>(fuzz.uniform_int(2, 12));
    const auto users = static_cast<std::uint32_t>(fuzz.uniform_int(5, 60));
    const double capacity = fuzz.uniform_real(0.2, 4.0);
    const auto rounds = static_cast<std::size_t>(fuzz.uniform_int(1, 5));
    SCOPED_TRACE(testing::Message()
                 << "trial " << trial << " seed " << seed << " services "
                 << services << " users " << users << " capacity " << capacity
                 << " rounds " << rounds);

    const auto batched = run_driver(seed, services, users, capacity, rounds,
                                    delivery_mode::batched);
    const auto per_event = run_driver(seed, services, users, capacity, rounds,
                                      delivery_mode::per_event);

    EXPECT_EQ(batched.rounds_completed, per_event.rounds_completed);
    EXPECT_EQ(batched.requests_delivered, per_event.requests_delivered);
    ASSERT_EQ(batched.stats.size(), per_event.stats.size());
    for (std::size_t r = 0; r < batched.stats.size(); ++r) {
      ASSERT_EQ(batched.stats[r].size(), per_event.stats[r].size());
      for (std::size_t s = 0; s < batched.stats[r].size(); ++s) {
        const auto& b = batched.stats[r][s];
        const auto& e = per_event.stats[r][s];
        EXPECT_EQ(b.received, e.received);
        EXPECT_EQ(b.served, e.served);
        EXPECT_EQ(b.backlog_work, e.backlog_work);
        EXPECT_EQ(b.mean_wait, e.mean_wait);
        EXPECT_EQ(b.utilization, e.utilization);
      }
      ASSERT_EQ(batched.estimates[r].size(), per_event.estimates[r].size());
      for (std::size_t s = 0; s < batched.estimates[r].size(); ++s) {
        EXPECT_EQ(batched.estimates[r][s], per_event.estimates[r][s]);
      }
    }
  }
}

TEST(DesDriver, RejectsBadConfig) {
  pipeline p(4);
  des::simulator sim;
  des_driver_config bad;
  bad.round_duration = 0.0;
  EXPECT_THROW(des_driver(sim, p.cl, p.traffic, p.est, bad), check_error);
  bad = des_driver_config{};
  bad.rounds = 0;
  EXPECT_THROW(des_driver(sim, p.cl, p.traffic, p.est, bad), check_error);
}

}  // namespace
}  // namespace ecrs::edge

namespace ecrs::workload {
namespace {

TEST(PerClassDemand, DefaultsToGlobalMean) {
  generator_config cfg;
  cfg.users = 10;
  cfg.microservices = 4;
  cfg.mean_service_demand = 2.0;
  generator gen(cfg);
  EXPECT_DOUBLE_EQ(gen.mean_demand_of(qos_class::delay_sensitive), 2.0);
  EXPECT_DOUBLE_EQ(gen.mean_demand_of(qos_class::delay_tolerant), 2.0);
}

TEST(PerClassDemand, OverridesApplyPerClass) {
  generator_config cfg;
  cfg.users = 200;
  cfg.microservices = 10;
  cfg.sensitive_mean_demand = 0.5;
  cfg.tolerant_mean_demand = 2.0;
  generator gen(cfg);
  EXPECT_DOUBLE_EQ(gen.mean_demand_of(qos_class::delay_sensitive), 0.5);
  EXPECT_DOUBLE_EQ(gen.mean_demand_of(qos_class::delay_tolerant), 2.0);

  // Empirical means per class reflect the overrides.
  running_stats sensitive;
  running_stats tolerant;
  for (const request& r : gen.round(0.0, 100.0)) {
    (r.qos == qos_class::delay_sensitive ? sensitive : tolerant)
        .add(r.service_demand);
  }
  ASSERT_GT(sensitive.count(), 100u);
  ASSERT_GT(tolerant.count(), 100u);
  EXPECT_NEAR(sensitive.mean(), 0.5, 0.1);
  EXPECT_NEAR(tolerant.mean(), 2.0, 0.25);
}

TEST(PerClassDemand, RejectsNegativeOverride) {
  generator_config cfg;
  cfg.users = 1;
  cfg.microservices = 1;
  cfg.sensitive_mean_demand = -1.0;
  EXPECT_THROW(generator{cfg}, ecrs::check_error);
}

}  // namespace
}  // namespace ecrs::workload
