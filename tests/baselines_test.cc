// Tests for the baseline mechanisms (posted price, pay-as-bid, random).
#include <gtest/gtest.h>

#include "auction/baselines.h"
#include "auction/exact.h"
#include "auction/instance_gen.h"
#include "auction/properties.h"
#include "auction/ssam.h"
#include "common/check.h"
#include "common/rng.h"

namespace ecrs::auction {
namespace {

bid make_bid(seller_id s, std::vector<demander_id> cover, units amount,
             double price, std::uint32_t j = 0) {
  bid b;
  b.seller = s;
  b.index = j;
  b.coverage = std::move(cover);
  b.amount = amount;
  b.price = price;
  return b;
}

single_stage_instance simple_instance() {
  single_stage_instance inst;
  inst.requirements = {4};
  inst.bids = {make_bid(0, {0}, 4, 8.0),    // unit cost 2.0
               make_bid(1, {0}, 4, 16.0),   // unit cost 4.0
               make_bid(2, {0}, 4, 40.0)};  // unit cost 10.0
  return inst;
}

// -------------------------------------------------------------- fixed price

TEST(FixedPrice, UnderPricedFindsNoSellers) {
  const auto res = fixed_price_mechanism(simple_instance(), 1.0);
  EXPECT_FALSE(res.feasible);
  EXPECT_TRUE(res.winners.empty());
}

TEST(FixedPrice, AdequatePriceCoversDemand) {
  const auto res = fixed_price_mechanism(simple_instance(), 2.5);
  EXPECT_TRUE(res.feasible);
  ASSERT_EQ(res.winners.size(), 1u);
  EXPECT_EQ(res.winners[0], 0u);
  EXPECT_DOUBLE_EQ(res.social_cost, 8.0);
  // Pays posted price per unit used: 2.5 * 4 = 10.
  EXPECT_DOUBLE_EQ(res.total_payment, 10.0);
}

TEST(FixedPrice, OverPricedOverpays) {
  const auto res = fixed_price_mechanism(simple_instance(), 10.0);
  EXPECT_TRUE(res.feasible);
  // All sellers accept but only the needed units are bought; the payment is
  // at the inflated posted price.
  EXPECT_DOUBLE_EQ(res.total_payment, 40.0);  // 10.0/unit * 4 units
}

TEST(FixedPrice, PicksSellersCheapestOwnBid) {
  single_stage_instance inst;
  inst.requirements = {4};
  inst.bids = {make_bid(0, {0}, 4, 12.0, 0), make_bid(0, {0}, 4, 8.0, 1)};
  const auto res = fixed_price_mechanism(inst, 3.0);
  ASSERT_EQ(res.winners.size(), 1u);
  EXPECT_EQ(res.winners[0], 1u);  // the cheaper of seller 0's bids
}

TEST(FixedPrice, RejectsNegativePrice) {
  EXPECT_THROW(fixed_price_mechanism(simple_instance(), -1.0), check_error);
}

TEST(FixedPrice, StopsBuyingOnceSatisfied) {
  const auto res = fixed_price_mechanism(simple_instance(), 20.0);
  EXPECT_TRUE(res.feasible);
  EXPECT_EQ(res.winners.size(), 1u);  // first accepting seller suffices
}

// -------------------------------------------------------------- pay as bid

TEST(PayAsBid, SelectionMatchesGreedyAndPaysPrices) {
  const auto inst = simple_instance();
  const auto res = pay_as_bid_greedy(inst);
  const auto greedy = greedy_selection(inst);
  EXPECT_EQ(res.winners, greedy);
  EXPECT_TRUE(res.feasible);
  EXPECT_DOUBLE_EQ(res.social_cost, res.total_payment);
}

TEST(PayAsBid, PaymentNeverExceedsSsamPayment) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    rng gen(seed);
    instance_config cfg;
    cfg.sellers = 10;
    cfg.demanders = 3;
    const auto inst = random_instance(cfg, gen);
    const auto fp = pay_as_bid_greedy(inst);
    const auto ssam = run_ssam(inst);
    EXPECT_LE(fp.total_payment, ssam.total_payment + 1e-9) << "seed " << seed;
  }
}

// ------------------------------------------------------------------ random

TEST(RandomSelection, ProducesFeasibleSelectionWhenPossible) {
  rng gen(3);
  const auto inst = simple_instance();
  const auto res = random_selection(inst, gen);
  EXPECT_TRUE(res.feasible);
  EXPECT_TRUE(selection_feasible(inst, res.winners));
}

TEST(RandomSelection, CostAtLeastOptimal) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    rng gen(seed);
    instance_config cfg;
    cfg.sellers = 8;
    cfg.demanders = 2;
    const auto inst = random_instance(cfg, gen);
    rng pick = gen.fork(1);
    const auto res = random_selection(inst, pick);
    if (!res.feasible) continue;
    const auto ref = solve_exact(inst);
    ASSERT_TRUE(ref.feasible);
    EXPECT_GE(res.social_cost, ref.cost - 1e-9);
  }
}

TEST(RandomSelection, RandomCostsAtLeastGreedyOnAverage) {
  // The greedy is cost-aware; uniformly random selection is not. Averaged
  // over instances and draws the ordering must show.
  double random_total = 0.0;
  double greedy_total = 0.0;
  int counted = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    rng gen(seed);
    instance_config cfg;
    cfg.sellers = 10;
    cfg.demanders = 2;
    const auto inst = random_instance(cfg, gen);
    rng pick = gen.fork(2);
    const auto rnd = random_selection(inst, pick);
    const auto grd = pay_as_bid_greedy(inst);
    if (!rnd.feasible || !grd.feasible) continue;
    random_total += rnd.social_cost;
    greedy_total += grd.social_cost;
    ++counted;
  }
  ASSERT_GT(counted, 10);
  EXPECT_GT(random_total, greedy_total);
}

TEST(RandomSelection, InfeasibleInstanceReported) {
  single_stage_instance inst;
  inst.requirements = {100};
  inst.bids = {make_bid(0, {0}, 1, 1.0)};
  rng gen(4);
  const auto res = random_selection(inst, gen);
  EXPECT_FALSE(res.feasible);
}

}  // namespace
}  // namespace ecrs::auction
