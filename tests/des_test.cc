// Unit tests for the discrete-event simulation core.
#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "des/simulator.h"

namespace ecrs::des {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.executed_events(), 0u);
}

TEST(Simulator, ExecutesEventsInTimestampOrder) {
  simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  EXPECT_EQ(sim.executed_events(), 3u);
}

TEST(Simulator, FifoAmongEqualTimestamps) {
  simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(1.0, [&] { order.push_back(2); });
  sim.schedule_at(1.0, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, ScheduleInUsesRelativeDelay) {
  simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(5.0, [&] {
    sim.schedule_in(2.5, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Simulator, RejectsPastAndNegative) {
  simulator sim;
  sim.schedule_at(10.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5.0, [] {}), check_error);
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), check_error);
  EXPECT_THROW(sim.schedule_at(20.0, nullptr), check_error);
}

TEST(Simulator, CancelPreventsExecution) {
  simulator sim;
  bool ran = false;
  const event_id id = sim.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // second cancel is a harmless no-op
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.executed_events(), 0u);
}

TEST(Simulator, EventsCanScheduleEvents) {
  simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_in(1.0, recurse);
  };
  sim.schedule_in(1.0, recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  sim.schedule_at(5.0, [&] { ++fired; });
  sim.run_until(3.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_until(5.0);
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunUntilExecutesEventsExactlyAtHorizon) {
  simulator sim;
  bool ran = false;
  sim.schedule_at(3.0, [&] { ran = true; });
  sim.run_until(3.0);
  EXPECT_TRUE(ran);
}

TEST(Simulator, RunUntilAdvancesClockWithoutEvents) {
  simulator sim;
  sim.run_until(42.0);
  EXPECT_DOUBLE_EQ(sim.now(), 42.0);
  EXPECT_THROW(sim.run_until(41.0), check_error);
}

TEST(Simulator, PeriodicFiresRepeatedly) {
  simulator sim;
  std::vector<double> times;
  sim.schedule_periodic(2.0, [&] { times.push_back(sim.now()); });
  sim.run_until(7.0);
  EXPECT_EQ(times, (std::vector<double>{2.0, 4.0, 6.0}));
}

TEST(Simulator, PeriodicCancelStopsSeries) {
  simulator sim;
  int count = 0;
  const event_id id = sim.schedule_periodic(1.0, [&] { ++count; });
  sim.run_until(3.5);
  EXPECT_EQ(count, 3);
  EXPECT_TRUE(sim.cancel(id));
  sim.run_until(10.0);
  EXPECT_EQ(count, 3);
}

TEST(Simulator, PeriodicCanCancelItselfFromCallback) {
  simulator sim;
  int count = 0;
  event_id id = 0;
  id = sim.schedule_periodic(1.0, [&] {
    if (++count == 2) sim.cancel(id);
  });
  sim.run_until(10.0);
  EXPECT_EQ(count, 2);
}

TEST(Simulator, PeriodicRejectsNonPositivePeriod) {
  simulator sim;
  EXPECT_THROW(sim.schedule_periodic(0.0, [] {}), check_error);
}

TEST(Simulator, StepExecutesExactlyOne) {
  simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, ManyEventsStressOrdering) {
  simulator sim;
  rng gen(5);
  std::vector<double> fired;
  for (int i = 0; i < 2000; ++i) {
    const double when = gen.uniform_real(0.0, 1000.0);
    sim.schedule_at(when, [&fired, when] { fired.push_back(when); });
  }
  sim.run();
  EXPECT_EQ(fired.size(), 2000u);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

TEST(Simulator, CancelInsideEarlierEvent) {
  simulator sim;
  bool second_ran = false;
  event_id second = 0;
  sim.schedule_at(1.0, [&] { sim.cancel(second); });
  second = sim.schedule_at(2.0, [&] { second_ran = true; });
  sim.run();
  EXPECT_FALSE(second_ran);
}

}  // namespace
}  // namespace ecrs::des
