// Unit tests for the discrete-event simulation core: the slab/indexed-heap
// engine, the batched stream lane, and behavioural equivalence against the
// frozen pre-PR5 reference engine.
#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "des/reference_simulator.h"
#include "des/simulator.h"

namespace ecrs::des {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.executed_events(), 0u);
}

TEST(Simulator, ExecutesEventsInTimestampOrder) {
  simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  EXPECT_EQ(sim.executed_events(), 3u);
}

TEST(Simulator, FifoAmongEqualTimestamps) {
  simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(1.0, [&] { order.push_back(2); });
  sim.schedule_at(1.0, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, ScheduleInUsesRelativeDelay) {
  simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(5.0, [&] {
    sim.schedule_in(2.5, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Simulator, RejectsPastAndNegative) {
  simulator sim;
  sim.schedule_at(10.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5.0, [] {}), check_error);
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), check_error);
  EXPECT_THROW(sim.schedule_at(20.0, nullptr), check_error);
}

TEST(Simulator, CancelPreventsExecution) {
  simulator sim;
  bool ran = false;
  const event_id id = sim.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // second cancel is a harmless no-op
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.executed_events(), 0u);
}

TEST(Simulator, EventsCanScheduleEvents) {
  simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_in(1.0, recurse);
  };
  sim.schedule_in(1.0, recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  sim.schedule_at(5.0, [&] { ++fired; });
  sim.run_until(3.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_until(5.0);
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunUntilExecutesEventsExactlyAtHorizon) {
  simulator sim;
  bool ran = false;
  sim.schedule_at(3.0, [&] { ran = true; });
  sim.run_until(3.0);
  EXPECT_TRUE(ran);
}

TEST(Simulator, RunUntilAdvancesClockWithoutEvents) {
  simulator sim;
  sim.run_until(42.0);
  EXPECT_DOUBLE_EQ(sim.now(), 42.0);
  EXPECT_THROW(sim.run_until(41.0), check_error);
}

TEST(Simulator, PeriodicFiresRepeatedly) {
  simulator sim;
  std::vector<double> times;
  sim.schedule_periodic(2.0, [&] { times.push_back(sim.now()); });
  sim.run_until(7.0);
  EXPECT_EQ(times, (std::vector<double>{2.0, 4.0, 6.0}));
}

TEST(Simulator, PeriodicCancelStopsSeries) {
  simulator sim;
  int count = 0;
  const event_id id = sim.schedule_periodic(1.0, [&] { ++count; });
  sim.run_until(3.5);
  EXPECT_EQ(count, 3);
  EXPECT_TRUE(sim.cancel(id));
  sim.run_until(10.0);
  EXPECT_EQ(count, 3);
}

TEST(Simulator, PeriodicCanCancelItselfFromCallback) {
  simulator sim;
  int count = 0;
  event_id id = 0;
  id = sim.schedule_periodic(1.0, [&] {
    if (++count == 2) sim.cancel(id);
  });
  sim.run_until(10.0);
  EXPECT_EQ(count, 2);
}

TEST(Simulator, PeriodicRejectsNonPositivePeriod) {
  simulator sim;
  EXPECT_THROW(sim.schedule_periodic(0.0, [] {}), check_error);
}

TEST(Simulator, StepExecutesExactlyOne) {
  simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, ManyEventsStressOrdering) {
  simulator sim;
  rng gen(5);
  std::vector<double> fired;
  for (int i = 0; i < 2000; ++i) {
    const double when = gen.uniform_real(0.0, 1000.0);
    sim.schedule_at(when, [&fired, when] { fired.push_back(when); });
  }
  sim.run();
  EXPECT_EQ(fired.size(), 2000u);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

TEST(Simulator, CancelInsideEarlierEvent) {
  simulator sim;
  bool second_ran = false;
  event_id second = 0;
  sim.schedule_at(1.0, [&] { sim.cancel(second); });
  second = sim.schedule_at(2.0, [&] { second_ran = true; });
  sim.run();
  EXPECT_FALSE(second_ran);
}

// --- Edge cases pinned before the PR 5 engine rewrite -----------------------

TEST(Simulator, CancelFromInsideOwnCallbackReportsAlreadyRan) {
  simulator sim;
  bool cancel_result = true;
  event_id id = 0;
  id = sim.schedule_at(1.0, [&] { cancel_result = sim.cancel(id); });
  sim.run();
  EXPECT_FALSE(cancel_result);  // the event already ran when cancel() hit
  EXPECT_EQ(sim.executed_events(), 1u);
}

TEST(Simulator, CancelOfAlreadyFiredIdIsNoOpEvenAfterSlotReuse) {
  simulator sim;
  int second_fired = 0;
  const event_id first = sim.schedule_at(1.0, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(first));
  // The freed slot is recycled by the next schedule; the stale handle must
  // not cancel the new tenant.
  const event_id second = sim.schedule_at(2.0, [&] { ++second_fired; });
  EXPECT_NE(first, second);
  EXPECT_FALSE(sim.cancel(first));
  sim.run();
  EXPECT_EQ(second_fired, 1);
}

TEST(Simulator, EqualTimestampFifoAcross1000Events) {
  simulator sim;
  std::vector<int> order;
  order.reserve(1000);
  for (int i = 0; i < 1000; ++i) {
    sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  ASSERT_EQ(order.size(), 1000u);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, RunUntilExactlyAtTimestampThenNothingLeft) {
  simulator sim;
  int fired = 0;
  sim.schedule_at(3.0, [&] { ++fired; });
  sim.schedule_at(3.0, [&] { ++fired; });
  sim.run_until(3.0);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

// Regression for the periodic floating-point drift bug: `now += period`
// accumulates rounding error, so firing 10^6 of a 0.1-period series missed
// the time computed as k * 0.1. Anchored firings (start + k * period) land
// bitwise-exactly on every boundary that is computed the same way.
TEST(Simulator, PeriodicFiringsStayAnchoredOverMillionFirings) {
  simulator sim;
  std::uint64_t count = 0;
  constexpr std::uint64_t kFirings = 1000000;
  constexpr double kPeriod = 0.1;
  sim.schedule_periodic(kPeriod, [&] {
    ++count;
    if (count % 100000 == 0) {
      // Bitwise equality with the round boundary start + k * period: no
      // accumulated drift, however many firings have passed.
      ASSERT_EQ(sim.now(), static_cast<double>(count) * kPeriod);
    }
  });
  sim.run_until(static_cast<double>(kFirings) * kPeriod);
  EXPECT_EQ(count, kFirings);
}

// The periodic callback runs out of its stable slab record (no per-firing
// copy of the callable); cancelling and rescheduling itself from inside the
// callback must still be safe.
TEST(Simulator, PeriodicCanCancelAndRescheduleItselfFromCallback) {
  simulator sim;
  std::vector<double> times;
  event_id id = 0;
  struct rearm {
    simulator& sim;
    event_id& id;
    std::vector<double>& times;
    void operator()() const {
      times.push_back(sim.now());
      sim.cancel(id);
      if (times.size() < 3) id = sim.schedule_periodic(2.0, *this);
    }
  };
  id = sim.schedule_periodic(1.0, rearm{sim, id, times});
  sim.run_until(20.0);
  // Fires at 1 (period 1), then re-arms with period 2: 3, then 5.
  EXPECT_EQ(times, (std::vector<double>{1.0, 3.0, 5.0}));
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, PeriodicSelfCancelReleasesTheSlotForReuse) {
  simulator sim;
  int periodic_fires = 0;
  int later_fires = 0;
  event_id id = 0;
  id = sim.schedule_periodic(1.0, [&] {
    if (++periodic_fires == 2) sim.cancel(id);
  });
  sim.run_until(5.0);
  EXPECT_EQ(periodic_fires, 2);
  // New work after the self-cancel recycles the slot without confusion.
  sim.schedule_at(6.0, [&] { ++later_fires; });
  sim.run();
  EXPECT_EQ(later_fires, 1);
}

// --- Batched stream lane ----------------------------------------------------

TEST(SimulatorStream, DrainsInOrderWithIndices) {
  simulator sim;
  const std::array<sim_time, 4> times{1.0, 2.5, 2.5, 7.0};
  std::vector<std::pair<std::size_t, double>> seen;
  sim.schedule_stream(times, [&](std::size_t i) {
    seen.emplace_back(i, sim.now());
  });
  EXPECT_EQ(sim.pending_events(), 1u);  // whole stream = one record
  sim.run();
  ASSERT_EQ(seen.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(seen[i].first, i);
    EXPECT_DOUBLE_EQ(seen[i].second, times[i]);
  }
  EXPECT_EQ(sim.executed_events(), 4u);  // one executed event per entry
}

TEST(SimulatorStream, InterleavesWithHeapEventsFifoByRegistration) {
  simulator sim;
  std::vector<int> order;
  sim.schedule_at(2.0, [&] { order.push_back(-1); });  // before the stream
  const std::array<sim_time, 3> times{1.0, 2.0, 3.0};
  sim.schedule_stream(times, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  sim.schedule_at(2.0, [&] { order.push_back(-2); });  // after the stream
  sim.schedule_at(0.5, [&] { order.push_back(-3); });
  sim.run();
  // At t=2.0 three things fire: the earlier one-shot, stream entry 1, the
  // later one-shot — in registration order, exactly as if every stream
  // entry had been schedule_at'ed at registration time.
  EXPECT_EQ(order, (std::vector<int>{-3, 0, -1, 1, -2, 2}));
}

TEST(SimulatorStream, CancelStopsTheRemainder) {
  simulator sim;
  const std::array<sim_time, 4> times{1.0, 2.0, 3.0, 4.0};
  int delivered = 0;
  const event_id id =
      sim.schedule_stream(times, [&](std::size_t) { ++delivered; });
  sim.run_until(2.0);
  EXPECT_EQ(delivered, 2);
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
  sim.run_until(10.0);
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorStream, CanCancelItselfFromInsideTheDrainCallback) {
  simulator sim;
  const std::array<sim_time, 4> times{1.0, 2.0, 3.0, 4.0};
  int delivered = 0;
  event_id id = 0;
  id = sim.schedule_stream(times, [&](std::size_t i) {
    ++delivered;
    if (i == 1) {
      EXPECT_TRUE(sim.cancel(id));
    }
  });
  sim.run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorStream, RejectsUnsortedAndPastTimes) {
  simulator sim;
  sim.run_until(5.0);
  const std::array<sim_time, 2> past{1.0, 2.0};
  EXPECT_THROW(sim.schedule_stream(past, [](std::size_t) {}), check_error);
  const std::array<sim_time, 3> unsorted{6.0, 8.0, 7.0};
  EXPECT_THROW(sim.schedule_stream(unsorted, [](std::size_t) {}),
               check_error);
  EXPECT_THROW(sim.schedule_stream(std::array<sim_time, 1>{6.0}, nullptr),
               check_error);
}

TEST(SimulatorStream, EmptyStreamIsANoOp) {
  simulator sim;
  const event_id id =
      sim.schedule_stream(std::span<const sim_time>{}, [](std::size_t) {});
  EXPECT_EQ(id, 0u);
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_EQ(sim.pending_events(), 0u);
}

// --- Equivalence against the frozen pre-PR5 reference engine ----------------

// Applies an identical random script of schedule/cancel operations to both
// engines and requires identical firing traces. Periods are dyadic so the
// reference's accumulated `now + period` re-arm is bitwise equal to the new
// engine's anchored `start + k * period`.
template <typename Sim>
std::vector<std::pair<int, double>> run_script(Sim& sim, std::uint64_t seed) {
  std::vector<std::pair<int, double>> trace;
  rng gen(seed);
  std::vector<event_id> ids;
  constexpr std::array<double, 3> periods{0.25, 0.5, 1.0};
  for (int op = 0; op < 400; ++op) {
    const int kind = static_cast<int>(gen.uniform_int(0, 9));
    if (kind < 6) {  // schedule a one-shot
      const double when = gen.uniform_real(0.0, 50.0);
      const int tag = op;
      ids.push_back(sim.schedule_at(when, [&trace, &sim, tag] {
        trace.emplace_back(tag, sim.now());
      }));
    } else if (kind < 8 && !ids.empty()) {  // cancel a random earlier event
      const auto pick = static_cast<std::size_t>(
          gen.uniform_int(0, static_cast<std::int64_t>(ids.size()) - 1));
      sim.cancel(ids[pick]);
    } else {  // periodic series, cancelled by firing count from inside
      const double period = periods[static_cast<std::size_t>(
          gen.uniform_int(0, static_cast<std::int64_t>(periods.size()) - 1))];
      const int tag = 10000 + op;
      const auto fires =
          std::make_shared<int>(static_cast<int>(gen.uniform_int(1, 5)));
      auto id = std::make_shared<event_id>(0);
      *id = sim.schedule_periodic(period, [&trace, &sim, tag, fires, id] {
        trace.emplace_back(tag, sim.now());
        if (--*fires == 0) sim.cancel(*id);
      });
      ids.push_back(*id);
    }
  }
  sim.run_until(200.0);
  // Whatever survives (cancelled periodics aside) has fired by now; any
  // periodic the script never self-cancelled was cancelled above. Drain the
  // rest defensively.
  for (const event_id id : ids) sim.cancel(id);
  sim.run();
  return trace;
}

TEST(SimulatorEquivalence, MatchesReferenceEngineOnRandomScripts) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    simulator fresh;
    reference_simulator frozen;
    const auto new_trace = run_script(fresh, seed);
    const auto ref_trace = run_script(frozen, seed);
    ASSERT_EQ(new_trace.size(), ref_trace.size()) << "seed " << seed;
    for (std::size_t i = 0; i < new_trace.size(); ++i) {
      EXPECT_EQ(new_trace[i].first, ref_trace[i].first)
          << "seed " << seed << " index " << i;
      EXPECT_EQ(new_trace[i].second, ref_trace[i].second)
          << "seed " << seed << " index " << i;
    }
    EXPECT_EQ(fresh.executed_events(), frozen.executed_events());
  }
}

}  // namespace
}  // namespace ecrs::des
