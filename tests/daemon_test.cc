// Tests for the sustained closed-loop marketplace daemon (simrun/daemon.h):
// the per-round observe -> estimate -> ingest -> auction -> allocate cycle,
// scenario programs (diurnal load, flash crowds, seller churn) and the
// checkpoint/restore contract — a daemon restored at ANY round boundary
// replays the remaining horizon byte-identically to the straight-through
// run, at any marketplace thread count.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "auction/instance_gen.h"
#include "common/check.h"
#include "common/checkpoint.h"
#include "harness/internal.h"
#include "simrun/daemon.h"

namespace ecrs::simrun {
namespace {

constexpr std::uint32_t kRegions = 4;
constexpr std::uint32_t kSellers = 3;
constexpr std::uint32_t kDemanders = 2;

daemon_config make_config(double round_duration = 50.0) {
  daemon_config cfg;
  cfg.round_duration = round_duration;
  return cfg;
}

daemon_setup make_setup(std::uint64_t seed,
                        daemon_config dcfg = make_config()) {
  auction::online_config stage;
  stage.stage = harness::internal::paper_stage(kSellers, kDemanders, 2);
  stage.rounds = 1;  // only the standing (round 1) bid sets are used
  auction::regional_config regional;
  regional.regions = kRegions;
  rng gen = harness::internal::point_rng(seed, 13, 0, 0);
  auction::regional_online_instance input =
      auction::random_regional_online_instance(stage, regional, gen);

  daemon_setup s;
  s.topology = edge::topology::ring(kRegions);
  s.standing.regions.reserve(kRegions);
  s.sellers.reserve(kRegions);
  for (auto& region : input.regions) {
    s.standing.regions.push_back(region.rounds.front());
    for (auction::seller_profile& p : region.sellers) {
      // The single-round generator leaves every seller the window [1,1]
      // and a one-round budget; widen both so the market stays live over
      // a long daemon horizon.
      p.capacity *= 10000;
      p.t_arrive = 1;
      p.t_depart = 0x7fffffffu;
    }
    s.sellers.push_back(std::move(region.sellers));
  }
  s.workload.users = 6;
  s.workload.microservices = kRegions * kDemanders;
  s.workload.regions = kRegions;
  s.workload.seed = seed;
  s.cluster.clouds = kRegions;
  s.cluster.seed = seed ^ 0xc0ffeeULL;
  s.estimator = demand::make_default_config();
  s.estimator.round_duration = dcfg.round_duration;
  s.ingest.regions = kRegions;
  s.ingest.microservices = kRegions * kDemanders;
  s.ingest.unit_demand = 4.0;
  s.ingest.max_requirement = stage.stage.requirement_hi;
  s.ingest.supply_margin = stage.stage.supply_margin;
  s.market.threads = 1;
  s.market.shard.session.stage.payment_threads = 1;
  s.market.spillover.stage.payment_threads = 1;
  s.config = dcfg;
  return s;
}

// Exact byte-level digest of everything a daemon round decided: the full
// marketplace outcome plus the round's estimates and grants.
void digest_round(const market::marketplace_round& round,
                  std::span<const double> estimates,
                  std::span<const auction::units> grants,
                  std::vector<std::uint64_t>& out) {
  const auto push_double = [&](double v) {
    out.push_back(std::bit_cast<std::uint64_t>(v));
  };
  out.push_back(round.round);
  for (const auto& shard : round.shards) {
    out.push_back(shard.outcome.winner_bids.size());
    for (const std::size_t w : shard.outcome.winner_bids) out.push_back(w);
    for (const double p : shard.outcome.payments) push_double(p);
    push_double(shard.outcome.social_cost);
    out.push_back(static_cast<std::uint64_t>(shard.deficit));
  }
  out.push_back(round.spillover.awards.size());
  for (const auto& award : round.spillover.awards) {
    out.push_back(award.demand_region);
    out.push_back(award.seller);
    out.push_back(static_cast<std::uint64_t>(award.amount));
    push_double(award.payment);
  }
  push_double(round.social_cost);
  push_double(round.total_payment);
  for (const double e : estimates) push_double(e);
  for (const auction::units g : grants) {
    out.push_back(static_cast<std::uint64_t>(g));
  }
}

std::vector<std::uint8_t> save_bytes(const daemon& d) {
  ecrs::checkpoint_writer w;
  d.save(w);
  const std::span<const std::uint8_t> p = w.payload();
  return {p.begin(), p.end()};
}

// Attach a digest-per-round callback; digests land in `rounds[round - 1]`.
void record_rounds(daemon& d, std::vector<std::vector<std::uint64_t>>& rounds) {
  d.set_round_callback([&rounds, &d](std::uint64_t round,
                                     const market::marketplace_round& out,
                                     std::span<const double> estimates) {
    ASSERT_LE(round, rounds.size());
    digest_round(out, estimates, d.last_grants(), rounds[round - 1]);
  });
}

TEST(Daemon, ClosedLoopRunsAndFeedsGrantsBackIntoAllocations) {
  daemon d(make_setup(1));
  std::uint64_t callbacks = 0;
  d.set_round_callback([&](std::uint64_t round,
                           const market::marketplace_round& out,
                           std::span<const double> estimates) {
    ++callbacks;
    EXPECT_EQ(round, callbacks);
    EXPECT_EQ(out.shards.size(), kRegions);
    EXPECT_EQ(estimates.size(), kRegions * kDemanders);
  });
  d.run_rounds(5);

  EXPECT_EQ(d.rounds_completed(), 5u);
  EXPECT_EQ(callbacks, 5u);
  EXPECT_GT(d.requests_delivered(), 0u);
  EXPECT_EQ(d.estimator().rounds_observed(), 5u);
  EXPECT_EQ(d.market().rounds_run(), 5u);

  // The loop is closed: every service runs the next round at exactly
  // base + per_unit * granted, and at least one grant is positive.
  const std::span<const auction::units> grants = d.last_grants();
  ASSERT_EQ(grants.size(), kRegions * kDemanders);
  auction::units total = 0;
  for (std::uint32_t m = 0; m < grants.size(); ++m) {
    const auto g = static_cast<double>(std::max<auction::units>(0, grants[m]));
    EXPECT_DOUBLE_EQ(d.cluster().service(m).allocation(),
                     d.config().base_allocation +
                         d.config().resources_per_unit * g);
    total += std::max<auction::units>(0, grants[m]);
  }
  EXPECT_GT(total, 0);
}

TEST(Daemon, ByteIdenticalAcrossMarketplaceThreadCounts) {
  const std::uint64_t horizon = 6;
  std::vector<std::vector<std::uint64_t>> serial(horizon);
  std::vector<std::vector<std::uint64_t>> parallel(horizon);

  daemon a(make_setup(2));
  record_rounds(a, serial);
  a.run_rounds(horizon);

  daemon_setup wide = make_setup(2);
  wide.market.threads = 4;
  wide.ingest.threads = 4;
  daemon b(std::move(wide));
  record_rounds(b, parallel);
  b.run_rounds(horizon);

  EXPECT_EQ(a.requests_delivered(), b.requests_delivered());
  for (std::uint64_t r = 0; r < horizon; ++r) {
    EXPECT_EQ(serial[r], parallel[r]) << "round " << r + 1;
  }
  EXPECT_EQ(save_bytes(a), save_bytes(b));
}

TEST(Daemon, CheckpointResumeByteIdenticalAtEveryRoundBoundary) {
  const std::uint64_t horizon = 6;
  daemon straight(make_setup(3));
  std::vector<std::vector<std::uint64_t>> expected(horizon);
  record_rounds(straight, expected);
  straight.run_rounds(horizon);
  const std::vector<std::uint8_t> final_state = save_bytes(straight);

  for (std::uint64_t boundary = 0; boundary < horizon; ++boundary) {
    SCOPED_TRACE(testing::Message() << "boundary after round " << boundary);
    daemon first(make_setup(3));
    first.run_rounds(boundary);
    const std::string path = testing::TempDir() + "daemon_ckpt_" +
                             std::to_string(boundary) + ".bin";
    first.save_file(path);

    daemon resumed(make_setup(3));
    resumed.load_file(path);
    EXPECT_EQ(resumed.rounds_completed(), boundary);
    std::vector<std::vector<std::uint64_t>> replay(horizon);
    record_rounds(resumed, replay);
    resumed.run_rounds(horizon - boundary);

    EXPECT_EQ(resumed.rounds_completed(), horizon);
    EXPECT_EQ(resumed.requests_delivered(), straight.requests_delivered());
    for (std::uint64_t r = boundary; r < horizon; ++r) {
      EXPECT_EQ(replay[r], expected[r]) << "round " << r + 1;
    }
    EXPECT_EQ(save_bytes(resumed), final_state);
  }
}

std::vector<char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(Daemon, CheckpointFileRejectsCorruption) {
  daemon d(make_setup(4));
  d.run_rounds(2);
  const std::string path = testing::TempDir() + "daemon_ckpt_corrupt.bin";
  d.save_file(path);
  const std::vector<char> good = read_file(path);
  ASSERT_GT(good.size(), 40u);  // header + payload

  const auto expect_rejected = [&](const std::vector<char>& bytes) {
    const std::string bad_path = testing::TempDir() + "daemon_ckpt_bad.bin";
    write_file(bad_path, bytes);
    daemon fresh(make_setup(4));
    EXPECT_THROW(fresh.load_file(bad_path), check_error);
  };

  {  // wrong magic
    std::vector<char> bytes = good;
    bytes[0] ^= 0x01;
    expect_rejected(bytes);
  }
  {  // version skew (version is the u32 after the u64 magic)
    std::vector<char> bytes = good;
    bytes[8] ^= 0x01;
    expect_rejected(bytes);
  }
  {  // flipped payload byte (checksum mismatch; header is 40 bytes)
    std::vector<char> bytes = good;
    bytes[44] ^= 0x01;
    expect_rejected(bytes);
  }
  {  // truncated payload
    std::vector<char> bytes = good;
    bytes.resize(bytes.size() - 1);
    expect_rejected(bytes);
  }
  {  // trailing garbage
    std::vector<char> bytes = good;
    bytes.push_back(0);
    expect_rejected(bytes);
  }
  {  // checkpoint from a differently-configured daemon (config-hash gate)
    daemon other(make_setup(5));
    other.run_rounds(2);
    const std::string other_path =
        testing::TempDir() + "daemon_ckpt_other.bin";
    other.save_file(other_path);
    daemon fresh(make_setup(4));
    EXPECT_THROW(fresh.load_file(other_path), check_error);
  }

  // The pristine file still restores.
  daemon fresh(make_setup(4));
  fresh.load_file(path);
  EXPECT_EQ(fresh.rounds_completed(), 2u);
}

TEST(Daemon, LoadRequiresFreshDaemon) {
  daemon d(make_setup(6));
  d.run_rounds(1);
  const std::string path = testing::TempDir() + "daemon_ckpt_used.bin";
  d.save_file(path);
  EXPECT_THROW(d.load_file(path), check_error);  // already ran a round
}

TEST(Daemon, SellerChurnFailsAndRecoversDeterministically) {
  daemon_config cfg = make_config();
  cfg.scenario.churn_every = 2;
  cfg.scenario.churn_downtime = 4;
  daemon d(make_setup(7, cfg));

  const auto active = [&](std::uint32_t region, std::uint32_t seller) {
    return d.market().region(region).session().seller_active(seller);
  };

  d.run_rounds(2);  // ordinal 1 fails: region 1, seller 0
  EXPECT_FALSE(active(1, 0));
  EXPECT_TRUE(active(0, 0));
  d.run_rounds(2);  // ordinal 2 fails: region 2, seller 0
  EXPECT_FALSE(active(1, 0));
  EXPECT_FALSE(active(2, 0));
  d.run_rounds(2);  // round 6: ordinal 1 recovers, ordinal 3 fails
  EXPECT_TRUE(active(1, 0));
  EXPECT_FALSE(active(2, 0));
  EXPECT_FALSE(active(3, 0));

  // Checkpoint mid-outage: the restored daemon carries the activity flags
  // without replaying the churn schedule.
  const std::string path = testing::TempDir() + "daemon_ckpt_churn.bin";
  d.save_file(path);
  daemon resumed(make_setup(7, cfg));
  EXPECT_TRUE(resumed.market().region(2).session().seller_active(0));
  resumed.load_file(path);
  EXPECT_FALSE(resumed.market().region(2).session().seller_active(0));
  EXPECT_TRUE(resumed.market().region(1).session().seller_active(0));
}

TEST(Daemon, ScenarioRateScaleIsPureAndBounded) {
  const scenario_config off;
  for (std::uint64_t r = 1; r <= 10; ++r) {
    EXPECT_DOUBLE_EQ(scenario_rate_scale(off, r), 1.0);
  }

  scenario_config flash;
  flash.flash_every = 5;
  flash.flash_duration = 2;
  flash.flash_factor = 3.0;
  EXPECT_DOUBLE_EQ(scenario_rate_scale(flash, 1), 3.0);
  EXPECT_DOUBLE_EQ(scenario_rate_scale(flash, 2), 3.0);
  EXPECT_DOUBLE_EQ(scenario_rate_scale(flash, 3), 1.0);
  EXPECT_DOUBLE_EQ(scenario_rate_scale(flash, 5), 1.0);
  EXPECT_DOUBLE_EQ(scenario_rate_scale(flash, 6), 3.0);

  scenario_config diurnal;
  diurnal.diurnal_amplitude = 0.5;
  diurnal.diurnal_period = 4;
  EXPECT_DOUBLE_EQ(scenario_rate_scale(diurnal, 1), 1.0);  // phase 0
  EXPECT_DOUBLE_EQ(scenario_rate_scale(diurnal, 2), 1.5);  // peak
  EXPECT_NEAR(scenario_rate_scale(diurnal, 4), 0.5, 1e-12);  // trough
  EXPECT_DOUBLE_EQ(scenario_rate_scale(diurnal, 5),
                   scenario_rate_scale(diurnal, 1));  // periodic

  // Never negative, even with a deep trough and a zero flash factor.
  scenario_config extreme = diurnal;
  extreme.diurnal_amplitude = 0.999;
  extreme.flash_every = 1;
  extreme.flash_factor = 0.0;
  for (std::uint64_t r = 1; r <= 8; ++r) {
    EXPECT_DOUBLE_EQ(scenario_rate_scale(extreme, r), 0.0);
  }
}

TEST(Daemon, FlashCrowdsScaleArrivalsAndZeroFactorSilencesThem) {
  daemon baseline(make_setup(8));
  baseline.run_rounds(4);
  ASSERT_GT(baseline.requests_delivered(), 0u);

  daemon_config surge_cfg = make_config();
  surge_cfg.scenario.flash_every = 1;
  surge_cfg.scenario.flash_duration = 1;
  surge_cfg.scenario.flash_factor = 3.0;
  daemon surge(make_setup(8, surge_cfg));
  surge.run_rounds(4);
  EXPECT_GT(surge.requests_delivered(), baseline.requests_delivered());

  daemon_config quiet_cfg = surge_cfg;
  quiet_cfg.scenario.flash_factor = 0.0;
  daemon quiet(make_setup(8, quiet_cfg));
  quiet.run_rounds(4);
  EXPECT_EQ(quiet.requests_delivered(), 0u);
  EXPECT_EQ(quiet.rounds_completed(), 4u);  // empty rounds still close
}

TEST(Daemon, RejectsInconsistentSetups) {
  {
    daemon_setup s = make_setup(9);
    s.estimator.round_duration = s.config.round_duration + 1.0;
    EXPECT_THROW(daemon{std::move(s)}, check_error);
  }
  {
    daemon_setup s = make_setup(9);
    s.workload.microservices += 1;
    EXPECT_THROW(daemon{std::move(s)}, check_error);
  }
  {
    daemon_setup s = make_setup(9);
    s.config.scenario.diurnal_amplitude = 1.5;
    EXPECT_THROW(daemon{std::move(s)}, check_error);
  }
  {
    daemon_setup s = make_setup(9);
    s.config.round_duration = 0.0;
    s.estimator.round_duration = 0.0;
    EXPECT_THROW(daemon{std::move(s)}, check_error);
  }
}

}  // namespace
}  // namespace ecrs::simrun
