// Tests for MSOA (Algorithm 2): scaling, capacity exclusion, ψ updates,
// payments, the competitive bound, and the evaluation variants.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "auction/exact.h"
#include "auction/instance_gen.h"
#include "auction/io.h"
#include "auction/msoa.h"
#include "auction/properties.h"
#include "common/check.h"
#include "common/rng.h"

namespace ecrs::auction {
namespace {

bid make_bid(seller_id s, std::vector<demander_id> cover, units amount,
             double price, std::uint32_t j = 0) {
  bid b;
  b.seller = s;
  b.index = j;
  b.coverage = std::move(cover);
  b.amount = amount;
  b.price = price;
  return b;
}

online_instance two_round_instance() {
  online_instance inst;
  inst.rounds.resize(2);
  for (auto& round : inst.rounds) {
    round.requirements = {2};
    round.bids = {make_bid(0, {0}, 2, 3.0), make_bid(1, {0}, 2, 5.0)};
  }
  inst.sellers = {seller_profile{4, 1, 2}, seller_profile{4, 1, 2}};
  return inst;
}

TEST(Msoa, RunsEveryRoundFeasibly) {
  const auto res = run_msoa(two_round_instance());
  EXPECT_TRUE(res.feasible);
  ASSERT_EQ(res.rounds.size(), 2u);
  for (const auto& round : res.rounds) {
    EXPECT_TRUE(round.feasible);
    EXPECT_EQ(round.winner_bids.size(), 1u);
  }
}

TEST(Msoa, PsiGrowsOnlyForWinners) {
  const auto res = run_msoa(two_round_instance());
  // Seller 0 wins both rounds (cheaper), seller 1 never does.
  EXPECT_GT(res.psi_final[0], 0.0);
  EXPECT_DOUBLE_EQ(res.psi_final[1], 0.0);
  EXPECT_EQ(res.capacity_used[0], 2);
  EXPECT_EQ(res.capacity_used[1], 0);
}

TEST(Msoa, ScalingShiftsWinsToFreshSellers) {
  // With a tiny capacity-aware α, seller 0's ψ grows after round 1 and the
  // price gap (3 vs 3.2) flips in round 2.
  online_instance inst = two_round_instance();
  inst.rounds[1].bids[1].price = 3.2;
  inst.sellers[0].capacity = 2;  // β small => ψ grows fast
  msoa_options opts;
  opts.alpha = 1.0;
  const auto res = run_msoa(inst, opts);
  ASSERT_TRUE(res.feasible);
  EXPECT_EQ(inst.rounds[0].bids[res.rounds[0].winner_bids[0]].seller, 0u);
  EXPECT_EQ(inst.rounds[1].bids[res.rounds[1].winner_bids[0]].seller, 1u);
}

TEST(Msoa, CapacityExclusionBindsHard) {
  online_instance inst = two_round_instance();
  inst.sellers[0].capacity = 1;  // |S| = 1 per win: one win allowed
  const auto res = run_msoa(inst);
  ASSERT_TRUE(res.feasible);
  const auto audit = audit_msoa(inst, res);
  EXPECT_TRUE(audit.capacity_ok);
  // Seller 0 wins round 1, is excluded in round 2.
  EXPECT_EQ(inst.rounds[1].bids[res.rounds[1].winner_bids[0]].seller, 1u);
}

TEST(Msoa, WindowsExcludeBids) {
  online_instance inst = two_round_instance();
  inst.sellers[0].t_arrive = 2;  // seller 0 absent in round 1
  const auto res = run_msoa(inst);
  ASSERT_TRUE(res.feasible);
  EXPECT_EQ(inst.rounds[0].bids[res.rounds[0].winner_bids[0]].seller, 1u);
  const auto audit = audit_msoa(inst, res);
  EXPECT_TRUE(audit.windows_ok);
}

TEST(Msoa, PaymentsAreIndividuallyRationalAgainstTruePrices) {
  const auto res = run_msoa(two_round_instance());
  for (const auto& round : res.rounds) {
    for (std::size_t i = 0; i < round.winner_bids.size(); ++i) {
      EXPECT_GE(round.payments[i], round.true_prices[i] - 1e-9);
    }
  }
}

TEST(Msoa, CriticalValueStagePaymentsUnscaleSafely) {
  // Critical-value payments pass through the ψ-unscaling step, which now
  // asserts the unscaled value is finite and non-negative before the IR
  // clamp. A multi-round run with growing ψ must stay clean and IR.
  online_instance inst = two_round_instance();
  msoa_options opts;
  opts.stage.rule = payment_rule::critical_value;
  const auto res = run_msoa(inst, opts);
  ASSERT_TRUE(res.feasible);
  for (const auto& round : res.rounds) {
    for (std::size_t i = 0; i < round.winner_bids.size(); ++i) {
      EXPECT_TRUE(std::isfinite(round.payments[i]));
      EXPECT_GE(round.payments[i], round.true_prices[i] - 1e-9);
    }
  }
}

TEST(Msoa, SocialCostSumsTruePrices) {
  const auto res = run_msoa(two_round_instance());
  double total = 0.0;
  for (const auto& round : res.rounds) total += round.social_cost;
  EXPECT_DOUBLE_EQ(total, res.social_cost);
  EXPECT_DOUBLE_EQ(res.social_cost, 6.0);  // seller 0 twice at price 3
}

TEST(Msoa, BetaAndCompetitiveBound) {
  online_instance inst = two_round_instance();
  inst.sellers[0].capacity = 4;
  inst.sellers[1].capacity = 4;
  const auto res = run_msoa(inst);
  // |S| = 1, min capacity 4 => β = 4, bound = α * 4/3.
  EXPECT_DOUBLE_EQ(res.beta, 4.0);
  EXPECT_NEAR(res.competitive_bound, res.alpha * 4.0 / 3.0, 1e-9);
}

TEST(Msoa, InfeasibleRoundIsReportedNotFatal) {
  online_instance inst = two_round_instance();
  inst.rounds[1].requirements = {100};  // cannot be covered
  const auto res = run_msoa(inst);
  EXPECT_FALSE(res.feasible);
  EXPECT_TRUE(res.rounds[0].feasible);
  EXPECT_FALSE(res.rounds[1].feasible);
}

TEST(Msoa, AlphaAutoFreezesAfterFirstRound) {
  const auto res = run_msoa(two_round_instance());
  EXPECT_GE(res.alpha, 1.0);
  msoa_options opts;
  opts.alpha = 5.0;
  const auto res2 = run_msoa(two_round_instance(), opts);
  EXPECT_DOUBLE_EQ(res2.alpha, 5.0);
  // Larger α damps ψ growth.
  EXPECT_LT(res2.psi_final[0], res.psi_final[0] + 1e-12);
}

TEST(Msoa, RejectsNegativeAlpha) {
  msoa_options opts;
  opts.alpha = -1.0;
  EXPECT_THROW(run_msoa(two_round_instance(), opts), check_error);
}

// ----------------------------------------------------------- msoa_session

TEST(MsoaSession, IncrementalMatchesBatchRunner) {
  const auto inst = two_round_instance();
  const auto batch = run_msoa(inst);

  msoa_session session(inst.sellers);
  double social_cost = 0.0;
  for (const auto& round : inst.rounds) {
    social_cost += session.run_round(round).social_cost;
  }
  EXPECT_DOUBLE_EQ(social_cost, batch.social_cost);
  EXPECT_EQ(session.rounds_run(), 2u);
  for (seller_id s = 0; s < inst.sellers.size(); ++s) {
    EXPECT_DOUBLE_EQ(session.psi(s), batch.psi_final[s]);
    EXPECT_EQ(session.capacity_used(s), batch.capacity_used[s]);
  }
  EXPECT_DOUBLE_EQ(session.competitive_bound(), batch.competitive_bound);
}

TEST(MsoaSession, CapacityLeftAccounting) {
  const auto inst = two_round_instance();
  msoa_session session(inst.sellers);
  EXPECT_EQ(session.capacity_left(0), 4);
  session.run_round(inst.rounds[0]);
  EXPECT_EQ(session.capacity_left(0), 3);  // seller 0 won with |S| = 1
}

TEST(MsoaSession, RejectsUnknownSellerInBid) {
  msoa_session session({seller_profile{2, 1, 5}});
  single_stage_instance round;
  round.requirements = {1};
  round.bids = {make_bid(7, {0}, 1, 1.0)};
  EXPECT_THROW(session.run_round(round), check_error);
}

TEST(MsoaSession, RejectsInvalidProfiles) {
  EXPECT_THROW(msoa_session({seller_profile{-1, 1, 2}}), check_error);
  EXPECT_THROW(msoa_session({seller_profile{1, 3, 2}}), check_error);
}

TEST(MsoaSession, BoundBeforeAnyRoundIsAlpha) {
  msoa_session session({seller_profile{2, 1, 5}});
  EXPECT_DOUBLE_EQ(session.competitive_bound(), 1.0);  // α defaults to 1
}

TEST(MsoaSession, InactiveSellerSkipsAdmissionAndRecoversWithState) {
  const auto inst = two_round_instance();
  msoa_session session(inst.sellers);
  EXPECT_TRUE(session.seller_active(0));
  EXPECT_TRUE(session.seller_active(1));

  // Seller 0 is cheaper and wins while active.
  const auto first = session.run_round(inst.rounds[0]);
  ASSERT_EQ(first.winner_bids.size(), 1u);
  EXPECT_EQ(inst.rounds[0].bids[first.winner_bids[0]].seller, 0u);
  const double psi_after_win = session.psi(0);
  EXPECT_GT(psi_after_win, 0.0);

  // Churned out: its bid is skipped as if it never arrived, the rival wins.
  session.set_seller_active(0, false);
  EXPECT_FALSE(session.seller_active(0));
  const auto outage = session.run_round(inst.rounds[1]);
  ASSERT_EQ(outage.winner_bids.size(), 1u);
  EXPECT_EQ(inst.rounds[1].bids[outage.winner_bids[0]].seller, 1u);

  // ψ/χ survive the outage; flags are range-checked.
  session.set_seller_active(0, true);
  EXPECT_TRUE(session.seller_active(0));
  EXPECT_DOUBLE_EQ(session.psi(0), psi_after_win);
  EXPECT_EQ(session.capacity_used(0), 1);
  EXPECT_THROW(session.set_seller_active(9, false), check_error);
}

TEST(MsoaSession, CheckpointRoundTripReplaysIdentically) {
  const auto inst = two_round_instance();
  msoa_session source(inst.sellers);
  (void)source.run_round(inst.rounds[0]);
  source.set_seller_active(1, false);

  checkpoint_writer w;
  source.save(w);
  checkpoint_reader r(w.payload());
  msoa_session restored(inst.sellers);
  restored.load(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(restored.rounds_run(), source.rounds_run());
  EXPECT_FALSE(restored.seller_active(1));
  for (seller_id s = 0; s < inst.sellers.size(); ++s) {
    EXPECT_EQ(restored.psi(s), source.psi(s));
    EXPECT_EQ(restored.capacity_used(s), source.capacity_used(s));
  }

  const auto from_source = source.run_round(inst.rounds[1]);
  const auto from_restored = restored.run_round(inst.rounds[1]);
  EXPECT_EQ(from_restored.winner_bids, from_source.winner_bids);
  EXPECT_EQ(from_restored.payments, from_source.payments);
  EXPECT_EQ(from_restored.social_cost, from_source.social_cost);
  EXPECT_EQ(restored.beta(), source.beta());

  // A session over a different seller set rejects the payload.
  checkpoint_reader again(w.payload());
  msoa_session mismatched({seller_profile{4, 1, 2}});
  EXPECT_THROW(mismatched.load(again), check_error);
}

TEST(MsoaSession, BetaOneMakesBoundInfinite) {
  // Capacity equal to the participation weight: β = 1, bound diverges.
  msoa_session session({seller_profile{1, 1, 5}});
  single_stage_instance round;
  round.requirements = {1};
  round.bids = {make_bid(0, {0}, 1, 2.0)};
  session.run_round(round);
  EXPECT_DOUBLE_EQ(session.beta(), 1.0);
  EXPECT_EQ(session.competitive_bound(),
            std::numeric_limits<double>::infinity());
}

// ------------------------------------------------------ warm-start cache

// T rounds of the same standing bid vector (the workload the warm-start
// cache targets); requirements optionally vary per round.
std::vector<single_stage_instance> standing_rounds(
    std::size_t rounds, const std::vector<std::vector<units>>& requirements) {
  single_stage_instance base;
  base.bids = {make_bid(0, {0, 1}, 2, 3.0), make_bid(1, {0}, 3, 4.0),
               make_bid(2, {1}, 2, 2.5), make_bid(3, {0, 1}, 1, 6.0)};
  std::vector<single_stage_instance> out;
  for (std::size_t t = 0; t < rounds; ++t) {
    base.requirements = requirements[t % requirements.size()];
    out.push_back(base);
  }
  return out;
}

std::vector<seller_profile> ample_profiles(std::size_t sellers,
                                           std::uint32_t horizon,
                                           units capacity = 1000) {
  std::vector<seller_profile> profiles(sellers);
  for (auto& p : profiles) {
    p.capacity = capacity;
    p.t_arrive = 1;
    p.t_depart = horizon;
  }
  return profiles;
}

void expect_rounds_equal(const msoa_round_outcome& a,
                         const msoa_round_outcome& b) {
  EXPECT_EQ(a.winner_bids, b.winner_bids);
  EXPECT_EQ(a.payments, b.payments);  // bitwise
  EXPECT_EQ(a.true_prices, b.true_prices);
  EXPECT_EQ(a.social_cost, b.social_cost);
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.admitted_bids, b.admitted_bids);
  EXPECT_EQ(a.stage.total_payment, b.stage.total_payment);
  EXPECT_EQ(a.stage.budget_dropped, b.stage.budget_dropped);
}

TEST(MsoaWarmStart, StandingBidsMatchColdStartBitwise) {
  const std::size_t rounds = 6;
  const auto instances = standing_rounds(rounds, {{4, 3}});
  msoa_options warm_opts;
  warm_opts.stage.rule = payment_rule::critical_value;
  warm_opts.stage.payment_threads = 1;
  msoa_options cold_opts = warm_opts;
  cold_opts.warm_start = false;

  msoa_session warm(ample_profiles(4, rounds), warm_opts);
  msoa_session cold(ample_profiles(4, rounds), cold_opts);
  for (const auto& round : instances) {
    expect_rounds_equal(warm.run_round(round), cold.run_round(round));
  }
  // Round 1 compiles cold; every later round is served from the cache.
  EXPECT_EQ(warm.warm_rounds(), rounds - 1);
  EXPECT_EQ(cold.warm_rounds(), 0u);
  for (seller_id s = 0; s < 4; ++s) {
    EXPECT_EQ(warm.psi(s), cold.psi(s));
    EXPECT_EQ(warm.capacity_used(s), cold.capacity_used(s));
  }
}

TEST(MsoaWarmStart, VaryingRequirementsStayWarm) {
  // Changing the demand vector between rounds is a patch (set_requirement),
  // not a topology change — the cache must stay warm and bit-identical.
  const std::size_t rounds = 6;
  const auto instances = standing_rounds(rounds, {{4, 3}, {1, 5}, {0, 2}});
  msoa_options warm_opts;
  warm_opts.stage.rule = payment_rule::critical_value;
  warm_opts.stage.payment_threads = 1;
  msoa_options cold_opts = warm_opts;
  cold_opts.warm_start = false;

  msoa_session warm(ample_profiles(4, rounds), warm_opts);
  msoa_session cold(ample_profiles(4, rounds), cold_opts);
  for (const auto& round : instances) {
    expect_rounds_equal(warm.run_round(round), cold.run_round(round));
  }
  EXPECT_EQ(warm.warm_rounds(), rounds - 1);
}

TEST(MsoaWarmStart, CapacityDepletionFallsBackToColdCompile) {
  // Seller capacities deplete after a few wins, shrinking the admitted set:
  // those rounds miss the topology check and recompile cold, and the results
  // still match a warm_start=false session exactly.
  const std::size_t rounds = 5;
  const auto instances = standing_rounds(rounds, {{4, 3}});
  msoa_options warm_opts;
  warm_opts.stage.rule = payment_rule::critical_value;
  warm_opts.stage.payment_threads = 1;
  msoa_options cold_opts = warm_opts;
  cold_opts.warm_start = false;

  // Participation weight is |S| (1 or 2): capacity 4 allows ~2 wins.
  msoa_session warm(ample_profiles(4, rounds, 4), warm_opts);
  msoa_session cold(ample_profiles(4, rounds, 4), cold_opts);
  bool any_depleted = false;
  for (const auto& round : instances) {
    const auto warm_out = warm.run_round(round);
    const auto cold_out = cold.run_round(round);
    expect_rounds_equal(warm_out, cold_out);
    any_depleted = any_depleted || warm_out.admitted_bids < round.bids.size();
  }
  ASSERT_TRUE(any_depleted);  // the scenario actually exercises the fallback
  EXPECT_LT(warm.warm_rounds(), rounds - 1);
}

TEST(MsoaWarmStart, DisabledSessionNeverWarms) {
  const auto instances = standing_rounds(4, {{4, 3}});
  msoa_options opts;
  opts.warm_start = false;
  msoa_session session(ample_profiles(4, 4), opts);
  for (const auto& round : instances) {
    (void)session.run_round(round);
  }
  EXPECT_EQ(session.warm_rounds(), 0u);
}

TEST(MsoaWarmStart, FreshBidsEachRoundNeverWarm) {
  // random_online_instance draws new bids per round, so the topology check
  // must reject the cache every time (warm-start is a standing-bid
  // optimization, not a correctness hazard for churning bids).
  rng gen(31);
  online_config cfg;
  cfg.stage.sellers = 8;
  cfg.stage.demanders = 3;
  cfg.rounds = 5;
  const auto inst = random_online_instance(cfg, gen);
  msoa_session session(inst.sellers, {});
  for (const auto& round : inst.rounds) {
    (void)session.run_round(round);
  }
  EXPECT_EQ(session.warm_rounds(), 0u);
}

// ------------------------------------------------------- property sweeps

class MsoaRandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MsoaRandomSweep, AuditCleanOnRandomInstances) {
  rng gen(GetParam());
  online_config cfg;
  cfg.stage.sellers = 10;
  cfg.stage.demanders = 3;
  cfg.rounds = 6;
  const auto inst = random_online_instance(cfg, gen);
  const auto res = run_msoa(inst);
  const auto audit = audit_msoa(inst, res);
  EXPECT_TRUE(audit.windows_ok);
  EXPECT_TRUE(audit.capacity_ok);
  EXPECT_TRUE(audit.coverage_ok);
  EXPECT_TRUE(audit.ir_ok);
}

TEST_P(MsoaRandomSweep, OnlineCostAtLeastOfflineBound) {
  rng gen(GetParam() + 1000);
  online_config cfg;
  cfg.stage.sellers = 6;
  cfg.stage.demanders = 2;
  cfg.rounds = 4;
  cfg.capacity_lo = 4;
  cfg.capacity_hi = 8;
  const auto inst = random_online_instance(cfg, gen);
  const auto res = run_msoa(inst);
  if (!res.feasible) return;
  const double bound = offline_lp_bound(inst);
  EXPECT_GE(res.social_cost, bound - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MsoaRandomSweep,
                         ::testing::Range<std::uint64_t>(1, 16));

// Theorem 7 on exactly-solvable instances.
class MsoaCompetitiveRatio : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MsoaCompetitiveRatio, WithinTheorem7Bound) {
  rng gen(GetParam());
  online_config cfg;
  cfg.stage.sellers = 5;
  cfg.stage.demanders = 2;
  cfg.stage.bids_per_seller = 1;
  cfg.rounds = 3;
  cfg.capacity_lo = 4;
  cfg.capacity_hi = 8;
  const auto inst = random_online_instance(cfg, gen);
  const auto offline = offline_exact(inst, 2000000);
  if (!offline.exact || !offline.feasible) return;
  const auto res = run_msoa(inst);
  if (!res.feasible) return;
  ASSERT_LT(res.competitive_bound, std::numeric_limits<double>::infinity());
  EXPECT_LE(res.social_cost, res.competitive_bound * offline.cost + 1e-6)
      << "measured " << res.social_cost / offline.cost << " bound "
      << res.competitive_bound;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MsoaCompetitiveRatio,
                         ::testing::Range<std::uint64_t>(1, 26));

TEST(MsoaSession, SerializedMarketReplaysIdentically) {
  // An online instance written to disk and replayed through a fresh session
  // produces the same trajectory (the operational recovery path).
  rng gen(21);
  online_config cfg;
  cfg.stage.sellers = 8;
  cfg.stage.demanders = 3;
  cfg.rounds = 4;
  const auto inst = random_online_instance(cfg, gen);
  const auto original = run_msoa(inst);

  std::stringstream ss;
  write_online_instance(ss, inst);
  const auto restored = read_online_instance(ss);
  msoa_session session(restored.sellers);
  double cost = 0.0;
  for (const auto& round : restored.rounds) {
    cost += session.run_round(round).social_cost;
  }
  EXPECT_DOUBLE_EQ(cost, original.social_cost);
}

TEST(MsoaSession, PerRoundBudgetPropagatesToStages) {
  // The nested ssam_options' payment budget applies inside every round.
  online_instance inst = two_round_instance();
  msoa_options opts;
  opts.stage.payment_budget = 1.0;  // below any payment: nothing clears
  const auto res = run_msoa(inst, opts);
  EXPECT_FALSE(res.feasible);
  for (const auto& round : res.rounds) {
    EXPECT_TRUE(round.winner_bids.empty());
  }
}

// ---------------------------------------------------------------- variants

TEST(Variants, ToStringNames) {
  EXPECT_STREQ(to_string(msoa_variant::base), "MSOA");
  EXPECT_STREQ(to_string(msoa_variant::demand_aware), "MSOA-DA");
  EXPECT_STREQ(to_string(msoa_variant::high_capacity), "MSOA-RC");
  EXPECT_STREQ(to_string(msoa_variant::fully_optimized), "MSOA-OA");
}

TEST(Variants, DemandAwareKeepsTruthUnchanged) {
  rng gen(1);
  const auto truth = two_round_instance();
  const auto shaped = apply_variant(truth, msoa_variant::demand_aware, {}, gen);
  for (std::size_t t = 0; t < truth.rounds.size(); ++t) {
    EXPECT_EQ(shaped.rounds[t].requirements, truth.rounds[t].requirements);
  }
  for (std::size_t s = 0; s < truth.sellers.size(); ++s) {
    EXPECT_EQ(shaped.sellers[s].capacity, truth.sellers[s].capacity);
  }
}

TEST(Variants, BaseInflatesDemandsNeverDeflates) {
  rng gen(2);
  const auto truth = two_round_instance();
  variant_options opts;
  opts.demand_noise = 0.5;
  const auto shaped = apply_variant(truth, msoa_variant::base, opts, gen);
  for (std::size_t t = 0; t < truth.rounds.size(); ++t) {
    for (std::size_t k = 0; k < truth.rounds[t].requirements.size(); ++k) {
      EXPECT_GE(shaped.rounds[t].requirements[k],
                truth.rounds[t].requirements[k]);
    }
  }
}

TEST(Variants, HighCapacityScalesSellers) {
  rng gen(3);
  const auto truth = two_round_instance();
  variant_options opts;
  opts.capacity_factor = 2.0;
  const auto shaped =
      apply_variant(truth, msoa_variant::high_capacity, opts, gen);
  for (std::size_t s = 0; s < truth.sellers.size(); ++s) {
    EXPECT_EQ(shaped.sellers[s].capacity, 2 * truth.sellers[s].capacity);
  }
}

TEST(Variants, FullyOptimizedCombinesBoth) {
  rng gen(4);
  const auto truth = two_round_instance();
  const auto shaped =
      apply_variant(truth, msoa_variant::fully_optimized, {}, gen);
  for (std::size_t t = 0; t < truth.rounds.size(); ++t) {
    EXPECT_EQ(shaped.rounds[t].requirements, truth.rounds[t].requirements);
  }
  EXPECT_GT(shaped.sellers[0].capacity, truth.sellers[0].capacity);
}

TEST(Variants, RejectsBadOptions) {
  rng gen(5);
  variant_options opts;
  opts.demand_noise = 1.0;
  EXPECT_THROW(apply_variant(two_round_instance(), msoa_variant::base, opts,
                             gen),
               check_error);
  opts = variant_options{};
  opts.capacity_factor = 0.5;
  EXPECT_THROW(apply_variant(two_round_instance(), msoa_variant::base, opts,
                             gen),
               check_error);
}

TEST(Variants, DemandAwareCostsNoMoreThanNoisyBase) {
  // Perfect demand estimation buys less, so it cannot cost more.
  rng gen(6);
  online_config cfg;
  cfg.stage.sellers = 10;
  cfg.stage.demanders = 3;
  cfg.rounds = 5;
  const auto truth = random_online_instance(cfg, gen);
  rng noise_a = gen.fork(1);
  rng noise_b = gen.fork(1);  // identical noise streams
  variant_options opts;
  opts.demand_noise = 0.4;
  const auto base = apply_variant(truth, msoa_variant::base, opts, noise_a);
  const auto da =
      apply_variant(truth, msoa_variant::demand_aware, opts, noise_b);
  const auto res_base = run_msoa(base);
  const auto res_da = run_msoa(da);
  if (res_base.feasible && res_da.feasible) {
    EXPECT_LE(res_da.social_cost, res_base.social_cost + 1e-9);
  }
}

}  // namespace
}  // namespace ecrs::auction
